"""Snapshot atomicity: the decoupling correctness property (§4.2).

"Checkpointing requires the model parameters to be atomically copied
... Otherwise, training processes may update the model during the
copying time window, causing substantial consistency challenges."

These tests verify that once the snapshot exists, *continued training
cannot leak into the checkpoint*: the bytes written to storage reflect
the model exactly as it was at the stall, no matter how much the live
model changes while the background write runs.
"""

from __future__ import annotations

import numpy as np

from repro.core.manifest import KIND_FULL
from repro.core.restore import CheckpointRestorer
from repro.core.snapshot import SnapshotManager
from repro.core.writer import CheckpointWriter
from repro.experiments import build_experiment, small_config
from repro.model.dlrm import DLRM
from repro.quant import make_quantizer


def test_checkpoint_reflects_snapshot_not_live_model():
    exp = build_experiment(
        small_config(
            quantizer="none",
            interval_batches=5,
            num_tables=2,
            rows_per_table=512,
            batch_size=32,
        )
    )
    exp.controller.coordinator.grant_interval(5)
    exp.trainer.train_interval(5)
    manager = SnapshotManager(exp.trainer, exp.clock)
    snapshot = manager.take_snapshot(
        0, exp.controller.tracker_set, exp.reader.collect_state()
    )
    at_snapshot = {
        t: exp.model.table_weight(t).copy()
        for t in range(exp.model.num_tables)
    }

    # Training continues while the checkpoint is being written — the
    # paper's whole point. Here: train more *before* the write call.
    exp.controller.coordinator.resume()
    exp.controller.coordinator.grant_interval(5)
    exp.trainer.train_interval(5)
    assert not np.allclose(
        exp.model.table_weight(0), at_snapshot[0]
    )  # the live model moved on

    writer = CheckpointWriter(exp.store, exp.clock)
    manifest, _ = writer.write_checkpoint(
        snapshot, KIND_FULL, "atomic", "job0", None, "full",
        make_quantizer("none"), chunk_rows=128,
        quantize_optimizer_state=False,
    )
    snapshot.release(exp.trainer)

    # Restore into a fresh model: it must equal the snapshot-time
    # state, not the post-snapshot training state.
    fresh = DLRM(exp.config.model)
    restorer = CheckpointRestorer(exp.store, exp.clock)
    restorer.restore(fresh, manifest, {"atomic": manifest})
    for t in range(exp.model.num_tables):
        np.testing.assert_array_equal(
            fresh.table_weight(t), at_snapshot[t]
        )
        assert not np.array_equal(
            fresh.table_weight(t), exp.model.table_weight(t)
        ) or np.array_equal(
            at_snapshot[t], exp.model.table_weight(t)
        )


def test_tracker_mask_in_snapshot_is_frozen():
    """Rows modified after the snapshot do not join its increment."""
    exp = build_experiment(
        small_config(
            quantizer="none",
            interval_batches=5,
            num_tables=2,
            rows_per_table=512,
            batch_size=32,
        )
    )
    exp.controller.coordinator.grant_interval(5)
    exp.trainer.train_interval(5)
    manager = SnapshotManager(exp.trainer, exp.clock)
    snapshot = manager.take_snapshot(
        0, exp.controller.tracker_set, exp.reader.collect_state()
    )
    masked_at_snapshot = {
        sid: int(s.mask.sum()) for sid, s in snapshot.shards.items()
    }
    # More training marks more rows in the live tracker...
    exp.controller.coordinator.resume()
    exp.controller.coordinator.grant_interval(5)
    exp.trainer.train_interval(5)
    live_marked = exp.controller.tracker_set.modified_rows
    assert live_marked >= sum(masked_at_snapshot.values())
    # ...but the snapshot's masks are unchanged.
    for sid, shard in snapshot.shards.items():
        assert int(shard.mask.sum()) == masked_at_snapshot[sid]
    snapshot.release(exp.trainer)


def test_two_snapshots_are_independent():
    exp = build_experiment(
        small_config(
            quantizer="none",
            interval_batches=3,
            num_tables=2,
            rows_per_table=256,
            batch_size=32,
        )
    )
    manager = SnapshotManager(exp.trainer, exp.clock)
    exp.controller.coordinator.grant_interval(3)
    exp.trainer.train_interval(3)
    first = manager.take_snapshot(
        0, exp.controller.tracker_set, exp.reader.collect_state()
    )
    exp.controller.coordinator.resume()
    exp.controller.coordinator.grant_interval(3)
    exp.trainer.train_interval(3)
    second = manager.take_snapshot(
        1, exp.controller.tracker_set, exp.reader.collect_state()
    )
    shard_id = next(iter(first.shards))
    assert not np.array_equal(
        first.shards[shard_id].weight, second.shards[shard_id].weight
    )
    first.release(exp.trainer)
    second.release(exp.trainer)
    assert manager.snapshots_taken == 2
