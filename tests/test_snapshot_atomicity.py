"""Snapshot atomicity: the decoupling correctness property (§4.2).

"Checkpointing requires the model parameters to be atomically copied
... Otherwise, training processes may update the model during the
copying time window, causing substantial consistency challenges."

These tests verify that once the snapshot exists, *continued training
cannot leak into the checkpoint*: the bytes written to storage reflect
the model exactly as it was at the stall, no matter how much the live
model changes while the background write runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.manifest import KIND_FULL, checkpoint_prefix
from repro.core.restore import CheckpointRestorer
from repro.core.snapshot import SnapshotManager
from repro.core.writer import CheckpointWriter
from repro.errors import StorageError
from repro.experiments import build_experiment, small_config
from repro.model.dlrm import DLRM
from repro.quant import make_quantizer
from repro.storage.backends import (
    CrashingBackend,
    InMemoryBackend,
    MirroredBackend,
)


def test_checkpoint_reflects_snapshot_not_live_model():
    exp = build_experiment(
        small_config(
            quantizer="none",
            interval_batches=5,
            num_tables=2,
            rows_per_table=512,
            batch_size=32,
        )
    )
    exp.controller.coordinator.grant_interval(5)
    exp.trainer.train_interval(5)
    manager = SnapshotManager(exp.trainer, exp.clock)
    snapshot = manager.take_snapshot(
        0, exp.controller.tracker_set, exp.reader.collect_state()
    )
    at_snapshot = {
        t: exp.model.table_weight(t).copy()
        for t in range(exp.model.num_tables)
    }

    # Training continues while the checkpoint is being written — the
    # paper's whole point. Here: train more *before* the write call.
    exp.controller.coordinator.resume()
    exp.controller.coordinator.grant_interval(5)
    exp.trainer.train_interval(5)
    assert not np.allclose(
        exp.model.table_weight(0), at_snapshot[0]
    )  # the live model moved on

    writer = CheckpointWriter(exp.store, exp.clock)
    manifest, _ = writer.write_checkpoint(
        snapshot, KIND_FULL, "atomic", "job0", None, "full",
        make_quantizer("none"), chunk_rows=128,
        quantize_optimizer_state=False,
    )
    snapshot.release(exp.trainer)

    # Restore into a fresh model: it must equal the snapshot-time
    # state, not the post-snapshot training state.
    fresh = DLRM(exp.config.model)
    restorer = CheckpointRestorer(exp.store, exp.clock)
    restorer.restore(fresh, manifest, {"atomic": manifest})
    for t in range(exp.model.num_tables):
        np.testing.assert_array_equal(
            fresh.table_weight(t), at_snapshot[t]
        )
        assert not np.array_equal(
            fresh.table_weight(t), exp.model.table_weight(t)
        ) or np.array_equal(
            at_snapshot[t], exp.model.table_weight(t)
        )


def test_tracker_mask_in_snapshot_is_frozen():
    """Rows modified after the snapshot do not join its increment."""
    exp = build_experiment(
        small_config(
            quantizer="none",
            interval_batches=5,
            num_tables=2,
            rows_per_table=512,
            batch_size=32,
        )
    )
    exp.controller.coordinator.grant_interval(5)
    exp.trainer.train_interval(5)
    manager = SnapshotManager(exp.trainer, exp.clock)
    snapshot = manager.take_snapshot(
        0, exp.controller.tracker_set, exp.reader.collect_state()
    )
    masked_at_snapshot = {
        sid: int(s.mask.sum()) for sid, s in snapshot.shards.items()
    }
    # More training marks more rows in the live tracker...
    exp.controller.coordinator.resume()
    exp.controller.coordinator.grant_interval(5)
    exp.trainer.train_interval(5)
    live_marked = exp.controller.tracker_set.modified_rows
    assert live_marked >= sum(masked_at_snapshot.values())
    # ...but the snapshot's masks are unchanged.
    for sid, shard in snapshot.shards.items():
        assert int(shard.mask.sum()) == masked_at_snapshot[sid]
    snapshot.release(exp.trainer)


def _crash_config():
    return small_config(
        policy="full",
        quantizer="none",
        interval_batches=5,
        num_tables=2,
        rows_per_table=256,
        batch_size=32,
        keep_last=10,
    )


def _weights(model):
    return {
        t: model.table_weight(t).copy() for t in range(model.num_tables)
    }


def test_staged_write_killed_before_manifest_is_skipped_on_restore():
    """Crash between the last chunk PUT and the manifest PUT (§4.4).

    The manifest-last invariant is validity: a torn checkpoint has
    chunks on storage but no manifest, so the restorer must fall back
    to the previous valid checkpoint. If a (broken) writer stored the
    manifest before its chunks, the torn checkpoint would be selected
    and this test fails.
    """
    exp = build_experiment(_crash_config())
    exp.controller.run_intervals(1)  # ckpt-000000 lands fully
    state_at_first = _weights(exp.model)

    exp.controller.coordinator.grant_interval(5)
    exp.trainer.train_interval(5)
    # Let the first write's validity pass before triggering the next.
    first = exp.controller.manifests["ckpt-000000"]
    exp.clock.advance_to(first.valid_at_s + 1.0, "drain")

    from repro.core.controller import PendingCheckpoint

    pending = exp.controller.begin_checkpoint()
    assert isinstance(pending, PendingCheckpoint)
    # Submit every chunk and the dense blob, but NOT the manifest.
    while pending.next_step is not None and pending.next_step.kind != "manifest":
        pending.advance()
    assert pending.next_step is not None  # stopped at the manifest
    exp.controller.abort_pending(pending)

    torn_prefix = checkpoint_prefix("job0", pending.checkpoint_id)
    torn_keys = exp.store.list_keys(torn_prefix)
    assert torn_keys, "the torn checkpoint left no chunks — bad setup"
    assert not any(k.endswith("manifest.json") for k in torn_keys)

    restorer = CheckpointRestorer(exp.store, exp.clock)
    target = restorer.latest_valid("job0", at_time_s=exp.clock.now + 1e9)
    assert target is not None
    assert target.checkpoint_id == "ckpt-000000"

    fresh = DLRM(exp.config.model)
    restorer.restore(fresh, target, {target.checkpoint_id: target})
    for t in range(fresh.num_tables):
        np.testing.assert_array_equal(
            fresh.table_weight(t), state_at_first[t]
        )


def test_mirrored_backend_crash_between_chunk_and_manifest_put():
    """A process death mid-write on replicated storage leaves a torn
    checkpoint on every replica; the restorer falls back cleanly."""
    mirrored = MirroredBackend([InMemoryBackend(), InMemoryBackend()])
    crashing = CrashingBackend(mirrored)
    exp = build_experiment(_crash_config(), backend=crashing)

    exp.controller.run_intervals(1)
    state_at_first = _weights(exp.model)
    objects_per_checkpoint = len(
        exp.store.list_keys(checkpoint_prefix("job0", "ckpt-000000"))
    )
    assert objects_per_checkpoint >= 3  # chunks + dense + manifest

    # The full policy writes identical layouts each interval: arm the
    # crash on what would be the next checkpoint's manifest PUT.
    crashing.arm(objects_per_checkpoint)
    with pytest.raises(StorageError):
        exp.controller.run_intervals(1)

    torn_keys = exp.store.list_keys(
        checkpoint_prefix("job0", "ckpt-000001")
    )
    assert torn_keys, "chunks of the torn checkpoint should remain"
    assert not any(k.endswith("manifest.json") for k in torn_keys)

    # Survive the loss of one replica on top of the torn write.
    mirrored.fail_replica(1)
    restorer = CheckpointRestorer(exp.store, exp.clock)
    target = restorer.latest_valid("job0", at_time_s=exp.clock.now + 1e9)
    assert target is not None
    assert target.checkpoint_id == "ckpt-000000"
    fresh = DLRM(exp.config.model)
    restorer.restore(fresh, target, {target.checkpoint_id: target})
    for t in range(fresh.num_tables):
        np.testing.assert_array_equal(
            fresh.table_weight(t), state_at_first[t]
        )


def test_fleet_job_crash_mid_write_restores_previous_checkpoint():
    """The fleet path: a job dies between its last chunk and manifest
    PUT; recovery restores its newest *valid* checkpoint and scrubs
    the torn chunks from the shared store."""
    from repro.config import FailureConfig, FleetConfig, MiB, StorageConfig
    from repro.fleet import build_fleet, summarize_fleet

    config = FleetConfig(
        num_jobs=2,
        intervals_per_job=3,
        seed=77,
        rows_per_table_choices=(2048,),
        storage=StorageConfig(
            write_bandwidth=1.0 * MiB,
            read_bandwidth=2.0 * MiB,
            replication_factor=2,
            latency_s=0.002,
        ),
        failures=FailureConfig(min_failure_s=0.0),
        inject_failures=False,  # we crash one job surgically instead
        stagger_s=2.0,
    )
    scheduler, store = build_fleet(config)
    written: set[str] = set()
    armed: list[str] = []

    def on_event(event):
        if event.kind == "written":
            written.add(event.job_id)
        if (
            not armed
            and event.kind == "write_step"
            and event.payload["next_kind"] == "manifest"
            and event.job_id in written
        ):
            armed.append(event.job_id)
            scheduler.inject_crash(event.job_id)

    scheduler.on_event = on_event
    scheduler.run()

    crashes = [e for e in scheduler.events if e.kind == "crash"]
    assert crashes, "the surgical crash never fired"
    crash = crashes[0]
    assert crash.payload["torn_checkpoint"] is not None
    assert crash.payload["torn_chunks"] > 0
    valid_before = crash.payload["valid_before"]
    assert valid_before, "job should have had a valid checkpoint"
    assert crash.payload["restored_from"] == valid_before[-1][0]

    # Torn chunks are gone from the shared store; every surviving
    # object belongs to a checkpoint with a manifest.
    torn_id = crash.payload["torn_checkpoint"]
    assert not store.list_keys(
        checkpoint_prefix(crash.job_id, torn_id)
    )

    report = summarize_fleet(scheduler, store)
    for job in scheduler.jobs:
        assert job.controller.interval_index >= job.target_intervals
    assert report.torn_writes == 1


def test_discard_unlanded_write_removes_it_and_rolls_back_baseline():
    """A crash kills the background write pipeline: a checkpoint whose
    manifest transfer had not landed must never become valid later."""
    exp = build_experiment(_crash_config())
    exp.controller.run_intervals(1)
    manifest = exp.controller.manifests["ckpt-000000"]
    assert manifest.valid_at_s > exp.clock.now  # still in flight

    discarded = exp.controller.discard_unlanded_write()
    assert discarded == "ckpt-000000"
    assert "ckpt-000000" not in exp.controller.manifests
    assert not exp.store.list_keys(checkpoint_prefix("job0", discarded))
    # Baseline rolled back: the next checkpoint re-takes a full one.
    exp.controller.coordinator.grant_interval(5)
    exp.trainer.train_interval(5)
    event = exp.controller.checkpoint()
    assert event.manifest is not None
    assert event.manifest.kind == KIND_FULL

    # Once a write has landed it is not discardable.
    exp.clock.advance_to(event.manifest.valid_at_s + 1.0, "drain")
    assert exp.controller.discard_unlanded_write() is None
    assert event.manifest.checkpoint_id in exp.controller.manifests


def test_scratch_restart_forgets_previous_checkpoint_state():
    """A from-scratch recovery must not keep baselines or manifests
    from the job's previous life (they describe pre-restart weights)."""
    exp = build_experiment(
        small_config(
            policy="one_shot",
            quantizer="none",
            interval_batches=5,
            num_tables=2,
            rows_per_table=256,
            batch_size=32,
        )
    )
    exp.controller.run_intervals(2)  # full + one increment
    assert exp.controller._current_base_id is not None
    forgotten = exp.controller.reset_for_scratch_restart()
    assert set(forgotten) == {"ckpt-000000", "ckpt-000001"}
    assert exp.controller.manifests == {}
    assert exp.controller._current_base_id is None
    assert exp.controller.interval_index == 0
    # The next checkpoint after the scratch restart is a fresh full.
    exp.controller.coordinator.grant_interval(5)
    exp.trainer.train_interval(5)
    event = exp.controller.checkpoint()
    assert event.manifest is not None
    assert event.manifest.kind == KIND_FULL
    assert event.manifest.base_id is None


def test_two_snapshots_are_independent():
    exp = build_experiment(
        small_config(
            quantizer="none",
            interval_batches=3,
            num_tables=2,
            rows_per_table=256,
            batch_size=32,
        )
    )
    manager = SnapshotManager(exp.trainer, exp.clock)
    exp.controller.coordinator.grant_interval(3)
    exp.trainer.train_interval(3)
    first = manager.take_snapshot(
        0, exp.controller.tracker_set, exp.reader.collect_state()
    )
    exp.controller.coordinator.resume()
    exp.controller.coordinator.grant_interval(3)
    exp.trainer.train_interval(3)
    second = manager.take_snapshot(
        1, exp.controller.tracker_set, exp.reader.collect_state()
    )
    shard_id = next(iter(first.shards))
    assert not np.array_equal(
        first.shards[shard_id].weight, second.shards[shard_id].weight
    )
    first.release(exp.trainer)
    second.release(exp.trainer)
    assert manager.snapshots_taken == 2
