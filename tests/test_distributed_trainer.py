"""Unit tests for the synchronous hybrid-parallel trainer simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ClusterConfig, ReaderConfig
from repro.data.reader import ReaderMaster
from repro.distributed.clock import SimClock
from repro.distributed.sharding import plan_auto
from repro.distributed.topology import SimCluster
from repro.distributed.trainer import SimTrainer
from repro.errors import TrainingError
from repro.model.dlrm import DLRM


@pytest.fixture
def wired(tiny_model_config, tiny_dataset):
    clock = SimClock()
    model = DLRM(tiny_model_config)
    reader = ReaderMaster(tiny_dataset, ReaderConfig(coordinated=True))
    cluster = SimCluster(ClusterConfig(num_nodes=2, devices_per_node=2))
    plan = plan_auto(tiny_model_config, cluster)
    trainer = SimTrainer(model, reader, cluster, plan, clock)
    return clock, model, reader, trainer


class TestTraining:
    def test_one_batch_advances_clock(self, wired):
        clock, _, reader, trainer = wired
        reader.begin_interval(1)
        trainer.train_one_batch()
        assert clock.now > 0.0
        assert clock.total("compute") > 0.0
        assert clock.total("allreduce") > 0.0
        assert clock.total("alltoall") > 0.0

    def test_interval_report(self, wired):
        _, model, reader, trainer = wired
        reader.begin_interval(5)
        report = trainer.train_interval(5)
        assert report.batches == 5
        assert report.samples == 5 * 16
        assert report.train_time_s > 0
        assert model.batches_trained == 5

    def test_interval_needs_positive_batches(self, wired):
        _, _, _, trainer = wired
        with pytest.raises(TrainingError):
            trainer.train_interval(0)

    def test_step_hooks_invoked(self, wired):
        _, _, reader, trainer = wired
        calls = []
        trainer.register_step_hook(
            lambda result, batch: calls.append(batch.batch_index)
        )
        reader.begin_interval(3)
        trainer.train_interval(3)
        assert calls == [0, 1, 2]

    def test_throughput_positive(self, wired):
        _, _, reader, trainer = wired
        reader.begin_interval(2)
        trainer.train_interval(2)
        assert trainer.throughput_qps() > 0


class TestMemoryAccounting:
    def test_dense_replicas_allocated_everywhere(
        self, tiny_model_config, tiny_dataset
    ):
        clock = SimClock()
        model = DLRM(tiny_model_config)
        reader = ReaderMaster(tiny_dataset, ReaderConfig())
        cluster = SimCluster(
            ClusterConfig(num_nodes=1, devices_per_node=2)
        )
        plan = plan_auto(tiny_model_config, cluster)
        SimTrainer(model, reader, cluster, plan, clock)
        dense = sum(a.nbytes for a in model.dense_parameters().values())
        for device in cluster.all_devices():
            assert device.allocated_bytes >= dense


class TestStateAccess:
    def test_shard_views_are_live(self, wired):
        _, model, reader, trainer = wired
        shard = trainer.plan.shards[0]
        view = trainer.shard_weight(shard)
        view[0, 0] = 123.0
        assert (
            model.table_weight(shard.table_id)[shard.row_start, 0] == 123.0
        )

    def test_node_snapshot_bytes(self, wired):
        _, model, _, trainer = wired
        dense = sum(a.nbytes for a in model.dense_parameters().values())
        total = sum(
            trainer.node_snapshot_bytes(n)
            for n in range(len(trainer.cluster.nodes))
        )
        assert total == trainer.plan.total_state_bytes + dense

    def test_progress(self, wired):
        clock, _, reader, trainer = wired
        reader.begin_interval(2)
        trainer.train_interval(2)
        progress = trainer.progress()
        assert progress.batches_trained == 2
        assert progress.sim_time_s == clock.now


class TestTrackingOverheadModel:
    def test_tracking_exposed_time_small(self, wired):
        """Tracking hides in AlltoAll; exposed share stays ~1%."""
        _, _, reader, trainer = wired
        reader.begin_interval(10)
        report = trainer.train_interval(10)
        assert report.tracking_exposed_s <= 0.02 * report.train_time_s

    def test_tracking_disabled_costs_nothing(
        self, tiny_model_config, tiny_dataset
    ):
        clock = SimClock()
        model = DLRM(tiny_model_config)
        reader = ReaderMaster(
            tiny_dataset, ReaderConfig(coordinated=True)
        )
        cluster = SimCluster(
            ClusterConfig(num_nodes=1, devices_per_node=2)
        )
        plan = plan_auto(tiny_model_config, cluster)
        trainer = SimTrainer(
            model, reader, cluster, plan, clock, tracking_enabled=False
        )
        reader.begin_interval(3)
        report = trainer.train_interval(3)
        assert report.tracking_exposed_s == 0.0
