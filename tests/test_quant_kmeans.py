"""Unit tests for k-means (non-uniform) quantization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant import mean_l2_error
from repro.quant.kmeans import KMeansQuantizer, kmeans_rows
from repro.quant.uniform import AsymmetricQuantizer


class TestKMeansRows:
    def test_separable_clusters_found_exactly(self, rng):
        """Two well-separated value groups per row -> zero error at k=2."""
        rows = 32
        low = rng.normal(0.0, 0.001, size=(rows, 8))
        high = rng.normal(5.0, 0.001, size=(rows, 8))
        x = np.concatenate([low, high], axis=1).astype(np.float32)
        codes, book = kmeans_rows(
            x, k=2, iterations=15, rng=np.random.default_rng(0)
        )
        recon = np.take_along_axis(book, codes.astype(np.int64), axis=1)
        assert np.abs(recon - x).max() < 0.01

    def test_k_at_least_n_gives_near_zero_error(self, rng):
        x = rng.normal(size=(16, 4)).astype(np.float32)
        codes, book = kmeans_rows(
            x, k=8, iterations=15, rng=np.random.default_rng(0)
        )
        recon = np.take_along_axis(book, codes.astype(np.int64), axis=1)
        assert np.abs(recon - x).max() < 1e-4

    def test_invalid_args(self, rng):
        x = rng.normal(size=(4, 4)).astype(np.float32)
        with pytest.raises(QuantizationError, match="k must"):
            kmeans_rows(x, 0, 5, np.random.default_rng(0))
        with pytest.raises(QuantizationError, match="iterations"):
            kmeans_rows(x, 2, 0, np.random.default_rng(0))


class TestKMeansQuantizer:
    def test_roundtrip_shape(self, trained_tensor):
        out = KMeansQuantizer(2, iterations=5).roundtrip(trained_tensor)
        assert out.shape == trained_tensor.shape

    def test_beats_asymmetric_on_multimodal_rows(self, rng):
        """Fig 9: non-uniform quantization wins when values cluster."""
        low = rng.normal(-0.5, 0.01, size=(128, 8))
        high = rng.normal(0.5, 0.01, size=(128, 8))
        x = np.concatenate([low, high], axis=1).astype(np.float32)
        asym = mean_l2_error(x, AsymmetricQuantizer(2).roundtrip(x))
        km = mean_l2_error(
            x, KMeansQuantizer(2, iterations=15).roundtrip(x)
        )
        assert km < asym / 2

    def test_codebook_param_shape(self, trained_tensor):
        qt = KMeansQuantizer(3, iterations=3).quantize(trained_tensor)
        assert qt.params["codebook"].shape == (
            trained_tensor.shape[0],
            8,
        )

    def test_row_batching_equivalent(self, trained_tensor):
        """Batch size is an implementation detail, not a result change."""
        small = KMeansQuantizer(2, iterations=5, row_batch=16, seed=3)
        large = KMeansQuantizer(2, iterations=5, row_batch=4096, seed=3)
        a = small.roundtrip(trained_tensor[:64])
        b = large.roundtrip(trained_tensor[:64])
        # Same seed stream order differs across batching, so compare
        # quality rather than exact codes.
        err_a = mean_l2_error(trained_tensor[:64], a)
        err_b = mean_l2_error(trained_tensor[:64], b)
        assert err_a == pytest.approx(err_b, rel=0.5)

    def test_determinism_with_seed(self, trained_tensor):
        q1 = KMeansQuantizer(2, iterations=5, seed=42)
        q2 = KMeansQuantizer(2, iterations=5, seed=42)
        a = q1.quantize(trained_tensor[:64])
        b = q2.quantize(trained_tensor[:64])
        np.testing.assert_array_equal(a.codes, b.codes)

    def test_is_much_slower_than_uniform(self, trained_tensor):
        """The paper's rejection argument, measured for real."""
        import time

        x = trained_tensor
        t0 = time.perf_counter()
        AsymmetricQuantizer(4).quantize(x)
        t_asym = time.perf_counter() - t0
        t0 = time.perf_counter()
        KMeansQuantizer(4, iterations=15).quantize(x)
        t_kmeans = time.perf_counter() - t0
        assert t_kmeans > 3 * t_asym

    def test_invalid_constructor(self):
        with pytest.raises(QuantizationError):
            KMeansQuantizer(4, iterations=0)
        with pytest.raises(QuantizationError):
            KMeansQuantizer(4, row_batch=0)
