"""Unit tests for the Check-N-Run controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CheckpointConfig, StorageConfig
from repro.core.controller import (
    OVERLAP_CANCEL_PREVIOUS,
    OVERLAP_SKIP_NEW,
    CheckNRun,
)
from repro.core.manifest import KIND_FULL, KIND_INCREMENTAL
from repro.errors import CheckpointError, CheckpointNotFoundError
from repro.experiments import build_experiment, small_config


class TestIntervalLoop:
    def test_first_checkpoint_is_full(self, tiny_experiment):
        exp = tiny_experiment
        exp.controller.run_intervals(1)
        events = exp.controller.stats.events
        assert events[0].manifest.kind == KIND_FULL

    def test_intermittent_takes_increments_then_refreshes(self):
        exp = build_experiment(
            small_config(
                policy="intermittent",
                num_tables=4,
                rows_per_table=8192,
                interval_batches=10,
                batch_size=64,
            )
        )
        exp.controller.run_intervals(8)
        kinds = [
            e.manifest.kind
            for e in exp.controller.stats.events
            if e.manifest
        ]
        assert kinds[0] == KIND_FULL
        assert KIND_INCREMENTAL in kinds[1:]

    def test_full_policy_all_full(self):
        exp = build_experiment(small_config(policy="full"))
        exp.controller.run_intervals(3)
        assert all(
            e.manifest.kind == KIND_FULL
            for e in exp.controller.stats.events
        )

    def test_consecutive_chains_to_previous(self):
        exp = build_experiment(small_config(policy="consecutive"))
        exp.controller.run_intervals(3)
        manifests = sorted(
            exp.controller.manifests.values(),
            key=lambda m: m.interval_index,
        )
        assert manifests[1].base_id == manifests[0].checkpoint_id
        assert manifests[2].base_id == manifests[1].checkpoint_id

    def test_one_shot_increments_point_at_baseline(self):
        exp = build_experiment(
            small_config(policy="one_shot", rows_per_table=8192)
        )
        exp.controller.run_intervals(3)
        manifests = sorted(
            exp.controller.manifests.values(),
            key=lambda m: m.interval_index,
        )
        base_id = manifests[0].checkpoint_id
        assert all(m.base_id == base_id for m in manifests[1:])

    def test_consecutive_increment_sizes_stay_flat(self):
        """Fig 15: consecutive increments are roughly constant size
        while one-shot increments grow."""
        consecutive = build_experiment(
            small_config(
                policy="consecutive",
                rows_per_table=16384,
                interval_batches=10,
            )
        )
        consecutive.controller.run_intervals(5)
        sizes = [
            e.report.logical_bytes
            for e in consecutive.controller.stats.events[1:]
            if e.report
        ]
        assert max(sizes) < 2.0 * min(sizes)

    def test_stall_fraction_accounted(self, tiny_experiment):
        exp = tiny_experiment
        exp.controller.run_intervals(2)
        assert 0 < exp.controller.stall_fraction() < 1

    def test_interval_counter_advances(self, tiny_experiment):
        exp = tiny_experiment
        exp.controller.run_intervals(3)
        assert exp.controller.interval_index == 3

    def test_zero_intervals_rejected(self, tiny_experiment):
        with pytest.raises(CheckpointError):
            tiny_experiment.controller.run_intervals(0)


class TestOverlapHandling:
    def _slow_store_config(self) -> StorageConfig:
        # So slow that one checkpoint write outlasts a whole interval.
        return StorageConfig(write_bandwidth=2_000.0, latency_s=0.0)

    def test_skip_new_on_overlap(self):
        config = small_config(interval_batches=3).with_overrides(
            storage=self._slow_store_config()
        )
        exp = build_experiment(config, overlap_action=OVERLAP_SKIP_NEW)
        exp.controller.run_intervals(3)
        assert exp.controller.stats.checkpoints_skipped >= 1

    def test_cancel_previous_on_overlap(self):
        config = small_config(interval_batches=3).with_overrides(
            storage=self._slow_store_config()
        )
        exp = build_experiment(
            config, overlap_action=OVERLAP_CANCEL_PREVIOUS
        )
        exp.controller.run_intervals(3)
        assert exp.controller.stats.checkpoints_cancelled >= 1
        # Cancelled checkpoints leave no objects behind.
        for event in exp.controller.stats.events:
            if event.action == "written" and event.manifest:
                continue
        remaining_ids = set(exp.controller.manifests)
        for key in exp.store.list_keys("job0/"):
            ckpt_id = key.split("/")[1]
            assert ckpt_id in remaining_ids

    def test_unknown_overlap_action_rejected(self, tiny_experiment):
        with pytest.raises(CheckpointError, match="overlap"):
            CheckNRun(
                tiny_experiment.trainer,
                tiny_experiment.reader,
                tiny_experiment.store,
                CheckpointConfig(),
                tiny_experiment.clock,
                overlap_action="wait",
            )


class TestRestoreFlow:
    def test_restore_latest_resumes_training(self, tiny_experiment):
        exp = tiny_experiment
        exp.controller.run_intervals(3)
        # Let the last write land.
        exp.clock.advance(1000.0, "drain")
        exp.model.reinitialize()
        report = exp.controller.restore_latest()
        assert exp.model.batches_trained == 15
        assert exp.controller.stats.restores == 1
        exp.controller.run_intervals(1)
        assert exp.model.batches_trained == 20

    def test_restore_without_checkpoints_raises(self, tiny_experiment):
        with pytest.raises(CheckpointNotFoundError):
            tiny_experiment.controller.restore_latest()

    def test_restore_skips_in_flight_checkpoint(self, tiny_experiment):
        exp = tiny_experiment
        exp.controller.run_intervals(2)
        # Immediately after the trigger the 2nd write is still in
        # flight; only the 1st (or none) is valid.
        valid = exp.controller.valid_manifests()
        all_manifests = exp.controller.manifests
        assert len(valid) < len(all_manifests)

    def test_tracker_rebuilt_after_restore_one_shot(self):
        exp = build_experiment(
            small_config(policy="one_shot", rows_per_table=4096)
        )
        exp.controller.run_intervals(3)
        exp.clock.advance(1000.0, "drain")
        exp.controller.restore_latest()
        # The restored increment's rows are re-marked so the next
        # increment still covers everything since the baseline.
        assert exp.controller.tracker_set.modified_rows > 0

    def test_dynamic_bitwidth_records_restore(self):
        exp = build_experiment(small_config(bit_width=None))
        exp.controller.run_intervals(2)
        exp.clock.advance(1000.0, "drain")
        before = exp.controller.bitwidth.observed
        exp.controller.restore_latest()
        assert exp.controller.bitwidth.observed == before + 1


class TestQuantizerSelection:
    def test_adaptive_downgrades_to_asymmetric_at_8bit(self):
        exp = build_experiment(
            small_config(quantizer="adaptive", bit_width=8)
        )
        quantizer = exp.controller._build_quantizer()
        assert quantizer.name == "asymmetric"

    def test_adaptive_kept_at_4bit(self):
        exp = build_experiment(
            small_config(quantizer="adaptive", bit_width=4)
        )
        assert exp.controller._build_quantizer().name == "adaptive"

    def test_dynamic_width_follows_expected_restores(self):
        config = small_config(bit_width=None)
        config = config.with_overrides(
            checkpoint=CheckpointConfig(
                interval_batches=config.checkpoint.interval_batches,
                policy=config.checkpoint.policy,
                quantizer=config.checkpoint.quantizer,
                bit_width=None,
                expected_restores=10,
            )
        )
        exp = build_experiment(config)
        assert exp.controller.current_bit_width() == 4


class TestRetentionIntegration:
    def test_old_checkpoints_deleted(self):
        exp = build_experiment(small_config(policy="full", keep_last=2))
        exp.controller.run_intervals(5)
        assert len(exp.controller.manifests) <= 3  # 2 kept + in-flight

    def test_baseline_survives_while_increment_retained(self):
        exp = build_experiment(
            small_config(policy="one_shot", keep_last=1)
        )
        exp.controller.run_intervals(4)
        manifests = exp.controller.manifests
        newest = max(
            manifests.values(), key=lambda m: m.interval_index
        )
        if newest.kind == KIND_INCREMENTAL:
            assert newest.base_id in manifests
