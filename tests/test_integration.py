"""Integration tests: whole-system behaviour across subsystems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ReaderConfig
from repro.core.manifest import KIND_FULL, KIND_INCREMENTAL
from repro.experiments import build_experiment, small_config
from repro.failures import ExponentialFailures, FailureInjector
from repro.metrics.accuracy import evaluate


def drain(exp) -> None:
    """Advance the clock past all in-flight background writes."""
    exp.clock.advance_to(exp.store.timeline.free_at + 1.0, "drain")


class TestEndToEnd:
    def test_crash_restore_bitexact_with_fp32(self):
        """With the 'none' quantizer a restore is bit-exact: the resumed
        run continues exactly where the original would have."""
        exp = build_experiment(
            small_config(quantizer="none", policy="intermittent")
        )
        exp.controller.run_intervals(3)
        drain(exp)
        expected = {
            t: exp.model.table_weight(t).copy()
            for t in range(exp.model.num_tables)
        }
        exp.model.reinitialize()
        exp.controller.restore_latest()
        for t in range(exp.model.num_tables):
            np.testing.assert_array_equal(
                exp.model.table_weight(t), expected[t]
            )

    def test_restored_run_trains_same_batches(self):
        """Resume must continue the dataset at the exact batch: no
        sample trained twice, none skipped (paper section 4.1)."""
        exp = build_experiment(small_config(quantizer="none"))
        exp.controller.run_intervals(2)
        drain(exp)
        seen: list[int] = []
        exp.trainer.register_step_hook(
            lambda result, batch: seen.append(batch.batch_index)
        )
        exp.controller.restore_latest()
        exp.controller.run_intervals(1)
        interval = exp.config.checkpoint.interval_batches
        assert seen == list(range(2 * interval, 3 * interval))

    def test_divergence_free_resume_fp32(self):
        """A crash-restored fp32 run reaches the same weights as an
        uninterrupted run over the same data."""
        config = small_config(quantizer="none", interval_batches=10)
        straight = build_experiment(config)
        straight.controller.run_intervals(3)

        crashed = build_experiment(config)
        crashed.controller.run_intervals(2)
        drain(crashed)
        crashed.model.reinitialize()
        crashed.controller.restore_latest()
        crashed.controller.run_intervals(1)

        for t in range(straight.model.num_tables):
            np.testing.assert_allclose(
                straight.model.table_weight(t),
                crashed.model.table_weight(t),
                atol=1e-6,
            )

    def test_quantized_restore_within_accuracy_budget(self):
        """A single 4-bit restore must not measurably damage model
        quality (the Fig 14 regime for few restores)."""
        config = small_config(quantizer="adaptive", bit_width=4,
                              interval_batches=15)
        baseline = build_experiment(config)
        baseline.controller.run_intervals(4)

        restored = build_experiment(config)
        restored.controller.run_intervals(2)
        drain(restored)
        restored.model.reinitialize()
        restored.controller.restore_latest()
        restored.controller.run_intervals(2)

        eval_batches = baseline.dataset.eval_batches(8)
        base_eval = evaluate(baseline.model, eval_batches)
        rest_eval = evaluate(restored.model, eval_batches)
        # Continued training absorbs the quantization noise almost
        # entirely; NE must agree to well under a percent.
        assert rest_eval.normalized_entropy == pytest.approx(
            base_eval.normalized_entropy, rel=0.01
        )


class TestPolicyBehaviour:
    @pytest.mark.parametrize(
        "policy", ["full", "one_shot", "consecutive", "intermittent"]
    )
    def test_every_policy_restores_correctly(self, policy):
        exp = build_experiment(
            small_config(policy=policy, quantizer="none")
        )
        exp.controller.run_intervals(4)
        drain(exp)
        expected = exp.model.table_weight(0).copy()
        batches = exp.model.batches_trained
        exp.model.reinitialize()
        report = exp.controller.restore_latest()
        np.testing.assert_array_equal(
            exp.model.table_weight(0), expected
        )
        assert exp.model.batches_trained == batches
        if policy == "consecutive":
            assert len(report.chain_ids) >= 2

    def test_incremental_policies_write_fewer_bytes_than_full(self):
        totals = {}
        for policy in ("full", "intermittent", "consecutive"):
            exp = build_experiment(
                small_config(
                    policy=policy,
                    quantizer="none",
                    rows_per_table=16384,
                    interval_batches=10,
                )
            )
            exp.controller.run_intervals(5)
            totals[policy] = exp.controller.stats.bytes_written_logical
        assert totals["intermittent"] < totals["full"]
        assert totals["consecutive"] < totals["full"]

    def test_one_shot_increment_sizes_grow(self):
        exp = build_experiment(
            small_config(
                policy="one_shot",
                quantizer="none",
                rows_per_table=32768,
                interval_batches=10,
            )
        )
        exp.controller.run_intervals(5)
        sizes = [
            e.report.logical_bytes
            for e in exp.controller.stats.events
            if e.manifest and e.manifest.kind == KIND_INCREMENTAL
        ]
        assert sizes == sorted(sizes)  # monotone non-decreasing


class TestFailureRecoveryLoop:
    def test_training_completes_under_repeated_failures(self):
        exp = build_experiment(
            small_config(
                interval_batches=5,
                num_tables=2,
                rows_per_table=512,
                batch_size=32,
                quantizer="asymmetric",
                bit_width=8,
            )
        )
        injector = FailureInjector(
            exp.controller, ExponentialFailures(2.0), seed=21
        )
        report = injector.run(target_intervals=8)
        assert report.completed_intervals == 8
        assert report.failures >= 1
        # Effective progress equals the full target.
        assert exp.model.batches_trained == 8 * 5

    def test_more_frequent_checkpoints_waste_less(self):
        wasted = {}
        for interval in (2, 10):
            exp = build_experiment(
                small_config(
                    interval_batches=interval,
                    num_tables=2,
                    rows_per_table=512,
                    batch_size=32,
                )
            )
            injector = FailureInjector(
                exp.controller, ExponentialFailures(3.0), seed=7
            )
            report = injector.run(target_intervals=20 // interval * 2)
            wasted[interval] = report.wasted_batches / max(
                1, report.failures
            )
        assert wasted[2] <= wasted[10]


class TestReaderGapScenario:
    def test_uncoordinated_resume_skips_samples(self):
        """Ablation a03: without the coordination protocol, resuming
        from a checkpoint loses the in-flight batches."""
        config = small_config().with_overrides(
            reader=ReaderConfig(
                num_workers=2, prefetch_depth=6, coordinated=False
            )
        )
        exp = build_experiment(config)
        trained: list[int] = []
        exp.trainer.register_step_hook(
            lambda result, batch: trained.append(batch.batch_index)
        )
        for _ in range(10):
            exp.trainer.train_one_batch()
        state = exp.reader.collect_state()
        assert state.in_flight > 0
        exp.reader.restore(state)
        resumed_first = exp.reader.next_batch().batch_index
        skipped = resumed_first - (trained[-1] + 1)
        assert skipped > 0  # samples lost forever

    def test_coordinated_resume_is_seamless(self):
        exp = build_experiment(small_config())
        exp.controller.coordinator.grant_interval(10)
        trained: list[int] = []
        exp.trainer.register_step_hook(
            lambda result, batch: trained.append(batch.batch_index)
        )
        exp.trainer.train_interval(10)
        state = exp.controller.coordinator.collect_state()
        exp.reader.restore(state)
        exp.controller.coordinator.grant_interval(1)
        assert exp.reader.next_batch().batch_index == trained[-1] + 1


class TestStorageIntegration:
    def test_checkpoints_share_store_capacity_accounting(self):
        exp = build_experiment(
            small_config(policy="consecutive", keep_last=100)
        )
        exp.controller.run_intervals(4)
        stats = exp.store.stats()
        assert stats.live_logical_bytes > 0
        assert (
            stats.total_bytes_written
            >= stats.live_physical_bytes
        )

    def test_replication_multiplies_physical_bytes(self):
        exp = build_experiment(small_config())
        exp.controller.run_intervals(1)
        stats = exp.store.stats()
        factor = exp.config.storage.replication_factor
        assert stats.live_physical_bytes == (
            stats.live_logical_bytes * factor
        )
