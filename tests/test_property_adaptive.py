"""Property-based tests on the adaptive greedy range search."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant.adaptive import greedy_range_search
from repro.quant.uniform import quantization_l2_per_row

tensors = hnp.arrays(
    np.float32,
    st.tuples(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=2, max_value=16),
    ),
    elements=st.floats(
        min_value=-10.0, max_value=10.0, width=32,
        allow_nan=False, allow_infinity=False,
    ),
)


@given(
    tensor=tensors,
    bits=st.sampled_from([2, 3, 4]),
    num_bins=st.integers(min_value=1, max_value=30),
    ratio=st.floats(min_value=0.05, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_search_never_loses_to_naive(tensor, bits, num_bins, ratio):
    """The untightened range is always a candidate, so the searched
    error can never exceed the naive asymmetric error."""
    xmin = tensor.min(axis=1).astype(np.float32)
    xmax = tensor.max(axis=1).astype(np.float32)
    naive = quantization_l2_per_row(tensor, xmin, xmax, bits)
    result = greedy_range_search(tensor, bits, num_bins, ratio)
    assert np.all(result.errors <= naive + 1e-6)


@given(
    tensor=tensors,
    bits=st.sampled_from([2, 4]),
    num_bins=st.integers(min_value=2, max_value=25),
)
@settings(max_examples=60, deadline=None)
def test_searched_bounds_stay_inside_original_range(
    tensor, bits, num_bins
):
    result = greedy_range_search(tensor, bits, num_bins, 1.0)
    row_min = tensor.min(axis=1)
    row_max = tensor.max(axis=1)
    assert np.all(result.xmin >= row_min - 1e-5)
    assert np.all(result.xmax <= row_max + 1e-5)
    assert np.all(result.xmax >= result.xmin - 1e-6)


@given(
    tensor=tensors,
    bits=st.sampled_from([2, 3]),
    num_bins=st.integers(min_value=2, max_value=20),
)
@settings(max_examples=40, deadline=None)
def test_reported_error_matches_reported_bounds(tensor, bits, num_bins):
    """The search's error output must equal re-quantizing with the
    bounds it returned (no stale-state bugs)."""
    result = greedy_range_search(tensor, bits, num_bins, 1.0)
    recomputed = quantization_l2_per_row(
        tensor, result.xmin, result.xmax, bits
    )
    np.testing.assert_allclose(
        result.errors, recomputed, rtol=1e-5, atol=1e-6
    )


@given(tensor=tensors, bits=st.sampled_from([2, 4]))
@settings(max_examples=40, deadline=None)
def test_search_deterministic(tensor, bits):
    a = greedy_range_search(tensor, bits, 10, 1.0)
    b = greedy_range_search(tensor, bits, 10, 1.0)
    np.testing.assert_array_equal(a.xmin, b.xmin)
    np.testing.assert_array_equal(a.xmax, b.xmax)
