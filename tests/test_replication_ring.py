"""Property-based invariants for the bounded peer-memory delta ring.

The ring's contract (``repro.replication.ring``) is payload-agnostic:
anchors expose ``apply``/``copy``/``step`` and deltas expose ``step``,
so these tests drive it with dict-backed fakes and check the structural
invariants the replication tier leans on:

* **fold equivalence** — ``materialize()`` equals the initial anchor
  with every committed delta applied in commit order, *no matter where
  eviction folded the log* (randomized sizes and capacities);
* **bounded log** — ``used_bytes`` never exceeds capacity and always
  equals the sum of logged entries;
* **two-phase append** — an aborted reservation leaves the replica
  bit-identical to its pre-reserve state (partial sends vanish);
* **monotonic contiguity** — commits must strictly advance the replica
  step, so a forked or replayed delta log fails loudly;
* **fold-through** — a delta larger than the whole budget applies
  straight to the anchor and the ring stays consistent.

Property loops are hand-rolled over ``random.Random`` seeds (no
external property-testing dependency).
"""

from __future__ import annotations

import random

import pytest

from repro.errors import ReplicationError
from repro.replication import MemoryRing


class FakeDelta:
    """Dict payload + the ``step`` attribute the ring contract needs."""

    def __init__(self, step: int, data: dict):
        self.step = step
        self.data = data


class FakeAnchor:
    """Dict-backed anchor implementing apply/copy/step."""

    def __init__(self, step: int = 0, data: dict | None = None):
        self.step = step
        self.data = dict(data or {})

    def apply(self, delta: FakeDelta) -> None:
        self.data.update(delta.data)
        self.step = delta.step

    def copy(self) -> "FakeAnchor":
        return FakeAnchor(self.step, dict(self.data))


def make_ring(capacity: int = 100) -> MemoryRing:
    return MemoryRing(
        owner_id="owner",
        host_id="host",
        capacity_bytes=capacity,
        anchor=FakeAnchor(step=0, data={"init": 0}),
    )


def reference_state(committed: list[FakeDelta]) -> dict:
    """Ground truth: initial anchor + every committed delta in order."""
    state = {"init": 0}
    for delta in committed:
        state.update(delta.data)
    return state


class TestRingBasics:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ReplicationError):
            make_ring(capacity=0)

    def test_rejects_negative_reservation(self):
        ring = make_ring()
        with pytest.raises(ReplicationError):
            ring.reserve(-1)

    def test_commit_appends_and_advances_step(self):
        ring = make_ring()
        reservation = ring.reserve(10)
        ring.commit(reservation, FakeDelta(1, {"k1": 1}))
        assert ring.depth == 1
        assert ring.last_step == 1
        assert ring.used_bytes == 10
        assert ring.materialize().data == {"init": 0, "k1": 1}
        ring.check_invariants()

    def test_commit_requires_strictly_increasing_steps(self):
        ring = make_ring()
        ring.commit(ring.reserve(5), FakeDelta(3, {"a": 1}))
        for stale_step in (3, 2, 0):
            with pytest.raises(ReplicationError):
                ring.commit(
                    ring.reserve(5), FakeDelta(stale_step, {"b": 2})
                )
        # The failed commits closed their reservations; a fresh append
        # at a later step still lands.
        ring.commit(ring.reserve(5), FakeDelta(4, {"b": 2}))
        assert ring.last_step == 4

    def test_reservation_cannot_close_twice(self):
        ring = make_ring()
        reservation = ring.reserve(5)
        ring.commit(reservation, FakeDelta(1, {"a": 1}))
        with pytest.raises(ReplicationError):
            ring.commit(reservation, FakeDelta(2, {"a": 2}))
        with pytest.raises(ReplicationError):
            ring.abort(reservation)

    def test_abort_is_a_perfect_undo(self):
        ring = make_ring()
        ring.commit(ring.reserve(10), FakeDelta(1, {"a": 1}))
        before = ring.materialize().data
        before_step = ring.last_step
        before_used = ring.used_bytes
        ring.abort(ring.reserve(20))
        assert ring.materialize().data == before
        assert ring.last_step == before_step
        assert ring.used_bytes == before_used
        assert ring.aborts == 1
        ring.check_invariants()

    def test_eviction_folds_oldest_into_anchor(self):
        ring = make_ring(capacity=20)
        ring.commit(ring.reserve(10), FakeDelta(1, {"a": 1}))
        ring.commit(ring.reserve(10), FakeDelta(2, {"b": 2}))
        # A third 10-byte delta forces the oldest out — folded, not
        # dropped: the replica still contains every committed write.
        ring.commit(ring.reserve(10), FakeDelta(3, {"c": 3}))
        assert ring.depth == 2
        assert ring.evictions == 1
        assert ring.anchor.step == 1
        assert ring.materialize().data == {
            "init": 0, "a": 1, "b": 2, "c": 3,
        }
        ring.check_invariants()

    def test_fold_through_oversized_delta(self):
        ring = make_ring(capacity=10)
        reservation = ring.reserve(50)
        assert reservation.fold_through
        ring.commit(reservation, FakeDelta(1, {"big": 1}))
        assert ring.depth == 0  # never logged
        assert ring.used_bytes == 0
        assert ring.anchor.step == 1
        assert ring.last_step == 1
        assert ring.evictions == 1
        assert ring.materialize().data == {"init": 0, "big": 1}
        ring.check_invariants()

    def test_aborted_fold_through_leaves_anchor_alone(self):
        ring = make_ring(capacity=10)
        reservation = ring.reserve(50)
        ring.abort(reservation)
        assert ring.anchor.step == 0
        assert ring.used_bytes == 0
        ring.check_invariants()

    def test_rebase_folds_whole_log(self):
        ring = make_ring()
        ring.commit(ring.reserve(10), FakeDelta(1, {"a": 1}))
        ring.commit(ring.reserve(10), FakeDelta(2, {"b": 2}))
        expected = ring.materialize().data
        ring.rebase()
        assert ring.depth == 0
        assert ring.used_bytes == 0
        assert ring.anchor.step == 2
        assert ring.anchor.data == expected
        # Post-rebase appends continue from the folded step.
        ring.commit(ring.reserve(10), FakeDelta(3, {"c": 3}))
        assert ring.last_step == 3
        ring.check_invariants()


class TestRingProperties:
    """Randomized op sequences; every seed checks the full contract."""

    @pytest.mark.parametrize("seed", range(8))
    def test_fold_equivalence_under_random_traffic(self, seed):
        """materialize == anchor + committed deltas, for any eviction
        pattern random sizes/capacity produce."""
        rng = random.Random(seed)
        capacity = rng.randint(8, 120)
        ring = make_ring(capacity=capacity)
        committed: list[FakeDelta] = []
        step = 0
        for op_index in range(rng.randint(20, 60)):
            step += rng.randint(1, 3)
            nbytes = rng.randint(0, capacity + 30)
            delta = FakeDelta(
                step, {f"k{rng.randint(0, 9)}": op_index}
            )
            reservation = ring.reserve(nbytes)
            assert reservation.fold_through == (nbytes > capacity)
            if rng.random() < 0.2:
                ring.abort(reservation)
            else:
                ring.commit(reservation, delta)
                committed.append(delta)
            ring.check_invariants()
            assert ring.used_bytes <= capacity
            if rng.random() < 0.1:
                ring.rebase()
                ring.check_invariants()
                assert ring.depth == 0
        state = ring.materialize()
        assert state.data == reference_state(committed)
        if committed:
            assert ring.last_step == committed[-1].step
            assert state.step == committed[-1].step
        assert ring.commits == len(committed)

    @pytest.mark.parametrize("seed", range(4))
    def test_materialize_is_nondestructive(self, seed):
        rng = random.Random(seed)
        ring = make_ring(capacity=64)
        step = 0
        for i in range(15):
            step += 1
            ring.commit(
                ring.reserve(rng.randint(1, 30)),
                FakeDelta(step, {"k": i}),
            )
        first = ring.materialize().data
        second = ring.materialize().data
        assert first == second
        ring.check_invariants()

    @pytest.mark.parametrize("seed", range(4))
    def test_reserved_bytes_count_against_capacity(self, seed):
        """Open reservations squeeze the log like committed bytes do:
        committing after a competing reserve never over-fills."""
        rng = random.Random(seed)
        capacity = 50
        ring = make_ring(capacity=capacity)
        step = 0
        for _ in range(20):
            step += 1
            first = ring.reserve(rng.randint(5, 25))
            second = ring.reserve(rng.randint(5, 25))
            ring.commit(first, FakeDelta(step, {"a": step}))
            step += 1
            ring.commit(second, FakeDelta(step, {"b": step}))
            ring.check_invariants()
            assert ring.used_bytes <= capacity
