"""The documentation surface stays sound: links resolve, docs exist.

Guards the satellite promise of the docs PR — a README and docs pages
whose relative links cannot rot — by running the same checker CI uses
(:mod:`repro.tools.docscheck`) against the repository itself, plus unit
coverage of the checker's parsing and escape handling.
"""

from __future__ import annotations

from pathlib import Path

from repro.tools.clidoc import all_flags, render_cli_doc
from repro.tools.cli import build_parser
from repro.tools.docscheck import (
    check_cli_doc,
    check_file,
    check_tree,
    default_documents,
    iter_links,
    main,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestLinkParsing:
    def test_iter_links_finds_inline_targets(self):
        md = "See [a](docs/a.md) and ![img](x.png) but not `[b](c)`-ish"
        assert iter_links(md) == ["docs/a.md", "x.png", "c"]

    def test_external_and_anchor_links_are_skipped(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "[web](https://example.com) [mail](mailto:a@b.c) "
            "[anchor](#section)"
        )
        assert check_file(doc, tmp_path) == []

    def test_broken_relative_link_is_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("[missing](nope.md) [ok](doc.md)")
        assert check_file(doc, tmp_path) == ["nope.md"]

    def test_anchor_suffix_on_existing_file_resolves(self, tmp_path):
        (tmp_path / "other.md").write_text("# t")
        doc = tmp_path / "doc.md"
        doc.write_text("[sec](other.md#t)")
        assert check_file(doc, tmp_path) == []

    def test_link_escaping_the_repo_is_reported(self, tmp_path):
        root = tmp_path / "repo"
        root.mkdir()
        doc = root / "doc.md"
        doc.write_text("[up](../outside.md)")
        (tmp_path / "outside.md").write_text("exists but outside")
        broken = check_file(doc, root)
        assert broken and "escapes" in broken[0]


class TestRepositoryDocs:
    def test_readme_and_docs_exist(self):
        documents = {
            p.relative_to(REPO_ROOT).as_posix()
            for p in default_documents(REPO_ROOT)
        }
        assert "README.md" in documents
        assert "docs/architecture.md" in documents
        assert "docs/fleet.md" in documents
        assert "docs/restore.md" in documents
        assert "docs/cli.md" in documents

    def test_all_repository_doc_links_resolve(self):
        assert check_tree(REPO_ROOT) == {}

    def test_cli_entry_point_passes_on_this_repo(self, capsys):
        assert main(["--root", str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        assert "all resolve" in out

    def test_cli_reports_broken_links(self, tmp_path, capsys):
        (tmp_path / "README.md").write_text("[x](gone.md)")
        assert main(["--root", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "BROKEN LINK" in err


class TestCliReference:
    """docs/cli.md is generated from the parser and cannot drift."""

    def test_repo_cli_doc_covers_every_parser_flag(self):
        assert check_cli_doc(REPO_ROOT) == []

    def test_rendered_doc_contains_every_flag(self):
        rendered = render_cli_doc()
        for command, flags in all_flags(build_parser()).items():
            for flag in flags:
                assert flag in rendered, f"{command}: {flag} missing"

    def test_missing_flag_is_detected(self, tmp_path):
        """Removing one flag from the doc must fail the drift check —
        the guarantee tests/test_docs.py gives every future flag."""
        docs = tmp_path / "docs"
        docs.mkdir()
        stripped = render_cli_doc().replace("`--quota-bytes`", "`--qb`")
        (docs / "cli.md").write_text(stripped, encoding="utf-8")
        missing = check_cli_doc(tmp_path)
        assert missing[0] == "fleet: --quota-bytes"
        assert "stale" in missing[-1]

    def test_stale_doc_without_missing_flags_is_detected(self, tmp_path):
        """Removing a flag from the *parser* side of the contract —
        i.e. the doc still names a flag that no longer exists, or any
        help/default text changed — must fail as staleness even though
        every current flag is still documented."""
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "cli.md").write_text(
            render_cli_doc() + "\n| `--retired-flag` | unset | gone |\n",
            encoding="utf-8",
        )
        report = check_cli_doc(tmp_path)
        assert len(report) == 1 and "stale" in report[0]

    def test_flag_matching_is_whole_word(self, tmp_path):
        """A documented --admission-backlog-factor must not satisfy a
        missing --admission: prefixes match only as whole words."""
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "cli.md").write_text(
            "`--admission-backlog-factor` only", encoding="utf-8"
        )
        missing = check_cli_doc(tmp_path)
        assert "fleet: --admission" in missing
        assert "fleet: --admission-backlog-factor" not in missing

    def test_missing_doc_file_is_reported(self, tmp_path):
        report = check_cli_doc(tmp_path)
        assert len(report) == 1 and "missing" in report[0]

    def test_cli_entry_point_fails_on_drift(self, tmp_path, capsys):
        """docscheck's exit status covers the CLI reference too."""
        (tmp_path / "README.md").write_text("no links here")
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "cli.md").write_text(
            render_cli_doc().replace("`--quota-bytes`", "`--qb`"),
            encoding="utf-8",
        )
        assert main(["--root", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "UNDOCUMENTED CLI FLAG" in err
