"""The documentation surface stays sound: links resolve, docs exist.

Guards the satellite promise of the docs PR — a README and docs pages
whose relative links cannot rot — by running the same checker CI uses
(:mod:`repro.tools.docscheck`) against the repository itself, plus unit
coverage of the checker's parsing and escape handling.
"""

from __future__ import annotations

from pathlib import Path

from repro.tools.docscheck import (
    check_file,
    check_tree,
    default_documents,
    iter_links,
    main,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestLinkParsing:
    def test_iter_links_finds_inline_targets(self):
        md = "See [a](docs/a.md) and ![img](x.png) but not `[b](c)`-ish"
        assert iter_links(md) == ["docs/a.md", "x.png", "c"]

    def test_external_and_anchor_links_are_skipped(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "[web](https://example.com) [mail](mailto:a@b.c) "
            "[anchor](#section)"
        )
        assert check_file(doc, tmp_path) == []

    def test_broken_relative_link_is_reported(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("[missing](nope.md) [ok](doc.md)")
        assert check_file(doc, tmp_path) == ["nope.md"]

    def test_anchor_suffix_on_existing_file_resolves(self, tmp_path):
        (tmp_path / "other.md").write_text("# t")
        doc = tmp_path / "doc.md"
        doc.write_text("[sec](other.md#t)")
        assert check_file(doc, tmp_path) == []

    def test_link_escaping_the_repo_is_reported(self, tmp_path):
        root = tmp_path / "repo"
        root.mkdir()
        doc = root / "doc.md"
        doc.write_text("[up](../outside.md)")
        (tmp_path / "outside.md").write_text("exists but outside")
        broken = check_file(doc, root)
        assert broken and "escapes" in broken[0]


class TestRepositoryDocs:
    def test_readme_and_docs_exist(self):
        documents = {
            p.relative_to(REPO_ROOT).as_posix()
            for p in default_documents(REPO_ROOT)
        }
        assert "README.md" in documents
        assert "docs/architecture.md" in documents
        assert "docs/fleet.md" in documents

    def test_all_repository_doc_links_resolve(self):
        assert check_tree(REPO_ROOT) == {}

    def test_cli_entry_point_passes_on_this_repo(self, capsys):
        assert main(["--root", str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        assert "all resolve" in out

    def test_cli_reports_broken_links(self, tmp_path, capsys):
        (tmp_path / "README.md").write_text("[x](gone.md)")
        assert main(["--root", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "BROKEN LINK" in err
