"""Unit tests for the chunked frame format."""

from __future__ import annotations

import io

import pytest

from repro.errors import SerializationError
from repro.serialize.format import (
    FrameReader,
    FrameWriter,
    decode_frames,
    encode_frames,
)


class TestRoundTrip:
    def test_empty_chunk_list(self):
        meta, chunks = decode_frames(encode_frames({"a": 1}, []))
        assert meta == {"a": 1}
        assert chunks == []

    def test_single_chunk(self):
        blob = encode_frames({"id": "x"}, [(0, b"hello")])
        meta, chunks = decode_frames(blob)
        assert meta == {"id": "x"}
        assert len(chunks) == 1
        assert chunks[0].chunk_id == 0
        assert chunks[0].payload == b"hello"

    def test_many_chunks_preserve_order_and_ids(self):
        payloads = [(i, bytes([i]) * (i + 1)) for i in range(50)]
        _, chunks = decode_frames(encode_frames({}, payloads))
        assert [(c.chunk_id, c.payload) for c in chunks] == payloads

    def test_empty_payload_chunk(self):
        _, chunks = decode_frames(encode_frames({}, [(7, b"")]))
        assert chunks[0].payload == b""
        assert chunks[0].chunk_id == 7

    def test_large_payload(self):
        payload = bytes(range(256)) * 4096  # 1 MiB
        _, chunks = decode_frames(encode_frames({}, [(0, payload)]))
        assert chunks[0].payload == payload

    def test_unicode_metadata(self):
        meta_in = {"name": "tablé", "nested": {"k": [1, 2]}}
        meta, _ = decode_frames(encode_frames(meta_in, []))
        assert meta == meta_in


class TestWriterStateMachine:
    def test_chunk_before_header_rejected(self):
        writer = FrameWriter(io.BytesIO())
        with pytest.raises(SerializationError, match="header"):
            writer.write_chunk(0, b"x")

    def test_double_header_rejected(self):
        writer = FrameWriter(io.BytesIO())
        writer.write_header({})
        with pytest.raises(SerializationError, match="already"):
            writer.write_header({})

    def test_finish_before_header_rejected(self):
        writer = FrameWriter(io.BytesIO())
        with pytest.raises(SerializationError, match="header"):
            writer.finish()

    def test_write_after_finish_rejected(self):
        writer = FrameWriter(io.BytesIO())
        writer.write_header({})
        writer.finish()
        with pytest.raises(SerializationError, match="finished"):
            writer.write_chunk(0, b"x")

    def test_double_finish_rejected(self):
        writer = FrameWriter(io.BytesIO())
        writer.write_header({})
        writer.finish()
        with pytest.raises(SerializationError, match="finished"):
            writer.finish()

    def test_negative_chunk_id_rejected(self):
        writer = FrameWriter(io.BytesIO())
        writer.write_header({})
        with pytest.raises(SerializationError, match="out of range"):
            writer.write_chunk(-1, b"x")

    def test_bytes_written_accounting(self):
        buf = io.BytesIO()
        writer = FrameWriter(buf)
        writer.write_header({"k": "v"})
        writer.write_chunk(0, b"abc")
        writer.finish()
        assert writer.bytes_written == len(buf.getvalue())


class TestCorruptionDetection:
    def _blob(self) -> bytes:
        return encode_frames({"id": "t"}, [(0, b"payload-zero")])

    def test_bad_magic(self):
        blob = b"XXXX" + self._blob()[4:]
        with pytest.raises(SerializationError, match="magic"):
            decode_frames(blob)

    def test_flipped_payload_byte_fails_crc(self):
        blob = bytearray(self._blob())
        # Flip a byte inside the chunk payload (near the end, before
        # the end frame). Find the payload and corrupt its middle.
        idx = blob.find(b"payload-zero")
        blob[idx + 3] ^= 0xFF
        with pytest.raises(SerializationError, match="CRC"):
            decode_frames(bytes(blob))

    def test_truncated_stream(self):
        blob = self._blob()
        with pytest.raises(SerializationError, match="truncated"):
            decode_frames(blob[: len(blob) // 2])

    def test_truncated_header(self):
        with pytest.raises(SerializationError, match="truncated"):
            decode_frames(b"CN")

    def test_missing_end_frame(self):
        blob = self._blob()
        # Chop the end frame (12 bytes: magic + count + crc).
        with pytest.raises(SerializationError):
            decode_frames(blob[:-12])

    def test_corrupt_metadata_json(self):
        blob = bytearray(self._blob())
        # Metadata JSON begins right after magic+version+len (10 bytes).
        blob[10] = 0xFF
        with pytest.raises(SerializationError, match="metadata"):
            decode_frames(bytes(blob))

    def test_wrong_version(self):
        blob = bytearray(self._blob())
        blob[4:6] = (99).to_bytes(2, "big")
        with pytest.raises(SerializationError, match="version"):
            decode_frames(bytes(blob))


class TestStreamingReader:
    def test_iter_chunks_without_explicit_header_read(self):
        blob = encode_frames({"z": 1}, [(0, b"a"), (1, b"b")])
        reader = FrameReader(io.BytesIO(blob))
        chunks = list(reader.iter_chunks())  # header read implicitly
        assert [c.payload for c in chunks] == [b"a", b"b"]
