"""Unit tests: manifests, refresh predictors, checkpoint policies."""

from __future__ import annotations

import pytest

from repro.core.manifest import (
    KIND_FULL,
    KIND_INCREMENTAL,
    CheckpointManifest,
    ChunkRecord,
    ShardRecord,
    checkpoint_prefix,
    chunk_key,
    manifest_key,
)
from repro.core.policies import (
    ConsecutivePolicy,
    FullPolicy,
    IntermittentPolicy,
    OneShotPolicy,
    PolicyState,
    make_policy,
)
from repro.core.predictor import (
    HistoryPredictor,
    LinearTrendPredictor,
    make_predictor,
)
from repro.errors import (
    CheckpointCorruptError,
    CheckpointError,
    RestoreChainBrokenError,
)


def make_manifest(
    ckpt_id: str,
    kind: str = KIND_FULL,
    base: str | None = None,
    interval: int = 0,
) -> CheckpointManifest:
    return CheckpointManifest(
        checkpoint_id=ckpt_id,
        job_id="job0",
        kind=kind,
        base_id=base,
        interval_index=interval,
        policy="one_shot",
        quantizer="adaptive",
        bit_width=4,
        created_at_s=float(interval),
        valid_at_s=float(interval) + 0.5,
        shards=(
            ShardRecord(
                shard_id=0,
                table_id=0,
                row_start=0,
                row_end=10,
                chunks=(ChunkRecord("job0/x/chunk0", 10, 400),),
            ),
        ),
        dense_key="job0/x/dense.bin",
        dense_bytes=100,
    )


class TestManifest:
    def test_json_roundtrip(self):
        manifest = make_manifest("ckpt-1", KIND_INCREMENTAL, "ckpt-0", 3)
        out = CheckpointManifest.from_json(manifest.to_json())
        assert out == manifest

    def test_logical_bytes(self):
        manifest = make_manifest("c")
        assert manifest.logical_bytes == 500
        assert manifest.embedding_rows_stored == 10

    def test_incremental_requires_base(self):
        with pytest.raises(CheckpointCorruptError, match="base"):
            make_manifest("c", KIND_INCREMENTAL, base=None)

    def test_unknown_kind_rejected(self):
        with pytest.raises(CheckpointCorruptError, match="kind"):
            make_manifest("c", kind="diff")

    def test_corrupt_json_rejected(self):
        with pytest.raises(CheckpointCorruptError, match="JSON"):
            CheckpointManifest.from_json(b"{not json")

    def test_missing_field_rejected(self):
        with pytest.raises(CheckpointCorruptError, match="field"):
            CheckpointManifest.from_json("{}")

    def test_key_helpers(self):
        assert manifest_key("j", "c") == "j/c/manifest.json"
        assert chunk_key("j", "c", 2, 3) == "j/c/shard00002/chunk000003.bin"
        assert checkpoint_prefix("j", "c") == "j/c/"


class TestHistoryPredictor:
    def test_paper_rule_exact(self):
        """Fc = 1 + sum(Si); Ic = (i+1) * Si; full iff Fc <= Ic."""
        predictor = HistoryPredictor()
        # S = [0.25]: Fc = 1.25, Ic = 2*0.25 = 0.5 -> incremental.
        assert not predictor.should_take_full([0.25])
        # S grows to [0.25, 0.35, 0.45, 0.5]: Fc = 2.55, Ic = 5*0.5=2.5
        assert not predictor.should_take_full([0.25, 0.35, 0.45, 0.5])
        # One more: [0.25, 0.35, 0.45, 0.5, 0.52]: Fc=3.07, Ic=6*0.52=3.12
        assert predictor.should_take_full([0.25, 0.35, 0.45, 0.5, 0.52])

    def test_empty_history_stays_incremental(self):
        assert not HistoryPredictor().should_take_full([])

    def test_negative_size_rejected(self):
        with pytest.raises(CheckpointError):
            HistoryPredictor().should_take_full([-0.1])

    def test_flat_small_increments_never_refresh(self):
        predictor = HistoryPredictor()
        sizes: list[float] = []
        for _ in range(50):
            sizes.append(0.01)
            if predictor.should_take_full(sizes):
                break
        # Ic = (i+1)*0.01 needs ~100 intervals to reach Fc ~= 1.5.
        assert len(sizes) == 50


class TestLinearTrendPredictor:
    def test_falls_back_with_short_history(self):
        predictor = LinearTrendPredictor()
        assert not predictor.should_take_full([0.3])

    def test_growing_trend_triggers_earlier_than_history(self):
        """Extrapolation sees growth the last-size heuristic misses."""
        sizes = [0.1, 0.2, 0.3]
        # History: Fc = 1.6, Ic = 4 * 0.3 = 1.2 -> stays incremental.
        assert not HistoryPredictor().should_take_full(sizes)
        # Trend projects 0.4 + 0.5 + 0.6 + 0.7 = 2.2 >= 1.6 -> refresh.
        assert LinearTrendPredictor().should_take_full(sizes)

    def test_flat_trend_agrees_with_history(self):
        sizes = [0.3, 0.3, 0.3]
        assert LinearTrendPredictor().should_take_full(
            sizes
        ) == HistoryPredictor().should_take_full(sizes)

    def test_factory(self):
        assert make_predictor("history").name == "history"
        assert make_predictor("linear_trend").name == "linear_trend"
        with pytest.raises(CheckpointError):
            make_predictor("oracle")


class TestPolicies:
    def test_full_policy_always_full(self):
        policy = FullPolicy()
        for i in range(5):
            assert policy.decide(PolicyState(i, ())) == KIND_FULL
        assert policy.reset_tracker_after(KIND_FULL)

    def test_one_shot_full_then_incremental(self):
        policy = OneShotPolicy()
        assert policy.decide(PolicyState(0, ())) == KIND_FULL
        for i in range(1, 5):
            state = PolicyState(i, tuple([0.3] * i))
            assert policy.decide(state) == KIND_INCREMENTAL
        assert not policy.reset_tracker_after(KIND_INCREMENTAL)
        assert policy.reset_tracker_after(KIND_FULL)

    def test_consecutive_resets_every_time(self):
        policy = ConsecutivePolicy()
        assert policy.reset_tracker_after(KIND_INCREMENTAL)
        assert policy.reset_tracker_after(KIND_FULL)

    def test_intermittent_refreshes_baseline(self):
        policy = IntermittentPolicy()
        assert policy.decide(PolicyState(0, ())) == KIND_FULL
        assert (
            policy.decide(PolicyState(1, (0.25,))) == KIND_INCREMENTAL
        )
        # Large accumulated increments force a refresh.
        sizes = (0.5, 0.8, 0.9, 0.95)
        assert policy.decide(PolicyState(4, sizes)) == KIND_FULL

    def test_factory(self):
        for name in ("full", "one_shot", "consecutive", "intermittent"):
            assert make_policy(name).name == name
        with pytest.raises(CheckpointError):
            make_policy("magic")


class TestRestoreChains:
    def test_full_chain_is_single(self):
        manifests = {"a": make_manifest("a")}
        chain = FullPolicy().restore_chain(manifests["a"], manifests)
        assert [m.checkpoint_id for m in chain] == ["a"]

    def test_one_shot_chain_is_base_plus_target(self):
        manifests = {
            "a": make_manifest("a"),
            "b": make_manifest("b", KIND_INCREMENTAL, "a", 1),
            "c": make_manifest("c", KIND_INCREMENTAL, "a", 2),
        }
        chain = OneShotPolicy().restore_chain(manifests["c"], manifests)
        assert [m.checkpoint_id for m in chain] == ["a", "c"]

    def test_consecutive_chain_walks_all_links(self):
        manifests = {
            "a": make_manifest("a"),
            "b": make_manifest("b", KIND_INCREMENTAL, "a", 1),
            "c": make_manifest("c", KIND_INCREMENTAL, "b", 2),
            "d": make_manifest("d", KIND_INCREMENTAL, "c", 3),
        }
        chain = ConsecutivePolicy().restore_chain(
            manifests["d"], manifests
        )
        assert [m.checkpoint_id for m in chain] == ["a", "b", "c", "d"]

    def test_missing_base_detected(self):
        manifests = {
            "b": make_manifest("b", KIND_INCREMENTAL, "missing", 1)
        }
        with pytest.raises(RestoreChainBrokenError, match="missing"):
            OneShotPolicy().restore_chain(manifests["b"], manifests)

    def test_cycle_detected(self):
        manifests = {
            "a": make_manifest("a", KIND_INCREMENTAL, "b", 0),
            "b": make_manifest("b", KIND_INCREMENTAL, "a", 1),
        }
        with pytest.raises(RestoreChainBrokenError, match="cycle"):
            OneShotPolicy().restore_chain(manifests["a"], manifests)

    def test_protected_ids_cover_bases(self):
        manifests = {
            "a": make_manifest("a"),
            "b": make_manifest("b", KIND_INCREMENTAL, "a", 1),
            "c": make_manifest("c", KIND_INCREMENTAL, "a", 2),
        }
        protected = OneShotPolicy().protected_ids(
            [manifests["c"]], manifests
        )
        assert protected == {"a", "c"}  # b is deletable
