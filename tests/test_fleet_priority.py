"""Priority tiers, preemption, and restore storms on the shared store.

The paper's fleet distinguishes high-priority production jobs from
experimental ones (section 2.2). These tests pin the tier invariants:

* the arbiter serves backlogged prod streams with strict priority and
  fair-queues within a tier;
* a preempted (abort-and-requeue) experimental staged write leaves no
  partial objects behind in its namespace;
* during a correlated restore storm, prod restores are never starved
  behind experimental read traffic;
* tier sampling and storm outcomes are deterministic under a seed and
  orthogonal to the heterogeneity sampling.
"""

from __future__ import annotations

import pytest

from repro.config import FailureConfig, FleetConfig, MiB, StorageConfig
from repro.errors import StorageError
from repro.experiments.common import build_experiment, small_config
from repro.failures.domains import (
    DOMAIN_POWER,
    DOMAIN_RACK,
    StormPlan,
    assign_domains,
    plan_storm,
)
from repro.fleet import (
    TIER_EXPERIMENTAL,
    TIER_PROD,
    run_fleet,
    sample_fleet_specs,
    summarize_tiers,
)
from repro.storage.bandwidth import BandwidthArbiter


def tiered_fleet_config(**overrides) -> FleetConfig:
    """A contended tiered fleet on a slow link (storm-ready)."""
    defaults = dict(
        num_jobs=8,
        intervals_per_job=3,
        seed=4321,
        rows_per_table_choices=(1024, 2048, 4096),
        storage=StorageConfig(
            write_bandwidth=1.5 * MiB,
            read_bandwidth=3.0 * MiB,
            replication_factor=2,
            latency_s=0.002,
        ),
        failures=FailureConfig(min_failure_s=0.0),
        inject_failures=False,
        stagger_s=5.0,
        priority_mix=0.375,
        preempt_wait_s=0.0,  # preempt on any prod queueing
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


def homogeneous_storm_config(**overrides) -> FleetConfig:
    """Identical jobs except tier, so restore latencies compare 1:1."""
    defaults = dict(
        rows_per_table_choices=(2048,),
        num_tables_choices=(2,),
        policy_choices=("one_shot",),
        policy_weights=(1.0,),
        quantizer_choices=("adaptive",),
        bit_width_choices=(4,),
        intervals_per_job=6,
        interval_batches_choices=(12,),
        stagger_s=0.0,
        priority_mix=0.5,
        storm_domain="power",
        # Isolate *read-side* tier arbitration: with write preemption
        # on, four synchronized prod writers would keep experimental
        # checkpoints from ever landing, and the storm could only
        # force-fire onto scratch restarts.
        preempt_staged_writes=False,
    )
    defaults.update(overrides)
    return tiered_fleet_config(**defaults)


class TestArbiterTiers:
    def test_prod_stream_always_beats_experimental(self):
        arbiter = BandwidthArbiter()
        arbiter.register("exp", tier=TIER_EXPERIMENTAL)
        arbiter.register("prod", tier=TIER_PROD)
        # Give prod far more past service than exp: strict priority
        # must still pick it over the experimental stream.
        arbiter.on_transfer("prod", 10_000_000, "put")
        assert arbiter.pick(["exp", "prod"]) == "prod"
        # Within a tier, fair queueing still applies.
        arbiter.register("prod2", tier=TIER_PROD)
        assert arbiter.pick(["prod", "prod2"]) == "prod2"

    def test_default_registration_is_experimental_tier(self):
        """An untiered registration must never silently outrank a
        fleet's production streams."""
        arbiter = BandwidthArbiter()
        state = arbiter.register("solo")
        assert state.tier == TIER_EXPERIMENTAL

    def test_unknown_tier_rejected(self):
        arbiter = BandwidthArbiter()
        with pytest.raises(StorageError):
            arbiter.register("job", tier="platinum")

    def test_preemption_ledger(self):
        arbiter = BandwidthArbiter()
        arbiter.register("victim", tier=TIER_EXPERIMENTAL)
        arbiter.record_preemption("victim")
        arbiter.record_preemption("victim")
        assert arbiter.stream("victim").preemptions == 2


class TestTierSampling:
    def test_mix_zero_is_all_experimental(self):
        specs = sample_fleet_specs(tiered_fleet_config(priority_mix=0.0))
        assert {s.tier for s in specs} == {TIER_EXPERIMENTAL}

    def test_mix_rounds_to_exact_prod_count(self):
        specs = sample_fleet_specs(
            tiered_fleet_config(priority_mix=0.375)
        )
        assert sum(s.tier == TIER_PROD for s in specs) == 3

    def test_small_positive_mix_keeps_at_least_one_prod(self):
        specs = sample_fleet_specs(
            tiered_fleet_config(priority_mix=0.01)
        )
        assert sum(s.tier == TIER_PROD for s in specs) == 1

    def test_mix_is_orthogonal_to_heterogeneity_sampling(self):
        """Changing the mix must not reshuffle model sizes/intervals."""
        base = sample_fleet_specs(tiered_fleet_config(priority_mix=0.0))
        mixed = sample_fleet_specs(
            tiered_fleet_config(priority_mix=0.5)
        )
        for a, b in zip(base, mixed):
            assert (
                a.num_tables,
                a.rows_per_table,
                a.interval_batches,
                a.policy,
                a.quantizer,
                a.seed,
                a.failure_seed,
            ) == (
                b.num_tables,
                b.rows_per_table,
                b.interval_batches,
                b.policy,
                b.quantizer,
                b.seed,
                b.failure_seed,
            )


class TestFailureDomains:
    def test_power_domain_covers_the_fleet(self):
        domains = assign_domains(["a", "b", "c"], DOMAIN_POWER)
        assert len(domains) == 1
        assert domains[0].job_ids == ("a", "b", "c")

    def test_racks_are_tier_stratified(self):
        job_ids = [f"job{i}" for i in range(8)]
        tiers = {
            j: (TIER_PROD if i < 2 else TIER_EXPERIMENTAL)
            for i, j in enumerate(job_ids)
        }
        domains = assign_domains(
            job_ids, DOMAIN_RACK, rack_size=4, tiers=tiers
        )
        assert len(domains) == 2
        for domain in domains:
            assert sum(
                tiers[j] == TIER_PROD for j in domain.job_ids
            ) == 1

    def test_plan_storm_is_seed_deterministic(self):
        domains = assign_domains(
            [f"job{i}" for i in range(8)], DOMAIN_RACK, rack_size=2
        )
        first = plan_storm(domains, 0.5, seed=7)
        second = plan_storm(domains, 0.5, seed=7)
        assert first == second

    def test_storm_plan_validates_progress(self):
        domains = assign_domains(["a"], DOMAIN_POWER)
        with pytest.raises(Exception):
            StormPlan(domains[0], 1.5)


class TestControllerRestage:
    def test_restage_keeps_interval_accounting(self):
        exp = build_experiment(small_config(interval_batches=5))
        exp.controller.run_intervals(1)
        # Let the first interval's write land so the next begin stages.
        exp.clock.advance_to(exp.store.timeline.free_at + 1.0, "drain")
        began = exp.controller.begin_checkpoint()
        index_after_begin = exp.controller.interval_index
        exp.controller.abort_pending(began)
        restaged = exp.controller.begin_checkpoint(restage=True)
        assert exp.controller.interval_index == index_after_begin
        while restaged.advance() is not None:
            pass
        event = exp.controller.finish_checkpoint(restaged)
        assert event.manifest is not None
        assert (
            event.manifest.interval_index == began.interval_index
        )


class TestPreemptionInvariants:
    @pytest.fixture(scope="class")
    def preempting_run(self):
        return run_fleet(tiered_fleet_config())

    def test_preemptions_happen_and_only_hit_experimental(
        self, preempting_run
    ):
        scheduler, report = preempting_run
        preempted = [
            e for e in scheduler.events if e.kind == "preempted"
        ]
        assert preempted, "no preemption under zero wait threshold"
        tiers = {j.job_id: j.tier for j in report.jobs}
        for event in preempted:
            assert tiers[event.job_id] == TIER_EXPERIMENTAL
        assert all(
            j.preempted_writes == 0
            for j in report.jobs
            if j.tier == TIER_PROD
        )

    def test_aborted_staged_writes_leave_no_partial_objects(
        self, preempting_run
    ):
        """A preempted checkpoint's chunks are scrubbed immediately:
        nothing with its prefix survives in the job's namespace."""
        scheduler, _ = preempting_run
        preempted_prefixes = {
            f"{e.job_id}/{e.payload['checkpoint_id']}/"
            for e in scheduler.events
            if e.kind == "preempted"
        }
        assert preempted_prefixes
        for key in scheduler.store.list_keys():
            assert not any(
                key.startswith(p) for p in preempted_prefixes
            ), f"partial object {key} from a preempted write"

    def test_store_holds_only_manifested_checkpoints(
        self, preempting_run
    ):
        scheduler, _ = preempting_run
        manifest_prefixes = {
            "/".join(key.split("/")[:2])
            for key in scheduler.store.list_keys()
            if key.endswith("/manifest.json")
        }
        for key in scheduler.store.list_keys():
            prefix = "/".join(key.split("/")[:2])
            assert prefix in manifest_prefixes, (
                f"orphaned object {key} from a torn/preempted write"
            )

    def test_preempted_jobs_still_finish_their_intervals(
        self, preempting_run
    ):
        scheduler, report = preempting_run
        for job in scheduler.jobs:
            assert job.controller.interval_index >= job.target_intervals
            assert job.pending is None
        restaged = [
            e for e in scheduler.events if e.kind == "restaged"
        ]
        assert restaged, "no preempted write was ever re-staged"

    def test_preempted_final_write_is_still_restaged(self):
        """A job whose *last* write is preempted after its training is
        done must still get a re-stage slot once prod traffic drains —
        the flag can never dangle past the end of the run."""
        _scheduler, _ = run_fleet(
            tiered_fleet_config(
                num_jobs=6,
                intervals_per_job=2,
                seed=3,
                priority_mix=0.4,
            )
        )
        for job in _scheduler.jobs:
            assert not job.requeue_write
            assert job.pending is None

    def test_arbiter_and_report_preemption_counts_agree(
        self, preempting_run
    ):
        scheduler, report = preempting_run
        events = sum(
            1 for e in scheduler.events if e.kind == "preempted"
        )
        by_arbiter = sum(
            s.preemptions for s in scheduler.store.arbiter.streams()
        )
        by_report = sum(j.preempted_writes for j in report.jobs)
        assert events == by_arbiter == by_report


class TestRestoreStorm:
    @pytest.fixture(scope="class")
    def storm_run(self):
        return run_fleet(homogeneous_storm_config())

    def test_storm_fires_and_takes_down_the_domain(self, storm_run):
        scheduler, report = storm_run
        assert report.storm is not None
        kind, _domain, fired_at, affected = report.storm
        assert kind == "power"
        assert set(affected) == {j.job_id for j in report.jobs}
        assert fired_at > 0
        storms = [e for e in scheduler.events if e.kind == "storm"]
        assert len(storms) == 1

    def test_storm_drains_prod_restores_first(self, storm_run):
        """The arbiter orders the restore storm strictly tier-first."""
        scheduler, report = storm_run
        tiers = {j.job_id: j.tier for j in report.jobs}
        storm_crashes = [
            e
            for e in scheduler.events
            if e.kind == "crash" and e.payload["cause"] == "storm"
        ]
        assert storm_crashes
        ranks = [
            0 if tiers[e.job_id] == TIER_PROD else 1
            for e in storm_crashes
        ]
        assert ranks == sorted(ranks), (
            "an experimental restore was served before a prod one"
        )

    def test_prod_restores_are_never_starved(self, storm_run):
        """Fair-share floor: a prod restore only ever queues behind
        *other prod* restores, so its latency is bounded by the prod
        cohort's own service time — experimental read traffic cannot
        starve it, no matter how many experimental jobs crashed."""
        _, report = storm_run
        prod_samples = [
            s
            for j in report.jobs_in_tier(TIER_PROD)
            for s in j.restore_samples
            if s.cause == "storm"
        ]
        exp_samples = [
            s
            for j in report.jobs_in_tier(TIER_EXPERIMENTAL)
            for s in j.restore_samples
            if s.cause == "storm"
        ]
        assert prod_samples and exp_samples
        # Small slack absorbs sub-millisecond clock skew between the
        # crashed prods (each measures latency from its own clock).
        prod_cohort_service = sum(s.service_s for s in prod_samples)
        for sample in prod_samples:
            assert sample.latency_s <= prod_cohort_service + 1e-3

    def test_prod_degradation_below_experimental(self, storm_run):
        _, report = storm_run
        tiers = {t.tier: t for t in summarize_tiers(report)}
        assert (
            tiers[TIER_PROD].restore_degradation
            < tiers[TIER_EXPERIMENTAL].restore_degradation
        )

    def test_storm_outcome_is_deterministic(self):
        config = homogeneous_storm_config()
        _, first = run_fleet(config)
        _, second = run_fleet(config)
        assert first == second

    def test_rack_storm_strikes_a_strict_subset(self):
        config = homogeneous_storm_config(
            storm_domain="rack", rack_size=4
        )
        _, report = config and run_fleet(config)
        assert report.storm is not None
        _, _, _, affected = report.storm
        assert 0 < len(affected) < report.num_jobs
