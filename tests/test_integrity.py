"""Bit-rot matrix: scan/quarantine, resume planner, fallback restore.

The integrity subsystem spans three layers — write-time digests
(:mod:`repro.core.writer` / :mod:`repro.core.manifest`), the operator
scan (:mod:`repro.core.integrity`), and the resume planner's
restore-through-corruption path (:mod:`repro.core.restore`). These
tests corrupt stored objects one class at a time (chunk, dense blob,
manifest, mid-chain increment) and assert each layer reacts exactly:
the scan flags precisely the injected objects, quarantine survives a
scheduler restart, and the planner lands on the newest clean chain
deterministically.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.config import FleetConfig
from repro.core.integrity import (
    REASON_DIGEST_MISMATCH,
    REASON_MANIFEST_CORRUPT,
    REASON_MISSING,
    REASON_TRUNCATED,
    format_integrity_report,
    scan_job,
    sha256_hex,
)
from repro.core.manifest import CheckpointManifest, manifest_key
from repro.core.restore import CheckpointRestorer
from repro.core.retention import RetentionManager
from repro.errors import (
    CheckpointCorruptError,
    CheckpointNotFoundError,
)
from repro.experiments import build_experiment, small_config
from repro.storage.backends import (
    CrashingBackend,
    InMemoryBackend,
    corrupt_stored_object,
)
from repro.tools.metrics import (
    Metric,
    fleet_metrics,
    render_textfile,
    scan_metrics,
    write_textfile,
)


@pytest.fixture
def stored(tiny_experiment):
    """Experiment with three checkpoints on the store, clock settled."""
    exp = tiny_experiment
    exp.controller.run_intervals(3)
    newest = max(
        m.valid_at_s for m in exp.controller.manifests.values()
    )
    exp.clock.advance_to(newest + 1.0, "settle")
    restorer = CheckpointRestorer(exp.store, exp.clock)
    return exp, restorer


def _newest_chunk_key(manifest: CheckpointManifest) -> str:
    return manifest.shards[0].chunks[0].key


class TestWriteTimeDigests:
    def test_every_stored_object_carries_a_digest(self, stored):
        exp, restorer = stored
        manifests = restorer.list_manifests("job0")
        assert manifests
        for manifest in manifests.values():
            for shard in manifest.shards:
                for chunk in shard.chunks:
                    stored_bytes = exp.store.backend.read(chunk.key)
                    assert chunk.digest == sha256_hex(stored_bytes)
            if manifest.dense_key is not None:
                assert manifest.dense_digest == sha256_hex(
                    exp.store.backend.read(manifest.dense_key)
                )

    def test_digest_survives_manifest_roundtrip(self, stored):
        _, restorer = stored
        manifest = next(iter(restorer.list_manifests("job0").values()))
        again = CheckpointManifest.from_json(
            manifest.to_json().encode("utf-8")
        )
        assert again == manifest


class TestScanMatrix:
    """Flip bytes object class by object class; scan must flag exactly
    the injected objects."""

    def test_clean_store_scans_clean(self, stored):
        exp, _ = stored
        report = scan_job(exp.store, "job0")
        assert report.clean
        assert report.checkpoints_scanned == 3
        assert report.bytes_verified > 0
        assert not report.issues
        assert "clean" in format_integrity_report(report)

    def test_chunk_bitrot_flagged_exactly(self, stored):
        exp, restorer = stored
        plan = restorer.plan_resume("job0")
        victim = plan[0]
        key = _newest_chunk_key(victim)
        corrupt_stored_object(exp.store.backend, key, offset=7)
        report = scan_job(exp.store, "job0")
        assert [i.key for i in report.issues] == [key]
        assert report.issues[0].reason == REASON_DIGEST_MISMATCH
        assert report.quarantined_ids == [victim.checkpoint_id]
        assert f"CORRUPT {key}" in format_integrity_report(report)

    def test_dense_bitrot_flagged_exactly(self, stored):
        exp, restorer = stored
        victim = restorer.plan_resume("job0")[0]
        assert victim.dense_key is not None
        corrupt_stored_object(exp.store.backend, victim.dense_key)
        report = scan_job(exp.store, "job0")
        assert [i.key for i in report.issues] == [victim.dense_key]
        assert report.issues[0].reason == REASON_DIGEST_MISMATCH

    def test_manifest_bitrot_recorded_not_quarantined(self, stored):
        exp, restorer = stored
        victim = restorer.plan_resume("job0")[0]
        key = manifest_key("job0", victim.checkpoint_id)
        corrupt_stored_object(exp.store.backend, key, offset=2)
        report = scan_job(exp.store, "job0")
        assert key in report.unreadable_manifests
        assert [i.reason for i in report.issues] == [
            REASON_MANIFEST_CORRUPT
        ]
        # Discovery skip-and-records it, so nothing needs a marker.
        assert report.quarantined_ids == []
        manifests = restorer.list_manifests("job0")
        assert victim.checkpoint_id not in manifests
        assert key in restorer.skipped_manifests

    def test_truncated_chunk_flagged(self, stored):
        exp, restorer = stored
        key = _newest_chunk_key(restorer.plan_resume("job0")[0])
        blob = exp.store.backend.read(key)
        exp.store.backend.write(key, blob[:-3])
        report = scan_job(exp.store, "job0")
        assert [i.key for i in report.issues] == [key]
        assert report.issues[0].reason == REASON_TRUNCATED

    def test_missing_chunk_flagged(self, stored):
        exp, restorer = stored
        key = _newest_chunk_key(restorer.plan_resume("job0")[0])
        exp.store.backend.delete(key)
        report = scan_job(exp.store, "job0")
        assert [i.key for i in report.issues] == [key]
        assert report.issues[0].reason == REASON_MISSING

    def test_torn_checkpoint_detected(self, stored):
        exp, restorer = stored
        victim = restorer.plan_resume("job0")[0]
        exp.store.backend.delete(
            manifest_key("job0", victim.checkpoint_id)
        )
        report = scan_job(exp.store, "job0")
        assert report.torn_checkpoint_ids == [victim.checkpoint_id]
        assert not report.clean
        assert "TORN" in format_integrity_report(report)

    def test_report_only_mode_leaves_manifests_unmodified(self, stored):
        exp, restorer = stored
        victim = restorer.plan_resume("job0")[0]
        corrupt_stored_object(
            exp.store.backend, _newest_chunk_key(victim)
        )
        report = scan_job(exp.store, "job0", quarantine=False)
        assert report.corrupt_checkpoint_ids == [victim.checkpoint_id]
        assert report.quarantined_ids == []
        fresh = restorer.list_manifests("job0")
        assert not fresh[victim.checkpoint_id].quarantined


class TestQuarantinePersistence:
    def test_quarantine_sticks_across_scheduler_restart(self, stored):
        exp, restorer = stored
        victim = restorer.plan_resume("job0")[0]
        corrupt_stored_object(
            exp.store.backend, _newest_chunk_key(victim)
        )
        scan_job(exp.store, "job0")
        # A scheduler restart = a fresh restorer re-reading the store.
        rebooted = CheckpointRestorer(exp.store, exp.clock)
        manifests = rebooted.list_manifests("job0")
        assert manifests[victim.checkpoint_id].quarantined
        plan = rebooted.plan_resume("job0")
        assert victim.checkpoint_id not in [
            m.checkpoint_id for m in plan
        ]
        assert plan  # older clean checkpoints still restorable

    def test_second_scan_reports_already_quarantined(self, stored):
        exp, restorer = stored
        victim = restorer.plan_resume("job0")[0]
        corrupt_stored_object(
            exp.store.backend, _newest_chunk_key(victim)
        )
        first = scan_job(exp.store, "job0")
        assert first.quarantined_ids == [victim.checkpoint_id]
        second = scan_job(exp.store, "job0")
        assert second.quarantined_ids == []
        assert second.already_quarantined_ids == [victim.checkpoint_id]


class TestResumePlanner:
    def test_plan_is_newest_first_and_deterministic(self, stored):
        _, restorer = stored
        plan_a = [m.checkpoint_id for m in restorer.plan_resume("job0")]
        plan_b = [m.checkpoint_id for m in restorer.plan_resume("job0")]
        assert plan_a == plan_b
        intervals = [
            m.interval_index for m in restorer.plan_resume("job0")
        ]
        assert intervals == sorted(intervals, reverse=True)

    def test_plan_head_is_latest_valid(self, stored):
        _, restorer = stored
        plan = restorer.plan_resume("job0")
        assert restorer.latest_valid("job0") == plan[0]

    def test_plan_skips_candidates_with_missing_objects(self, stored):
        exp, restorer = stored
        before = restorer.plan_resume("job0")
        victim = before[0]
        exp.store.backend.delete(_newest_chunk_key(victim))
        after = restorer.plan_resume("job0")
        assert victim.checkpoint_id not in [
            m.checkpoint_id for m in after
        ]
        assert after[0].checkpoint_id == before[1].checkpoint_id

    def test_not_yet_valid_checkpoints_excluded(self, stored):
        _, restorer = stored
        assert restorer.plan_resume("job0", at_time_s=0.0) == []


class TestRestoreThroughCorruption:
    def test_restore_falls_back_past_bitrotted_newest(self, stored):
        exp, restorer = stored
        plan = restorer.plan_resume("job0")
        assert len(plan) >= 2
        corrupt_stored_object(
            exp.store.backend, _newest_chunk_key(plan[0]), offset=11
        )
        report = exp.controller.restore_latest()
        assert report.checkpoint_id == plan[1].checkpoint_id
        assert report.fallback_depth == 1
        assert report.failed_chain_ids == (plan[0].checkpoint_id,)
        # The controller resumes from the interval that really loaded.
        assert (
            exp.controller.interval_index
            == plan[1].interval_index + 1
        )

    def test_mid_increment_corruption_fails_chained_candidates(self):
        """Consecutive chains: rot in a middle increment must fail every
        candidate chaining through it, landing on the full baseline."""
        exp = build_experiment(
            small_config(
                policy="consecutive",
                num_tables=3,
                rows_per_table=512,
                embedding_dim=8,
                batch_size=32,
                interval_batches=5,
                keep_last=4,
                num_nodes=1,
                devices_per_node=2,
            )
        )
        exp.controller.run_intervals(3)
        newest = max(
            m.valid_at_s for m in exp.controller.manifests.values()
        )
        exp.clock.advance_to(newest + 1.0, "settle")
        restorer = CheckpointRestorer(exp.store, exp.clock)
        plan = restorer.plan_resume(
            "job0", policy=exp.controller.policy
        )
        assert len(plan) == 3
        middle = plan[1]  # the increment both later candidates need
        corrupt_stored_object(
            exp.store.backend, _newest_chunk_key(middle)
        )
        report = exp.controller.restore_latest()
        assert report.checkpoint_id == plan[2].checkpoint_id
        assert report.fallback_depth == 2
        assert set(report.failed_chain_ids) == {
            plan[0].checkpoint_id,
            middle.checkpoint_id,
        }

    def test_every_candidate_corrupt_raises(self, stored):
        exp, restorer = stored
        for manifest in restorer.list_manifests("job0").values():
            corrupt_stored_object(
                exp.store.backend, _newest_chunk_key(manifest)
            )
        with pytest.raises(CheckpointNotFoundError):
            exp.controller.restore_latest()


class TestManifestParsing:
    def test_missing_shards_field_rejected(self, stored):
        _, restorer = stored
        manifest = restorer.plan_resume("job0")[0]
        import json

        data = json.loads(manifest.to_json())
        del data["shards"]
        with pytest.raises(CheckpointCorruptError):
            CheckpointManifest.from_json(json.dumps(data).encode())

    def test_invalid_utf8_rejected(self):
        with pytest.raises(CheckpointCorruptError):
            CheckpointManifest.from_json(b"\xff\xfe{}")


class TestRetentionQuarantine:
    def test_quarantined_never_occupies_a_keep_slot(self, stored):
        exp, restorer = stored
        manifests = dict(exp.controller.manifests)
        plan = restorer.plan_resume("job0")
        corrupt_stored_object(
            exp.store.backend, _newest_chunk_key(plan[0])
        )
        scan_job(exp.store, "job0")
        # Retention sees the stored quarantine marker on re-discovery.
        manifests = restorer.list_manifests("job0")
        manager = RetentionManager(exp.store, keep_last=1)
        manager.enforce(
            manifests, exp.controller.policy, "job0",
            now_s=exp.clock.now,
        )
        # The quarantined newest was deleted, not retained; the newest
        # *clean* checkpoint holds the keep slot.
        assert plan[0].checkpoint_id not in manifests
        assert plan[1].checkpoint_id in manifests


class TestBitRotInjection:
    def test_armed_backend_rots_deterministically(self):
        payload = bytes(range(256)) * 4
        stored_bytes = []
        for _ in range(2):
            backend = CrashingBackend(InMemoryBackend())
            backend.arm_bitrot(1.0, seed=5)
            backend.write("k", payload)
            assert backend.bitrot_injected == ["k"]
            stored_bytes.append(backend.read("k"))
        assert stored_bytes[0] == stored_bytes[1]
        diff = [
            i
            for i, (a, b) in enumerate(zip(payload, stored_bytes[0]))
            if a != b
        ]
        assert len(diff) == 1  # exactly one byte flipped
        xor = payload[diff[0]] ^ stored_bytes[0][diff[0]]
        assert xor and xor & (xor - 1) == 0  # exactly one bit

    def test_disarmed_backend_stores_faithfully(self):
        backend = CrashingBackend(InMemoryBackend())
        backend.arm_bitrot(1.0)
        backend.disarm_bitrot()
        backend.write("k", b"abc")
        assert backend.read("k") == b"abc"
        assert backend.bitrot_injected == []

    def test_zero_length_objects_never_rot(self):
        backend = CrashingBackend(InMemoryBackend())
        backend.arm_bitrot(1.0)
        backend.write("k", b"")
        assert backend.read("k") == b""
        assert backend.bitrot_injected == []

    def test_targeted_corruption_flips_one_byte(self):
        backend = CrashingBackend(InMemoryBackend())
        backend.write("k", b"abcdef")
        backend.corrupt_object("k", offset=2)
        rotted = backend.read("k")
        assert rotted != b"abcdef"
        assert rotted[:2] == b"ab" and rotted[3:] == b"def"
        assert backend.bitrot_injected == ["k"]


class TestFleetBitRotStorm:
    def test_storm_restores_through_injected_corruption(self):
        """Seeded bit rot corrupts live checkpoints; the rack storm's
        restores must still all land (planner falls back), with the
        fallback traffic visible in the aggregates."""
        from repro.fleet import format_fleet_report, run_fleet

        config = FleetConfig(
            num_jobs=6,
            intervals_per_job=4,
            seed=42,
            bitrot_prob=0.1,
            storm_domain="rack",
            priority_mix=0.25,
        )
        _, report = run_fleet(config)
        assert report.bitrot_injected > 0
        assert report.restore_fallbacks > 0
        # Every recovery landed: either a (possibly fallback) restore
        # or an explicit scratch restart — never a hung job.
        for job in report.jobs:
            assert job.intervals == config.intervals_per_job
        text = format_fleet_report(report)
        assert "bit-rot injected writes:" in text
        assert "restore fallbacks:" in text


class TestMetricsTextfile:
    def test_render_groups_help_and_type_once(self):
        metrics = [
            Metric("m", 1, help="h", labels=(("job", "a"),)),
            Metric("m", 2.5, help="h", labels=(("job", "b"),)),
        ]
        text = render_textfile(metrics)
        assert text.count("# HELP m h") == 1
        assert text.count("# TYPE m gauge") == 1
        assert 'm{job="a"} 1\n' in text
        assert 'm{job="b"} 2.5\n' in text
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        metric = Metric("m", 1, labels=(("k", 'a"b\\c\nd'),))
        assert metric.sample_line() == 'm{k="a\\"b\\\\c\\nd"} 1'

    def test_scan_metrics_from_report(self, stored, tmp_path):
        exp, restorer = stored
        corrupt_stored_object(
            exp.store.backend,
            _newest_chunk_key(restorer.plan_resume("job0")[0]),
        )
        report = scan_job(exp.store, "job0")
        path = write_textfile(
            tmp_path / "scan.prom", scan_metrics(report)
        )
        text = path.read_text()
        assert 'repro_scan_corrupt_objects{job="job0"} 1' in text
        assert 'repro_scan_quarantined_checkpoints{job="job0"} 1' in text
        assert 'repro_scan_checkpoints_scanned{job="job0"} 3' in text

    def test_fleet_metrics_series(self):
        report = SimpleNamespace(
            num_jobs=4,
            failures=2,
            restores=3,
            torn_writes=1,
            bitrot_injected=5,
            restore_fallbacks=2,
            scratch_restarts=1,
            total_get_bytes=4096,
            cache_capacity_bytes=65536,
            cache_hits=7,
            cache_misses=3,
            cache_evictions=4,
            cache_dirty_flushes=6,
            cache_dirty_backlog=2,
            replicate_k=2,
            repl_peer_restores=3,
            repl_store_fallbacks=1,
            repl_deltas_sent=40,
            repl_bytes_sent=8192,
            repl_partial_discards=1,
            repl_rings_lost=2,
            repl_rings_rebuilt=2,
            repl_ring_evictions=5,
        )
        text = render_textfile(fleet_metrics(report))
        assert "repro_fleet_bitrot_injected_writes 5" in text
        assert "repro_fleet_restore_fallbacks 2" in text
        assert "repro_fleet_scratch_restarts 1" in text
        assert "repro_fleet_verified_read_bytes 4096" in text
        assert "repro_fleet_cache_capacity_bytes 65536" in text
        assert "repro_fleet_cache_hits 7" in text
        assert "repro_fleet_cache_dirty_backlog 2" in text
        assert "repro_fleet_repl_k 2" in text
        assert "repro_fleet_repl_peer_restores 3" in text
        assert "repro_fleet_repl_ring_evictions 5" in text
