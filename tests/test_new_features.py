"""Tests for time-based intervals, hierarchical fabric, TCO model."""

from __future__ import annotations

import pytest

from repro.config import GiB
from repro.distributed.comm import (
    Fabric,
    HierarchicalFabric,
    allreduce_time,
    alltoall_time,
    hierarchical_allreduce_time,
    hierarchical_alltoall_time,
)
from repro.errors import CheckpointError, SimulationError
from repro.experiments import build_experiment, small_config
from repro.metrics.tco import (
    FleetProfile,
    compare_tco,
    fleet_demand,
)


class TestTimeBasedIntervals:
    def test_run_for_checkpoints_on_time(self):
        exp = build_experiment(
            small_config(
                num_tables=2, rows_per_table=512, batch_size=32
            )
        )
        # Steps take ~0.13 simulated seconds; a 1-second interval
        # means a checkpoint roughly every 7-8 batches.
        taken = exp.controller.run_for(10.0, interval_s=1.0)
        assert taken >= 5
        assert exp.controller.stats.checkpoints_written == taken
        # Checkpoint creation times are spaced at least interval apart.
        times = [
            e.manifest.created_at_s
            for e in exp.controller.stats.events
            if e.manifest
        ]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g >= 1.0 for g in gaps)

    def test_run_for_respects_reader_protocol(self):
        exp = build_experiment(
            small_config(num_tables=2, rows_per_table=512, batch_size=32)
        )
        exp.controller.run_for(3.0, interval_s=1.0)
        # No in-flight batches at any point: the per-batch quota grant
        # keeps reader and trainer in lockstep.
        assert exp.reader.in_flight == 0

    def test_run_for_validation(self, tiny_experiment):
        with pytest.raises(CheckpointError):
            tiny_experiment.controller.run_for(0.0)
        with pytest.raises(CheckpointError):
            tiny_experiment.controller.run_for(1.0, interval_s=0.0)

    def test_restore_after_time_based_run(self):
        exp = build_experiment(
            small_config(
                num_tables=2,
                rows_per_table=512,
                batch_size=32,
                quantizer="none",
            )
        )
        exp.controller.run_for(5.0, interval_s=1.0)
        exp.clock.advance_to(exp.store.timeline.free_at + 1.0, "drain")
        batches = exp.model.batches_trained
        exp.model.reinitialize()
        exp.controller.restore_latest()
        assert 0 < exp.model.batches_trained <= batches


class TestHierarchicalFabric:
    @pytest.fixture
    def fabric(self):
        return HierarchicalFabric(
            intra=Fabric(bandwidth=300e9, latency=1e-6),
            inter=Fabric(bandwidth=25e9, latency=5e-6),
            devices_per_node=8,
        )

    def test_allreduce_faster_than_flat_slow_fabric(self, fabric):
        nbytes = 100 * 1024 * 1024
        flat_slow = allreduce_time(nbytes, 128, fabric.inter)
        hierarchical = hierarchical_allreduce_time(nbytes, 16, fabric)
        assert hierarchical < flat_slow

    def test_allreduce_slower_than_pure_fast_fabric(self, fabric):
        nbytes = 100 * 1024 * 1024
        flat_fast = allreduce_time(nbytes, 128, fabric.intra)
        hierarchical = hierarchical_allreduce_time(nbytes, 16, fabric)
        assert hierarchical > flat_fast

    def test_single_node_uses_only_intra(self, fabric):
        nbytes = 1024 * 1024
        only_local = hierarchical_allreduce_time(nbytes, 1, fabric)
        assert only_local == pytest.approx(
            allreduce_time(nbytes, 8, fabric.intra)
        )

    def test_alltoall_splits_traffic(self, fabric):
        nbytes = 64 * 1024 * 1024
        hierarchical = hierarchical_alltoall_time(nbytes, 16, fabric)
        all_slow = alltoall_time(nbytes, 16, fabric.inter)
        # Moving the node-local share over NVLink must win.
        assert hierarchical < all_slow + alltoall_time(
            nbytes, 8, fabric.intra
        )
        assert hierarchical > 0

    def test_validation(self, fabric):
        with pytest.raises(SimulationError):
            HierarchicalFabric(fabric.intra, fabric.inter, 0)
        with pytest.raises(SimulationError):
            hierarchical_allreduce_time(-1, 4, fabric)
        with pytest.raises(SimulationError):
            hierarchical_alltoall_time(1, 0, fabric)


class TestHierarchicalTrainer:
    def test_hierarchical_comm_speeds_up_steps(self):
        """With a slow inter-node fabric, hierarchical collectives keep
        node-local traffic on the fast links and shorten the step."""
        from repro.config import ClusterConfig, GiB

        slow_inter = dict(
            num_nodes=4,
            devices_per_node=4,
            fabric_bandwidth=2.0 * GiB,
            intra_node_bandwidth=300.0 * GiB,
        )
        flat_config = small_config(
            num_tables=2, rows_per_table=512, batch_size=128
        ).with_overrides(
            cluster=ClusterConfig(**slow_inter, hierarchical_comm=False)
        )
        hier_config = small_config(
            num_tables=2, rows_per_table=512, batch_size=128
        ).with_overrides(
            cluster=ClusterConfig(**slow_inter, hierarchical_comm=True)
        )
        flat = build_experiment(flat_config)
        hier = build_experiment(hier_config)
        flat.reader.begin_interval(3)
        hier.reader.begin_interval(3)
        flat_report = flat.trainer.train_interval(3)
        hier_report = hier.trainer.train_interval(3)
        assert hier_report.train_time_s < flat_report.train_time_s
        # Identical numerics either way — only timing differs.
        assert hier_report.mean_loss == pytest.approx(
            flat_report.mean_loss
        )


class TestTcoModel:
    def test_fleet_demand_scales_linearly(self):
        profile = FleetProfile(concurrent_jobs=100)
        single = fleet_demand(
            FleetProfile(concurrent_jobs=1), 1.0, 2.0
        )
        hundred = fleet_demand(profile, 1.0, 2.0)
        assert hundred.write_bandwidth_bytes_per_s == pytest.approx(
            100 * single.write_bandwidth_bytes_per_s
        )
        assert hundred.storage_capacity_bytes == pytest.approx(
            100 * single.storage_capacity_bytes
        )

    def test_baseline_magnitudes_are_fleet_scale(self):
        """The paper's framing: petabytes of capacity, large bandwidth."""
        demand = fleet_demand(FleetProfile(), 1.0, 2.0)
        assert demand.storage_capacity_bytes > 1000 * 1024 * GiB  # > 1 PB
        assert demand.write_bandwidth_bytes_per_s > 100 * GiB / 100

    def test_comparison_reductions(self):
        comparison = compare_tco(FleetProfile())
        assert comparison.bandwidth_reduction == pytest.approx(12.0)
        assert comparison.capacity_reduction == pytest.approx(8.0)
        assert comparison.bandwidth_saved_bytes_per_s > 0
        assert comparison.capacity_saved_bytes > 0

    def test_replication_multiplies_demand(self):
        low = fleet_demand(
            FleetProfile(replication_factor=1), 1.0, 2.0
        )
        high = fleet_demand(
            FleetProfile(replication_factor=3), 1.0, 2.0
        )
        assert high.storage_capacity_bytes == pytest.approx(
            3 * low.storage_capacity_bytes
        )

    def test_validation(self):
        with pytest.raises(SimulationError):
            FleetProfile(concurrent_jobs=0)
        with pytest.raises(SimulationError):
            fleet_demand(FleetProfile(), 0.0, 1.0)
