"""Recovery-equivalence differential suite for the replication tier.

Three layers of proof that a peer-replica restore is *the same
recovery* a store restore would perform, just nearer:

* **replica == live truth** — after a quiet (failure-free) run, every
  ring materializes byte-identical to its owner's live model (weights,
  accumulators, dense state) at the same step, across seeds x K x
  priority mixes. Replica deltas are captured from exact touched rows,
  so this holds bit-exactly — which is why the suite pins
  ``quantizer_choices=("none",)``: store restores of *quantized*
  checkpoints are lossy by design, and byte-identity is only a fair
  ask when both paths carry full-precision bytes.
* **peer == store at the same step** — the ring anchor (rebased at the
  owner's last baseline flush) restores byte-identical to draining the
  store's own restore of that same checkpoint.
* **dispatch bit-identity** — the heap and lockstep engines produce
  equal reports and equal event logs with replication on, including
  under a storm (the tentpole must not fork the engines).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FailureConfig, FleetConfig, MiB
from repro.fleet import run_fleet


def repl_config(
    seed: int,
    k: int = 2,
    priority_mix: float = 0.0,
    **overrides,
) -> FleetConfig:
    """A small replicated fleet; full-precision so restores are exact."""
    defaults = dict(
        num_jobs=6,
        intervals_per_job=4,
        seed=seed,
        replicate_k=k,
        quantizer_choices=("none",),
        bit_width_choices=(4,),
        priority_mix=priority_mix,
        inject_failures=False,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


def assert_states_equal(job, state) -> None:
    """Byte-identity between a job's live model and a ReplicaState."""
    model = job.model
    assert model.batches_trained == state.batches_trained
    assert model.samples_trained == state.samples_trained
    for table_id in range(model.num_tables):
        np.testing.assert_array_equal(
            model.table_weight(table_id),
            state.table_weights[table_id],
        )
        np.testing.assert_array_equal(
            model.table_accumulator(table_id),
            state.table_accumulators[table_id],
        )
    dense = model.dense_state()
    assert dense.keys() == state.dense.keys()
    for name in dense:
        np.testing.assert_array_equal(dense[name], state.dense[name])


class TestReplicaMatchesLiveState:
    """Fold(anchor, deltas) reproduces training bit-exactly."""

    @pytest.mark.parametrize("seed", [11, 23, 47])
    @pytest.mark.parametrize("k", [1, 2])
    @pytest.mark.parametrize("priority_mix", [0.0, 0.5])
    def test_every_ring_materializes_the_owner(
        self, seed, k, priority_mix
    ):
        config = repl_config(seed, k=k, priority_mix=priority_mix)
        scheduler, report = run_fleet(config)
        replicator = scheduler.replicator
        assert replicator is not None
        checked = 0
        for owner_id, rings in replicator.rings.items():
            owner = scheduler._jobs_by_id[owner_id]
            assert len(rings) == k
            for ring in rings.values():
                ring.check_invariants()
                # Quiet run: every delta committed, so the replica is
                # current through the owner's final trained batch.
                assert ring.last_step == owner.model.batches_trained
                assert_states_equal(owner, ring.materialize())
                checked += 1
        assert checked == config.num_jobs * k
        assert report.repl_deltas_sent > 0
        assert report.repl_partial_discards == 0

    def test_reader_and_countdown_travel_with_the_replica(self):
        config = repl_config(seed=11, k=1)
        scheduler, _ = run_fleet(config)
        for owner_id, rings in scheduler.replicator.rings.items():
            owner = scheduler._jobs_by_id[owner_id]
            for ring in rings.values():
                state = ring.materialize()
                assert state.reader_state == owner.reader.collect_state()
                # Captured post-decrement, the final delta of the run
                # sits at the interval boundary: countdown exhausted.
                # (The owner's own counter was re-armed to
                # ``interval_batches`` by the checkpoint trigger.)
                assert state.batches_left == 0
                # Likewise captured *before* the final checkpoint
                # trigger bumped the owner's interval counter.
                assert (
                    state.interval_index
                    == owner.controller.interval_index - 1
                )


class TestPeerMatchesStoreRestore:
    """Anchor at a baseline flush == the store's checkpoint, restored."""

    @pytest.mark.parametrize("seed", [11, 23])
    def test_anchor_equals_drained_store_restore(self, seed):
        # A roomy ring: no evictions fold post-flush deltas into the
        # anchor, so it stays frozen at the last baseline-flush step.
        config = repl_config(seed, k=2, peer_ring_bytes=64 * MiB)
        scheduler, _ = run_fleet(config)
        compared = 0
        for owner_id, rings in scheduler.replicator.rings.items():
            owner = scheduler._jobs_by_id[owner_id]
            if owner.controller.stats.checkpoints_written == 0:
                continue
            anchor = next(iter(rings.values())).anchor
            # Drain the store restore of the owner's newest checkpoint
            # into the live model, exactly as crash recovery would.
            pending = owner.controller.begin_restore()
            assert pending is not None
            while pending.advance() is not None:
                pass
            owner.controller.finish_restore(pending)
            # Same step, same bytes: the peer path and the store path
            # reconstruct one identical state.
            assert anchor.step == owner.model.batches_trained
            assert_states_equal(owner, anchor)
            compared += 1
        assert compared > 0

    def test_all_anchors_agree_across_peers(self):
        """K rings of one owner are replicas of *each other* too."""
        config = repl_config(seed=31, k=2, peer_ring_bytes=64 * MiB)
        scheduler, _ = run_fleet(config)
        for rings in scheduler.replicator.rings.values():
            states = [ring.materialize() for ring in rings.values()]
            first = states[0]
            for other in states[1:]:
                assert other.step == first.step
                for table_id in first.table_weights:
                    np.testing.assert_array_equal(
                        first.table_weights[table_id],
                        other.table_weights[table_id],
                    )


#: Replicated regimes both dispatch engines must agree on, including
#: crash-heavy and storm rows (the recovery ladder runs identically).
REPL_IDENTITY_MATRIX = [
    (
        "repl-quiet-seed11",
        repl_config(11, k=2),
    ),
    (
        "repl-crashes-seed11",
        repl_config(
            11,
            k=2,
            intervals_per_job=6,
            inject_failures=True,
            priority_mix=0.5,
            failures=FailureConfig(
                mean_time_to_failure_s=120.0, min_failure_s=5.0
            ),
        ),
    ),
    (
        "repl-storm-seed47",
        repl_config(
            47,
            k=2,
            priority_mix=0.5,
            inject_failures=True,
            storm_domain="rack",
            rack_size=2,
        ),
    ),
    (
        "repl-k1-tiny-ring-seed23",
        repl_config(
            23,
            k=1,
            peer_ring_bytes=64 * 1024,
            inject_failures=True,
            failures=FailureConfig(
                mean_time_to_failure_s=120.0, min_failure_s=5.0
            ),
        ),
    ),
]


class TestReplicatedDispatchBitIdentity:
    @pytest.mark.parametrize(
        "config",
        [cfg for _, cfg in REPL_IDENTITY_MATRIX],
        ids=[name for name, _ in REPL_IDENTITY_MATRIX],
    )
    def test_heap_matches_lockstep(self, config):
        heap_sched, heap_report = run_fleet(config, dispatch="heap")
        lock_sched, lock_report = run_fleet(config, dispatch="lockstep")
        assert heap_report == lock_report
        heap_log = [
            (e.kind, e.job_id, e.time_s, e.payload)
            for e in heap_sched.events
        ]
        lock_log = [
            (e.kind, e.job_id, e.time_s, e.payload)
            for e in lock_sched.events
        ]
        assert heap_log == lock_log

    def test_crash_row_actually_recovered_from_a_peer(self):
        """Guard the matrix against silently exercising nothing."""
        config = dict(REPL_IDENTITY_MATRIX)["repl-crashes-seed11"]
        _, report = run_fleet(config)
        assert report.failures > 0
        assert report.repl_peer_restores > 0

    def test_replication_off_is_the_seed_fleet(self):
        """replicate_k=0 runs must not even construct the tier."""
        base = FleetConfig(num_jobs=4, intervals_per_job=2, seed=11)
        scheduler, report = run_fleet(base)
        assert scheduler.replicator is None
        assert report.replicate_k == 0
        assert report.repl_deltas_sent == 0
