"""Unit tests for MLP layers, including numerical gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.model.mlp import MLP, Linear, ReLU


def numerical_grad(f, x: np.ndarray, eps: float = 1e-4) -> np.ndarray:
    """Central-difference gradient of scalar f w.r.t. x."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        up = f()
        x[idx] = orig - eps
        down = f()
        x[idx] = orig
        grad[idx] = (up - down) / (2 * eps)
        it.iternext()
    return grad


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 3, rng)
        out = layer.forward(rng.normal(size=(8, 4)).astype(np.float32))
        assert out.shape == (8, 3)

    def test_bad_input_shape_rejected(self, rng):
        layer = Linear(4, 3, rng)
        with pytest.raises(TrainingError, match="shape"):
            layer.forward(rng.normal(size=(8, 5)).astype(np.float32))

    def test_backward_before_forward_rejected(self, rng):
        layer = Linear(2, 2, rng)
        with pytest.raises(TrainingError, match="before forward"):
            layer.backward(np.zeros((1, 2), dtype=np.float32))

    def test_weight_gradient_numerically(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(5, 3)).astype(np.float32)

        def loss() -> float:
            return float(np.sum(layer.forward(x) ** 2))

        out = layer.forward(x)
        layer.backward((2 * out).astype(np.float32))
        expected = numerical_grad(loss, layer.weight)
        np.testing.assert_allclose(
            layer.grad_weight, expected, rtol=1e-2, atol=1e-3
        )

    def test_bias_gradient_numerically(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(5, 3)).astype(np.float32)

        def loss() -> float:
            return float(np.sum(layer.forward(x) ** 2))

        out = layer.forward(x)
        layer.backward((2 * out).astype(np.float32))
        expected = numerical_grad(loss, layer.bias)
        np.testing.assert_allclose(
            layer.grad_bias, expected, rtol=1e-2, atol=1e-3
        )

    def test_input_gradient_numerically(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3)).astype(np.float32)

        def loss() -> float:
            return float(np.sum(layer.forward(x) ** 2))

        out = layer.forward(x)
        grad_in = layer.backward((2 * out).astype(np.float32))
        expected = numerical_grad(loss, x)
        np.testing.assert_allclose(grad_in, expected, rtol=1e-2, atol=1e-3)

    def test_gradients_accumulate_until_zero_grad(self, rng):
        layer = Linear(2, 2, rng)
        x = rng.normal(size=(3, 2)).astype(np.float32)
        g = np.ones((3, 2), dtype=np.float32)
        layer.forward(x)
        layer.backward(g)
        first = layer.grad_weight.copy()
        layer.forward(x)
        layer.backward(g)
        np.testing.assert_allclose(layer.grad_weight, 2 * first)
        layer.zero_grad()
        assert np.all(layer.grad_weight == 0)


class TestReLU:
    def test_forward(self):
        relu = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]], dtype=np.float32)
        np.testing.assert_array_equal(
            relu.forward(x), [[0.0, 0.0, 2.0]]
        )

    def test_backward_masks(self):
        relu = ReLU()
        x = np.array([[-1.0, 0.5, 2.0]], dtype=np.float32)
        relu.forward(x)
        grad = relu.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad, [[0.0, 1.0, 1.0]])

    def test_backward_before_forward_rejected(self):
        with pytest.raises(TrainingError):
            ReLU().backward(np.zeros((1, 1), dtype=np.float32))


class TestMLP:
    def test_needs_two_sizes(self, rng):
        with pytest.raises(TrainingError):
            MLP((4,), rng)

    def test_forward_shape(self, rng):
        mlp = MLP((5, 8, 3), rng)
        out = mlp.forward(rng.normal(size=(10, 5)).astype(np.float32))
        assert out.shape == (10, 3)

    def test_end_to_end_gradient(self, rng):
        mlp = MLP((4, 6, 2), rng)
        x = rng.normal(size=(3, 4)).astype(np.float32)

        def loss() -> float:
            return float(np.sum(mlp.forward(x) ** 2))

        out = mlp.forward(x)
        mlp.backward((2 * out).astype(np.float32))
        for layer in mlp.linears:
            expected = numerical_grad(loss, layer.weight)
            np.testing.assert_allclose(
                layer.grad_weight, expected, rtol=2e-2, atol=1e-3
            )
            layer.zero_grad()

    def test_parameters_are_views(self, rng):
        mlp = MLP((3, 4, 1), rng)
        params = mlp.parameters("p")
        params["p.0.weight"][0, 0] = 123.0
        assert mlp.linears[0].weight[0, 0] == 123.0

    def test_load_parameters_roundtrip(self, rng):
        a = MLP((3, 4, 1), rng)
        b = MLP((3, 4, 1), np.random.default_rng(999))
        b.load_parameters("p", a.parameters("p"))
        x = rng.normal(size=(2, 3)).astype(np.float32)
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_load_shape_mismatch_rejected(self, rng):
        a = MLP((3, 4, 1), rng)
        bad = {k: np.zeros((9, 9), dtype=np.float32)
               for k in a.parameters("p")}
        with pytest.raises(TrainingError, match="mismatch"):
            a.load_parameters("p", bad)
