"""Unit tests for adaptive asymmetric quantization (greedy search)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant import mean_l2_error
from repro.quant.adaptive import (
    AdaptiveAsymmetricQuantizer,
    greedy_range_search,
)
from repro.quant.uniform import AsymmetricQuantizer


@pytest.fixture
def outlier_tensor(rng) -> np.ndarray:
    """Rows whose range is stretched by one large outlier element —
    the exact case the adaptive method targets (section 5.2 A3)."""
    x = rng.normal(0.0, 0.02, size=(256, 32)).astype(np.float32)
    x[:, 0] += 1.0  # every row has one far-out element
    return x


class TestGreedySearch:
    def test_never_worse_than_naive(self, outlier_tensor):
        for bits in (2, 3, 4):
            naive = mean_l2_error(
                outlier_tensor,
                AsymmetricQuantizer(bits).roundtrip(outlier_tensor),
            )
            result = greedy_range_search(outlier_tensor, bits, 25, 1.0)
            assert float(np.mean(result.errors)) <= naive + 1e-9

    def test_improves_on_outlier_rows(self, outlier_tensor):
        """At low bit-widths the tightened range must strictly win."""
        naive = mean_l2_error(
            outlier_tensor,
            AsymmetricQuantizer(2).roundtrip(outlier_tensor),
        )
        result = greedy_range_search(outlier_tensor, 2, 25, 1.0)
        assert float(np.mean(result.errors)) < naive * 0.9

    def test_range_stays_within_original(self, outlier_tensor):
        result = greedy_range_search(outlier_tensor, 2, 25, 1.0)
        row_min = outlier_tensor.min(axis=1)
        row_max = outlier_tensor.max(axis=1)
        assert np.all(result.xmin >= row_min - 1e-6)
        assert np.all(result.xmax <= row_max + 1e-6)
        assert np.all(result.xmax >= result.xmin)

    def test_iteration_count_follows_bins_and_ratio(self, outlier_tensor):
        r1 = greedy_range_search(outlier_tensor, 4, 20, 1.0)
        r2 = greedy_range_search(outlier_tensor, 4, 20, 0.5)
        assert r1.iterations == 19  # capped at num_bins - 1
        assert r2.iterations == 10

    def test_more_bins_never_hurt(self, outlier_tensor):
        errors = []
        for bins in (5, 15, 30, 45):
            result = greedy_range_search(outlier_tensor, 2, bins, 1.0)
            errors.append(float(np.mean(result.errors)))
        # Finer steps explore a superset of coarse candidates only
        # approximately, but the trend must be non-increasing overall.
        assert errors[-1] <= errors[0]

    def test_bad_parameters_rejected(self, outlier_tensor):
        with pytest.raises(QuantizationError, match="num_bins"):
            greedy_range_search(outlier_tensor, 4, 0, 1.0)
        with pytest.raises(QuantizationError, match="ratio"):
            greedy_range_search(outlier_tensor, 4, 10, 0.0)
        with pytest.raises(QuantizationError, match="ratio"):
            greedy_range_search(outlier_tensor, 4, 10, 1.5)


class TestAdaptiveQuantizer:
    def test_roundtrip_shapes(self, outlier_tensor):
        q = AdaptiveAsymmetricQuantizer(4, num_bins=10)
        out = q.roundtrip(outlier_tensor)
        assert out.shape == outlier_tensor.shape

    def test_beats_naive_asymmetric_at_low_bits(self, outlier_tensor):
        for bits in (2, 3):
            naive = mean_l2_error(
                outlier_tensor,
                AsymmetricQuantizer(bits).roundtrip(outlier_tensor),
            )
            adaptive = mean_l2_error(
                outlier_tensor,
                AdaptiveAsymmetricQuantizer(
                    bits, num_bins=25
                ).roundtrip(outlier_tensor),
            )
            assert adaptive < naive

    def test_stores_min_and_max(self, outlier_tensor):
        qt = AdaptiveAsymmetricQuantizer(4).quantize(outlier_tensor)
        assert set(qt.params) == {"xmin", "xmax"}
        assert qt.quantizer == "adaptive"

    def test_identical_inputs_identical_outputs(self, outlier_tensor):
        """The greedy search is deterministic."""
        q = AdaptiveAsymmetricQuantizer(3, num_bins=20, ratio=0.8)
        a = q.quantize(outlier_tensor)
        b = q.quantize(outlier_tensor)
        np.testing.assert_array_equal(a.codes, b.codes)
        np.testing.assert_array_equal(a.params["xmin"], b.params["xmin"])

    def test_constant_rows_handled(self):
        x = np.full((4, 8), 1.5, dtype=np.float32)
        q = AdaptiveAsymmetricQuantizer(2, num_bins=10)
        np.testing.assert_allclose(q.roundtrip(x), x, atol=1e-6)

    def test_single_column_tensor(self, rng):
        x = rng.normal(size=(16, 1)).astype(np.float32)
        out = AdaptiveAsymmetricQuantizer(4, num_bins=5).roundtrip(x)
        # One element per row: min == max == value, exact recovery.
        np.testing.assert_allclose(out, x, atol=1e-6)

    def test_invalid_constructor_params(self):
        with pytest.raises(QuantizationError):
            AdaptiveAsymmetricQuantizer(4, num_bins=0)
        with pytest.raises(QuantizationError):
            AdaptiveAsymmetricQuantizer(4, ratio=0.0)
