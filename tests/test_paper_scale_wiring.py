"""Wiring tests at the paper's cluster topology (16 nodes x 8 GPUs)."""

from __future__ import annotations

import pytest

from repro.experiments import build_experiment, paper_scale_config


@pytest.fixture(scope="module")
def paper_exp():
    """One shared paper-topology experiment (module-scoped: pricey)."""
    return build_experiment(
        paper_scale_config(rows_per_table=16384, interval_batches=10)
    )


class TestPaperTopology:
    def test_cluster_shape(self, paper_exp):
        assert paper_exp.cluster.world_size == 128
        assert len(paper_exp.cluster.nodes) == 16

    def test_sharding_covers_model(self, paper_exp):
        plan = paper_exp.plan
        total_rows = sum(
            s.rows for s in plan.shards
        )
        assert total_rows == paper_exp.config.model.total_embedding_rows

    def test_every_node_holds_state(self, paper_exp):
        """The balanced sharder spreads tables over the fleet."""
        loaded_nodes = sum(
            1
            for node in paper_exp.cluster.nodes
            if paper_exp.plan.node_state_bytes(node.node_id) > 0
        )
        assert loaded_nodes >= 8  # 8 tables -> at least 8 nodes loaded

    def test_one_interval_trains_and_checkpoints(self, paper_exp):
        report = paper_exp.controller.run_intervals(1)[0]
        assert report.batches == 10
        event = paper_exp.controller.stats.events[0]
        assert event.manifest.kind == "full"
        # Snapshot stall at this scale stays within the paper's bound.
        stall = paper_exp.controller.snapshot_manager.total_stall_s
        assert stall < 7.0

    def test_step_time_dominated_by_compute(self, paper_exp):
        """At the default calibration, communication is a minority of
        the iteration (the paper trains compute-bound)."""
        clock = paper_exp.clock
        compute = clock.total("compute")
        comm = clock.total("allreduce") + clock.total("alltoall")
        assert compute > comm
