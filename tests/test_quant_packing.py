"""Unit tests for sub-byte bit-packing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PackingError
from repro.quant.packing import (
    pack_bits,
    pack_rows,
    packed_size,
    row_slice_is_aligned,
    unpack_bits,
    unpack_rows,
)


class TestPackedSize:
    @pytest.mark.parametrize(
        "count,bits,expected",
        [
            (0, 4, 0),
            (1, 1, 1),
            (8, 1, 1),
            (9, 1, 2),
            (4, 2, 1),
            (3, 3, 2),
            (8, 3, 3),
            (2, 4, 1),
            (1, 8, 1),
            (1000, 8, 1000),
        ],
    )
    def test_exact_sizes(self, count, bits, expected):
        assert packed_size(count, bits) == expected

    def test_negative_count_rejected(self):
        with pytest.raises(PackingError, match="negative"):
            packed_size(-1, 4)

    def test_unsupported_bits_rejected(self):
        with pytest.raises(PackingError, match="unsupported"):
            packed_size(10, 9)
        with pytest.raises(PackingError, match="unsupported"):
            packed_size(10, 0)


class TestRoundTrip:
    @pytest.mark.parametrize("bits", range(1, 9))
    def test_all_code_values(self, bits):
        codes = np.arange(1 << bits, dtype=np.uint8)
        packed = pack_bits(codes, bits)
        out = unpack_bits(packed, bits, codes.size)
        np.testing.assert_array_equal(out, codes)

    @pytest.mark.parametrize("bits", [2, 3, 4, 8])
    @pytest.mark.parametrize("count", [1, 7, 8, 9, 63, 64, 65, 1000])
    def test_random_codes_many_lengths(self, bits, count, rng):
        codes = rng.integers(0, 1 << bits, size=count).astype(np.uint8)
        out = unpack_bits(pack_bits(codes, bits), bits, count)
        np.testing.assert_array_equal(out, codes)

    def test_empty(self):
        assert pack_bits(np.zeros(0, dtype=np.uint8), 4).size == 0
        assert unpack_bits(np.zeros(0, dtype=np.uint8), 4, 0).size == 0

    def test_density(self, rng):
        """Packed size must actually be bits/8 of the naive byte size."""
        codes = rng.integers(0, 4, size=4000).astype(np.uint8)
        packed = pack_bits(codes, 2)
        assert packed.size == 1000

    def test_2d_rows_roundtrip(self, rng):
        codes = rng.integers(0, 16, size=(37, 16)).astype(np.uint8)
        packed = pack_rows(codes, 4)
        out = unpack_rows(packed, 4, 37, 16)
        np.testing.assert_array_equal(out, codes)


class TestValidation:
    def test_out_of_range_codes_rejected(self):
        with pytest.raises(PackingError, match="out of range"):
            pack_bits(np.array([4], dtype=np.uint8), 2)

    def test_negative_codes_rejected(self):
        with pytest.raises(PackingError, match="out of range"):
            pack_bits(np.array([-1], dtype=np.int64), 4)

    def test_undersized_buffer_rejected(self):
        packed = pack_bits(np.zeros(16, dtype=np.uint8), 4)
        with pytest.raises(PackingError, match="too small"):
            unpack_bits(packed, 4, 100)

    def test_pack_rows_requires_2d(self):
        with pytest.raises(PackingError, match="2-D"):
            pack_rows(np.zeros(8, dtype=np.uint8), 4)


class TestAlignment:
    @pytest.mark.parametrize(
        "cols,bits,aligned",
        [
            (16, 4, True),  # 64 bits per row
            (16, 2, True),
            (16, 3, True),  # 48 bits
            (15, 4, False),  # 60 bits
            (3, 3, False),  # 9 bits
            (8, 8, True),
        ],
    )
    def test_row_alignment_rule(self, cols, bits, aligned):
        assert row_slice_is_aligned(cols, bits) is aligned

    def test_aligned_rows_sliceable(self, rng):
        """With aligned rows, a row's bytes can be sliced from the pack."""
        cols, bits = 16, 4  # 8 bytes per row
        codes = rng.integers(0, 16, size=(10, cols)).astype(np.uint8)
        packed = pack_rows(codes, bits)
        row_bytes = cols * bits // 8
        for r in range(10):
            segment = packed[r * row_bytes : (r + 1) * row_bytes]
            out = unpack_bits(segment, bits, cols)
            np.testing.assert_array_equal(out, codes[r])
