"""Edge-case tests for controller behaviour under adverse conditions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CheckpointConfig, StorageConfig
from repro.core.bitwidth import FALLBACK_BIT_WIDTH
from repro.core.manifest import KIND_FULL
from repro.errors import ReproError
from repro.experiments import build_experiment, small_config
from repro.failures import FailureInjector, ScheduledFailures


def drain(exp) -> None:
    exp.clock.advance_to(exp.store.timeline.free_at + 1.0, "drain")


class TestBitWidthFallbackThroughController:
    def test_excess_restores_fall_back_to_8bit(self):
        """Section 6.2.1: exceeding the restore estimate flips future
        checkpoints to 8-bit quantization."""
        config = small_config(
            interval_batches=4,
            num_tables=2,
            rows_per_table=512,
            batch_size=32,
        )
        config = config.with_overrides(
            checkpoint=CheckpointConfig(
                interval_batches=4,
                policy="intermittent",
                quantizer="adaptive",
                bit_width=None,  # dynamic selection
                expected_restores=0,  # any restore exceeds the budget
            )
        )
        exp = build_experiment(config)
        assert exp.controller.current_bit_width() == 2  # L=0 -> 2-bit
        exp.controller.run_intervals(2)
        drain(exp)
        exp.controller.restore_latest()
        assert exp.controller.bitwidth.fell_back
        assert exp.controller.current_bit_width() == FALLBACK_BIT_WIDTH
        # The next checkpoint is written at 8 bits.
        exp.controller.run_intervals(1)
        last = exp.controller.stats.events[-1].manifest
        assert last.bit_width == FALLBACK_BIT_WIDTH

    def test_fixed_width_ignores_restores(self):
        exp = build_experiment(
            small_config(
                bit_width=4,
                interval_batches=4,
                num_tables=2,
                rows_per_table=512,
                batch_size=32,
            )
        )
        exp.controller.run_intervals(2)
        drain(exp)
        exp.controller.restore_latest()
        assert exp.controller.current_bit_width() == 4


class TestRetentionUnderValidity:
    def test_no_window_without_valid_checkpoint(self):
        """While a write is in flight, the previous checkpoint must
        survive retention — a crash in that window still recovers."""
        exp = build_experiment(
            small_config(
                policy="full",
                keep_last=1,
                interval_batches=4,
                num_tables=2,
                rows_per_table=512,
                batch_size=32,
            )
        )
        exp.controller.run_intervals(2)
        # Immediately after the 2nd trigger: its write is in flight and
        # the 1st checkpoint must still be restorable.
        valid = exp.controller.valid_manifests()
        assert len(valid) >= 1
        report = exp.controller.restore_latest()
        assert report.checkpoint_id == valid[-1].checkpoint_id

    def test_retention_eventually_prunes(self):
        exp = build_experiment(
            small_config(
                policy="full",
                keep_last=1,
                interval_batches=4,
                num_tables=2,
                rows_per_table=512,
                batch_size=32,
            )
        )
        exp.controller.run_intervals(4)
        # At most: 1 kept valid + 1 in flight.
        assert len(exp.controller.manifests) <= 2


class TestCrashDuringWrite:
    def test_recovery_ignores_torn_checkpoint(self):
        """A checkpoint whose write was cut by the crash never became
        valid; recovery must use the previous one."""
        exp = build_experiment(
            small_config(
                quantizer="none",
                interval_batches=4,
                num_tables=2,
                rows_per_table=512,
                batch_size=32,
            )
        )
        exp.controller.run_intervals(1)
        drain(exp)  # first checkpoint completes
        exp.controller.coordinator.grant_interval(4)
        exp.trainer.train_interval(4)
        exp.controller.checkpoint()  # second write begins (in flight)
        # Crash *now*: the 2nd checkpoint's manifest landed in the
        # backend but its validity time is in the future.
        report = exp.controller.restore_latest()
        assert report.checkpoint_id == "ckpt-000000"

    def test_injected_crash_mid_write_recovers(self):
        exp = build_experiment(
            small_config(
                interval_batches=4,
                num_tables=2,
                rows_per_table=512,
                batch_size=32,
            )
        )
        # Fail precisely once, shortly after the first checkpoint
        # triggers (while its write may still be in flight).
        injector = FailureInjector(
            exp.controller, ScheduledFailures([0.9]), seed=3
        )
        result = injector.run(target_intervals=4)
        assert result.completed_intervals == 4
        assert exp.model.batches_trained == 16


class TestStoreCapacityPressure:
    def test_capacity_exhaustion_surfaces(self):
        """A store too small for even one checkpoint fails loudly, not
        silently."""
        config = small_config(
            policy="full",
            quantizer="none",
            interval_batches=2,
            num_tables=2,
            rows_per_table=2048,
            batch_size=32,
        ).with_overrides(
            storage=StorageConfig(
                replication_factor=3, capacity_bytes=50_000
            )
        )
        exp = build_experiment(config)
        with pytest.raises(ReproError):
            exp.controller.run_intervals(1)


class TestRestoreIdempotence:
    def test_double_restore_is_stable(self):
        exp = build_experiment(
            small_config(
                quantizer="none",
                interval_batches=4,
                num_tables=2,
                rows_per_table=512,
                batch_size=32,
            )
        )
        exp.controller.run_intervals(2)
        drain(exp)
        exp.controller.restore_latest()
        first = exp.model.table_weight(0).copy()
        exp.controller.restore_latest()
        np.testing.assert_array_equal(exp.model.table_weight(0), first)
        assert exp.controller.stats.restores == 2
