"""Restore round-trips across backend x bit-width x checkpoint kind.

The fleet mixes byte backends (in-memory, filesystem, mirrored
replicas), precision rungs (4-bit adaptive, 8-bit asymmetric, fp16
cast, fp32 baseline) and full/incremental policies. Every combination
must restore *bit-exactly*: two restores of the same checkpoint yield
identical arrays, lossless rungs reproduce the training state exactly
(fp16 up to the deterministic cast), and manifest validity times order
strictly by interval.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.restore import CheckpointRestorer
from repro.experiments import build_experiment, small_config
from repro.model.dlrm import DLRM
from repro.storage.backends import (
    FileBackend,
    InMemoryBackend,
    MirroredBackend,
)

#: (label, quantizer, effective bits) — the fleet's precision rungs.
PRECISIONS = (
    ("q4", "adaptive", 4),
    ("q8", "asymmetric", 8),
    ("fp16", "float16", 16),
    ("fp32", "none", 32),
)

KINDS = ("full", "incremental")

BACKENDS = ("inmemory", "file", "mirrored")


def make_backend(name: str, tmp_path):
    if name == "inmemory":
        return InMemoryBackend()
    if name == "file":
        return FileBackend(tmp_path / "store")
    if name == "mirrored":
        return MirroredBackend([InMemoryBackend(), InMemoryBackend()])
    raise AssertionError(name)


def run_job(backend, quantizer: str, bits: int, kind: str):
    """Train three intervals and return (experiment, live weights)."""
    config = small_config(
        policy="full" if kind == "full" else "one_shot",
        quantizer=quantizer,
        bit_width=bits if bits <= 8 else None,
        interval_batches=5,
        num_tables=2,
        rows_per_table=512,
        embedding_dim=8,
        batch_size=32,
        num_nodes=1,
        devices_per_node=2,
        keep_last=10,  # keep everything; ordering checks want history
    )
    exp = build_experiment(config, backend=backend)
    exp.controller.run_intervals(3)
    live = {
        t: exp.model.table_weight(t).copy()
        for t in range(exp.model.num_tables)
    }
    return exp, live


def newest_target(exp):
    """The newest checkpoint once every background write has landed."""
    horizon = (
        max(m.valid_at_s for m in exp.controller.manifests.values()) + 1.0
    )
    target = exp.controller.restorer.latest_valid(
        exp.controller.job_id, at_time_s=horizon
    )
    assert target is not None
    return target


def restore_fresh(exp) -> DLRM:
    fresh = DLRM(exp.config.model)
    exp.controller.restorer.restore(
        fresh,
        newest_target(exp),
        exp.controller.manifests,
        policy=exp.controller.policy,
    )
    return fresh


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("label,quantizer,bits", PRECISIONS)
@pytest.mark.parametrize("kind", KINDS)
def test_restore_roundtrip(backend_name, label, quantizer, bits, kind, tmp_path):
    backend = make_backend(backend_name, tmp_path)
    exp, live = run_job(backend, quantizer, bits, kind)

    if kind == "incremental":
        # The policy actually produced increments after the baseline.
        kinds = [m.kind for m in exp.controller.manifests.values()]
        assert "incremental" in kinds

    # Manifest validity strictly orders by interval.
    ordered = sorted(
        exp.controller.manifests.values(),
        key=lambda m: m.interval_index,
    )
    for a, b in zip(ordered, ordered[1:]):
        assert b.valid_at_s > a.valid_at_s

    first = restore_fresh(exp)
    second = restore_fresh(exp)

    for t in range(exp.model.num_tables):
        # Bit-exact determinism: restoring twice gives identical bytes.
        np.testing.assert_array_equal(
            first.table_weight(t), second.table_weight(t)
        )
        restored = first.table_weight(t)
        expected = live[t]
        if quantizer == "none":
            np.testing.assert_array_equal(restored, expected)
        elif quantizer == "float16":
            np.testing.assert_array_equal(
                restored,
                expected.astype(np.float16).astype(np.float32),
            )
        else:
            # Lossy rungs: bounded error around the training state.
            err = np.abs(restored - expected)
            assert float(err.mean()) < 0.02
            assert float(err.max()) < 1.0

    if kind == "full" and quantizer not in ("none", "float16"):
        # Bit-exact dequantization: re-quantizing the live rows with an
        # identically configured quantizer reproduces the restored
        # bytes exactly — storage and codec added no drift.
        target = newest_target(exp)
        reference = exp.controller._build_quantizer()
        for shard in target.shards:
            shard_rows = live[shard.table_id][
                shard.row_start : shard.row_end
            ]
            np.testing.assert_array_equal(
                first.table_weight(shard.table_id)[
                    shard.row_start : shard.row_end
                ],
                reference.roundtrip(shard_rows),
            )

    # Optimizer accumulators ride along; the fp32 rung keeps them exact.
    if quantizer == "none":
        for t in range(exp.model.num_tables):
            np.testing.assert_array_equal(
                first.table_accumulator(t),
                exp.model.table_accumulator(t),
            )


def test_mirrored_backend_survives_replica_loss(tmp_path):
    backend = MirroredBackend([InMemoryBackend(), InMemoryBackend()])
    exp, live = run_job(backend, "none", 32, "incremental")
    backend.fail_replica(0)
    restored = restore_fresh(exp)
    for t in range(exp.model.num_tables):
        np.testing.assert_array_equal(
            restored.table_weight(t), live[t]
        )


def test_file_backend_restores_across_processes(tmp_path):
    """A second 'process' (fresh store/restorer) reads the same files."""
    from repro.distributed.clock import SimClock
    from repro.storage.object_store import ObjectStore

    backend_dir = tmp_path / "store"
    exp, live = run_job(FileBackend(backend_dir), "none", 32, "full")
    newest_valid = max(
        m.valid_at_s for m in exp.controller.manifests.values()
    )

    clock = SimClock()
    clock.advance(newest_valid + 1.0, "prior-history")
    reopened = ObjectStore(
        exp.config.storage, clock, backend=FileBackend(backend_dir)
    )
    restorer = CheckpointRestorer(reopened, clock)
    manifests = restorer.list_manifests("job0")
    target = restorer.latest_valid("job0")
    assert target is not None
    fresh = DLRM(exp.config.model)
    restorer.restore(fresh, target, manifests)
    for t in range(fresh.num_tables):
        np.testing.assert_array_equal(fresh.table_weight(t), live[t])
