"""Unit tests for the data substrate: batches, synthetic data, reader."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DataConfig, ModelConfig, ReaderConfig
from repro.data.batch import Batch
from repro.data.reader import ReaderMaster, ReaderWorker
from repro.data.state import ReaderState
from repro.data.synthetic import SyntheticClickDataset, ZipfianSampler
from repro.errors import ReaderError, ReaderQuotaExceededError


class TestBatch:
    def test_valid_batch(self, tiny_dataset):
        batch = tiny_dataset.batch(0)
        assert batch.num_samples == 16
        assert batch.num_tables == 3

    def test_label_shape_validated(self):
        with pytest.raises(ReaderError, match="labels"):
            Batch(
                dense=np.zeros((4, 2), dtype=np.float32),
                sparse=[],
                labels=np.zeros(3, dtype=np.float32),
                batch_index=0,
            )

    def test_negative_index_rejected(self):
        with pytest.raises(ReaderError, match="negative"):
            Batch(
                dense=np.zeros((1, 1), dtype=np.float32),
                sparse=[],
                labels=np.zeros(1, dtype=np.float32),
                batch_index=-1,
            )


class TestZipfianSampler:
    def test_skew_increases_with_alpha(self, rng):
        flat = ZipfianSampler(10_000, alpha=0.5, seed=1)
        steep = ZipfianSampler(10_000, alpha=1.5, seed=1)
        assert steep.hot_fraction(0.01) > flat.hot_fraction(0.01)

    def test_samples_in_range(self, rng):
        sampler = ZipfianSampler(100, alpha=1.1, seed=2)
        draws = sampler.sample((1000,), rng)
        assert draws.min() >= 0
        assert draws.max() < 100

    def test_hot_rows_dominate(self, rng):
        sampler = ZipfianSampler(10_000, alpha=1.2, seed=3)
        draws = sampler.sample((100_000,), rng)
        unique = np.unique(draws).size
        assert unique < 10_000 * 0.8  # far from uniform coverage

    def test_deterministic_permutation(self, rng):
        a = ZipfianSampler(50, alpha=1.0, seed=9)
        b = ZipfianSampler(50, alpha=1.0, seed=9)
        d1 = a.sample((100,), np.random.default_rng(5))
        d2 = b.sample((100,), np.random.default_rng(5))
        np.testing.assert_array_equal(d1, d2)

    def test_invalid_args(self):
        with pytest.raises(ReaderError):
            ZipfianSampler(0, 1.0, 0)
        with pytest.raises(ReaderError):
            ZipfianSampler(10, 0.0, 0)


class TestSyntheticDataset:
    def test_batches_are_deterministic(self, tiny_dataset):
        a = tiny_dataset.batch(17)
        b = tiny_dataset.batch(17)
        np.testing.assert_array_equal(a.dense, b.dense)
        np.testing.assert_array_equal(a.labels, b.labels)
        for s1, s2 in zip(a.sparse, b.sparse):
            np.testing.assert_array_equal(s1, s2)

    def test_different_indices_differ(self, tiny_dataset):
        a = tiny_dataset.batch(0)
        b = tiny_dataset.batch(1)
        assert not np.array_equal(a.dense, b.dense)

    def test_stateless_regeneration(self, tiny_model_config, tiny_data_config):
        """Two dataset instances with the same config agree batch-wise —
        the property reader resume depends on."""
        d1 = SyntheticClickDataset(tiny_model_config, tiny_data_config)
        d2 = SyntheticClickDataset(tiny_model_config, tiny_data_config)
        np.testing.assert_array_equal(
            d1.batch(42).labels, d2.batch(42).labels
        )

    def test_labels_correlate_with_features(self, tiny_model_config):
        """The planted model must make labels learnable."""
        config = DataConfig(batch_size=4096, label_noise=0.0)
        dataset = SyntheticClickDataset(tiny_model_config, config)
        batch = dataset.batch(0)
        ctr = batch.labels.mean()
        assert 0.02 < ctr < 0.98  # neither degenerate class

    def test_indices_within_table_ranges(self, tiny_dataset, tiny_model_config):
        batch = tiny_dataset.batch(3)
        for table_id, idx in enumerate(batch.sparse):
            assert idx.min() >= 0
            assert idx.max() < tiny_model_config.rows_per_table[table_id]

    def test_eval_batches_disjoint_from_training(self, tiny_dataset):
        eval_batches = tiny_dataset.eval_batches(2)
        assert eval_batches[0].batch_index >= 1 << 30

    def test_negative_index_rejected(self, tiny_dataset):
        with pytest.raises(ReaderError):
            tiny_dataset.batch(-1)


class TestReaderWorker:
    def test_ownership_striping(self, tiny_dataset):
        worker = ReaderWorker(tiny_dataset, worker_id=1, num_workers=4)
        assert worker.owns(1)
        assert worker.owns(5)
        assert not worker.owns(0)

    def test_foreign_batch_rejected(self, tiny_dataset):
        worker = ReaderWorker(tiny_dataset, worker_id=1, num_workers=4)
        with pytest.raises(ReaderError, match="foreign"):
            worker.read(0)


class TestCoordinatedReader:
    @pytest.fixture
    def reader(self, tiny_dataset):
        return ReaderMaster(
            tiny_dataset,
            ReaderConfig(num_workers=3, prefetch_depth=4, coordinated=True),
        )

    def test_batches_delivered_in_order(self, reader):
        reader.begin_interval(10)
        indices = [reader.next_batch().batch_index for _ in range(10)]
        assert indices == list(range(10))

    def test_quota_enforced(self, reader):
        reader.begin_interval(3)
        for _ in range(3):
            reader.next_batch()
        with pytest.raises(ReaderQuotaExceededError):
            reader.next_batch()

    def test_state_clean_at_interval_end(self, reader):
        reader.begin_interval(5)
        for _ in range(5):
            reader.next_batch()
        state = reader.collect_state()
        assert state.in_flight == 0
        assert state.next_batch_index == 5
        assert state.batches_delivered == 5

    def test_state_collection_with_inflight_rejected(self, reader):
        reader.begin_interval(8)
        reader.next_batch()  # prefetch has filled the queue
        assert reader.in_flight > 0
        with pytest.raises(ReaderError, match="in-flight"):
            reader.collect_state()

    def test_restore_resumes_exactly(self, reader):
        reader.begin_interval(4)
        for _ in range(4):
            reader.next_batch()
        state = reader.collect_state()
        reader.restore(state)
        reader.begin_interval(2)
        assert reader.next_batch().batch_index == 4

    def test_begin_interval_accumulates(self, reader):
        reader.begin_interval(2)
        reader.begin_interval(3)
        for expected in range(5):
            assert reader.next_batch().batch_index == expected

    def test_uncoordinated_begin_interval_rejected(self, tiny_dataset):
        reader = ReaderMaster(
            tiny_dataset, ReaderConfig(coordinated=False)
        )
        with pytest.raises(ReaderError, match="coordinated"):
            reader.begin_interval(5)


class TestUncoordinatedReader:
    @pytest.fixture
    def reader(self, tiny_dataset):
        return ReaderMaster(
            tiny_dataset,
            ReaderConfig(num_workers=2, prefetch_depth=6, coordinated=False),
        )

    def test_free_running_prefetch(self, reader):
        reader.next_batch()
        assert reader.in_flight == 6  # prefetch refilled after delivery

    def test_state_gap_exists(self, reader):
        """The paper's trainer-reader gap: the reader's recorded
        position is ahead of what the trainer consumed."""
        for _ in range(3):
            reader.next_batch()
        state = reader.collect_state()
        assert state.in_flight > 0
        assert state.next_batch_index > state.batches_delivered

    def test_resume_from_gapped_state_skips_batches(self, reader):
        for _ in range(3):
            reader.next_batch()  # trainer consumed 0,1,2
        state = reader.collect_state()  # reader position is 3 + in-flight
        reader.restore(state)
        next_index = reader.next_batch().batch_index
        assert next_index > 3  # batches were skipped, never trained


class TestReaderState:
    def test_roundtrip(self):
        state = ReaderState(
            next_batch_index=7, in_flight=2, batches_delivered=5
        )
        assert ReaderState.from_dict(state.to_dict()) == state

    def test_validation(self):
        with pytest.raises(ReaderError):
            ReaderState(next_batch_index=-1, in_flight=0, batches_delivered=0)
