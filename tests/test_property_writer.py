"""Property-based tests on the writer/restore path.

These drive the chunked writer with randomly generated shard states and
masks (no trainer in the loop) and assert the storage-level invariants:
exactly the masked rows are written, restore reproduces them, and byte
accounting matches the manifests.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import StorageConfig
from repro.core.manifest import KIND_FULL, KIND_INCREMENTAL
from repro.core.snapshot import ModelSnapshot, ShardSnapshot
from repro.core.writer import CheckpointWriter
from repro.data.state import ReaderState, TrainerProgress
from repro.distributed.clock import SimClock
from repro.storage.object_store import ObjectStore


def make_snapshot(
    rng: np.random.Generator,
    rows: int,
    dim: int,
    mask: np.ndarray,
) -> ModelSnapshot:
    """A hand-built snapshot with one shard (no trainer needed)."""
    shard = ShardSnapshot(
        shard_id=0,
        table_id=0,
        row_start=0,
        row_end=rows,
        weight=rng.normal(0, 0.1, size=(rows, dim)).astype(np.float32),
        accumulator=rng.random(rows).astype(np.float32),
        mask=mask,
    )
    return ModelSnapshot(
        taken_at_s=0.0,
        interval_index=0,
        stall_time_s=0.0,
        dense_state={"w": np.ones((2, 2), dtype=np.float32)},
        shards={0: shard},
        reader_state=ReaderState(0, 0, 0),
        trainer_progress=TrainerProgress(0, 0, 0.0),
    )


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_incremental_writes_exactly_masked_rows(data):
    rows = data.draw(st.integers(min_value=1, max_value=200))
    dim = data.draw(st.sampled_from([1, 4, 16]))
    chunk_rows = data.draw(st.integers(min_value=1, max_value=64))
    mask_bits = data.draw(
        st.lists(st.booleans(), min_size=rows, max_size=rows)
    )
    mask = np.array(mask_bits, dtype=bool)
    rng = np.random.default_rng(7)
    snapshot = make_snapshot(rng, rows, dim, mask)
    clock = SimClock()
    store = ObjectStore(StorageConfig(), clock)
    writer = CheckpointWriter(store, clock)

    from repro.quant import make_quantizer

    manifest, report = writer.write_checkpoint(
        snapshot, KIND_INCREMENTAL, "c", "j", "base", "one_shot",
        make_quantizer("none"), chunk_rows=chunk_rows,
    )
    assert report.rows_written == int(mask.sum())
    assert manifest.embedding_rows_stored == int(mask.sum())
    # Every chunk respects the chunk size.
    for shard_record in manifest.shards:
        for chunk in shard_record.chunks:
            assert 0 < chunk.row_count <= chunk_rows


@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_full_write_restore_roundtrip_bitexact(data):
    rows = data.draw(st.integers(min_value=1, max_value=128))
    dim = data.draw(st.sampled_from([2, 8]))
    chunk_rows = data.draw(st.integers(min_value=1, max_value=50))
    rng = np.random.default_rng(data.draw(st.integers(0, 1000)))
    mask = np.zeros(rows, dtype=bool)
    snapshot = make_snapshot(rng, rows, dim, mask)
    clock = SimClock()
    store = ObjectStore(StorageConfig(), clock)
    writer = CheckpointWriter(store, clock)

    from repro.quant import make_quantizer
    from repro.serialize.codec import decode_array, decode_payload
    from repro.serialize.format import decode_frames

    manifest, _ = writer.write_checkpoint(
        snapshot, KIND_FULL, "c", "j", None, "full",
        make_quantizer("none"), chunk_rows=chunk_rows,
        quantize_optimizer_state=False,
    )
    # Reassemble the table from stored chunks and compare bit-exactly.
    reassembled = np.zeros((rows, dim), dtype=np.float32)
    accum = np.zeros(rows, dtype=np.float32)
    for shard_record in manifest.shards:
        for chunk in shard_record.chunks:
            meta, frames = decode_frames(store.backend.read(chunk.key))
            chunk_rows_arr = decode_array(frames[0].payload)
            if chunk_rows_arr.size == 0:
                base = int(meta["row_base"])
                chunk_rows_arr = np.arange(
                    base, base + int(meta["row_count"])
                )
            weights = decode_payload(frames[1].payload)
            if not isinstance(weights, np.ndarray):
                from repro.quant.registry import dequantize_tensor

                weights = dequantize_tensor(weights)
            reassembled[chunk_rows_arr] = weights
            accum[chunk_rows_arr] = decode_array(
                frames[2].payload
            ).reshape(-1)
    np.testing.assert_array_equal(
        reassembled, snapshot.shards[0].weight
    )
    np.testing.assert_array_equal(
        accum, snapshot.shards[0].accumulator
    )


@given(
    chunk_rows=st.integers(min_value=1, max_value=40),
    quantizer_name=st.sampled_from(["none", "asymmetric", "adaptive"]),
)
@settings(max_examples=20, deadline=None)
def test_manifest_bytes_match_store_accounting(chunk_rows, quantizer_name):
    rng = np.random.default_rng(13)
    mask = rng.random(100) < 0.4
    snapshot = make_snapshot(rng, 100, 8, mask)
    clock = SimClock()
    store = ObjectStore(StorageConfig(), clock)
    writer = CheckpointWriter(store, clock)

    from repro.quant import make_quantizer

    manifest, report = writer.write_checkpoint(
        snapshot, KIND_INCREMENTAL, "c", "j", "b", "one_shot",
        make_quantizer(quantizer_name, bits=4), chunk_rows=chunk_rows,
    )
    # Manifest chunk byte totals equal the writer's report...
    assert manifest.logical_bytes == report.logical_bytes
    # ...and every referenced object exists with the declared size.
    for shard_record in manifest.shards:
        for chunk in shard_record.chunks:
            assert store.exists(chunk.key)
            assert store.object_size(chunk.key) == chunk.logical_bytes


@given(mask_fraction=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=20, deadline=None)
def test_incremental_size_proportional_to_mask(mask_fraction):
    """More modified rows -> more bytes, pinned at the endpoints."""
    rng = np.random.default_rng(21)
    rows = 200
    count = int(rows * mask_fraction)
    mask = np.zeros(rows, dtype=bool)
    mask[:count] = True
    snapshot = make_snapshot(rng, rows, 8, mask)
    clock = SimClock()
    store = ObjectStore(StorageConfig(), clock)
    writer = CheckpointWriter(store, clock)

    from repro.quant import make_quantizer

    manifest, report = writer.write_checkpoint(
        snapshot, KIND_INCREMENTAL, "c", "j", "b", "one_shot",
        make_quantizer("none"), chunk_rows=64,
    )
    assert report.rows_written == count
    if count == 0:
        assert manifest.embedding_rows_stored == 0
    per_row = 8 * 4  # fp32 weights
    assert report.logical_bytes >= count * per_row
