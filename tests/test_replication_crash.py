"""Correlated-failure behavior of the peer-replication tier.

The recovery ladder only helps if it *refuses* to help when the blast
radius swallowed the replicas. These tests pin the failure-domain
semantics:

* a power storm (or a rack storm whose rack holds the whole fleet)
  kills every host at once — all rings die with their hosts, every
  victim's ladder comes up empty, and recovery falls back to the
  object store / scratch path, never a dead or stale replica;
* a rack storm with cross-rack placement leaves the cross-rack rings
  alive: victims restore from peers, those reads never touch the
  storage link, and the storm's GET traffic drops against the same
  seeded trace without replication;
* a crash scheduled mid-send aborts the reservation: the partial ring
  write is discarded (``repl_partial_discards``) and every surviving
  ring still satisfies its structural invariants;
* ring lifecycle bookkeeping: host deaths retire rings
  (``repl_rings_lost``) and later baseline flushes re-establish them
  (``repl_rings_rebuilt``) by shipping a fresh anchor.
"""

from __future__ import annotations

import pytest

from repro.config import FailureConfig, FleetConfig
from repro.fleet import run_fleet


def storm_config(
    storm_domain: str,
    rack_size: int,
    k: int = 2,
    seed: int = 47,
    **overrides,
) -> FleetConfig:
    defaults = dict(
        num_jobs=6,
        intervals_per_job=4,
        seed=seed,
        replicate_k=k,
        quantizer_choices=("none",),
        bit_width_choices=(4,),
        priority_mix=0.5,
        storm_domain=storm_domain,
        rack_size=rack_size,
        # Default (long) time-to-failure: the storm is the only
        # failure that fires inside these short runs.
        inject_failures=True,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestWholeDomainLoss:
    """Storms that take the replicas down with the owners."""

    @pytest.mark.parametrize(
        "domain, rack_size",
        [
            ("power", 4),
            # One rack spanning the whole fleet: every "cross-rack"
            # candidate is actually in the blast radius.
            ("rack", 6),
        ],
        ids=["power-storm", "fleet-wide-rack"],
    )
    def test_all_replicas_dead_forces_storage_fallback(
        self, domain, rack_size
    ):
        config = storm_config(domain, rack_size)
        scheduler, report = run_fleet(config)
        assert report.storm is not None
        victims = report.storm[3]
        assert len(victims) == config.num_jobs
        # No ring survived the domain, so the ladder found nothing.
        assert report.repl_peer_restores == 0
        assert report.repl_store_fallbacks >= len(victims)
        assert report.repl_rings_lost > 0
        # Every victim still recovered — through the store (or from
        # scratch when nothing restorable landed), never a dead ring.
        for job in report.jobs:
            if job.job_id not in victims:
                continue
            assert job.restores + job.scratch_restarts > 0
            for sample in job.restore_samples:
                assert sample.source == "store"

    def test_storm_bookkeeping_precedes_any_recovery(self):
        """The first victim to recover must already see the *whole*
        blast radius dead — no stale read from a ring whose host died
        in the same storm."""
        config = storm_config("power", 4)
        events = []
        scheduler, report = run_fleet(config, on_event=events.append)
        storm_crashes = [
            e for e in events
            if e.kind == "crash" and e.payload.get("cause") == "storm"
        ]
        assert storm_crashes
        for event in storm_crashes:
            restored_from = event.payload.get("restored_from")
            assert restored_from is None or not str(
                restored_from
            ).startswith("peer:")


class TestCrossRackSurvival:
    """Small racks: cross-rack rings outlive the storm."""

    def test_victims_restore_from_cross_rack_peers(self):
        config = storm_config("rack", rack_size=2)
        scheduler, report = run_fleet(config)
        assert report.storm is not None
        assert report.repl_peer_restores > 0
        peer_samples = [
            s
            for job in report.jobs
            for s in job.restore_samples
            if s.source.startswith("peer_")
        ]
        assert peer_samples
        # The same-rack peer died in the same storm; survivors are by
        # construction on other racks.
        storm_peer_samples = [
            s for s in peer_samples if s.cause == "storm"
        ]
        assert storm_peer_samples
        for sample in storm_peer_samples:
            assert sample.source == "peer_cross_rack"

    def test_peer_reads_bypass_the_storage_link(self):
        """Same seeded trace, with and without replication: peer
        recoveries take their bytes off the shared store's GET side."""
        with_repl = storm_config("rack", rack_size=2)
        without_repl = storm_config("rack", rack_size=2, k=0)
        _, repl_report = run_fleet(with_repl)
        _, base_report = run_fleet(without_repl)
        assert repl_report.storm is not None
        assert base_report.storm is not None
        assert repl_report.repl_peer_restores > 0
        assert repl_report.total_get_bytes < base_report.total_get_bytes

    def test_rings_lost_then_rebuilt_at_baseline_flush(self):
        config = storm_config(
            "rack",
            rack_size=2,
            intervals_per_job=8,
            # Flush (and thus rebuild dead rings) every interval.
            baseline_flush_intervals=1,
        )
        scheduler, report = run_fleet(config)
        assert report.repl_rings_lost > 0
        assert report.repl_rings_rebuilt > 0
        # After the run every owner's placement is fully populated
        # again (dead rings were re-established by anchor resend).
        replicator = scheduler.replicator
        for owner_id, hosts in replicator.peers.items():
            if scheduler._jobs_by_id[owner_id].batches_left == 0:
                continue  # owner finished before its next flush
            for ring in replicator.rings[owner_id].values():
                ring.check_invariants()


class TestPartialSendDiscard:
    """A crash mid-send leaves no torn delta behind."""

    def crash_heavy_config(self, seed: int) -> FleetConfig:
        return FleetConfig(
            num_jobs=6,
            intervals_per_job=6,
            seed=seed,
            replicate_k=2,
            quantizer_choices=("none",),
            bit_width_choices=(4,),
            inject_failures=True,
            priority_mix=0.5,
            failures=FailureConfig(
                mean_time_to_failure_s=120.0, min_failure_s=5.0
            ),
        )

    def test_partial_sends_are_discarded_not_committed(self):
        discards = 0
        for seed in (11, 23, 47):
            scheduler, report = run_fleet(self.crash_heavy_config(seed))
            discards += report.repl_partial_discards
            # Whatever the crash pattern, no ring is ever left torn:
            # accounting, budget and step-monotonicity all hold.
            for rings in scheduler.replicator.rings.values():
                for ring in rings.values():
                    ring.check_invariants()
        assert discards > 0

    def test_aborts_show_up_in_ring_counters(self):
        for seed in (11, 23, 47):
            scheduler, report = run_fleet(self.crash_heavy_config(seed))
            if report.repl_partial_discards > 0:
                assert (
                    scheduler.replicator.total_ring_aborts
                    >= report.repl_partial_discards
                )
                return
        pytest.fail("no seed produced a mid-send crash")
