"""Unit tests: dynamic bit-width selection and decoupled snapshots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitwidth import (
    FALLBACK_BIT_WIDTH,
    BitWidthController,
    expected_restores,
    select_bit_width,
)
from repro.core.snapshot import SnapshotManager
from repro.errors import CheckpointError


class TestSelectBitWidth:
    @pytest.mark.parametrize(
        "restores,bits",
        [
            (0, 2),
            (1, 2),
            (2, 3),
            (3, 3),
            (4, 4),
            (10, 4),
            (19, 4),
            (20, 8),
            (100, 8),
        ],
    )
    def test_paper_thresholds(self, restores, bits):
        """Section 6.2.1: 2-bit <= 1 restore, 3-bit <= 3, 4-bit < 20,
        8-bit beyond."""
        assert select_bit_width(restores) == bits

    def test_negative_rejected(self):
        with pytest.raises(CheckpointError):
            select_bit_width(-1)


class TestExpectedRestores:
    def test_poisson_expectation_ceiled(self):
        assert expected_restores(0.1, 30.0) == 3
        assert expected_restores(0.1, 31.0) == 4  # 3.1 -> ceil
        assert expected_restores(0.0, 100.0) == 0

    def test_invalid_args(self):
        with pytest.raises(CheckpointError):
            expected_restores(-0.1, 1.0)


class TestBitWidthController:
    def test_initial_selection(self):
        assert BitWidthController(1).bit_width == 2
        assert BitWidthController(15).bit_width == 4

    def test_fallback_on_excess_failures(self):
        controller = BitWidthController(expected_restores_estimate=1)
        assert controller.record_restore() == 2  # 1st, within budget
        assert controller.record_restore() == FALLBACK_BIT_WIDTH  # 2nd
        assert controller.fell_back

    def test_no_fallback_within_budget(self):
        controller = BitWidthController(3)
        for _ in range(3):
            controller.record_restore()
        assert controller.bit_width == 3
        assert not controller.fell_back


class TestSnapshot:
    def test_snapshot_is_deep_copy(self, tiny_experiment):
        exp = tiny_experiment
        exp.reader.begin_interval(2)
        exp.trainer.train_interval(2)
        manager = SnapshotManager(exp.trainer, exp.clock)
        state = exp.reader.collect_state()
        snapshot = manager.take_snapshot(
            0, exp.controller.tracker_set, state
        )
        shard = exp.plan.shards[0]
        before = snapshot.shards[shard.shard_id].weight.copy()
        exp.trainer.shard_weight(shard)[:] += 1.0  # mutate live model
        np.testing.assert_array_equal(
            snapshot.shards[shard.shard_id].weight, before
        )
        snapshot.release(exp.trainer)

    def test_snapshot_advances_clock_by_stall(self, tiny_experiment):
        exp = tiny_experiment
        manager = SnapshotManager(exp.trainer, exp.clock)
        before = exp.clock.now
        exp.reader.begin_interval(1)
        exp.trainer.train_interval(1)
        t0 = exp.clock.now
        snapshot = manager.take_snapshot(
            0, exp.controller.tracker_set, exp.reader.collect_state()
        )
        assert exp.clock.now - t0 == pytest.approx(snapshot.stall_time_s)
        assert exp.clock.total("snapshot_stall") > 0
        snapshot.release(exp.trainer)
        assert before < exp.clock.now

    def test_stall_time_is_max_over_nodes(self, tiny_experiment):
        exp = tiny_experiment
        manager = SnapshotManager(exp.trainer, exp.clock)
        per_node = [
            node.copy_time_s(exp.trainer.node_snapshot_bytes(node.node_id))
            for node in exp.cluster.nodes
        ]
        expected = max(per_node) + (
            exp.cluster.config.snapshot_fixed_overhead_s
        )
        assert manager.stall_time_s() == pytest.approx(expected)

    def test_host_memory_reserved_and_released(self, tiny_experiment):
        exp = tiny_experiment
        manager = SnapshotManager(exp.trainer, exp.clock)
        exp.reader.begin_interval(1)
        exp.trainer.train_interval(1)
        allocated_before = [n.host_allocated for n in exp.cluster.nodes]
        snapshot = manager.take_snapshot(
            0, exp.controller.tracker_set, exp.reader.collect_state()
        )
        assert any(
            n.host_allocated > b
            for n, b in zip(exp.cluster.nodes, allocated_before)
        )
        snapshot.release(exp.trainer)
        assert [
            n.host_allocated for n in exp.cluster.nodes
        ] == allocated_before

    def test_double_release_is_safe(self, tiny_experiment):
        exp = tiny_experiment
        manager = SnapshotManager(exp.trainer, exp.clock)
        exp.reader.begin_interval(1)
        exp.trainer.train_interval(1)
        snapshot = manager.take_snapshot(
            0, exp.controller.tracker_set, exp.reader.collect_state()
        )
        snapshot.release(exp.trainer)
        snapshot.release(exp.trainer)  # no error, no double free

    def test_snapshot_contains_reader_and_progress(self, tiny_experiment):
        exp = tiny_experiment
        exp.reader.begin_interval(3)
        exp.trainer.train_interval(3)
        manager = SnapshotManager(exp.trainer, exp.clock)
        snapshot = manager.take_snapshot(
            0, exp.controller.tracker_set, exp.reader.collect_state()
        )
        assert snapshot.reader_state.next_batch_index == 3
        assert snapshot.trainer_progress.batches_trained == 3
        snapshot.release(exp.trainer)
