"""Unit tests for the dot interaction and the loss/metric functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.model.interaction import DotInteraction
from repro.model.loss import (
    auc,
    bce_grad,
    bce_with_logits,
    log_loss,
    normalized_entropy,
    sigmoid,
)


class TestDotInteraction:
    def test_output_width(self):
        inter = DotInteraction()
        # T=3 tables + dense: C(4,2)=6 pairs + dim.
        assert inter.output_width(num_tables=3, dim=8) == 8 + 6

    def test_forward_values(self):
        inter = DotInteraction()
        dense = np.array([[1.0, 0.0]], dtype=np.float32)
        e1 = np.array([[0.0, 1.0]], dtype=np.float32)
        e2 = np.array([[1.0, 1.0]], dtype=np.float32)
        out = inter.forward(dense, [e1, e2])
        # Layout: [dense | (e1.dense), (e2.dense), (e2.e1)]
        np.testing.assert_allclose(out[0, :2], [1.0, 0.0])
        np.testing.assert_allclose(out[0, 2:], [0.0, 1.0, 1.0])

    def test_requires_matching_shapes(self):
        inter = DotInteraction()
        dense = np.zeros((2, 4), dtype=np.float32)
        bad = np.zeros((2, 5), dtype=np.float32)
        with pytest.raises(TrainingError, match="shape"):
            inter.forward(dense, [bad])

    def test_requires_at_least_one_table(self):
        with pytest.raises(TrainingError, match="at least one"):
            DotInteraction().forward(np.zeros((1, 2), dtype=np.float32), [])

    def test_backward_before_forward_rejected(self):
        with pytest.raises(TrainingError):
            DotInteraction().backward(np.zeros((1, 3), dtype=np.float32))

    def test_gradients_numerically(self, rng):
        inter = DotInteraction()
        dense = rng.normal(size=(2, 3)).astype(np.float32)
        embs = [
            rng.normal(size=(2, 3)).astype(np.float32) for _ in range(2)
        ]

        def loss() -> float:
            return float(np.sum(inter.forward(dense, embs) ** 2))

        out = inter.forward(dense, embs)
        grad_dense, grad_embs = inter.backward(
            (2 * out).astype(np.float32)
        )
        eps = 1e-3

        def check(arr: np.ndarray, grad: np.ndarray) -> None:
            it = np.nditer(arr, flags=["multi_index"])
            while not it.finished:
                idx = it.multi_index
                orig = arr[idx]
                arr[idx] = orig + eps
                up = loss()
                arr[idx] = orig - eps
                down = loss()
                arr[idx] = orig
                numeric = (up - down) / (2 * eps)
                assert grad[idx] == pytest.approx(
                    numeric, rel=3e-2, abs=2e-3
                )
                it.iternext()

        check(dense, grad_dense)
        for emb, grad in zip(embs, grad_embs):
            check(emb, grad)


class TestLoss:
    def test_sigmoid_extremes_stable(self):
        z = np.array([-500.0, 0.0, 500.0])
        s = sigmoid(z)
        assert s[0] == pytest.approx(0.0, abs=1e-12)
        assert s[1] == pytest.approx(0.5)
        assert s[2] == pytest.approx(1.0, abs=1e-12)

    def test_bce_matches_reference(self, rng):
        z = rng.normal(size=100)
        y = (rng.random(100) > 0.5).astype(np.float32)
        p = sigmoid(z)
        reference = -np.mean(
            y * np.log(p) + (1 - y) * np.log(1 - p)
        )
        assert bce_with_logits(z, y) == pytest.approx(reference, rel=1e-9)

    def test_bce_stable_at_extreme_logits(self):
        z = np.array([1000.0, -1000.0])
        y = np.array([1.0, 0.0])
        assert np.isfinite(bce_with_logits(z, y))
        assert bce_with_logits(z, y) == pytest.approx(0.0, abs=1e-9)

    def test_bce_grad_numerically(self, rng):
        z = rng.normal(size=10)
        y = (rng.random(10) > 0.5).astype(np.float32)
        grad = bce_grad(z, y)
        eps = 1e-5
        for i in range(10):
            zp = z.copy()
            zp[i] += eps
            zm = z.copy()
            zm[i] -= eps
            numeric = (
                bce_with_logits(zp, y) - bce_with_logits(zm, y)
            ) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(TrainingError, match="mismatch"):
            bce_with_logits(np.zeros(3), np.zeros(4))


class TestMetrics:
    def test_log_loss_perfect_predictions(self):
        p = np.array([0.0, 1.0, 1.0])
        y = np.array([0.0, 1.0, 1.0])
        assert log_loss(p, y) < 1e-10

    def test_normalized_entropy_of_base_rate_is_one(self, rng):
        y = (rng.random(10_000) < 0.25).astype(np.float32)
        base = np.full(y.size, y.mean())
        assert normalized_entropy(base, y) == pytest.approx(1.0, rel=1e-3)

    def test_normalized_entropy_rejects_degenerate_labels(self):
        with pytest.raises(TrainingError, match="degenerate"):
            normalized_entropy(np.array([0.5]), np.array([1.0]))

    def test_auc_perfect_ranking(self):
        p = np.array([0.1, 0.2, 0.8, 0.9])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        assert auc(p, y) == pytest.approx(1.0)

    def test_auc_random_is_half(self, rng):
        p = rng.random(20_000)
        y = (rng.random(20_000) > 0.5).astype(np.float32)
        assert auc(p, y) == pytest.approx(0.5, abs=0.02)

    def test_auc_handles_ties(self):
        p = np.array([0.5, 0.5, 0.5, 0.5])
        y = np.array([0.0, 1.0, 0.0, 1.0])
        assert auc(p, y) == pytest.approx(0.5)

    def test_auc_single_class_rejected(self):
        with pytest.raises(TrainingError, match="both classes"):
            auc(np.array([0.5, 0.6]), np.array([1.0, 1.0]))
