"""Tests for the experiment drivers behind the benches (scaled down)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.experiments import (
    accuracy_degradation_experiment,
    adaptive_bins_sweep,
    adaptive_ratio_sweep,
    interval_modified_experiment,
    modified_fraction_experiment,
    optimal_bins,
    quant_error_comparison,
    snapshot_stall_at_scale,
    tracking_overhead_experiment,
    trained_embedding_matrix,
)
from repro.experiments.incremental import incremental_policy_experiment
from repro.experiments.overall import overall_reduction_experiment


class TestModifiedDrivers:
    def test_fig5_driver_shapes(self):
        curves = modified_fraction_experiment(
            rows=2000, lookups_per_step=500, total_steps=12,
            starts=(0, 4, 8),
        )
        assert len(curves) == 3
        origin = curves[0]
        assert len(origin.fractions) == 12
        # Monotone growth of the touched fraction.
        assert list(origin.fractions) == sorted(origin.fractions)
        # Later-start curves observe fewer steps.
        assert len(curves[1].fractions) == 8
        assert len(curves[2].fractions) == 4

    def test_fig5_invalid_starts(self):
        with pytest.raises(SimulationError, match="starts"):
            modified_fraction_experiment(total_steps=5, starts=(7,))

    def test_fig6_driver_shapes(self):
        results = interval_modified_experiment(
            rows=2000, lookups_per_minute=200, total_minutes=60,
            interval_minutes=(10, 30),
        )
        assert [r.interval_steps for r in results] == [10, 30]
        # 6 windows of 10 minutes, 2 windows of 30 minutes.
        assert len(results[0].fractions) == 6
        assert len(results[1].fractions) == 2
        assert results[1].mean_fraction > results[0].mean_fraction

    def test_fig6_run_too_short(self):
        with pytest.raises(SimulationError, match="shorter"):
            interval_modified_experiment(
                total_minutes=20, interval_minutes=(30,)
            )


class TestQuantDrivers:
    @pytest.fixture(scope="class")
    def tensor(self):
        return trained_embedding_matrix(
            rows=512, dim=8, train_batches=40, num_tables=2, seed=5
        )

    def test_fig9_driver(self, tensor):
        rows = quant_error_comparison(
            tensor, bit_widths=(2, 4), kmeans_iterations=3
        )
        assert len(rows) == 8  # 2 widths x 4 methods
        by_key = {(r.method, r.bits): r.mean_l2 for r in rows}
        assert by_key[("asymmetric", 2)] < by_key[("symmetric", 2)]

    def test_fig10_fig11_drivers(self, tensor):
        points = adaptive_bins_sweep(
            tensor, bit_widths=(2,), bins_values=(5, 15)
        )
        assert len(points) == 2
        best = optimal_bins(points, 2)
        assert best in (5, 15)
        ratio_points = adaptive_ratio_sweep(
            tensor, {2: best}, ratios=(0.5, 1.0)
        )
        assert len(ratio_points) == 2
        assert all(p.improvement >= -1e-9 for p in ratio_points)

    def test_trained_matrix_cached(self):
        a = trained_embedding_matrix(
            rows=256, dim=8, train_batches=10, num_tables=2, seed=9
        )
        b = trained_embedding_matrix(
            rows=256, dim=8, train_batches=10, num_tables=2, seed=9
        )
        assert a is b  # cache hit

    def test_trained_matrix_learns(self):
        """The fixture must differ from a fresh init (it trained)."""
        from repro.config import ModelConfig
        from repro.model.dlrm import DLRM

        trained = trained_embedding_matrix(
            rows=256, dim=8, train_batches=30, num_tables=2, seed=10
        )
        fresh = DLRM(
            ModelConfig(
                num_tables=2,
                rows_per_table=(256, 256),
                embedding_dim=8,
                bottom_mlp=(16, 8),
                top_mlp=(16, 1),
                seed=10,
            )
        )
        fresh_matrix = np.concatenate(
            [fresh.table_weight(t) for t in range(2)], axis=0
        )
        assert not np.allclose(trained, fresh_matrix)


class TestAccuracyDriver:
    def test_small_panel(self):
        curves = accuracy_degradation_experiment(
            bits=2,
            restore_counts=(1,),
            total_batches=40,
            grid_every=20,
            seeds=(3,),
        )
        assert len(curves) == 1
        assert len(curves[0].points) == 2
        assert curves[0].bits == 2

    def test_validation(self):
        with pytest.raises(SimulationError):
            accuracy_degradation_experiment(2, (1,), total_batches=0)
        with pytest.raises(SimulationError):
            accuracy_degradation_experiment(2, (1,), seeds=())


class TestIncrementalDriver:
    def test_small_run_structure(self):
        runs = incremental_policy_experiment(
            policies=("one_shot", "consecutive"),
            num_intervals=3,
            interval_batches=4,
            rows_per_table=1024,
            num_tables=2,
        )
        assert [r.policy for r in runs] == ["one_shot", "consecutive"]
        for run in runs:
            assert len(run.size_fractions) == 3
            assert run.size_fractions[0] == pytest.approx(1.0)
            assert run.kinds[0] == "full"

    def test_needs_two_intervals(self):
        with pytest.raises(SimulationError):
            incremental_policy_experiment(num_intervals=1)


class TestOverallDriver:
    def test_small_run(self):
        rows = overall_reduction_experiment(
            num_intervals=3,
            interval_batches=4,
            rows_per_table=2048,
            num_tables=2,
            bands=(("L <= 1", 1),),
        )
        assert len(rows) == 1
        assert rows[0].bit_width == 2
        assert rows[0].bandwidth_reduction > 1.0
        assert rows[0].capacity_reduction > 1.0


class TestStallDriver:
    def test_stall_scales_with_model(self):
        from repro.config import GiB

        small = snapshot_stall_at_scale(64 * GiB)
        large = snapshot_stall_at_scale(2048 * GiB)
        assert large.stall_s > small.stall_s
        assert 0 < small.overhead_fraction < 1

    def test_paper_regime(self):
        from repro.config import GiB

        row = snapshot_stall_at_scale(1024 * GiB)
        assert row.stall_s < 7.0  # the paper's bound

    def test_validation(self):
        with pytest.raises(SimulationError):
            snapshot_stall_at_scale(0)

    def test_tracking_overhead_small(self):
        result = tracking_overhead_experiment(batches=10)
        assert 0 <= result.overhead_fraction < 0.05
