"""Unit tests: checkpoint writer, restore path, retention."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.manifest import KIND_FULL, KIND_INCREMENTAL
from repro.core.policies import make_policy
from repro.core.restore import CheckpointRestorer
from repro.core.retention import RetentionManager
from repro.core.snapshot import SnapshotManager
from repro.core.writer import CheckpointWriter
from repro.errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointNotFoundError,
)
from repro.quant import make_quantizer


@pytest.fixture
def ready(tiny_experiment):
    """Experiment trained for one interval with a snapshot taken."""
    exp = tiny_experiment
    exp.reader.begin_interval(5)
    exp.trainer.train_interval(5)
    manager = SnapshotManager(exp.trainer, exp.clock)
    snapshot = manager.take_snapshot(
        0, exp.controller.tracker_set, exp.reader.collect_state()
    )
    writer = CheckpointWriter(exp.store, exp.clock)
    restorer = CheckpointRestorer(exp.store, exp.clock)
    return exp, snapshot, writer, restorer


class TestWriter:
    def test_full_checkpoint_stores_every_row(self, ready):
        exp, snapshot, writer, _ = ready
        manifest, report = writer.write_checkpoint(
            snapshot, KIND_FULL, "ckpt-0", "job0", None, "full",
            make_quantizer("none"), chunk_rows=100,
        )
        total_rows = sum(s.rows for s in exp.plan.shards)
        assert report.rows_written == total_rows
        assert manifest.kind == KIND_FULL
        assert exp.store.exists("job0/ckpt-0/manifest.json")

    def test_incremental_stores_only_masked_rows(self, ready):
        exp, snapshot, writer, _ = ready
        modified = sum(
            int(s.mask.sum()) for s in snapshot.shards.values()
        )
        assert 0 < modified < sum(s.rows for s in exp.plan.shards)
        manifest, report = writer.write_checkpoint(
            snapshot, KIND_INCREMENTAL, "ckpt-1", "job0", "ckpt-0",
            "one_shot", make_quantizer("none"), chunk_rows=100,
        )
        assert report.rows_written == modified

    def test_chunking_respects_chunk_rows(self, ready):
        exp, snapshot, writer, _ = ready
        manifest, report = writer.write_checkpoint(
            snapshot, KIND_FULL, "ckpt-0", "job0", None, "full",
            make_quantizer("none"), chunk_rows=64,
        )
        for shard_record in manifest.shards:
            for chunk in shard_record.chunks:
                assert chunk.row_count <= 64

    def test_quantization_reduces_bytes(self, ready):
        exp, snapshot, writer, _ = ready
        _, fp32 = writer.write_checkpoint(
            snapshot, KIND_FULL, "a", "job0", None, "full",
            make_quantizer("none"), chunk_rows=1000,
        )
        _, q4 = writer.write_checkpoint(
            snapshot, KIND_FULL, "b", "job0", None, "full",
            make_quantizer("asymmetric", bits=4), chunk_rows=1000,
        )
        # At embedding dim 8 the per-row (xmin, xmax) metadata caps the
        # gain near 2x (the paper's section 6.3.2 caveat: savings are
        # sub-linear in bit width because of metadata).
        assert q4.logical_bytes < fp32.logical_bytes / 1.9

    def test_manifest_written_last_gates_validity(self, ready):
        exp, snapshot, writer, _ = ready
        manifest, report = writer.write_checkpoint(
            snapshot, KIND_FULL, "ckpt-0", "job0", None, "full",
            make_quantizer("none"), chunk_rows=100,
        )
        chunk_ends = [
            t.end_s
            for t in exp.store.log.transfers("put")
            if "chunk" in t.key or "dense" in t.key
        ]
        assert manifest.valid_at_s >= max(chunk_ends)
        assert report.valid_at_s == manifest.valid_at_s

    def test_write_happens_in_background(self, ready):
        """Validity lands later than the trigger: training would continue
        while the storage link drains (decoupling, section 4.2)."""
        exp, snapshot, writer, _ = ready
        _, report = writer.write_checkpoint(
            snapshot, KIND_FULL, "ckpt-0", "job0", None, "full",
            make_quantizer("none"), chunk_rows=100,
        )
        assert report.valid_at_s > exp.clock.now
        assert report.pipeline_duration_s > 0

    def test_bad_chunk_rows_rejected(self, ready):
        _, snapshot, writer, _ = ready
        with pytest.raises(CheckpointError):
            writer.write_checkpoint(
                snapshot, KIND_FULL, "c", "job0", None, "full",
                make_quantizer("none"), chunk_rows=0,
            )

    def test_unknown_kind_rejected(self, ready):
        _, snapshot, writer, _ = ready
        with pytest.raises(CheckpointError, match="kind"):
            writer.write_checkpoint(
                snapshot, "differential", "c", "job0", None, "full",
                make_quantizer("none"), chunk_rows=10,
            )


class TestRestore:
    def test_full_roundtrip_fp32_is_exact(self, ready):
        exp, snapshot, writer, restorer = ready
        manifest, _ = writer.write_checkpoint(
            snapshot, KIND_FULL, "ckpt-0", "job0", None, "full",
            make_quantizer("none"), chunk_rows=100,
        )
        expected = {
            t: exp.model.table_weight(t).copy()
            for t in range(exp.model.num_tables)
        }
        expected_accum = {
            t: exp.model.table_accumulator(t).copy()
            for t in range(exp.model.num_tables)
        }
        exp.model.reinitialize()
        report = restorer.restore(
            exp.model, manifest, {"ckpt-0": manifest}, reader=exp.reader
        )
        for t in range(exp.model.num_tables):
            np.testing.assert_array_equal(
                exp.model.table_weight(t), expected[t]
            )
            np.testing.assert_allclose(
                exp.model.table_accumulator(t),
                expected_accum[t],
                rtol=1e-2,  # accumulator rides along 8-bit quantized
                atol=1e-4,
            )
        assert report.chain_ids == ["ckpt-0"]
        assert exp.model.batches_trained == 5

    def test_quantized_roundtrip_bounded_error(self, ready):
        exp, snapshot, writer, restorer = ready
        manifest, _ = writer.write_checkpoint(
            snapshot, KIND_FULL, "q", "job0", None, "full",
            make_quantizer("asymmetric", bits=8), chunk_rows=100,
        )
        expected = exp.model.table_weight(0).copy()
        exp.model.reinitialize()
        restorer.restore(exp.model, manifest, {"q": manifest})
        got = exp.model.table_weight(0)
        row_range = expected.max(axis=1) - expected.min(axis=1)
        np.testing.assert_array_less(
            np.abs(got - expected).max(axis=1), row_range / 255 + 1e-6
        )

    def test_baseline_plus_increment_chain(self, tiny_experiment):
        exp = tiny_experiment
        manager = SnapshotManager(exp.trainer, exp.clock)
        writer = CheckpointWriter(exp.store, exp.clock)
        restorer = CheckpointRestorer(exp.store, exp.clock)
        policy = make_policy("one_shot")

        exp.reader.begin_interval(4)
        exp.trainer.train_interval(4)
        snap0 = manager.take_snapshot(
            0, exp.controller.tracker_set, exp.reader.collect_state()
        )
        base, _ = writer.write_checkpoint(
            snap0, KIND_FULL, "base", "job0", None, "one_shot",
            make_quantizer("none"), chunk_rows=100,
        )
        snap0.release(exp.trainer)
        # one_shot: tracker keeps accumulating after the baseline.
        exp.controller.tracker_set.reset_all()

        exp.reader.begin_interval(4)
        exp.trainer.train_interval(4)
        snap1 = manager.take_snapshot(
            1, exp.controller.tracker_set, exp.reader.collect_state()
        )
        inc, _ = writer.write_checkpoint(
            snap1, KIND_INCREMENTAL, "inc", "job0", "base", "one_shot",
            make_quantizer("none"), chunk_rows=100,
        )
        snap1.release(exp.trainer)

        expected = exp.model.table_weight(0).copy()
        exp.model.reinitialize()
        manifests = {"base": base, "inc": inc}
        report = restorer.restore(
            exp.model, inc, manifests, reader=exp.reader, policy=policy
        )
        assert report.chain_ids == ["base", "inc"]
        np.testing.assert_array_equal(exp.model.table_weight(0), expected)
        assert exp.model.batches_trained == 8
        assert exp.reader.collect_state().next_batch_index == 8

    def test_corrupt_chunk_detected(self, ready):
        exp, snapshot, writer, restorer = ready
        manifest, _ = writer.write_checkpoint(
            snapshot, KIND_FULL, "ckpt-0", "job0", None, "full",
            make_quantizer("none"), chunk_rows=100,
        )
        chunk_key = manifest.shards[0].chunks[0].key
        blob = bytearray(exp.store.backend.read(chunk_key))
        blob[len(blob) // 2] ^= 0xFF
        exp.store.backend.write(chunk_key, bytes(blob))
        with pytest.raises(CheckpointCorruptError):
            restorer.restore(exp.model, manifest, {"ckpt-0": manifest})

    def test_latest_valid_respects_time(self, ready):
        exp, snapshot, writer, restorer = ready
        manifest, report = writer.write_checkpoint(
            snapshot, KIND_FULL, "ckpt-0", "job0", None, "full",
            make_quantizer("none"), chunk_rows=100,
        )
        # Before the write completes: nothing valid.
        assert restorer.latest_valid("job0", at_time_s=exp.clock.now) is None
        # After: the checkpoint is found.
        found = restorer.latest_valid(
            "job0", at_time_s=report.valid_at_s + 1
        )
        assert found is not None
        assert found.checkpoint_id == "ckpt-0"

    def test_missing_manifest(self, ready):
        _, _, _, restorer = ready
        with pytest.raises(CheckpointNotFoundError):
            restorer.load_manifest("job0", "ghost")


class TestRetention:
    def test_keeps_last_and_protects_bases(self, tiny_experiment):
        exp = tiny_experiment
        exp.controller.config  # uses default keep_last=2
        controller = exp.controller
        controller.run_intervals(4)
        manager = RetentionManager(exp.store, keep_last=1)
        manifests = dict(controller.manifests)
        policy = controller.policy
        report = manager.enforce(manifests, policy, "job0")
        # Whatever was deleted, the newest checkpoint's chain survives.
        newest = max(manifests.values(), key=lambda m: m.interval_index)
        chain = policy.restore_chain(newest, manifests)
        for link in chain:
            assert exp.store.exists(
                f"job0/{link.checkpoint_id}/manifest.json"
            )
        for deleted in report.deleted_ids:
            assert not exp.store.list_keys(f"job0/{deleted}/")

    def test_invalid_keep_last(self, tiny_experiment):
        with pytest.raises(CheckpointError):
            RetentionManager(tiny_experiment.store, keep_last=0)
