"""The part-granular transfer engine: staging, retries, admission.

Covers the :class:`~repro.storage.engine.TransferEngine` surface the
write path migrated onto:

* staged PUTs submit individual multipart parts, timing-identical to
  the immediate-drain ``put()`` when uninterrupted;
* aborting a staged write mid-part leaves no visible object, no
  orphaned parts, and credits the stream's quota back;
* the retry/backoff loop re-issues seeded transient failures, charges
  the wasted latency in simulated time, and populates
  ``OpReceipt.retries`` — deterministically under the failure seed;
* the worker pool accounts measured busy/blocked time so wall-time
  overlap is observable;
* the admission controller's three modes (none / static cap /
  backlog-driven dynamic) and the projected-queue-delay signal.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.config import BackendConfig, StorageConfig
from repro.distributed.clock import SimClock
from repro.errors import (
    ObjectExistsError,
    RetriesExhaustedError,
    StorageError,
    TransientStorageError,
)
from repro.storage import (
    OP_DELETE,
    OP_GET,
    OP_HEAD,
    OP_LIST,
    OP_PUT,
    AdmissionController,
    BandwidthArbiter,
    ObjectStore,
    RemoteObjectBackend,
    projected_queue_delay_s,
    s3like_costs,
)
from repro.storage.bandwidth import TIER_EXPERIMENTAL, TIER_PROD


def remote_store(
    part_size=1000,
    fanout=2,
    failure_probs=None,
    failure_seed=7,
    arbiter=None,
    max_retries=5,
    replication=1,
):
    """1000 B/s writes, 2000 B/s reads, 0.1 s PUT / 0.05 s GET latency."""
    config = StorageConfig(
        write_bandwidth=1000.0,
        read_bandwidth=2000.0,
        replication_factor=replication,
        latency_s=0.0,
        max_retries=max_retries,
        retry_backoff_s=0.02,
    )
    backend = RemoteObjectBackend(
        s3like_costs(
            1000.0,
            2000.0,
            put_latency_s=0.1,
            get_latency_s=0.05,
            list_latency_s=0.02,
            delete_latency_s=0.01,
            head_latency_s=0.005,
        ),
        part_size_bytes=part_size,
        fanout=fanout,
        failure_probs=failure_probs,
        failure_seed=failure_seed,
    )
    return ObjectStore(config, SimClock(), backend=backend, arbiter=arbiter)


class TestStagedPut:
    def test_single_shot_staging_matches_put(self):
        """A staged single-shot write drains to the exact receipt an
        immediate put() produces on an identical store."""
        direct = remote_store(part_size=None).put(
            "k", bytes(500), earliest=2.0
        )
        store = remote_store(part_size=None)
        staged = store.stage_put("k", bytes(500), earliest=2.0)
        assert staged.num_parts == 1
        assert staged.next_ready_s == pytest.approx(2.0)
        receipt = staged.submit_next()
        assert receipt is not None and staged.done
        assert receipt == direct

    def test_multipart_staging_matches_put(self):
        payload = bytes(range(256)) * 16  # 4096 B -> 5 parts of <=1000
        direct = remote_store().put("k", payload)
        store = remote_store()
        staged = store.stage_put("k", payload)
        assert staged.num_parts == 5
        submissions = 0
        receipt = None
        while receipt is None:
            assert staged.next_part_number == submissions + 1
            receipt = staged.submit_next()
            submissions += 1
        assert submissions == 5
        assert receipt == direct
        assert receipt.parts == 5
        assert store.get("k") == payload
        assert store.object_size("k") == len(payload)

    def test_queued_bytes_drain_part_by_part(self):
        store = remote_store(replication=2)
        staged = store.stage_put("k", bytes(3000))
        engine = store.engine
        assert engine.queued_put_bytes() == 6000
        staged.submit_next()
        assert engine.queued_put_bytes() == 4000
        staged.submit_next()
        assert engine.queued_put_bytes() == 2000
        assert staged.submit_next() is not None
        assert engine.queued_put_bytes() == 0
        assert engine.staged_puts() == []

    def test_overwrite_rules_checked_at_stage_time(self):
        store = remote_store()
        store.put("k", bytes(10))
        with pytest.raises(ObjectExistsError):
            store.stage_put("k", bytes(10))
        staged = store.stage_put("k", bytes(2500), overwrite=True)
        while staged.submit_next() is None:
            pass
        assert store.object_size("k") == 2500

    def test_abort_mid_upload_leaves_nothing_visible(self):
        arbiter = BandwidthArbiter()
        arbiter.register("job", quota_bytes=100_000)
        store = remote_store(arbiter=arbiter)
        staged = store.stage_put("job/k", bytes(4000), stream="job")
        assert arbiter.stream("job").charged_bytes == 4000
        staged.submit_next()
        staged.submit_next()  # two parts on the link, upload open
        assert store.backend.pending_uploads()
        staged.abort()
        assert staged.aborted
        # No visible object, no orphaned parts, quota credited back.
        assert not store.backend.exists("job/k")
        assert store.backend.pending_uploads() == []
        assert store.backend.multipart_aborted == 1
        assert arbiter.stream("job").charged_bytes == 0
        assert store.engine.queued_put_bytes() == 0
        with pytest.raises(StorageError):
            store.object_size("job/k")
        # Submitting after abort is an error; aborting twice is not.
        staged.abort()
        with pytest.raises(StorageError, match="aborted"):
            staged.submit_next()

    def test_concurrent_staged_writes_respect_hard_capacity(self):
        """Two writes staged in the same window must not jointly
        oversubscribe capacity_bytes just because neither committed."""
        config = StorageConfig(
            write_bandwidth=1000.0,
            read_bandwidth=2000.0,
            replication_factor=1,
            latency_s=0.0,
            capacity_bytes=10_000,
        )
        backend = RemoteObjectBackend(
            s3like_costs(1000.0, 2000.0), part_size_bytes=1000
        )
        store = ObjectStore(config, SimClock(), backend=backend)
        from repro.errors import CapacityExceededError

        first = store.stage_put("a", bytes(6000))
        with pytest.raises(CapacityExceededError):
            store.stage_put("b", bytes(6000))
        # Aborting the first frees the in-flight reservation...
        first.abort()
        second = store.stage_put("b", bytes(6000))
        while second.submit_next() is None:
            pass
        # ...and committed bytes are still enforced as before.
        with pytest.raises(CapacityExceededError):
            store.stage_put("c", bytes(6000))

    def test_interleaved_staged_writes_share_the_link_per_part(self):
        """Two staged writes alternating submissions produce transfers
        that alternate on the serial link — part granularity."""
        store = remote_store(fanout=1)
        a = store.stage_put("a", bytes(3000), stream="jobA")
        b = store.stage_put("b", bytes(3000), stream="jobB")
        done_a = done_b = None
        while done_a is None or done_b is None:
            if done_a is None:
                done_a = a.submit_next()
            if done_b is None:
                done_b = b.submit_next()
        puts = store.log.transfers("put")
        streams = [t.stream for t in puts]
        # Strict alternation: A part, B part, A part, ...
        assert streams == ["jobA", "jobB"] * 3
        # The link never served two transfers at once.
        for first, second in zip(puts, puts[1:]):
            assert second.start_s >= first.end_s - 1e-9


class TestRetryLoop:
    def test_transient_failures_populate_receipt_retries(self):
        probs = {OP_PUT: 0.3, OP_GET: 0.3}
        store = remote_store(failure_probs=probs, failure_seed=11)
        for i in range(6):
            store.put(f"k{i}", bytes(2500))
        for i in range(6):
            store.get(f"k{i}")
        assert store.ops.total_retries(OP_PUT) >= 1
        assert store.ops.total_retries(OP_GET) >= 1
        assert store.ops.retry_amplification() > 1.0
        assert store.backend.failures_injected[OP_PUT] == (
            store.engine.retries_by_op[OP_PUT]
        )

    def test_retry_penalty_charged_in_simulated_time(self):
        """A retried PUT pays the wasted attempt latency plus backoff
        on top of the clean duration."""
        clean = remote_store(part_size=None).put("k", bytes(100))

        class FailOnce(RemoteObjectBackend):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.fail_next = 1

            def put_object(self, request, data):
                if self.fail_next:
                    self.fail_next -= 1
                    raise TransientStorageError("throttled")
                super().put_object(request, data)

        config = StorageConfig(
            write_bandwidth=1000.0,
            read_bandwidth=2000.0,
            replication_factor=1,
            latency_s=0.0,
            retry_backoff_s=0.02,
        )
        backend = FailOnce(
            s3like_costs(1000.0, 2000.0, put_latency_s=0.1),
            part_size_bytes=None,
        )
        store = ObjectStore(config, SimClock(), backend=backend)
        receipt = store.put("k", bytes(100))
        assert receipt.retries == 1
        # One wasted attempt latency (0.1 s) + first backoff (0.02 s).
        assert receipt.duration_s == pytest.approx(
            clean.duration_s + 0.1 + 0.02
        )

    def test_exhausted_retries_become_permanent_and_abort(self):
        store = remote_store(
            failure_probs={OP_PUT: 1.0}, max_retries=3
        )
        with pytest.raises(RetriesExhaustedError):
            store.put("k", bytes(4000))
        # The multipart upload was aborted: nothing visible, no parts.
        assert store.backend.pending_uploads() == []
        assert not store.backend.exists("k")
        # 1 first attempt + 3 retries of part 1 (the probe HEAD is not
        # failure-injected here).
        assert store.backend.failures_injected[OP_PUT] == 4

    def test_control_plane_ops_retry_too(self):
        probs = {OP_LIST: 0.4, OP_DELETE: 0.4, OP_HEAD: 0.4}
        store = remote_store(failure_probs=probs, failure_seed=5)
        for i in range(5):
            store.put(f"p/k{i}", bytes(10))
        for i in range(5):
            store.exists(f"p/k{i}")
            store.list_keys("p/")
        for i in range(5):
            store.delete(f"p/k{i}")
        total = (
            store.ops.total_retries(OP_LIST)
            + store.ops.total_retries(OP_DELETE)
            + store.ops.total_retries(OP_HEAD)
        )
        assert total >= 3
        # Retried control requests cost more than their base latency.
        retried = [
            r
            for r in store.ops.receipts(OP_DELETE)
            if r.retries > 0
        ]
        assert retried
        for r in retried:
            assert r.duration_s > 0.01  # base DELETE latency

    def test_deterministic_under_failure_seed(self):
        def run():
            store = remote_store(
                failure_probs={OP_PUT: 0.25, OP_GET: 0.25},
                failure_seed=23,
            )
            for i in range(5):
                store.put(f"k{i}", bytes(2500))
            for i in range(5):
                store.get(f"k{i}")
            return [
                (r.op, r.key, r.retries, r.completed_s)
                for r in store.ops.receipts()
            ]

        assert run() == run()

    def test_no_injection_means_no_retries(self):
        store = remote_store()
        store.put("k", bytes(2500))
        store.get("k")
        store.delete("k")
        assert store.ops.total_retries() == 0
        assert store.ops.retry_amplification() == 1.0


class TestWorkerPool:
    def test_overlap_accounting_with_concurrent_tasks(self):
        store = remote_store()
        engine = store.engine
        barrier = threading.Barrier(2, timeout=5.0)

        def task():
            barrier.wait()  # both tasks provably in flight at once
            time.sleep(0.05)
            return 42

        first = engine.submit_task(task)
        second = engine.submit_task(task)
        assert first.result() == 42
        assert second.result() == 42
        assert engine.pool_tasks == 2
        # Both tasks ran concurrently: ~0.1 s of busy time passed in
        # ~0.05 s of caller blocking, so overlap is visible.
        assert engine.pool_busy_s >= 0.08
        assert engine.pool_overlap_s > 0.0

    def test_blocked_time_counts_against_overlap(self):
        store = remote_store()
        engine = store.engine
        task = engine.submit_task(lambda: time.sleep(0.02))
        task.result()  # immediate join: fully blocked, no overlap
        assert engine.pool_busy_s >= 0.015
        assert engine.pool_wait_s > 0.0


class TestBacklogSignal:
    def test_projected_queue_delay_math(self):
        assert projected_queue_delay_s(5.0, 2.0) == pytest.approx(3.0)
        assert projected_queue_delay_s(1.0, 2.0) == 0.0
        assert projected_queue_delay_s(
            5.0, 2.0, queued_bytes=1000, seconds_per_byte=0.001
        ) == pytest.approx(4.0)
        with pytest.raises(StorageError):
            projected_queue_delay_s(0.0, 0.0, queued_bytes=-1)

    def test_engine_projection_includes_staged_parts(self):
        store = remote_store()
        engine = store.engine
        assert engine.projected_queue_delay_s(0.0) == 0.0
        staged = store.stage_put("k", bytes(3000))
        # 3000 B at 1000 B/s of announced parts = 3 s of backlog.
        assert engine.projected_queue_delay_s(0.0) == pytest.approx(3.0)
        staged.submit_next()
        # One part moved from queue to link occupancy; the projection
        # still sees it (timeline.free_at) plus the two queued parts.
        assert engine.projected_queue_delay_s(0.0) >= 3.0
        while staged.submit_next() is None:
            pass
        # Everything on the link now; backlog is pure occupancy.
        assert engine.projected_queue_delay_s(0.0) == pytest.approx(
            store.timeline.free_at
        )


class TestAdmissionController:
    def make(self, mode, **kwargs):
        store = remote_store()
        return store, AdmissionController(store.engine, mode, **kwargs)

    def test_mode_validation(self):
        store = remote_store()
        with pytest.raises(StorageError):
            AdmissionController(store.engine, "clever")
        with pytest.raises(StorageError):
            AdmissionController(store.engine, "static")  # needs a cap
        with pytest.raises(StorageError):
            AdmissionController(store.engine, "none", backlog_factor=0)

    def test_none_mode_admits_everything(self):
        _, ctrl = self.make("none")
        decision = ctrl.decide(
            stream="j",
            tier=TIER_EXPERIMENTAL,
            now=0.0,
            interval_s=0.001,
            active_writes=99,
        )
        assert decision.admitted
        assert ctrl.total_deferrals == 0

    def test_static_mode_is_the_legacy_cap(self):
        _, ctrl = self.make("static", max_concurrent=2)
        ok = ctrl.decide(
            stream="a", tier=TIER_PROD, now=0.0, active_writes=1
        )
        assert ok.admitted
        deferred = ctrl.decide(
            stream="a", tier=TIER_PROD, now=0.0, active_writes=2
        )
        assert not deferred.admitted
        assert deferred.reason == "static_cap"
        # The static cap is tier-blind, exactly like the old fixed cap.
        assert ctrl.deferrals_by_tier == {TIER_PROD: 1}

    def test_dynamic_mode_defers_experimental_on_backlog(self):
        store, ctrl = self.make("dynamic")
        store.stage_put("k", bytes(5000))  # 5 s of queued backlog
        deferred = ctrl.decide(
            stream="exp",
            tier=TIER_EXPERIMENTAL,
            now=0.0,
            interval_s=2.0,
        )
        assert not deferred.admitted
        assert deferred.reason == "backlog"
        assert deferred.projected_delay_s == pytest.approx(5.0)
        assert deferred.threshold_s == pytest.approx(2.0)
        # Prod is always admitted, backlog regardless.
        prod = ctrl.decide(
            stream="prod", tier=TIER_PROD, now=0.0, interval_s=2.0
        )
        assert prod.admitted
        # A first trigger (no measured interval yet) is admitted.
        first = ctrl.decide(
            stream="new", tier=TIER_EXPERIMENTAL, now=0.0
        )
        assert first.admitted
        # Below threshold: admitted.
        ok = ctrl.decide(
            stream="exp",
            tier=TIER_EXPERIMENTAL,
            now=0.0,
            interval_s=6.0,
        )
        assert ok.admitted
        assert ctrl.deferrals_by_stream == {"exp": 1}
        assert ctrl.deferrals_by_tier == {TIER_EXPERIMENTAL: 1}

    def test_backlog_factor_scales_the_threshold(self):
        store, ctrl = self.make("dynamic", backlog_factor=3.0)
        store.stage_put("k", bytes(5000))
        ok = ctrl.decide(
            stream="exp",
            tier=TIER_EXPERIMENTAL,
            now=0.0,
            interval_s=2.0,  # threshold 6 s > 5 s backlog
        )
        assert ok.admitted


class TestFailureInjectionConfig:
    def test_backend_config_failure_probs(self):
        config = BackendConfig(
            kind="s3like",
            put_failure_prob=0.1,
            get_failure_prob=0.2,
        )
        assert config.failure_probs == {"PUT": 0.1, "GET": 0.2}
        with pytest.raises(Exception):
            BackendConfig(kind="s3like", put_failure_prob=1.5)

    def test_factory_wires_failure_injection(self):
        from repro.storage import make_backend

        backend = make_backend(
            BackendConfig(
                kind="s3like",
                put_failure_prob=0.5,
                failure_seed=9,
            ),
            StorageConfig(),
        )
        assert backend.failure_probs == {"PUT": 0.5}

    def test_backend_rejects_bad_probs(self):
        with pytest.raises(StorageError):
            RemoteObjectBackend(
                s3like_costs(1000.0, 2000.0),
                failure_probs={"POKE": 0.1},
            )
        with pytest.raises(StorageError):
            RemoteObjectBackend(
                s3like_costs(1000.0, 2000.0),
                failure_probs={"PUT": 2.0},
            )
