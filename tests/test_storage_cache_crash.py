"""Crash-consistency matrix for the write-back cache tier.

A write-back flush is one far-tier PUT, and the crash injector
(:class:`~repro.storage.backends.CrashingBackend`) fires *before* the
inner write — so a crash anywhere in a flush train must leave every
far-tier object either wholly old or wholly new, never torn. These
tests sweep the crash point across multi-object flushes (backend-level
matrix, then through a full checkpointing experiment), assert the
old-or-new invariant at every point, and prove the two recovery paths:

* **crash mid-flush** — the interrupted objects stay dirty; after the
  far tier recovers, a re-flush converges far == near and a
  quarantine-level ``repro scan`` over the composed store comes back
  clean (no torn checkpoints, no quarantines);
* **near-tier loss** — :meth:`CacheTierBackend.wipe_near` drops
  dirty-but-unflushed checkpoints outright; ``plan_resume`` then falls
  back to the newest fully flushed checkpoint instead of failing the
  restore.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.integrity import scan_job
from repro.core.restore import CheckpointRestorer
from repro.errors import StorageError, TransientStorageError
from repro.experiments import build_experiment, small_config
from repro.storage.backends import CrashingBackend, InMemoryBackend
from repro.storage.cache import POLICY_WRITE_BACK, CacheTierBackend


def _tiered(capacity: int = 1 << 20):
    """A write-back cache over a crash-injectable far tier.

    ``flush_watermark=1.0`` keeps the background flusher quiet until
    dirty bytes exceed the whole capacity, so tests control exactly
    when far writes happen.
    """
    inner = InMemoryBackend()
    far = CrashingBackend(inner)
    cache = CacheTierBackend(
        far,
        capacity_bytes=capacity,
        policy=POLICY_WRITE_BACK,
        flush_watermark=1.0,
    )
    return inner, far, cache


class TestMidFlushCrashMatrix:
    """Sweep the crash point across a 10-object flush train."""

    @pytest.mark.parametrize("crash_at", [1, 2, 3, 5, 8, 10])
    def test_far_object_is_old_or_new_never_torn(self, crash_at):
        rng = np.random.default_rng(crash_at)
        inner, far, cache = _tiered(capacity=100_000)
        # Far tier starts with *older versions* of some keys, so the
        # matrix covers overwrite flushes, not just creations.
        old = {}
        for i in range(4):
            key = f"job0/obj-{i}"
            old[key] = bytes([i]) * 100
            inner.write(key, old[key])
        new = {}
        for i in range(10):
            key = f"job0/obj-{i}"
            size = int(rng.integers(50, 400))
            new[key] = rng.integers(
                0, 256, size=size, dtype=np.uint8
            ).tobytes()
            cache.write(key, new[key])
        assert cache.dirty_backlog == 10

        far.arm(crash_at)
        with pytest.raises(StorageError):
            cache.flush()
        assert cache.flush_failures == 1

        # The invariant: every far object is byte-identical to either
        # its pre-flush version or its new near copy — no far key holds
        # anything else, and no partial/truncated object appeared.
        for key in inner.list_keys(""):
            data = inner.read(key)
            assert data == new[key] or data == old.get(key), key
        # Flush order is write order: everything before the crash point
        # landed whole, everything at/after it is still dirty with the
        # far tier untouched.
        for index, key in enumerate(new):
            if index < crash_at - 1:
                assert inner.read(key) == new[key]
                assert key not in cache.dirty_keys()
            else:
                assert key in cache.dirty_keys()
                if key in old:
                    assert inner.read(key) == old[key]
                else:
                    assert not inner.exists(key)

        # Recovery: the far tier is back; a re-flush converges.
        flushed = cache.flush()
        assert flushed == 10 - (crash_at - 1)
        assert cache.dirty_backlog == 0
        for key, data in new.items():
            assert inner.read(key) == data
        assert cache.flush_failures == 1  # the one crash, no more

    def test_repeated_crashes_make_progress(self):
        """A flush train that crashes on every attempt still converges:
        each attempt lands at least the objects before its crash
        point, and already-flushed objects are not re-sent."""
        inner, far, cache = _tiered(capacity=100_000)
        for i in range(6):
            cache.write(f"k{i}", bytes([i]) * 64)
        attempts = 0
        while cache.dirty_backlog:
            far.arm(2)  # every attempt dies on its second far PUT
            try:
                cache.flush()
            except StorageError:
                pass
            attempts += 1
            assert attempts <= 6  # one object of progress per attempt
        far.disarm()
        for i in range(6):
            assert inner.read(f"k{i}") == bytes([i]) * 64
        assert cache.dirty_flushes == 6
        assert cache.flush_failures == attempts - 1


@pytest.fixture
def tiered_experiment():
    """A checkpointing experiment writing through a write-back cache
    big enough that nothing flushes until the test says so."""
    inner, far, cache = _tiered(capacity=1 << 22)
    exp = build_experiment(
        small_config(
            num_tables=3,
            rows_per_table=512,
            embedding_dim=8,
            batch_size=32,
            interval_batches=5,
            num_nodes=1,
            devices_per_node=2,
        ),
        backend=cache,
    )
    return exp, inner, far, cache


class TestCheckpointFlushCrash:
    def test_scan_stays_clean_through_crash_and_recovery(
        self, tiered_experiment
    ):
        exp, inner, far, cache = tiered_experiment
        exp.controller.run_intervals(3)
        newest = max(
            m.valid_at_s for m in exp.controller.manifests.values()
        )
        exp.clock.advance_to(newest + 1.0, "settle")

        # Everything the run wrote is dirty in the near tier; the far
        # tier has seen nothing.
        assert cache.dirty_backlog > 0
        assert inner.list_keys("") == []

        # Crash at several points of the flush train. After each crash
        # the *composed* store still presents every object (near copies
        # back the unflushed tail), so an operator scan never reports a
        # torn checkpoint — chunks-without-manifest can exist on the
        # far tier mid-flush, but the store's view is whole.
        for crash_at in (1, 4, 9):
            far.arm(crash_at)
            with pytest.raises(StorageError):
                cache.flush()
            for key in inner.list_keys(""):
                assert inner.read(key) == cache.read(key), key
            report = scan_job(exp.store, "job0")
            assert report.clean
            assert report.torn_checkpoint_ids == []

        # Recovery: far tier healthy again, drain the backlog.
        far.disarm()
        cache.flush()
        assert cache.dirty_backlog == 0
        report = scan_job(exp.store, "job0", quarantine=True)
        assert report.clean
        assert report.quarantined_ids == []
        # The far tier alone now holds every object, byte-identical.
        assert inner.list_keys("") == exp.store.backend.list_keys("")
        for key in inner.list_keys(""):
            assert inner.read(key) == cache.read(key), key

    def test_transient_far_failure_inside_flush_is_retried(
        self, tiered_experiment
    ):
        """A *transient* far error (not a crash) rides the attached
        engine's retry loop: the flush succeeds without surfacing."""
        exp, inner, far, cache = tiered_experiment
        exp.controller.run_intervals(1)
        assert cache.dirty_backlog > 0

        real_put = far.put_object
        fail_once = {"armed": True}

        def flaky_put(request, data):
            if fail_once["armed"]:
                fail_once["armed"] = False
                raise TransientStorageError("simulated 503")
            return real_put(request, data)

        far.put_object = flaky_put
        before = dict(exp.store.engine.retries_by_op)
        cache.flush()
        assert cache.dirty_backlog == 0
        assert cache.flush_failures == 0
        retried = sum(exp.store.engine.retries_by_op.values()) - sum(
            before.values()
        )
        assert retried == 1


class TestNearTierLoss:
    def test_wipe_falls_back_to_newest_flushed_checkpoint(
        self, tiered_experiment
    ):
        exp, inner, far, cache = tiered_experiment
        # Two checkpoints written and durably flushed to the far tier.
        exp.controller.run_intervals(2)
        cache.flush()
        assert cache.dirty_backlog == 0
        settled = max(
            m.valid_at_s for m in exp.controller.manifests.values()
        )
        exp.clock.advance_to(settled + 1.0, "settle")
        restorer = CheckpointRestorer(exp.store, exp.clock)
        flushed_plan = restorer.plan_resume("job0")
        assert flushed_plan
        flushed_newest = flushed_plan[0]

        # A third checkpoint lands only in the near tier.
        exp.controller.run_intervals(1)
        newest = max(
            m.valid_at_s for m in exp.controller.manifests.values()
        )
        exp.clock.advance_to(newest + 1.0, "settle")
        assert cache.dirty_backlog > 0
        dirty_before = restorer.plan_resume("job0")
        assert (
            dirty_before[0].interval_index > flushed_newest.interval_index
        )

        # The NVMe tier dies: dirty-unflushed checkpoint 3 is gone.
        lost = cache.wipe_near()
        assert lost > 0
        assert cache.stats().near_wipes == 1

        # plan_resume falls back to the newest *flushed* checkpoint —
        # the unflushed one's manifest no longer exists anywhere.
        plan = restorer.plan_resume("job0")
        assert plan
        assert plan[0].checkpoint_id == flushed_newest.checkpoint_id
        manifests = restorer.list_manifests("job0")
        assert dirty_before[0].checkpoint_id not in manifests

        # And the fallback restore actually lands, through the policy's
        # chain, instead of failing on the lost checkpoint.
        report = restorer.restore(
            exp.model,
            plan[0],
            manifests,
            reader=exp.reader,
            policy=exp.controller.policy,
        )
        assert report.checkpoint_id == flushed_newest.checkpoint_id
        assert report.rows_restored > 0

    def test_wipe_with_nothing_dirty_loses_nothing(
        self, tiered_experiment
    ):
        exp, inner, far, cache = tiered_experiment
        exp.controller.run_intervals(1)
        cache.flush()
        settled = max(
            m.valid_at_s for m in exp.controller.manifests.values()
        )
        exp.clock.advance_to(settled + 1.0, "settle")
        assert cache.wipe_near() == 0
        # Every object survives on the far tier; reads re-warm the near
        # tier as misses.
        restorer = CheckpointRestorer(exp.store, exp.clock)
        assert restorer.plan_resume("job0")
        misses_before = cache.misses
        for key in exp.store.list_keys(""):
            assert cache.read(key)
        assert cache.misses > misses_before
