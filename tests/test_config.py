"""Unit tests for configuration validation."""

from __future__ import annotations

import pytest

from repro.config import (
    GiB,
    MiB,
    CheckpointConfig,
    ClusterConfig,
    DataConfig,
    ExperimentConfig,
    FailureConfig,
    ModelConfig,
    ReaderConfig,
    StorageConfig,
)
from repro.errors import ConfigError


class TestModelConfig:
    def test_defaults_valid(self):
        config = ModelConfig()
        assert config.total_embedding_rows == 8 * 4096
        assert config.embedding_bytes == 8 * 4096 * 16 * 4

    def test_rows_default_expansion(self):
        config = ModelConfig(num_tables=3)
        assert len(config.rows_per_table) == 3

    def test_rows_length_mismatch(self):
        with pytest.raises(ConfigError, match="one entry per table"):
            ModelConfig(num_tables=3, rows_per_table=(10, 20))

    def test_bottom_mlp_must_match_embedding_dim(self):
        with pytest.raises(ConfigError, match="bottom MLP"):
            ModelConfig(embedding_dim=16, bottom_mlp=(32, 8))

    def test_top_mlp_must_end_in_logit(self):
        with pytest.raises(ConfigError, match="single logit"):
            ModelConfig(top_mlp=(32, 2))

    def test_zero_rows_rejected(self):
        with pytest.raises(ConfigError, match="at least one row"):
            ModelConfig(num_tables=1, rows_per_table=(0,))

    def test_scaled_validates(self):
        with pytest.raises(ConfigError, match="positive"):
            ModelConfig().scaled(0.0)


class TestDataConfig:
    def test_defaults_valid(self):
        DataConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_size": 0},
            {"zipf_alpha": 0.0},
            {"label_noise": 0.5},
            {"dense_signal_scale": -1.0},
            {"sparse_signal_scale": -0.1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            DataConfig(**kwargs)


class TestClusterConfig:
    def test_world_size(self):
        assert ClusterConfig(num_nodes=4, devices_per_node=2).world_size == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 0},
            {"devices_per_node": 0},
            {"hbm_bytes_per_device": 0},
            {"gpu_to_host_bandwidth": 0.0},
            {"fabric_bandwidth": -1.0},
            {"step_compute_time_s": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ClusterConfig(**kwargs)


class TestStorageConfig:
    def test_defaults(self):
        config = StorageConfig()
        assert config.replication_factor == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"write_bandwidth": 0.0},
            {"read_bandwidth": -1.0},
            {"replication_factor": 0},
            {"capacity_bytes": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            StorageConfig(**kwargs)


class TestCheckpointConfig:
    def test_paper_defaults(self):
        config = CheckpointConfig()
        assert config.policy == "intermittent"
        assert config.quantizer == "adaptive"
        assert config.interval_seconds == 1800.0  # 30 minutes

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval_batches": 0},
            {"policy": "hourly"},
            {"quantizer": "zstd"},
            {"bit_width": 0},
            {"bit_width": 9},
            {"num_bins": 0},
            {"ratio": 0.0},
            {"ratio": 1.5},
            {"chunk_rows": 0},
            {"keep_last": 0},
            {"expected_restores": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            CheckpointConfig(**kwargs)

    def test_dynamic_bit_width_allowed(self):
        assert CheckpointConfig(bit_width=None).bit_width is None


class TestFailureConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mean_time_to_failure_s": 0.0},
            {"weibull_shape": 0.0},
            {"min_failure_s": -1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FailureConfig(**kwargs)


class TestReaderConfig:
    @pytest.mark.parametrize(
        "kwargs", [{"num_workers": 0}, {"prefetch_depth": 0}]
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ReaderConfig(**kwargs)


class TestExperimentConfig:
    def test_with_overrides(self):
        config = ExperimentConfig()
        out = config.with_overrides(
            storage=StorageConfig(write_bandwidth=1.0 * MiB)
        )
        assert out.storage.write_bandwidth == 1.0 * MiB
        assert out.model == config.model  # untouched sections shared

    def test_units(self):
        assert GiB == 1024 * MiB == 1024 * 1024 * 1024


class TestScheduledFailures:
    def test_replays_gaps_then_stops(self):
        import numpy as np

        from repro.failures import ScheduledFailures

        model = ScheduledFailures([10.0, 20.0])
        rng = np.random.default_rng(0)
        assert model.sample(rng) == 10.0
        assert model.remaining == 1
        assert model.sample(rng) == 20.0
        assert model.sample(rng) == float("inf")
        assert model.mean_s() == 15.0

    def test_negative_gap_rejected(self):
        from repro.errors import SimulationError
        from repro.failures import ScheduledFailures

        with pytest.raises(SimulationError):
            ScheduledFailures([-1.0])

    def test_deterministic_injection(self):
        """A scheduled model makes failure injection reproducible."""
        from repro.experiments import build_experiment, small_config
        from repro.failures import FailureInjector, ScheduledFailures

        def run():
            exp = build_experiment(
                small_config(
                    interval_batches=4,
                    num_tables=2,
                    rows_per_table=256,
                    batch_size=32,
                )
            )
            injector = FailureInjector(
                exp.controller, ScheduledFailures([1.0, 1.2]), seed=1
            )
            return injector.run(target_intervals=6)

        a, b = run(), run()
        assert a.failures == b.failures == 2
        assert a.wasted_batches == b.wasted_batches
        assert [e.at_time_s for e in a.events] == [
            e.at_time_s for e in b.events
        ]


class TestCompactMetadataEndToEnd:
    def test_controller_uses_compact_metadata(self):
        import numpy as np

        from repro.experiments import build_experiment, small_config

        base_config = small_config(
            quantizer="adaptive", bit_width=4, interval_batches=5,
            num_tables=2, rows_per_table=1024, batch_size=32,
        )
        compact_config = base_config.with_overrides(
            checkpoint=CheckpointConfig(
                interval_batches=5,
                policy=base_config.checkpoint.policy,
                quantizer="adaptive",
                bit_width=4,
                compact_metadata=True,
            )
        )
        plain = build_experiment(base_config)
        compact = build_experiment(compact_config)
        plain.controller.run_intervals(1)
        compact.controller.run_intervals(1)
        plain_bytes = plain.controller.stats.bytes_written_logical
        compact_bytes = compact.controller.stats.bytes_written_logical
        assert compact_bytes < plain_bytes

        # And the compact checkpoint still restores.
        compact.clock.advance_to(
            compact.store.timeline.free_at + 1.0, "drain"
        )
        expected = compact.model.table_weight(0).copy()
        compact.model.reinitialize()
        compact.controller.restore_latest()
        got = compact.model.table_weight(0)
        assert np.abs(got - expected).max() < 0.2  # 4-bit error bound
