"""Unit tests for optimizers and the assembled DLRM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.model.dlrm import DLRM
from repro.model.embedding import EmbeddingTable, SparseGrad
from repro.model.optim import (
    DenseAdagrad,
    DenseSGD,
    SparseRowWiseAdagrad,
    SparseSGD,
)


class TestDenseOptimizers:
    def test_sgd_update(self):
        p = {"w": np.array([1.0, 2.0], dtype=np.float32)}
        g = {"w": np.array([0.5, -0.5], dtype=np.float32)}
        DenseSGD(learning_rate=0.1).step(p, g)
        np.testing.assert_allclose(p["w"], [0.95, 2.05])

    def test_adagrad_scales_by_history(self):
        opt = DenseAdagrad(learning_rate=1.0, eps=0.0)
        p = {"w": np.array([0.0], dtype=np.float32)}
        g = {"w": np.array([2.0], dtype=np.float32)}
        opt.step(p, g)  # accum=4, update = 2/2 = 1
        np.testing.assert_allclose(p["w"], [-1.0])
        opt.step(p, g)  # accum=8, update = 2/sqrt(8)
        np.testing.assert_allclose(p["w"], [-1.0 - 2 / np.sqrt(8)])

    def test_adagrad_state_roundtrip(self):
        opt = DenseAdagrad()
        p = {"w": np.ones(3, dtype=np.float32)}
        g = {"w": np.ones(3, dtype=np.float32)}
        opt.step(p, g)
        state = opt.state_dict()
        fresh = DenseAdagrad()
        fresh.load_state_dict(state)
        np.testing.assert_allclose(fresh.state_dict()["w"], state["w"])

    def test_sgd_rejects_state(self):
        with pytest.raises(TrainingError):
            DenseSGD().load_state_dict({"x": np.zeros(1)})

    def test_bad_learning_rate(self):
        with pytest.raises(TrainingError):
            DenseSGD(learning_rate=0.0)
        with pytest.raises(TrainingError):
            DenseAdagrad(learning_rate=-1.0)


class TestSparseOptimizers:
    @pytest.fixture
    def table(self, rng):
        return EmbeddingTable(rows=16, dim=4, rng=rng)

    def test_rowwise_adagrad_only_touches_given_rows(self, table):
        opt = SparseRowWiseAdagrad(table, learning_rate=0.1)
        before = table.weight.copy()
        grad = SparseGrad(
            rows=np.array([2, 5]),
            values=np.ones((2, 4), dtype=np.float32),
        )
        modified = opt.step(grad)
        np.testing.assert_array_equal(modified, [2, 5])
        untouched = np.delete(np.arange(16), [2, 5])
        np.testing.assert_array_equal(
            table.weight[untouched], before[untouched]
        )
        assert not np.allclose(table.weight[2], before[2])

    def test_rowwise_accumulator_uses_mean_square(self, table):
        opt = SparseRowWiseAdagrad(table, learning_rate=0.1)
        values = np.array([[1.0, 2.0, 3.0, 4.0]], dtype=np.float32)
        opt.step(SparseGrad(rows=np.array([3]), values=values))
        expected = np.mean(values**2)
        assert opt.accumulator[3] == pytest.approx(expected)
        assert opt.accumulator[0] == 0.0

    def test_empty_grad_is_noop(self, table):
        opt = SparseRowWiseAdagrad(table)
        before = table.weight.copy()
        opt.step(
            SparseGrad(
                rows=np.zeros(0, dtype=np.int64),
                values=np.zeros((0, 4), dtype=np.float32),
            )
        )
        np.testing.assert_array_equal(table.weight, before)

    def test_state_roundtrip(self, table):
        opt = SparseRowWiseAdagrad(table)
        opt.step(
            SparseGrad(
                rows=np.array([1]),
                values=np.ones((1, 4), dtype=np.float32),
            )
        )
        state = opt.state_dict()
        opt2 = SparseRowWiseAdagrad(table)
        opt2.load_state_dict(state)
        np.testing.assert_array_equal(opt2.accumulator, opt.accumulator)

    def test_state_shape_mismatch_rejected(self, table, rng):
        other = EmbeddingTable(rows=8, dim=4, rng=rng)
        opt = SparseRowWiseAdagrad(table)
        with pytest.raises(TrainingError, match="mismatch"):
            opt.load_state_dict(
                SparseRowWiseAdagrad(other).state_dict()
            )

    def test_sparse_sgd(self, table):
        opt = SparseSGD(table, learning_rate=0.5)
        before = table.weight[7].copy()
        opt.step(
            SparseGrad(
                rows=np.array([7]),
                values=np.ones((1, 4), dtype=np.float32),
            )
        )
        np.testing.assert_allclose(table.weight[7], before - 0.5)


class TestDLRM:
    def test_deterministic_construction(self, tiny_model_config):
        a = DLRM(tiny_model_config)
        b = DLRM(tiny_model_config)
        np.testing.assert_array_equal(a.table_weight(0), b.table_weight(0))
        for name, arr in a.dense_parameters().items():
            np.testing.assert_array_equal(arr, b.dense_parameters()[name])

    def test_training_reduces_loss(self, tiny_model, tiny_dataset):
        losses = [
            tiny_model.train_step(tiny_dataset.batch(i)).loss
            for i in range(60)
        ]
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

    def test_step_reports_touched_rows(self, tiny_model, tiny_dataset):
        batch = tiny_dataset.batch(0)
        result = tiny_model.train_step(batch)
        for table_id, rows in result.touched_rows.items():
            looked_up = np.unique(batch.sparse[table_id])
            np.testing.assert_array_equal(rows, looked_up)

    def test_untouched_rows_unchanged(self, tiny_model, tiny_dataset):
        batch = tiny_dataset.batch(0)
        before = tiny_model.table_weight(0).copy()
        result = tiny_model.train_step(batch)
        touched = result.touched_rows[0]
        untouched = np.setdiff1d(np.arange(before.shape[0]), touched)
        np.testing.assert_array_equal(
            tiny_model.table_weight(0)[untouched], before[untouched]
        )

    def test_dense_state_roundtrip(self, tiny_model_config, tiny_dataset):
        a = DLRM(tiny_model_config)
        for i in range(5):
            a.train_step(tiny_dataset.batch(i))
        state = a.dense_state()
        b = DLRM(tiny_model_config)
        b.load_dense_state(state)
        for name, arr in a.dense_parameters().items():
            np.testing.assert_array_equal(arr, b.dense_parameters()[name])
        # With embeddings copied over too, predictions must agree.
        for t in range(a.num_tables):
            np.copyto(b.table_weight(t), a.table_weight(t))
        batch = tiny_dataset.batch(100)
        np.testing.assert_allclose(
            a.predict_proba(batch), b.predict_proba(batch), rtol=1e-6
        )

    def test_load_table_rows(self, tiny_model):
        rows = np.array([1, 3])
        weights = np.full((2, 8), 7.0, dtype=np.float32)
        accum = np.array([0.5, 0.25], dtype=np.float32)
        tiny_model.load_table_rows(0, rows, weights, accum)
        np.testing.assert_array_equal(tiny_model.table_weight(0)[1], weights[0])
        assert tiny_model.table_accumulator(0)[3] == 0.25

    def test_load_table_rows_shape_mismatch(self, tiny_model):
        with pytest.raises(TrainingError, match="mismatch"):
            tiny_model.load_table_rows(
                0, np.array([0]), np.zeros((2, 8), dtype=np.float32)
            )

    def test_reinitialize_restores_initial_state(
        self, tiny_model_config, tiny_dataset
    ):
        model = DLRM(tiny_model_config)
        pristine = DLRM(tiny_model_config)
        for i in range(5):
            model.train_step(tiny_dataset.batch(i))
        model.reinitialize()
        np.testing.assert_array_equal(
            model.table_weight(0), pristine.table_weight(0)
        )
        assert model.batches_trained == 0
        assert np.all(model.table_accumulator(0) == 0)

    def test_total_nbytes_counts_all_state(self, tiny_model):
        emb = tiny_model.embedding_nbytes
        assert tiny_model.total_nbytes > emb  # + accum + dense

    def test_predict_proba_has_no_side_effects(
        self, tiny_model, tiny_dataset
    ):
        batch = tiny_dataset.batch(0)
        tiny_model.predict_proba(batch)
        # A training step afterwards must work (caches were cleared).
        tiny_model.train_step(tiny_dataset.batch(1))
