"""Unit tests for the cluster simulation: clock, topology, sharding, comm."""

from __future__ import annotations

import pytest

from repro.config import ClusterConfig, ModelConfig
from repro.distributed.clock import SimClock, Timeline
from repro.distributed.comm import (
    CommLog,
    Fabric,
    allreduce_time,
    alltoall_time,
)
from repro.distributed.sharding import (
    Shard,
    ShardingPlan,
    plan_auto,
    plan_row_wise,
    plan_table_wise,
)
from repro.distributed.topology import DeviceId, SimCluster
from repro.errors import ShardingError, SimulationError


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance(1.5, "a")
        clock.advance(0.5, "b")
        assert clock.now == 2.0
        assert clock.total("a") == 1.5
        assert clock.fraction("b") == 0.25

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError, match="negative"):
            SimClock().advance(-1.0)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(5.0)
        assert clock.now == 5.0
        clock.advance_to(3.0)  # past timestamps are no-ops
        assert clock.now == 5.0


class TestTimeline:
    def test_serialises_work(self):
        clock = SimClock()
        lane = Timeline(clock, "x")
        s1 = lane.submit(10.0)
        s2 = lane.submit(5.0)
        assert s1.start == 0.0 and s1.end == 10.0
        assert s2.start == 10.0 and s2.end == 15.0
        assert lane.busy_at(12.0)
        assert not lane.busy_at(15.0)

    def test_idle_lane_starts_at_clock_now(self):
        clock = SimClock()
        lane = Timeline(clock, "x")
        clock.advance(100.0)
        span = lane.submit(1.0)
        assert span.start == 100.0

    def test_earliest_defers_start(self):
        clock = SimClock()
        lane = Timeline(clock, "x")
        span = lane.submit(1.0, earliest=50.0)
        assert span.start == 50.0

    def test_release_frees_lane(self):
        clock = SimClock()
        lane = Timeline(clock, "x")
        lane.submit(100.0)
        lane.release()
        span = lane.submit(1.0)
        assert span.start == 0.0  # clock.now, not 100

    def test_utilization(self):
        clock = SimClock()
        lane = Timeline(clock, "x")
        lane.submit(5.0)
        clock.advance(5.0)
        lane.submit(5.0)  # starts at 5, back to back
        assert lane.utilization() == pytest.approx(1.0)


class TestTopology:
    @pytest.fixture
    def cluster(self):
        return SimCluster(
            ClusterConfig(
                num_nodes=2,
                devices_per_node=2,
                hbm_bytes_per_device=1000,
                host_dram_bytes=5000,
            )
        )

    def test_world_size(self, cluster):
        assert cluster.world_size == 4
        assert len(cluster.all_devices()) == 4

    def test_device_lookup(self, cluster):
        device = cluster.device(DeviceId(1, 0))
        assert device.device_id == DeviceId(1, 0)
        with pytest.raises(ShardingError):
            cluster.device(DeviceId(5, 0))

    def test_hbm_allocation_limits(self, cluster):
        device = cluster.device(DeviceId(0, 0))
        device.allocate(800)
        with pytest.raises(ShardingError, match="HBM"):
            device.allocate(300)
        device.free(800)
        device.allocate(1000)

    def test_free_more_than_allocated_rejected(self, cluster):
        with pytest.raises(ShardingError):
            cluster.device(DeviceId(0, 0)).free(1)

    def test_host_allocation(self, cluster):
        node = cluster.nodes[0]
        node.allocate_host(4000)
        with pytest.raises(ShardingError, match="host"):
            node.allocate_host(2000)
        node.free_host(4000)

    def test_copy_time_scales_with_bytes(self, cluster):
        node = cluster.nodes[0]
        assert node.copy_time_s(2_000_000) == pytest.approx(
            2 * node.copy_time_s(1_000_000)
        )


class TestSharding:
    @pytest.fixture
    def model_config(self):
        return ModelConfig(
            num_tables=5,
            rows_per_table=(100, 200, 50, 400, 25),
            embedding_dim=8,
            bottom_mlp=(16, 8),
            top_mlp=(8, 1),
        )

    @pytest.fixture
    def cluster(self):
        return SimCluster(
            ClusterConfig(num_nodes=2, devices_per_node=2)
        )

    def test_table_wise_covers_all_tables(self, model_config, cluster):
        plan = plan_table_wise(model_config, cluster)
        assert len(plan.shards) == 5
        for t in range(5):
            shards = plan.shards_for_table(t)
            assert len(shards) == 1
            assert shards[0].rows == model_config.rows_per_table[t]

    def test_table_wise_balances_load(self, model_config, cluster):
        plan = plan_table_wise(model_config, cluster)
        loads = [
            sum(s.state_bytes for s in plan.shards_on_device(d.device_id))
            for d in cluster.all_devices()
        ]
        # Greedy largest-first guarantee: max load <= mean + largest item.
        largest = max(s.state_bytes for s in plan.shards)
        assert max(loads) <= sum(loads) / len(loads) + largest
        # And the largest table must sit alone on its device.
        heaviest = max(cluster.all_devices(),
                       key=lambda d: sum(
                           s.state_bytes
                           for s in plan.shards_on_device(d.device_id)))
        assert len(plan.shards_on_device(heaviest.device_id)) == 1

    def test_row_wise_splits_evenly(self, model_config, cluster):
        plan = plan_row_wise(model_config, cluster)
        shards = plan.shards_for_table(3)  # 400 rows over 4 devices
        assert len(shards) == 4
        assert all(s.rows == 100 for s in shards)

    def test_row_wise_handles_remainders(self, cluster):
        config = ModelConfig(
            num_tables=1,
            rows_per_table=(10,),
            embedding_dim=8,
            bottom_mlp=(16, 8),
            top_mlp=(8, 1),
        )
        plan = plan_row_wise(config, cluster)
        assert sum(s.rows for s in plan.shards) == 10

    def test_auto_uses_row_wise_for_oversized(self):
        cluster = SimCluster(
            ClusterConfig(
                num_nodes=1,
                devices_per_node=2,
                hbm_bytes_per_device=3000,
            )
        )
        config = ModelConfig(
            num_tables=2,
            rows_per_table=(100, 10),  # table0: 100*(32+4)=3600 > 3000
            embedding_dim=8,
            bottom_mlp=(16, 8),
            top_mlp=(8, 1),
        )
        plan = plan_auto(config, cluster)
        assert len(plan.shards_for_table(0)) == 2
        assert len(plan.shards_for_table(1)) == 1

    def test_plan_validates_coverage(self, model_config):
        bad = [
            Shard(0, 0, 0, 50, DeviceId(0, 0), 8),  # misses rows 50-100
        ]
        with pytest.raises(ShardingError):
            ShardingPlan(bad, model_config)

    def test_plan_detects_overlap(self):
        config = ModelConfig(
            num_tables=1,
            rows_per_table=(100,),
            embedding_dim=8,
            bottom_mlp=(16, 8),
            top_mlp=(8, 1),
        )
        bad = [
            Shard(0, 0, 0, 60, DeviceId(0, 0), 8),
            Shard(1, 0, 40, 100, DeviceId(0, 1), 8),
        ]
        with pytest.raises(ShardingError, match="gap/overlap"):
            ShardingPlan(bad, config)

    def test_apply_to_reserves_hbm(self, model_config, cluster):
        plan = plan_table_wise(model_config, cluster)
        before = cluster.total_allocated_bytes
        plan.apply_to(cluster)
        assert (
            cluster.total_allocated_bytes - before
            == plan.total_state_bytes
        )

    def test_shard_bytes_include_optimizer_state(self):
        shard = Shard(0, 0, 0, 10, DeviceId(0, 0), 8)
        assert shard.weight_bytes == 10 * 8 * 4
        assert shard.state_bytes == shard.weight_bytes + 10 * 4

    def test_node_state_bytes(self, model_config, cluster):
        plan = plan_table_wise(model_config, cluster)
        total = sum(
            plan.node_state_bytes(n) for n in range(len(cluster.nodes))
        )
        assert total == plan.total_state_bytes


class TestComm:
    def test_allreduce_zero_for_world_one(self):
        fabric = Fabric(bandwidth=1e9, latency=1e-6)
        assert allreduce_time(1000, 1, fabric) == 0.0

    def test_allreduce_scales_with_bytes(self):
        fabric = Fabric(bandwidth=1e9, latency=0.0)
        t1 = allreduce_time(1_000_000, 8, fabric)
        t2 = allreduce_time(2_000_000, 8, fabric)
        assert t2 == pytest.approx(2 * t1)

    def test_allreduce_ring_factor(self):
        fabric = Fabric(bandwidth=1.0, latency=0.0)
        # 2*(w-1)/w * bytes for w=4 -> 1.5x bytes.
        assert allreduce_time(100, 4, fabric) == pytest.approx(150.0)

    def test_alltoall_factor(self):
        fabric = Fabric(bandwidth=1.0, latency=0.0)
        # (w-1)/w * bytes for w=4 -> 0.75x.
        assert alltoall_time(100, 4, fabric) == pytest.approx(75.0)

    def test_latency_term(self):
        fabric = Fabric(bandwidth=1e12, latency=0.001)
        assert allreduce_time(1, 4, fabric) >= 0.006  # 2*(4-1) steps

    def test_negative_bytes_rejected(self):
        fabric = Fabric(bandwidth=1.0, latency=0.0)
        with pytest.raises(SimulationError):
            allreduce_time(-1, 4, fabric)
        with pytest.raises(SimulationError):
            alltoall_time(-1, 4, fabric)

    def test_comm_log(self):
        log = CommLog()
        log.record("allreduce", 100, 4, 0.5)
        log.record("alltoall", 200, 4, 0.25)
        assert log.total_time() == 0.75
        assert log.total_bytes("alltoall") == 200
