"""Unit tests for accounting, accuracy, growth, latency metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.errors import ConfigError, SimulationError, TrainingError
from repro.metrics.accounting import (
    average_write_bandwidth,
    capacity_fractions_at,
    interval_size_fractions,
    peak_capacity,
    reduction_summary,
)
from repro.metrics.accuracy import (
    degradation_percent,
    evaluate,
    within_threshold,
)
from repro.metrics.growth import growth_factor, model_growth_trace
from repro.metrics.latency import LatencyModel
from repro.storage.object_store import CapacityPoint


def write_report(logical: int, start: float = 0.0, end: float = 1.0):
    from repro.core.writer import WriteReport

    return WriteReport(
        checkpoint_id="c",
        kind="full",
        logical_bytes=logical,
        physical_bytes=logical * 3,
        rows_written=1,
        num_chunks=1,
        quantize_sim_s=0.0,
        measured_quantize_s=0.0,
        started_at_s=start,
        valid_at_s=end,
    )


class TestAccounting:
    def test_interval_fractions(self):
        reports = [write_report(50), write_report(25)]
        assert interval_size_fractions(reports, 100) == [0.5, 0.25]

    def test_average_bandwidth(self):
        reports = [write_report(100), write_report(300)]
        assert average_write_bandwidth(reports, 4.0) == 100.0

    def test_capacity_fractions_step_function(self):
        series = [
            CapacityPoint(0.0, 0, 0),
            CapacityPoint(1.0, 100, 300),
            CapacityPoint(2.0, 50, 150),
        ]
        fractions = capacity_fractions_at(series, [0.5, 1.5, 3.0], 100)
        assert fractions == [0.0, 1.0, 0.5]

    def test_peak_capacity(self):
        series = [
            CapacityPoint(0.0, 10, 30),
            CapacityPoint(1.0, 90, 270),
            CapacityPoint(2.0, 40, 120),
        ]
        assert peak_capacity(series) == 90

    def test_reduction_summary(self):
        baseline = [write_report(1000)] * 4
        variant = [write_report(100)] * 4
        base_cap = [CapacityPoint(0.0, 2000, 6000)]
        var_cap = [CapacityPoint(0.0, 250, 750)]
        summary = reduction_summary(
            baseline, base_cap, variant, var_cap, duration_s=10.0
        )
        assert summary.avg_bandwidth_reduction == pytest.approx(10.0)
        assert summary.peak_capacity_reduction == pytest.approx(8.0)

    def test_invalid_args(self):
        with pytest.raises(SimulationError):
            interval_size_fractions([], 0)
        with pytest.raises(SimulationError):
            average_write_bandwidth([], 0.0)


class TestAccuracyMetrics:
    def test_evaluate_on_trained_model(self, tiny_model, tiny_dataset):
        for i in range(30):
            tiny_model.train_step(tiny_dataset.batch(i))
        result = evaluate(tiny_model, tiny_dataset.eval_batches(4))
        assert 0 < result.log_loss < 2.0
        assert 0 < result.normalized_entropy < 1.5
        assert 0.4 < result.auc <= 1.0
        assert result.num_samples == 4 * 16

    def test_training_improves_ne(self, tiny_model_config, tiny_dataset):
        from repro.model.dlrm import DLRM

        fresh = DLRM(tiny_model_config)
        eval_batches = tiny_dataset.eval_batches(4)
        before = evaluate(fresh, eval_batches)
        for i in range(60):
            fresh.train_step(tiny_dataset.batch(i))
        after = evaluate(fresh, eval_batches)
        assert after.normalized_entropy < before.normalized_entropy

    def test_degradation_sign(self, tiny_model, tiny_dataset):
        for i in range(10):
            tiny_model.train_step(tiny_dataset.batch(i))
        result = evaluate(tiny_model, tiny_dataset.eval_batches(2))
        assert degradation_percent(result, result) == 0.0

    def test_within_threshold(self):
        assert within_threshold(0.005)
        assert not within_threshold(0.02)

    def test_empty_eval_rejected(self, tiny_model):
        with pytest.raises(TrainingError):
            evaluate(tiny_model, [])


class TestGrowth:
    def test_reaches_target_factor(self):
        trace = model_growth_trace(months=24, total_growth=3.2)
        assert growth_factor(trace) == pytest.approx(3.2, rel=1e-6)
        assert len(trace) == 25

    def test_monotone(self):
        trace = model_growth_trace()
        sizes = [p.relative_size for p in trace]
        assert sizes == sorted(sizes)

    def test_paper_claim_exceeds_3x_in_2_years(self):
        trace = model_growth_trace()
        assert growth_factor(trace) > 3.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            model_growth_trace(months=0)
        with pytest.raises(SimulationError):
            model_growth_trace(total_growth=0.9)


class TestLatencyModel:
    def test_paper_anchor_asymmetric(self):
        """One full reference checkpoint: <= 126 s asymmetric."""
        model = LatencyModel()
        assert model.asymmetric_s(125_000_000_000) == pytest.approx(126.0)

    def test_paper_anchor_adaptive_50_bins(self):
        model = LatencyModel()
        assert model.adaptive_s(
            125_000_000_000, num_bins=50, ratio=1.0
        ) == pytest.approx(126.0 + 49 / 50 * 474.0, rel=0.05)

    def test_adaptive_grows_with_bins_and_ratio(self):
        model = LatencyModel()
        base = model.adaptive_s(10**9, 10, 1.0)
        assert model.adaptive_s(10**9, 40, 1.0) > base
        assert model.adaptive_s(10**9, 40, 0.25) < model.adaptive_s(
            10**9, 40, 1.0
        )

    def test_kmeans_dwarfs_adaptive(self):
        """The paper's 48-hour k-means verdict at reference scale."""
        model = LatencyModel()
        kmeans = model.kmeans_s(125_000_000_000, bits=4)
        adaptive = model.adaptive_s(125_000_000_000, 50, 1.0)
        assert kmeans > 100 * adaptive
        assert kmeans == pytest.approx(48 * 3600.0, rel=0.01)

    def test_dispatch(self):
        model = LatencyModel()
        for name in ("none", "symmetric", "asymmetric", "adaptive",
                     "kmeans"):
            assert model.for_quantizer(name, 1000) >= 0.0
        with pytest.raises(ConfigError):
            model.for_quantizer("magic", 1000)

    def test_validation(self):
        model = LatencyModel()
        with pytest.raises(ConfigError):
            model.asymmetric_s(-1)
        with pytest.raises(ConfigError):
            model.adaptive_s(10, 0, 1.0)


class TestModelConfigHelpers:
    def test_scaled(self):
        config = ModelConfig(
            num_tables=2,
            rows_per_table=(100, 200),
            embedding_dim=8,
            bottom_mlp=(16, 8),
            top_mlp=(8, 1),
        )
        scaled = config.scaled(2.0)
        assert scaled.rows_per_table == (200, 400)
        assert config.embedding_bytes * 2 == scaled.embedding_bytes
