"""Unit tests for the error metric, the sampling profiler, the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant import (
    IdentityQuantizer,
    improvement,
    make_quantizer,
    max_abs_error,
    mean_l2_error,
    row_l2_errors,
)
from repro.quant.profiler import (
    auto_tune,
    sample_rows,
    select_num_bins,
    select_ratio,
)
from repro.quant.registry import dequantize_tensor


class TestErrorMetrics:
    def test_identical_tensors_zero_error(self, trained_tensor):
        assert mean_l2_error(trained_tensor, trained_tensor) == 0.0
        assert max_abs_error(trained_tensor, trained_tensor) == 0.0

    def test_known_value(self):
        a = np.zeros((2, 4), dtype=np.float32)
        b = np.full((2, 4), 0.5, dtype=np.float32)
        # Each row error = sqrt(4 * 0.25) = 1.0
        np.testing.assert_allclose(row_l2_errors(a, b), [1.0, 1.0])
        assert mean_l2_error(a, b) == pytest.approx(1.0)
        assert max_abs_error(a, b) == pytest.approx(0.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(QuantizationError, match="mismatch"):
            mean_l2_error(np.zeros((2, 3)), np.zeros((3, 2)))

    def test_1d_rejected(self):
        with pytest.raises(QuantizationError, match="2-D"):
            mean_l2_error(np.zeros(3), np.zeros(3))

    def test_improvement(self):
        assert improvement(1.0, 0.75) == pytest.approx(0.25)
        assert improvement(0.0, 0.0) == 0.0
        with pytest.raises(QuantizationError):
            improvement(-1.0, 0.5)


class TestSampling:
    def test_small_tensor_returned_whole(self, trained_tensor):
        out = sample_rows(
            trained_tensor, 0.001, np.random.default_rng(0), min_rows=1024
        )
        # min_rows floor exceeds the tensor: returned whole.
        assert out.shape[0] == trained_tensor.shape[0]

    def test_sample_count_respects_fraction_and_floor(self, rng):
        big = rng.normal(size=(10_000, 4)).astype(np.float32)
        out = sample_rows(big, 0.005, rng, min_rows=16)
        assert out.shape[0] == 50
        out = sample_rows(big, 0.0001, rng, min_rows=16)
        assert out.shape[0] == 16

    def test_invalid_fraction(self, trained_tensor):
        with pytest.raises(QuantizationError, match="fraction"):
            sample_rows(trained_tensor, 0.0, np.random.default_rng(0))


class TestProfiler:
    def test_bins_selection_returns_candidate(self, trained_tensor):
        result = select_num_bins(
            trained_tensor, bits=2, candidates=(5, 10, 25),
            sample_fraction=1.0,
        )
        assert result.chosen in (5.0, 10.0, 25.0)
        assert len(result.errors) == 3

    def test_errors_decrease_or_flat_with_bins(self, rng):
        x = rng.normal(0, 0.02, size=(512, 16)).astype(np.float32)
        x[:, 0] += 1.0
        result = select_num_bins(
            x, bits=2, candidates=(5, 25, 45), sample_fraction=1.0
        )
        assert result.errors[0] >= result.errors[-1] - 1e-9

    def test_sampled_matches_full_selection(self, rng):
        """The paper: 'the sampled checkpoint provided identical
        parameter selection compared with the full checkpoint'."""
        x = rng.normal(0, 0.02, size=(20_000, 16)).astype(np.float32)
        x[:, 0] += 1.0
        full = select_num_bins(
            x, bits=2, candidates=(5, 15, 25), sample_fraction=1.0
        )
        sampled = select_num_bins(
            x, bits=2, candidates=(5, 15, 25), sample_fraction=0.02
        )
        assert full.chosen == sampled.chosen

    def test_ratio_selection(self, rng):
        x = rng.normal(0, 0.02, size=(512, 16)).astype(np.float32)
        x[:, 0] += 1.0
        result = select_ratio(
            x, bits=2, num_bins=25, candidates=(0.2, 0.6, 1.0),
            sample_fraction=1.0,
        )
        assert result.chosen in (0.2, 0.6, 1.0)

    def test_auto_tune_returns_both(self, trained_tensor):
        bins, ratio = auto_tune(trained_tensor, bits=2, sample_fraction=1.0)
        assert bins >= 5
        assert 0.0 < ratio <= 1.0

    def test_improvement_curve(self, trained_tensor):
        result = select_num_bins(
            trained_tensor, bits=2, candidates=(5, 25), sample_fraction=1.0
        )
        curve = result.improvement_curve(naive_error=max(result.errors))
        assert all(c >= -1e-9 for c in curve)

    def test_empty_candidates_rejected(self, trained_tensor):
        with pytest.raises(QuantizationError, match="candidate"):
            select_num_bins(trained_tensor, bits=2, candidates=())


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["none", "symmetric", "asymmetric", "adaptive", "kmeans"]
    )
    def test_all_names_constructible(self, name):
        q = make_quantizer(name, bits=4)
        assert q.name == name

    def test_unknown_name(self):
        with pytest.raises(QuantizationError, match="unknown"):
            make_quantizer("fancy")

    def test_identity_is_lossless(self, trained_tensor):
        q = IdentityQuantizer()
        np.testing.assert_array_equal(
            q.roundtrip(trained_tensor), trained_tensor
        )

    def test_identity_has_no_size_savings(self, trained_tensor):
        qt = IdentityQuantizer().quantize(trained_tensor)
        assert qt.nbytes == trained_tensor.nbytes

    def test_dequantize_tensor_self_describing(self, trained_tensor):
        for name in ("symmetric", "asymmetric", "adaptive", "kmeans"):
            q = make_quantizer(name, bits=4)
            qt = q.quantize(trained_tensor)
            np.testing.assert_array_equal(
                dequantize_tensor(qt), q.dequantize(qt)
            )
