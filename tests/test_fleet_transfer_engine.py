"""Fleet behaviour of the transfer engine: parts, admission, preemption.

The engine's fleet-facing guarantees:

* cross-job fairness holds at *part* granularity on the s3like
  backend — when competing jobs have queued parts, one chunk's parts
  are not submitted back-to-back;
* preemption's abort-and-requeue can race an in-flight multipart
  upload: the upload is aborted, no visible object and no orphaned
  parts survive, and the restaged write completes;
* dynamic admission control defers experimental triggers under
  backlog while prod triggers pass, and the legacy
  ``max_concurrent_writes`` cap keeps working through the deprecation
  shim (static mode);
* transient-failure injection + retries stay deterministic at fleet
  scale, and the retry/deferral counters surface in the run report.
"""

from __future__ import annotations

import pytest

from repro.config import (
    BackendConfig,
    FailureConfig,
    FleetConfig,
    MiB,
    StorageConfig,
)
from repro.core.controller import PendingCheckpoint
from repro.core.manifest import checkpoint_prefix
from repro.fleet import (
    TIER_EXPERIMENTAL,
    TIER_PROD,
    part_split_score,
    run_fleet,
)


def s3like_storage(
    write_bw=0.4 * MiB,
    read_bw=0.8 * MiB,
    part_size=8192,
    failure_prob=0.0,
    replication=2,
    max_retries=5,
    **backend_overrides,
) -> StorageConfig:
    return StorageConfig(
        write_bandwidth=write_bw,
        read_bandwidth=read_bw,
        replication_factor=replication,
        max_retries=max_retries,
        backend=BackendConfig(
            kind="s3like",
            part_size_bytes=part_size,
            multipart_fanout=2,
            put_failure_prob=failure_prob,
            get_failure_prob=failure_prob,
            **backend_overrides,
        ),
    )


class TestPartGranularInterleaving:
    @pytest.fixture(scope="class")
    def contended_run(self):
        config = FleetConfig(
            num_jobs=6,
            intervals_per_job=3,
            seed=777,
            rows_per_table_choices=(1024, 2048, 4096),
            storage=s3like_storage(),
            inject_failures=False,
            stagger_s=3.0,
        )
        return run_fleet(config)

    def test_mid_chunk_part_splits_occur(self, contended_run):
        """The acceptance property: under contention the link serves
        other streams *between* two parts of one chunk."""
        scheduler, report = contended_run
        assert report.part_interleave_splits > 0
        assert (
            part_split_score(scheduler.store.log.transfers("put"))
            == report.part_interleave_splits
        )

    def test_no_back_to_back_monopoly_under_contention(self, contended_run):
        """While a competing job has queued parts (both jobs mid staged
        write), no job submits a long back-to-back run of parts."""
        scheduler, _ = contended_run
        puts = [
            t
            for t in scheduler.store.log.transfers("put")
            if "#part" in t.key
        ]
        assert puts, "multipart parts must reach the transfer log"
        # Find windows where transfers of two different streams
        # interleave within one chunk's upload: for every chunk whose
        # upload got split, the interruption came from another stream's
        # queued parts being served in SFQ order.
        split_chunks = set()
        for i in range(len(puts) - 1):
            base = puts[i].key.split("#part", 1)[0]
            if puts[i + 1].stream != puts[i].stream and any(
                t.key.split("#part", 1)[0] == base
                for t in puts[i + 1 :]
            ):
                split_chunks.add(base)
        assert split_chunks, "no chunk upload was ever interleaved"

    def test_fairness_holds_at_part_granularity(self):
        """Equal-demand jobs converge to equal byte shares even though
        the link now serves individual parts: SFQ order is preserved
        across the finer submission granularity."""
        config = FleetConfig(
            num_jobs=4,
            intervals_per_job=3,
            seed=99,
            rows_per_table_choices=(2048,),
            num_tables_choices=(3,),
            interval_batches_choices=(10,),
            policy_choices=("full",),
            policy_weights=(1.0,),
            quantizer_choices=("none",),
            bit_width_choices=(8,),
            storage=s3like_storage(),
            inject_failures=False,
            stagger_s=0.5,
        )
        _, report = run_fleet(config)
        assert report.part_interleave_splits > 0
        assert report.fairness_index > 0.97

    def test_every_job_completes(self, contended_run):
        scheduler, report = contended_run
        for job in scheduler.jobs:
            assert job.controller.interval_index >= job.target_intervals
        for j in report.jobs:
            assert j.checkpoints_written >= 1


class TestWriterEmitsPartSteps:
    def test_staged_write_announces_individual_parts(self):
        """A single job's staged write on a multipart backend yields
        one WriteStep per part, with coherent part numbering."""
        from repro.experiments import build_experiment, small_config
        from repro.storage import make_backend

        config = small_config(
            policy="full",
            quantizer="none",
            bit_width=None,
            interval_batches=4,
            num_tables=2,
            rows_per_table=256,
            embedding_dim=8,
            batch_size=16,
            num_nodes=1,
            devices_per_node=1,
        )
        backend = make_backend(
            BackendConfig(kind="s3like", part_size_bytes=2048),
            config.storage,
        )
        exp = build_experiment(config, backend=backend)
        exp.controller.coordinator.grant_interval(4)
        exp.trainer.train_interval(4)
        pending = exp.controller.begin_checkpoint()
        assert isinstance(pending, PendingCheckpoint)
        steps = []
        while pending.next_step is not None:
            steps.append(pending.next_step)
            pending.advance()
        exp.controller.finish_checkpoint(pending)
        multi = [s for s in steps if s.num_parts > 1]
        assert multi, "chunk-sized payloads must stage as parts"
        # Per (kind, key): part indexes announce 1..num_parts in order.
        by_key: dict = {}
        for s in steps:
            by_key.setdefault((s.kind, s.key), []).append(
                (s.part_index, s.num_parts)
            )
        for (kind, key), announced in by_key.items():
            expected = [
                (i + 1, announced[0][1]) for i in range(len(announced))
            ]
            assert announced == expected, (kind, key, announced)
        # The object round-trips despite part-wise submission.
        assert exp.controller.valid_manifests(at_time_s=1e9)


class TestPreemptionRacesMultipart:
    def test_abort_pending_mid_part_aborts_the_upload(self):
        """Controller-level: aborting a staged write between two parts
        aborts the open multipart upload — no visible object, no
        orphaned parts — and a fresh write then succeeds."""
        from repro.experiments import build_experiment, small_config
        from repro.storage import make_backend

        config = small_config(
            policy="full",
            quantizer="none",
            bit_width=None,
            interval_batches=4,
            num_tables=2,
            rows_per_table=256,
            embedding_dim=8,
            batch_size=16,
            num_nodes=1,
            devices_per_node=1,
        )
        backend = make_backend(
            BackendConfig(kind="s3like", part_size_bytes=2048),
            config.storage,
        )
        exp = build_experiment(config, backend=backend)
        exp.controller.coordinator.grant_interval(4)
        exp.trainer.train_interval(4)
        pending = exp.controller.begin_checkpoint()
        assert isinstance(pending, PendingCheckpoint)
        # Advance into the middle of a multipart chunk upload.
        while not exp.store.backend.pending_uploads():
            step = pending.advance()
            assert step is not None, "never entered a multipart upload"
        in_flight_key = pending.next_step.key
        checkpoint_id = pending.checkpoint_id
        exp.controller.abort_pending(pending)
        # The race resolved cleanly: upload aborted, nothing visible.
        assert exp.store.backend.pending_uploads() == []
        assert exp.store.backend.multipart_aborted >= 1
        assert not exp.store.backend.exists(in_flight_key)
        # Torn chunks (completed before the abort) are scrubbable.
        exp.store.delete_prefix(
            checkpoint_prefix("job0", checkpoint_id)
        )
        assert (
            exp.store.list_keys(
                checkpoint_prefix("job0", checkpoint_id)
            )
            == []
        )
        # The re-staged write completes and becomes restorable.
        again = exp.controller.begin_checkpoint(restage=True)
        assert isinstance(again, PendingCheckpoint)
        while again.advance() is not None:
            pass
        exp.controller.finish_checkpoint(again)
        assert exp.store.backend.pending_uploads() == []
        assert exp.controller.valid_manifests(at_time_s=1e9)

    def test_fleet_preemption_leaves_no_orphaned_parts(self):
        """Fleet-level: prod preemption aborts experimental staged
        writes racing their multipart uploads; restage succeeds and the
        store ends with no open uploads and no orphaned objects."""
        config = FleetConfig(
            num_jobs=6,
            intervals_per_job=3,
            seed=0x5709,
            rows_per_table_choices=(1024, 2048, 4096),
            storage=s3like_storage(
                write_bw=0.25 * MiB, read_bw=0.5 * MiB
            ),
            inject_failures=False,
            stagger_s=3.0,
            priority_mix=0.34,
            preempt_wait_s=0.2,
        )
        observed: list[dict] = []

        def on_event(event):
            if event.kind == "preempted":
                observed.append(event.payload)

        from repro.fleet import build_fleet

        scheduler, store = build_fleet(config, on_event=on_event)

        def no_preempted_upload_survives(event):
            if event.kind != "preempted":
                return
            prefix = checkpoint_prefix(
                event.job_id, event.payload["checkpoint_id"]
            )
            open_keys = [
                key
                for key, _parts in store.backend._uploads.values()
                if key.startswith(prefix)
            ]
            assert open_keys == [], (
                f"preempted write left open upload parts: {open_keys}"
            )

        scheduler.on_event = lambda e: (
            on_event(e),
            no_preempted_upload_survives(e),
        )
        scheduler.run()

        assert observed, "no preemption fired — slow the link further"
        assert any(
            e.kind == "restaged" for e in scheduler.events
        ), "preempted jobs must restage their writes"
        # End state: no open uploads, no orphaned objects.
        assert store.backend.pending_uploads() == []
        manifest_prefixes = {
            "/".join(key.split("/")[:2])
            for key in store.list_keys()
            if key.endswith("/manifest.json")
        }
        for key in store.list_keys():
            prefix = "/".join(key.split("/")[:2])
            assert prefix in manifest_prefixes, (
                f"orphaned object {key} from a preempted write"
            )
        # Only experimental jobs were preempted.
        preempted_jobs = {
            e.job_id
            for e in scheduler.events
            if e.kind == "preempted"
        }
        tiers = {j.job_id: j.tier for j in scheduler.jobs}
        assert all(
            tiers[job_id] == TIER_EXPERIMENTAL
            for job_id in preempted_jobs
        )


class TestDynamicAdmission:
    @pytest.fixture(scope="class")
    def admission_run(self):
        config = FleetConfig(
            num_jobs=6,
            intervals_per_job=4,
            seed=0xF1EE7,
            rows_per_table_choices=(2048, 4096, 8192),
            storage=s3like_storage(
                write_bw=150_000.0,
                read_bw=300_000.0,
                part_size=16384,
                failure_prob=0.08,
                replication=3,
            ),
            inject_failures=True,
            priority_mix=0.34,
            admission_mode="dynamic",
        )
        return run_fleet(config)

    def test_backlog_defers_experimental_triggers(self, admission_run):
        scheduler, report = admission_run
        assert report.admission_deferrals >= 1
        deferred_events = [
            e for e in scheduler.events if e.kind == "deferred"
        ]
        assert deferred_events
        for event in deferred_events:
            assert event.payload["reason"] == "backlog"
            assert (
                event.payload["projected_delay_s"]
                > event.payload["threshold_s"]
            )

    def test_prod_triggers_are_never_deferred(self, admission_run):
        scheduler, report = admission_run
        tiers = {j.job_id: j.tier for j in scheduler.jobs}
        for event in scheduler.events:
            if event.kind == "deferred":
                assert tiers[event.job_id] == TIER_EXPERIMENTAL
        for j in report.jobs:
            if j.tier == TIER_PROD:
                assert j.admission_deferred == 0

    def test_fleet_completes_despite_deferrals(self, admission_run):
        scheduler, _ = admission_run
        for job in scheduler.jobs:
            assert job.controller.interval_index >= job.target_intervals

    def test_retries_surface_in_the_report(self, admission_run):
        _, report = admission_run
        retries = dict(report.retries_by_op)
        assert retries.get("PUT", 0) >= 1
        # Receipts carry the retry counts the report aggregates.
        scheduler, _ = admission_run
        assert scheduler.store.ops.total_retries("PUT") == retries["PUT"]

    def test_exhausted_retries_fail_one_write_not_the_fleet(self):
        """With a tight retry budget under heavy injection, some
        request exhausts its retries; the job loses that checkpoint
        (aborted, scrubbed, counted) and the fleet run completes."""
        config = FleetConfig(
            num_jobs=4,
            intervals_per_job=3,
            seed=21,
            rows_per_table_choices=(1024, 2048),
            storage=s3like_storage(failure_prob=0.45, max_retries=1),
            inject_failures=False,
            stagger_s=2.0,
        )
        scheduler, report = run_fleet(config)
        failed = [
            e for e in scheduler.events if e.kind == "write_failed"
        ]
        assert failed, "expected at least one exhausted write at p=0.45"
        assert sum(j.failed_writes for j in report.jobs) == len(failed)
        for job in scheduler.jobs:
            assert job.controller.interval_index >= job.target_intervals
        # Failed writes were scrubbed and no upload leaked.
        assert scheduler.store.backend.pending_uploads() == []
        manifest_prefixes = {
            "/".join(key.split("/")[:2])
            for key in scheduler.store.list_keys()
            if key.endswith("/manifest.json")
        }
        for key in scheduler.store.list_keys():
            assert "/".join(key.split("/")[:2]) in manifest_prefixes

    def test_deterministic_with_failure_injection(self, admission_run):
        _, report = admission_run
        config = FleetConfig(
            num_jobs=6,
            intervals_per_job=4,
            seed=0xF1EE7,
            rows_per_table_choices=(2048, 4096, 8192),
            storage=s3like_storage(
                write_bw=150_000.0,
                read_bw=300_000.0,
                part_size=16384,
                failure_prob=0.08,
                replication=3,
            ),
            inject_failures=True,
            priority_mix=0.34,
            admission_mode="dynamic",
        )
        _, again = run_fleet(config)
        assert again == report  # measured pool fields excluded from eq


class TestDeprecationShim:
    def test_max_concurrent_writes_warns_and_maps_to_static(self):
        with pytest.warns(DeprecationWarning, match="max_concurrent"):
            config = FleetConfig(max_concurrent_writes=1)
        assert config.resolved_admission_mode == "static"

    def test_explicit_admission_mode_suppresses_the_warning(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = FleetConfig(
                max_concurrent_writes=2, admission_mode="static"
            )
        assert config.resolved_admission_mode == "static"

    def test_legacy_cap_still_defers(self):
        with pytest.warns(DeprecationWarning):
            config = FleetConfig(
                num_jobs=6,
                intervals_per_job=3,
                seed=1234,
                rows_per_table_choices=(1024, 2048, 4096),
                storage=StorageConfig(
                    write_bandwidth=1.5 * MiB,
                    read_bandwidth=3.0 * MiB,
                    replication_factor=2,
                    latency_s=0.002,
                ),
                inject_failures=False,
                stagger_s=0.0,
                max_concurrent_writes=1,
            )
        scheduler, report = run_fleet(config)
        assert report.admission_deferrals >= 1
        for event in scheduler.events:
            if event.kind == "deferred":
                assert event.payload["reason"] == "static_cap"

    def test_static_mode_requires_a_cap(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="static"):
            FleetConfig(admission_mode="static")


class TestWriterPoolAtFleetScale:
    def test_quantization_runs_on_the_worker_pool(self):
        from repro.experiments import build_experiment, small_config

        config = small_config(
            policy="full",
            quantizer="asymmetric",
            bit_width=4,
            interval_batches=4,
            num_tables=3,
            rows_per_table=512,
            embedding_dim=8,
            batch_size=16,
            num_nodes=1,
            devices_per_node=1,
        )
        exp = build_experiment(config)
        exp.controller.run_intervals(1)
        assert exp.store.engine.pool_tasks >= 3  # one per chunk/shard
        report = exp.controller.stats.events[0].report
        assert report is not None
        assert report.measured_quantize_s > 0.0
        assert report.measured_wait_s >= 0.0
        assert report.measured_overlap_s >= 0.0
        assert exp.store.engine.pool_busy_s >= (
            report.measured_quantize_s
        )
