"""Unit tests for the tools package: inspection, scrub, CLI, config IO."""

from __future__ import annotations

import json

import pytest

from repro.config import (
    CheckpointConfig,
    ExperimentConfig,
    ModelConfig,
    experiment_config_from_dict,
    experiment_config_to_dict,
)
from repro.errors import ConfigError
from repro.experiments import build_experiment, small_config
from repro.tools.cli import main as cli_main
from repro.tools.inspect import (
    format_summaries,
    list_jobs,
    scrub_checkpoint,
    scrub_job,
    summarize_job,
)


def drain(exp) -> None:
    exp.clock.advance_to(exp.store.timeline.free_at + 1.0, "drain")


@pytest.fixture
def populated_exp():
    exp = build_experiment(
        small_config(
            interval_batches=5,
            num_tables=3,
            rows_per_table=512,
            batch_size=32,
        )
    )
    exp.controller.run_intervals(2)
    drain(exp)
    return exp


class TestConfigSerialization:
    def test_roundtrip_default(self):
        config = ExperimentConfig()
        out = experiment_config_from_dict(
            experiment_config_to_dict(config)
        )
        assert out == config

    def test_roundtrip_custom(self):
        config = small_config(
            policy="consecutive", bit_width=2, rows_per_table=123
        )
        blob = json.dumps(experiment_config_to_dict(config))
        out = experiment_config_from_dict(json.loads(blob))
        assert out == config
        assert out.model.rows_per_table == config.model.rows_per_table

    def test_missing_sections_default(self):
        out = experiment_config_from_dict({})
        assert out == ExperimentConfig()

    def test_bad_section_rejected(self):
        with pytest.raises(ConfigError, match="checkpoint"):
            experiment_config_from_dict(
                {"checkpoint": {"nonsense_field": 1}}
            )

    def test_tuples_restored(self):
        config = ExperimentConfig(
            model=ModelConfig(
                num_tables=2,
                rows_per_table=(10, 20),
                embedding_dim=8,
                bottom_mlp=(16, 8),
                top_mlp=(8, 1),
            )
        )
        out = experiment_config_from_dict(
            experiment_config_to_dict(config)
        )
        assert isinstance(out.model.rows_per_table, tuple)


class TestInspection:
    def test_list_jobs(self, populated_exp):
        assert list_jobs(populated_exp.store) == ["job0"]

    def test_summaries_match_manifests(self, populated_exp):
        summaries = summarize_job(populated_exp.store, "job0")
        assert len(summaries) == 2
        assert summaries[0].kind == "full"
        assert summaries[0].interval_index == 0
        assert summaries[1].interval_index == 1
        assert all(s.logical_bytes > 0 for s in summaries)

    def test_format_summaries(self, populated_exp):
        text = format_summaries(summarize_job(populated_exp.store, "job0"))
        assert "ckpt-000000" in text
        assert "full" in text
        assert format_summaries([]) == "(no checkpoints)"

    def test_scrub_clean_store(self, populated_exp):
        report = scrub_job(populated_exp.store, "job0")
        assert report.clean
        assert report.objects_checked > 0
        assert report.bytes_checked > 0

    def test_scrub_detects_corruption(self, populated_exp):
        exp = populated_exp
        manifests = list(exp.controller.manifests.values())
        victim = manifests[0].shards[0].chunks[0].key
        blob = bytearray(exp.store.backend.read(victim))
        blob[len(blob) // 2] ^= 0xFF
        exp.store.backend.write(victim, bytes(blob))
        report = scrub_checkpoint(exp.store, manifests[0])
        assert not report.clean
        assert victim in report.corrupt_keys


class TestCli:
    def test_run_inspect_scrub_restore_cycle(self, tmp_path):
        store_dir = str(tmp_path / "store")
        args = [
            "run", "--store-dir", store_dir, "--intervals", "2",
            "--interval-batches", "4", "--tables", "2",
            "--rows", "256",
        ]
        assert cli_main(args) == 0
        assert cli_main(["inspect", "--store-dir", store_dir]) == 0
        assert cli_main(["scrub", "--store-dir", store_dir]) == 0
        assert cli_main(["restore", "--store-dir", store_dir]) == 0

    def test_resumed_run_continues_numbering(self, tmp_path):
        store_dir = str(tmp_path / "store")
        base_args = [
            "run", "--store-dir", store_dir, "--intervals", "1",
            "--interval-batches", "4", "--tables", "2",
            "--rows", "256",
        ]
        assert cli_main(base_args) == 0
        assert cli_main(base_args) == 0  # resumes, must not collide
        from repro.config import StorageConfig
        from repro.distributed.clock import SimClock
        from repro.storage.backends import FileBackend
        from repro.storage.object_store import ObjectStore

        store = ObjectStore(
            StorageConfig(), SimClock(), backend=FileBackend(store_dir)
        )
        summaries = summarize_job(store, "job0")
        ids = [s.checkpoint_id for s in summaries]
        assert len(ids) == len(set(ids))
        assert len(ids) >= 2

    def test_restore_without_config_fails(self, tmp_path):
        code = cli_main(
            ["restore", "--store-dir", str(tmp_path / "empty")]
        )
        assert code == 2

    def test_scrub_exit_code_on_corruption(self, tmp_path):
        store_dir = str(tmp_path / "store")
        assert cli_main([
            "run", "--store-dir", store_dir, "--intervals", "1",
            "--interval-batches", "4", "--tables", "2",
            "--rows", "256",
        ]) == 0
        # Corrupt one chunk file on disk.
        import pathlib

        chunks = [
            p
            for p in pathlib.Path(store_dir).rglob("chunk*.bin")
        ]
        blob = bytearray(chunks[0].read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        chunks[0].write_bytes(bytes(blob))
        assert cli_main(["scrub", "--store-dir", store_dir]) == 1


class TestCompactParams:
    def test_fp16_metadata_halves_param_bytes(self, trained_tensor):
        from repro.quant import make_quantizer

        fp32 = make_quantizer("asymmetric", bits=4).quantize(
            trained_tensor
        )
        fp16 = make_quantizer(
            "asymmetric", bits=4, compact_params=True
        ).quantize(trained_tensor)
        assert fp16.param_bytes == fp32.param_bytes // 2
        assert fp16.params["xmin"].dtype == "float16"

    @pytest.mark.parametrize("name", ["symmetric", "asymmetric", "adaptive"])
    def test_fp16_roundtrip_error_marginal(self, name, trained_tensor):
        from repro.quant import make_quantizer, mean_l2_error

        fp32_q = make_quantizer(name, bits=4)
        fp16_q = make_quantizer(name, bits=4, compact_params=True)
        e32 = mean_l2_error(
            trained_tensor, fp32_q.roundtrip(trained_tensor)
        )
        e16 = mean_l2_error(
            trained_tensor, fp16_q.roundtrip(trained_tensor)
        )
        assert e16 <= e32 * 1.1

    def test_fp16_grid_self_consistent(self, trained_tensor):
        """Quantizing the reconstruction again must be a fixed point —
        encode and decode agree on the rounded bounds."""
        from repro.quant import make_quantizer

        import numpy as np

        q = make_quantizer("asymmetric", bits=4, compact_params=True)
        once = q.roundtrip(trained_tensor)
        twice = q.roundtrip(once)
        np.testing.assert_allclose(twice, once, atol=1e-3)

    def test_fp16_serialization_roundtrip(self, trained_tensor):
        from repro.quant import make_quantizer
        from repro.serialize import decode_quantized, encode_quantized

        import numpy as np

        q = make_quantizer("adaptive", bits=2, compact_params=True)
        qt = q.quantize(trained_tensor)
        back = decode_quantized(encode_quantized(qt))
        np.testing.assert_array_equal(
            q.dequantize(back), q.dequantize(qt)
        )
