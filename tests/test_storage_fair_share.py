"""Property-style tests for the shared-store bandwidth arbiter.

The fleet refactor lets many streams (jobs) share one store. Three
properties must hold no matter the workload:

* the link is a physical resource — windowed aggregate throughput can
  never exceed the configured store bandwidth;
* start-time fair queueing converges: equal-weight backlogged streams
  split the link's bytes evenly, and a weight-2 stream gets twice a
  weight-1 stream's share;
* per-stream capacity quotas are enforced for the offending stream
  *only* — a quota-blown PUT raises before spending link time, and
  other streams keep writing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import MiB, StorageConfig
from repro.distributed.clock import SimClock
from repro.errors import CapacityExceededError, StorageError
from repro.storage.bandwidth import (
    TIER_EXPERIMENTAL,
    TIER_PROD,
    TIER_RANK,
    TIER_SERVING,
    BandwidthArbiter,
)
from repro.storage.object_store import ObjectStore


def make_store(
    write_bandwidth: float = 4.0 * MiB,
    replication: int = 1,
    latency_s: float = 0.001,
) -> ObjectStore:
    return ObjectStore(
        StorageConfig(
            write_bandwidth=write_bandwidth,
            read_bandwidth=2 * write_bandwidth,
            replication_factor=replication,
            latency_s=latency_s,
        ),
        SimClock(),
        arbiter=BandwidthArbiter(),
    )


class TestAggregateThroughputCap:
    def test_windowed_bandwidth_never_exceeds_link(self):
        """Random interleaved traffic, random windows: bw <= configured."""
        store = make_store(write_bandwidth=2.0 * MiB, replication=2)
        for stream in ("jobA", "jobB", "jobC"):
            store.arbiter.register(stream)
        rng = np.random.default_rng(7)
        clock_offset = 0.0
        for i in range(60):
            stream = ("jobA", "jobB", "jobC")[int(rng.integers(3))]
            size = int(rng.integers(1, 64 * 1024))
            clock_offset += float(rng.uniform(0.0, 0.05))
            store.put(
                f"{stream}/obj{i:03d}",
                bytes(size),
                earliest=clock_offset,
                stream=stream,
            )
        transfers = store.log.transfers("put")
        span_start = min(t.start_s for t in transfers)
        span_end = max(t.end_s for t in transfers)
        # Physical bytes move through the link; the cap is physical.
        cap = store.config.write_bandwidth * (1 + 1e-9)
        for _ in range(200):
            a = float(rng.uniform(span_start, span_end))
            b = float(rng.uniform(span_start, span_end))
            lo, hi = min(a, b), max(a, b)
            if hi - lo < 1e-6:
                continue
            assert store.log.average_bandwidth(lo, hi, "put") <= cap

    def test_serial_link_transfers_never_overlap(self):
        store = make_store()
        store.arbiter.register("jobA")
        store.arbiter.register("jobB")
        for i in range(20):
            stream = "jobA" if i % 2 == 0 else "jobB"
            store.put(f"{stream}/k{i}", bytes(10_000), stream=stream)
        transfers = sorted(
            store.log.transfers("put"), key=lambda t: t.start_s
        )
        for earlier, later in zip(transfers, transfers[1:]):
            assert later.start_s >= earlier.end_s - 1e-9


class TestFairShareConvergence:
    def _drive(
        self,
        store: ObjectStore,
        streams: list[str],
        rounds: int,
        chunk: int = 16 * 1024,
    ) -> None:
        """Backlogged streams: the arbiter picks who submits each chunk."""
        counters = dict.fromkeys(streams, 0)
        for _ in range(rounds):
            stream = store.arbiter.pick(streams)
            counters[stream] += 1
            store.put(
                f"{stream}/chunk{counters[stream]:05d}",
                bytes(chunk),
                stream=stream,
            )

    def test_equal_streams_converge_to_equal_shares(self):
        store = make_store()
        store.arbiter.register("jobA")
        store.arbiter.register("jobB")
        self._drive(store, ["jobA", "jobB"], rounds=50)
        shares = store.log.stream_shares("put")
        assert shares["jobA"] == pytest.approx(0.5, abs=0.05)
        assert shares["jobB"] == pytest.approx(0.5, abs=0.05)
        assert store.arbiter.fairness_index("put") > 0.99

    def test_weighted_stream_gets_proportional_share(self):
        store = make_store()
        store.arbiter.register("heavy", weight=2.0)
        store.arbiter.register("light", weight=1.0)
        self._drive(store, ["heavy", "light"], rounds=60)
        shares = store.log.stream_shares("put")
        assert shares["heavy"] == pytest.approx(2 / 3, abs=0.05)
        assert shares["light"] == pytest.approx(1 / 3, abs=0.05)
        # Weighted Jain: service normalised by weight is fair.
        assert store.arbiter.fairness_index("put") > 0.99

    def test_three_equal_streams_with_uneven_chunk_sizes(self):
        """Fairness is in *bytes*, not chunk counts."""
        store = make_store()
        sizes = {"jobA": 8 * 1024, "jobB": 16 * 1024, "jobC": 32 * 1024}
        for stream in sizes:
            store.arbiter.register(stream)
        counters = dict.fromkeys(sizes, 0)
        for _ in range(120):
            stream = store.arbiter.pick(list(sizes))
            counters[stream] += 1
            store.put(
                f"{stream}/c{counters[stream]:05d}",
                bytes(sizes[stream]),
                stream=stream,
            )
        shares = store.log.stream_shares("put")
        for stream in sizes:
            assert shares[stream] == pytest.approx(1 / 3, abs=0.08)

    def test_idle_stream_reenters_at_current_virtual_time(self):
        """A long-idle stream must not burst on accumulated credit."""
        store = make_store()
        store.arbiter.register("busy")
        store.arbiter.register("idler")
        for i in range(30):
            store.put(f"busy/b{i:03d}", bytes(16 * 1024), stream="busy")
        # idler wakes: from here on it should get ~half, not a burst
        # of 30 chunks to "catch up".
        first_after_wake = [
            store.arbiter.pick(["busy", "idler"]) for _ in range(1)
        ]
        assert first_after_wake == ["idler"]  # it is behind, goes first
        taken = {"busy": 0, "idler": 0}
        for _ in range(20):
            stream = store.arbiter.pick(["busy", "idler"])
            taken[stream] += 1
            store.put(
                f"{stream}/w{taken[stream]:03d}",
                bytes(16 * 1024),
                stream=stream,
            )
        # Strict alternation modulo one chunk: no catch-up burst.
        assert abs(taken["busy"] - taken["idler"]) <= 1


class TestQuotaEnforcement:
    def test_quota_blocks_offending_stream_only(self):
        store = make_store(replication=2)
        store.arbiter.register("greedy", quota_bytes=100_000)
        store.arbiter.register("modest", quota_bytes=10 * MiB)
        store.put("greedy/a", bytes(20_000), stream="greedy")  # 40k phys
        with pytest.raises(CapacityExceededError) as err:
            store.put("greedy/b", bytes(40_000), stream="greedy")
        assert "greedy" in str(err.value)
        # The failed PUT spent no link time and stored nothing.
        assert not store.exists("greedy/b")
        assert store.log.total_bytes("put", "greedy") == 40_000
        # Other streams are unaffected.
        store.put("modest/a", bytes(40_000), stream="modest")
        assert store.exists("modest/a")

    def test_quota_charge_is_net_of_overwrites_and_deletes(self):
        store = make_store(replication=1)
        store.arbiter.register("job", quota_bytes=100_000)
        store.put("job/a", bytes(60_000), stream="job")
        with pytest.raises(CapacityExceededError):
            store.put("job/b", bytes(60_000), stream="job")
        store.delete("job/a", stream="job")
        assert store.arbiter.stream("job").charged_bytes == 0
        store.put("job/b", bytes(60_000), stream="job")  # fits now
        # Overwrite replaces, not accumulates.
        store.put("job/b", bytes(80_000), overwrite=True, stream="job")
        assert store.arbiter.stream("job").charged_bytes == 80_000

    def test_failed_put_does_not_charge(self):
        store = make_store(replication=1)
        store.arbiter.register("job", quota_bytes=50_000)
        with pytest.raises(CapacityExceededError):
            store.put("job/huge", bytes(60_000), stream="job")
        assert store.arbiter.stream("job").charged_bytes == 0
        assert store.arbiter.stream("job").quota_rejections == 1

    def test_backend_write_failure_refunds_the_quota_charge(self):
        from repro.storage.backends import CrashingBackend, InMemoryBackend

        crashing = CrashingBackend(InMemoryBackend())
        store = ObjectStore(
            StorageConfig(replication_factor=1),
            SimClock(),
            backend=crashing,
            arbiter=BandwidthArbiter(),
        )
        store.arbiter.register("job", quota_bytes=50_000)
        crashing.arm(1)
        with pytest.raises(StorageError):
            store.put("job/x", bytes(30_000), stream="job")
        assert store.arbiter.stream("job").charged_bytes == 0
        # The full quota is still available afterwards.
        store.put("job/y", bytes(45_000), stream="job")
        assert store.arbiter.stream("job").charged_bytes == 45_000


class TestArbiterRegistry:
    def test_duplicate_and_invalid_registrations_rejected(self):
        arbiter = BandwidthArbiter()
        arbiter.register("job")
        with pytest.raises(StorageError):
            arbiter.register("job")
        with pytest.raises(StorageError):
            arbiter.register("")
        with pytest.raises(StorageError):
            arbiter.register("bad-weight", weight=0.0)
        with pytest.raises(StorageError):
            arbiter.register("bad-quota", quota_bytes=0)
        with pytest.raises(StorageError):
            arbiter.stream("unknown")
        with pytest.raises(StorageError):
            arbiter.pick([])

    def test_untagged_transfers_bypass_arbiter(self):
        """Single-job stores keep working with no stream plumbing."""
        store = make_store()
        store.put("solo/obj", bytes(1000))
        assert store.log.transfers("put")[0].stream == ""
        assert store.arbiter.streams() == []

    def test_streams_view_tracks_late_registrations(self):
        """The cached sorted view must refresh when streams register."""
        arbiter = BandwidthArbiter()
        arbiter.register("jobB")
        assert [s.stream_id for s in arbiter.streams()] == ["jobB"]
        arbiter.register("jobA")
        assert [s.stream_id for s in arbiter.streams()] == [
            "jobA",
            "jobB",
        ]


class TestPickOrderParity:
    def test_single_pass_pick_matches_sorted_scan_reference(self):
        """The O(k) pick reproduces the historical sorted-scan order.

        The original implementation sorted the candidates and kept the
        first strictly-smaller tag within the best tier — i.e. the
        minimum under (tier rank, SFQ tag, stream id). Replay random
        contention histories and assert the linear-scan pick agrees
        with that reference on every call, regardless of candidate
        order.
        """
        rng = np.random.default_rng(123)
        arbiter = BandwidthArbiter()
        tiers = (TIER_SERVING, TIER_PROD, TIER_EXPERIMENTAL)
        ids = [f"s{i:02d}" for i in range(12)]
        for i, stream_id in enumerate(ids):
            arbiter.register(
                stream_id,
                tier=tiers[i % 3],
                weight=float(1 + i % 2),
            )

        def reference_pick(candidates: list[str]) -> str:
            best_rank = min(
                TIER_RANK[arbiter.stream(s).tier] for s in candidates
            )
            best = None
            best_tag = 0.0
            for stream_id in sorted(candidates):
                state = arbiter.stream(stream_id)
                if TIER_RANK[state.tier] != best_rank:
                    continue
                tag = max(
                    state.virtual_finish, arbiter._virtual_time
                )
                if best is None or tag < best_tag:
                    best, best_tag = stream_id, tag
            assert best is not None
            return best

        for _ in range(300):
            k = int(rng.integers(2, len(ids) + 1))
            candidates = [
                str(s) for s in rng.permutation(ids)[:k]
            ]
            assert arbiter.pick(candidates) == reference_pick(
                candidates
            )
            served = candidates[int(rng.integers(len(candidates)))]
            arbiter.on_transfer(
                served, int(rng.integers(1, 50_000)), "put"
            )
