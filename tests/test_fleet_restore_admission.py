"""Read-side admission, staged GETs, and storm-aware retention.

The restore path mirrors the write path: GETs are staged part by part
through the transfer engine (`StagedGet`), restores pass a read-side
admission check (prod always admits, experimental is *paced* on the
projected backlog), and storm-aware retention bounds restore chains by
forcing baseline refreshes. These tests pin:

* staged GETs drain timing-identical to plain ``get`` and feed the
  queued-read backlog signal;
* the admission controller's read side defers only experimental
  restores, only in dynamic mode, only under backlog;
* the chain bound holds for every checkpoint a bounded job writes;
* determinism: the same seeds and storm config twice yield identical
  restore receipts, deferral counts, and retention scrub order.
"""

from __future__ import annotations

import pytest

from repro.config import (
    BackendConfig,
    FailureConfig,
    FleetConfig,
    MiB,
    StorageConfig,
)
from repro.core.retention import RetentionManager
from repro.distributed.clock import SimClock
from repro.errors import CheckpointError, StorageError
from repro.experiments.common import build_experiment, small_config
from repro.fleet import TIER_EXPERIMENTAL, TIER_PROD, run_fleet
from repro.storage.bandwidth import BandwidthArbiter
from repro.storage.engine import AdmissionController
from repro.storage.object_store import ObjectStore
from repro.storage.requests import OP_GET


def ranged_store() -> ObjectStore:
    """An s3like store whose larger GETs split into ranged parts."""
    config = StorageConfig(
        backend=BackendConfig(
            kind="s3like",
            range_get_bytes=1024,
            multipart_fanout=2,
        )
    )
    return ObjectStore(config, SimClock())


class TestStagedGet:
    def test_staged_drain_matches_plain_get(self):
        """Stage + drain must be bit-identical to ``get`` — data,
        receipt timing, parts and transfer log alike."""
        payload = bytes(range(256)) * 20  # 5120 B -> 5 ranged parts
        plain, staged_store = ranged_store(), ranged_store()
        for store in (plain, staged_store):
            store.put("job0/a", payload)
        data_plain = plain.get("job0/a")
        staged = staged_store.stage_get("job0/a")
        assert staged.num_parts == 5
        while not staged.done:
            staged.submit_next()
        assert staged.data() == data_plain == payload
        plain_receipt = plain.ops.receipts(OP_GET)[-1]
        staged_receipt = staged_store.ops.receipts(OP_GET)[-1]
        assert staged_receipt == plain_receipt
        assert [
            (t.key, t.start_s, t.end_s)
            for t in plain.log.transfers("get")
        ] == [
            (t.key, t.start_s, t.end_s)
            for t in staged_store.log.transfers("get")
        ]

    def test_announced_parts_feed_the_read_backlog(self):
        store = ranged_store()
        store.put("job0/a", b"x" * 4096)
        assert store.engine.queued_get_bytes() == 0
        staged = store.stage_get("job0/a")
        assert store.engine.queued_get_bytes() == 4096
        staged.submit_next()
        assert store.engine.queued_get_bytes() == 4096 - 1024
        while not staged.done:
            staged.submit_next()
        assert store.engine.queued_get_bytes() == 0

    def test_projected_restore_delay_includes_read_backlog(self):
        store = ranged_store()
        store.put("job0/a", b"x" * 4096)
        base = store.engine.projected_restore_delay_s(store.clock.now)
        staged = store.stage_get("job0/a")
        spb = store.costs.for_op(OP_GET).seconds_per_byte
        assert store.engine.projected_restore_delay_s(
            store.clock.now
        ) == pytest.approx(base + 4096 * spb)
        staged.abort()
        assert store.engine.projected_restore_delay_s(
            store.clock.now
        ) == pytest.approx(base)

    def test_explicit_range_announces_only_its_window(self):
        """A ranged probe of a big object must not inflate the backlog
        signal with the whole object's bytes."""
        store = ranged_store()
        store.put("job0/a", b"x" * 65536)
        staged = store.stage_get("job0/a", byte_range=(0, 512))
        assert store.engine.queued_get_bytes() == 512
        while not staged.done:
            staged.submit_next()
        assert staged.data() == b"x" * 512

    def test_aborted_staged_get_rejects_submission(self):
        store = ranged_store()
        store.put("job0/a", b"x" * 2048)
        staged = store.stage_get("job0/a")
        staged.abort()
        with pytest.raises(StorageError):
            staged.submit_next()

    def test_data_before_done_rejected(self):
        store = ranged_store()
        store.put("job0/a", b"x" * 2048)
        staged = store.stage_get("job0/a")
        with pytest.raises(StorageError):
            staged.data()


class TestReadAdmission:
    def controller(self, store: ObjectStore, **kwargs) -> AdmissionController:
        return AdmissionController(store.engine, **kwargs)

    def test_none_mode_always_admits(self):
        store = ranged_store()
        store.put("job0/a", b"x" * 4096)
        store.stage_get("job0/a")  # backlog present
        control = self.controller(store, read_mode="none")
        decision = control.decide_get(
            stream="job0",
            tier=TIER_EXPERIMENTAL,
            now=store.clock.now,
            interval_s=1e-9,
        )
        assert decision.admitted

    def test_dynamic_mode_defers_experimental_under_backlog(self):
        store = ranged_store()
        store.put("job0/a", b"x" * 65536)
        store.stage_get("job0/a")
        control = self.controller(store, read_mode="dynamic")
        decision = control.decide_get(
            stream="job0",
            tier=TIER_EXPERIMENTAL,
            now=store.clock.now,
            interval_s=1e-9,
        )
        assert not decision.admitted
        assert decision.reason == "read_backlog"
        assert decision.threshold_s is not None
        assert decision.projected_delay_s > decision.threshold_s
        assert control.total_read_deferrals == 1
        assert control.read_deferrals_by_tier == {TIER_EXPERIMENTAL: 1}

    def test_prod_restores_always_admit(self):
        store = ranged_store()
        store.put("job0/a", b"x" * 65536)
        store.stage_get("job0/a")
        control = self.controller(store, read_mode="dynamic")
        decision = control.decide_get(
            stream="job0",
            tier=TIER_PROD,
            now=store.clock.now,
            interval_s=1e-9,
        )
        assert decision.admitted
        assert control.total_read_deferrals == 0

    def test_unmeasured_interval_admits(self):
        """A job crashing before its second trigger has no interval to
        scale the threshold by — it must not be deferred forever."""
        store = ranged_store()
        store.put("job0/a", b"x" * 65536)
        store.stage_get("job0/a")
        control = self.controller(store, read_mode="dynamic")
        decision = control.decide_get(
            stream="job0",
            tier=TIER_EXPERIMENTAL,
            now=store.clock.now,
            interval_s=None,
        )
        assert decision.admitted

    def test_unknown_read_mode_rejected(self):
        store = ranged_store()
        with pytest.raises(StorageError):
            self.controller(store, read_mode="static")

    def test_bad_read_backlog_factor_rejected(self):
        store = ranged_store()
        with pytest.raises(StorageError):
            self.controller(
                store, read_mode="dynamic", read_backlog_factor=0.0
            )


class TestStormAwareRetention:
    def test_chain_bound_forces_baseline_refreshes(self):
        """A consecutive-policy job with max_chain_length=2 never lets
        any checkpoint's restore chain exceed 2 links."""
        exp = build_experiment(
            small_config(policy="consecutive", interval_batches=4)
        )
        exp.controller.retention.max_chain_length = 2
        exp.controller.run_intervals(6)
        controller = exp.controller
        assert controller.stats.baseline_refreshes > 0
        for manifest in controller.manifests.values():
            chain = controller.policy.restore_chain(
                manifest, controller.manifests
            )
            assert len(chain) <= 2

    def test_unbounded_consecutive_chain_grows(self):
        exp = build_experiment(
            small_config(policy="consecutive", interval_batches=4)
        )
        exp.controller.run_intervals(6)
        controller = exp.controller
        assert controller.stats.baseline_refreshes == 0
        longest = max(
            len(
                controller.policy.restore_chain(
                    m, controller.manifests
                )
            )
            for m in controller.manifests.values()
        )
        assert longest > 2

    def test_bound_is_prospective_not_policy_blind(self):
        """A one-shot job's increments always chain directly on the
        baseline (chain length 2 regardless of history), so a bound of
        2 must never force refreshes — the bound only bites policies
        whose chains actually grow. Guards against write amplification
        from a policy-blind `len(chain) >= bound` test."""
        exp = build_experiment(
            small_config(policy="one_shot", interval_batches=4)
        )
        exp.controller.retention.max_chain_length = 2
        exp.controller.run_intervals(6)
        assert exp.controller.stats.baseline_refreshes == 0
        kinds = [
            e.manifest.kind
            for e in exp.controller.stats.events
            if e.manifest is not None
        ]
        assert kinds[0] == "full"
        assert all(kind == "incremental" for kind in kinds[1:])

    def test_bound_of_one_forces_every_checkpoint_full(self):
        exp = build_experiment(
            small_config(policy="one_shot", interval_batches=4)
        )
        exp.controller.retention.max_chain_length = 1
        exp.controller.run_intervals(4)
        assert exp.controller.stats.baseline_refreshes > 0
        for manifest in exp.controller.manifests.values():
            assert manifest.kind == "full"

    def test_retention_manager_validates_bound(self):
        store = ranged_store()
        with pytest.raises(CheckpointError):
            RetentionManager(store, keep_last=2, max_chain_length=0)


def storm_fleet_config(**overrides) -> FleetConfig:
    """A small tiered fleet facing a rack storm with paced restores."""
    defaults = dict(
        num_jobs=8,
        intervals_per_job=6,
        seed=0xC4A1,
        rows_per_table_choices=(2048,),
        num_tables_choices=(2,),
        interval_batches_choices=(24,),
        policy_choices=("consecutive",),
        policy_weights=(1.0,),
        quantizer_choices=("float16",),
        bit_width_choices=(8,),
        keep_last=2,
        stagger_s=5.0,
        storage=StorageConfig(
            write_bandwidth=1.5 * MiB,
            read_bandwidth=3.0 * MiB,
            replication_factor=2,
            latency_s=0.002,
        ),
        failures=FailureConfig(min_failure_s=0.0),
        inject_failures=False,
        priority_mix=0.375,
        storm_domain="rack",
        rack_size=4,
        storm_at_fraction=0.6,
        preempt_staged_writes=False,
        restore_admission="dynamic",
        restore_backlog_factor=0.05,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestFleetReadSide:
    @pytest.fixture(scope="class")
    def storm_run(self):
        return run_fleet(storm_fleet_config())

    def test_only_experimental_restores_are_paced(self, storm_run):
        scheduler, report = storm_run
        assert report.storm is not None
        tiers = {j.job_id: j.tier for j in report.jobs}
        deferred = [
            e for e in scheduler.events if e.kind == "restore_deferred"
        ]
        assert deferred, "no restore was paced under the storm backlog"
        for event in deferred:
            assert tiers[event.job_id] == TIER_EXPERIMENTAL
            assert event.payload["paced_wait_s"] > 0
        assert all(
            j.restore_deferred == 0
            for j in report.jobs
            if j.tier == TIER_PROD
        )
        assert report.restore_deferrals == len(deferred)

    def test_pacing_shows_up_as_restore_latency(self, storm_run):
        """A paced restore's measured latency covers the waited-out
        backlog: latency is crash-to-last-byte, and the wait is part
        of it — admission pacing is queueing, not a free pass."""
        scheduler, report = storm_run
        waits = {
            e.job_id: e.payload["paced_wait_s"]
            for e in scheduler.events
            if e.kind == "restore_deferred"
        }
        for job in report.jobs:
            if job.job_id not in waits:
                continue
            storm_samples = [
                s for s in job.restore_samples if s.cause == "storm"
            ]
            assert storm_samples
            assert storm_samples[0].latency_s >= waits[job.job_id]

    def test_same_seed_same_restore_receipts_and_scrub_order(self):
        """Determinism: restore receipts, deferral counts, and the
        retention scrub order are identical across identical runs."""
        first_sched, first = run_fleet(storm_fleet_config())
        second_sched, second = run_fleet(storm_fleet_config())
        assert first == second

        def get_receipts(sched):
            return [
                (r.key, r.start_s, r.completed_s, r.parts, r.retries)
                for r in sched.store.ops.receipts(OP_GET)
            ]

        assert get_receipts(first_sched) == get_receipts(second_sched)
        for a, b in zip(first_sched.jobs, second_sched.jobs):
            assert a.restore_deferred == b.restore_deferred
            assert (
                a.controller.stats.retention_deleted
                == b.controller.stats.retention_deleted
            )
            assert a.restore_samples == b.restore_samples

    def test_storm_aware_variant_is_deterministic_too(self):
        config = storm_fleet_config(
            retention_mode="storm_aware", storm_chain_limit=2
        )
        _, first = run_fleet(config)
        _, second = run_fleet(config)
        assert first == second
        assert first.baseline_refreshes > 0

    def test_storm_aware_retention_requires_a_storm(self):
        with pytest.raises(Exception):
            FleetConfig(retention_mode="storm_aware")


class TestAdaptiveChainLimit:
    """Per-job storm chain bound from read-cost vs refresh-cost."""

    def test_optimum_balances_refresh_writes_and_storm_reads(self):
        """L* = sqrt(baseline / (w * delta)): doubling the baseline
        stretches chains, heavier deltas or costlier reads shorten
        them."""
        from repro.fleet.jobs import adaptive_chain_limit

        base = adaptive_chain_limit(
            baseline_bytes=1 << 24, interval_delta_bytes=1 << 20
        )
        bigger_baseline = adaptive_chain_limit(
            baseline_bytes=1 << 26, interval_delta_bytes=1 << 20
        )
        heavier_delta = adaptive_chain_limit(
            baseline_bytes=1 << 24, interval_delta_bytes=1 << 23
        )
        costlier_reads = adaptive_chain_limit(
            baseline_bytes=1 << 24,
            interval_delta_bytes=1 << 20,
            storm_read_weight=4.0,
        )
        assert bigger_baseline >= base
        assert heavier_delta <= base
        assert costlier_reads <= base
        # sqrt(2^24 / 2^20) = 4: the closed form lands exactly.
        assert base == 4

    def test_clamps_to_floor_and_cap(self):
        from repro.fleet.jobs import adaptive_chain_limit

        assert (
            adaptive_chain_limit(
                baseline_bytes=1, interval_delta_bytes=1 << 30
            )
            == 1
        )
        assert (
            adaptive_chain_limit(
                baseline_bytes=1 << 40, interval_delta_bytes=1
            )
            == 8
        )
        assert (
            adaptive_chain_limit(
                baseline_bytes=0, interval_delta_bytes=100
            )
            == 1
        )

    def test_spec_chain_limit_wiring(self):
        """Adaptive mode derives per-spec limits; fixed mode passes
        the config knob through; chain_depth mode stays unbounded."""
        from repro.fleet.jobs import (
            sample_fleet_specs,
            spec_baseline_bytes,
            spec_chain_limit,
        )

        fixed = storm_fleet_config(
            retention_mode="storm_aware", storm_chain_limit=3
        )
        adaptive = storm_fleet_config(
            retention_mode="storm_aware",
            storm_chain_adaptive=True,
            # Heterogeneous sizes so the derived limits can differ.
            rows_per_table_choices=(512, 2048, 8192),
            num_tables_choices=(1, 4),
        )
        plain = storm_fleet_config()
        spec = sample_fleet_specs(fixed)[0]
        assert spec_chain_limit(spec, fixed) == 3
        assert spec_chain_limit(spec, plain) is None
        limits = {
            s.job_id: spec_chain_limit(s, adaptive)
            for s in sample_fleet_specs(adaptive)
        }
        assert all(1 <= limit <= 8 for limit in limits.values())
        # Bigger models (costlier baseline refreshes) tolerate longer
        # chains than small ones under the same storm-read weight.
        by_size = sorted(
            sample_fleet_specs(adaptive),
            key=lambda s: spec_baseline_bytes(s, adaptive),
        )
        assert limits[by_size[0].job_id] <= limits[by_size[-1].job_id]

    def test_adaptive_fleet_honours_derived_bounds(self):
        """End to end: every bounded job's restore chain fits its own
        derived limit, and the knob stays deterministic."""
        from repro.fleet.jobs import sample_fleet_specs, spec_chain_limit

        config = storm_fleet_config(
            retention_mode="storm_aware", storm_chain_adaptive=True
        )
        limits = {
            s.job_id: spec_chain_limit(s, config)
            for s in sample_fleet_specs(config)
        }
        scheduler, first = run_fleet(config)
        for job in scheduler.jobs:
            limit = limits[job.job_id]
            assert limit is not None
            for manifest in job.controller.valid_manifests():
                chain = job.controller.policy.restore_chain(
                    manifest, job.controller.manifests
                )
                assert len(chain) <= limit
        _, second = run_fleet(config)
        assert first == second

    def test_adaptive_requires_storm_aware_retention(self):
        with pytest.raises(Exception):
            FleetConfig(storm_chain_adaptive=True)
