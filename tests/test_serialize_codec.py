"""Unit tests for the array / quantized-tensor codecs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.quant import make_quantizer
from repro.serialize.codec import (
    decode_array,
    decode_payload,
    decode_quantized,
    encode_array,
    encode_payload,
    encode_quantized,
)


class TestArrayCodec:
    @pytest.mark.parametrize(
        "dtype",
        ["float64", "float32", "float16", "int64", "int32", "uint8", "bool"],
    )
    def test_roundtrip_dtypes(self, dtype, rng):
        if dtype == "bool":
            arr = rng.random((7, 5)) > 0.5
        else:
            arr = (rng.random((7, 5)) * 100).astype(dtype)
        out = decode_array(encode_array(arr))
        assert out.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(out, arr)

    def test_roundtrip_shapes(self, rng):
        for shape in [(0,), (1,), (3, 4, 5), (2, 1, 1, 2)]:
            arr = rng.random(shape).astype(np.float32)
            out = decode_array(encode_array(arr))
            assert out.shape == shape

    def test_non_contiguous_input(self, rng):
        arr = rng.random((8, 8)).astype(np.float32)[::2, ::2]
        assert not arr.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(decode_array(encode_array(arr)), arr)

    def test_decoded_array_is_writable(self, rng):
        out = decode_array(encode_array(np.ones(4, dtype=np.float32)))
        out[0] = 5.0  # must not raise (frombuffer views are read-only)

    def test_refuses_object_dtype(self):
        with pytest.raises(SerializationError, match="dtype"):
            encode_array(np.array([object()]))

    def test_truncated_body_rejected(self, rng):
        blob = encode_array(rng.random((4, 4)).astype(np.float32))
        with pytest.raises(SerializationError):
            decode_array(blob[:-5])

    def test_wrong_kind_rejected(self, trained_tensor):
        q = make_quantizer("asymmetric", bits=4)
        blob = encode_quantized(q.quantize(trained_tensor))
        with pytest.raises(SerializationError, match="array"):
            decode_array(blob)


class TestQuantizedCodec:
    @pytest.mark.parametrize(
        "name,bits",
        [
            ("symmetric", 2),
            ("asymmetric", 4),
            ("adaptive", 3),
            ("kmeans", 2),
            ("none", 8),
        ],
    )
    def test_roundtrip_preserves_reconstruction(
        self, name, bits, trained_tensor
    ):
        q = make_quantizer(name, bits=bits)
        qt = q.quantize(trained_tensor)
        decoded = decode_quantized(encode_quantized(qt))
        np.testing.assert_array_equal(
            q.dequantize(decoded), q.dequantize(qt)
        )
        assert decoded.quantizer == qt.quantizer
        assert decoded.bit_width == qt.bit_width
        assert decoded.shape == qt.shape

    def test_params_roundtrip_exactly(self, trained_tensor):
        q = make_quantizer("asymmetric", bits=4)
        qt = q.quantize(trained_tensor)
        decoded = decode_quantized(encode_quantized(qt))
        assert set(decoded.params) == set(qt.params)
        for name in qt.params:
            np.testing.assert_array_equal(
                decoded.params[name], qt.params[name]
            )

    def test_trailing_garbage_rejected(self, trained_tensor):
        q = make_quantizer("asymmetric", bits=4)
        blob = encode_quantized(q.quantize(trained_tensor))
        with pytest.raises(SerializationError, match="trailing"):
            decode_quantized(blob + b"garbage")


class TestPayloadDispatch:
    def test_array_payload(self, rng):
        arr = rng.random((3, 3)).astype(np.float32)
        out = decode_payload(encode_payload(arr))
        assert isinstance(out, np.ndarray)
        np.testing.assert_array_equal(out, arr)

    def test_quantized_payload(self, trained_tensor):
        q = make_quantizer("adaptive", bits=4)
        out = decode_payload(encode_payload(q.quantize(trained_tensor)))
        assert out.quantizer == "adaptive"

    def test_unknown_object_rejected(self):
        with pytest.raises(SerializationError, match="cannot encode"):
            encode_payload("not a tensor")  # type: ignore[arg-type]
