"""Unit tests for embedding tables and sparse gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.model.embedding import EmbeddingCollection, EmbeddingTable


@pytest.fixture
def table(rng) -> EmbeddingTable:
    return EmbeddingTable(rows=32, dim=4, rng=rng, table_id=0)


class TestForward:
    def test_single_hot_lookup(self, table):
        idx = np.array([[3], [7]], dtype=np.int64)
        out = table.forward(idx)
        np.testing.assert_allclose(out[0], table.weight[3])
        np.testing.assert_allclose(out[1], table.weight[7])

    def test_multi_hot_sum_pooling(self, table):
        idx = np.array([[1, 2, 3]], dtype=np.int64)
        out = table.forward(idx)
        expected = table.weight[1] + table.weight[2] + table.weight[3]
        np.testing.assert_allclose(out[0], expected, rtol=1e-6)

    def test_duplicate_indices_in_bag_count_twice(self, table):
        idx = np.array([[5, 5]], dtype=np.int64)
        out = table.forward(idx)
        np.testing.assert_allclose(out[0], 2 * table.weight[5], rtol=1e-6)

    def test_out_of_range_rejected(self, table):
        with pytest.raises(TrainingError, match="out of range"):
            table.forward(np.array([[32]], dtype=np.int64))
        with pytest.raises(TrainingError, match="out of range"):
            table.forward(np.array([[-1]], dtype=np.int64))

    def test_1d_indices_rejected(self, table):
        with pytest.raises(TrainingError, match="batch, hotness"):
            table.forward(np.array([1, 2], dtype=np.int64))


class TestBackward:
    def test_unique_rows_and_aggregation(self, table):
        idx = np.array([[1, 2], [2, 3]], dtype=np.int64)
        table.forward(idx)
        grad_out = np.ones((2, 4), dtype=np.float32)
        sparse = table.backward(grad_out)
        np.testing.assert_array_equal(sparse.rows, [1, 2, 3])
        # Row 2 appears in both samples: gradient doubles.
        np.testing.assert_allclose(sparse.values[0], np.ones(4))
        np.testing.assert_allclose(sparse.values[1], 2 * np.ones(4))
        np.testing.assert_allclose(sparse.values[2], np.ones(4))

    def test_duplicate_within_bag_accumulates(self, table):
        idx = np.array([[5, 5]], dtype=np.int64)
        table.forward(idx)
        sparse = table.backward(np.ones((1, 4), dtype=np.float32))
        np.testing.assert_allclose(sparse.values[0], 2 * np.ones(4))

    def test_backward_before_forward_rejected(self, table):
        with pytest.raises(TrainingError, match="before forward"):
            table.backward(np.ones((1, 4), dtype=np.float32))

    def test_backward_clears_cache(self, table):
        table.forward(np.array([[0]], dtype=np.int64))
        table.backward(np.ones((1, 4), dtype=np.float32))
        with pytest.raises(TrainingError):
            table.backward(np.ones((1, 4), dtype=np.float32))

    def test_gradient_matches_numerical(self, table, rng):
        """d(sum(out^2))/d(weight[r]) via central differences."""
        idx = np.array([[1, 2]], dtype=np.int64)

        def loss() -> float:
            return float(np.sum(table.forward(idx) ** 2))

        out = table.forward(idx)
        sparse = table.backward((2 * out).astype(np.float32))
        eps = 1e-3
        for i, row in enumerate(sparse.rows):
            for d in range(table.dim):
                orig = table.weight[row, d]
                table.weight[row, d] = orig + eps
                up = loss()
                table.weight[row, d] = orig - eps
                down = loss()
                table.weight[row, d] = orig
                numeric = (up - down) / (2 * eps)
                assert sparse.values[i, d] == pytest.approx(
                    numeric, rel=2e-2, abs=1e-3
                )


class TestTracking:
    def test_last_touched_rows(self, table):
        table.forward(np.array([[3, 1], [1, 7]], dtype=np.int64))
        np.testing.assert_array_equal(table.last_touched_rows(), [1, 3, 7])

    def test_no_forward_in_flight_rejected(self, table):
        with pytest.raises(TrainingError, match="no forward"):
            table.last_touched_rows()


class TestCollection:
    def test_forward_backward_all_tables(self, rng):
        coll = EmbeddingCollection((16, 8), dim=4, rng=rng)
        idx = [
            np.array([[0, 1]], dtype=np.int64),
            np.array([[2, 3]], dtype=np.int64),
        ]
        outs = coll.forward(idx)
        assert len(outs) == 2
        grads = coll.backward(
            [np.ones((1, 4), dtype=np.float32)] * 2
        )
        assert len(grads) == 2
        np.testing.assert_array_equal(grads[1].rows, [2, 3])

    def test_wrong_table_count_rejected(self, rng):
        coll = EmbeddingCollection((16, 8), dim=4, rng=rng)
        with pytest.raises(TrainingError, match="tables"):
            coll.forward([np.array([[0]], dtype=np.int64)])

    def test_size_accounting(self, rng):
        coll = EmbeddingCollection((16, 8), dim=4, rng=rng)
        assert coll.total_rows == 24
        assert coll.nbytes == 24 * 4 * 4
