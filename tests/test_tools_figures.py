"""Tests for the quick figure renderers (the fast ones only)."""

from __future__ import annotations

from repro.tools.figures import render_fig3, render_stall_table


class TestRenderers:
    def test_fig3_contains_quantiles(self):
        text = render_fig3(num_jobs=5_000)
        assert "Fig 3" in text
        assert "P90=" in text and "P99=" in text
        # Quantiles land near the paper's values even at 5k jobs.
        p90 = float(text.split("P90=")[1].split("h")[0])
        assert 10.0 < p90 < 17.0

    def test_stall_table_paper_bound(self):
        text = render_stall_table()
        assert "stall" in text
        # Every rendered model size respects the paper's 7s bound at
        # 1 TiB; the 2 TiB row may exceed it (scaling is linear).
        for line in text.splitlines():
            if "1024 GiB" in line:
                stall = float(line.split(":")[1].split("s stall")[0])
                assert stall < 7.0
