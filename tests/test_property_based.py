"""Property-based tests (hypothesis) for core invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.predictor import HistoryPredictor
from repro.distributed.clock import SimClock, Timeline
from repro.quant.packing import pack_bits, packed_size, unpack_bits
from repro.quant.uniform import (
    AsymmetricQuantizer,
    uniform_dequantize_rows,
    uniform_quantize_rows,
)
from repro.serialize.codec import decode_array, encode_array
from repro.serialize.compress import RleCompressor
from repro.serialize.format import decode_frames, encode_frames

# ----------------------------------------------------------------------
# Bit packing
# ----------------------------------------------------------------------


@given(
    bits=st.integers(min_value=1, max_value=8),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_pack_unpack_roundtrip(bits, data):
    count = data.draw(st.integers(min_value=0, max_value=300))
    codes = data.draw(
        hnp.arrays(
            np.uint8,
            (count,),
            elements=st.integers(0, (1 << bits) - 1),
        )
    )
    out = unpack_bits(pack_bits(codes, bits), bits, count)
    np.testing.assert_array_equal(out, codes)


@given(
    bits=st.integers(min_value=1, max_value=8),
    count=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_packed_size_is_tight(bits, count):
    size = packed_size(count, bits)
    assert size * 8 >= count * bits
    assert (size - 1) * 8 < count * bits or size == 0


# ----------------------------------------------------------------------
# Uniform quantization
# ----------------------------------------------------------------------

finite_rows = hnp.arrays(
    np.float32,
    st.tuples(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=24),
    ),
    elements=st.floats(
        min_value=-100.0, max_value=100.0, width=32,
        allow_nan=False, allow_infinity=False,
    ),
)


@given(tensor=finite_rows, bits=st.sampled_from([2, 3, 4, 8]))
@settings(max_examples=60, deadline=None)
def test_uniform_quantization_error_bounded(tensor, bits):
    """Reconstruction error never exceeds half a quantization step."""
    xmin = tensor.min(axis=1)
    xmax = tensor.max(axis=1)
    codes = uniform_quantize_rows(tensor, xmin, xmax, bits)
    recon = uniform_dequantize_rows(codes, xmin, xmax, bits)
    step = (xmax - xmin) / ((1 << bits) - 1)
    err = np.abs(recon - tensor).max(axis=1)
    # Tolerance covers fp32 rounding of the grid arithmetic itself.
    tolerance = step / 2 + 1e-3 * np.maximum(1.0, np.abs(tensor).max())
    assert np.all(err <= tolerance)


@given(tensor=finite_rows, bits=st.sampled_from([2, 4, 8]))
@settings(max_examples=40, deadline=None)
def test_quantize_dequantize_idempotent(tensor, bits):
    """Quantizing an already-dequantized tensor is a fixed point:
    grid points map to themselves."""
    q = AsymmetricQuantizer(bits)
    once = q.roundtrip(tensor)
    twice = q.roundtrip(once)
    np.testing.assert_allclose(twice, once, atol=1e-4)


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------


@given(
    meta=st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(st.integers(), st.text(max_size=12), st.booleans()),
        max_size=4,
    ),
    chunks=st.lists(st.binary(max_size=200), max_size=8),
)
@settings(max_examples=60, deadline=None)
def test_frame_roundtrip(meta, chunks):
    indexed = list(enumerate(chunks))
    out_meta, out_chunks = decode_frames(encode_frames(meta, indexed))
    assert out_meta == meta
    assert [(c.chunk_id, c.payload) for c in out_chunks] == indexed


@given(
    arr=hnp.arrays(
        st.sampled_from([np.float32, np.int64, np.uint8]),
        hnp.array_shapes(max_dims=3, max_side=16),
        elements=st.integers(0, 100),
    )
)
@settings(max_examples=60, deadline=None)
def test_array_codec_roundtrip(arr):
    out = decode_array(encode_array(arr))
    assert out.dtype == arr.dtype
    np.testing.assert_array_equal(out, arr)


@given(data=st.binary(max_size=2000))
@settings(max_examples=80, deadline=None)
def test_rle_roundtrip(data):
    rle = RleCompressor()
    assert rle.decompress(rle.compress(data)) == data


# ----------------------------------------------------------------------
# Predictor
# ----------------------------------------------------------------------


@given(
    sizes=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        max_size=20,
    )
)
@settings(max_examples=80, deadline=None)
def test_history_predictor_matches_closed_form(sizes):
    """The implementation equals the paper's formula verbatim."""
    predictor = HistoryPredictor()
    result = predictor.should_take_full(sizes)
    if not sizes:
        assert result is False
    else:
        fc = 1.0 + sum(sizes)
        ic = (len(sizes) + 1) * sizes[-1]
        assert result == (fc <= ic)


# ----------------------------------------------------------------------
# Clock / timeline
# ----------------------------------------------------------------------


@given(
    durations=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_timeline_spans_never_overlap(durations):
    clock = SimClock()
    lane = Timeline(clock, "x")
    spans = [lane.submit(d) for d in durations]
    for a, b in zip(spans, spans[1:]):
        assert b.start >= a.end
    assert lane.free_at == spans[-1].end


@given(
    advances=st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_clock_is_monotone_and_conserves_time(advances):
    clock = SimClock()
    for d in advances:
        before = clock.now
        clock.advance(d, "step")
        assert clock.now >= before
    assert clock.now == pytest.approx(sum(advances), abs=1e-6)
    assert clock.total("step") == pytest.approx(sum(advances), abs=1e-6)


# ----------------------------------------------------------------------
# Tracker
# ----------------------------------------------------------------------


@given(
    marks=st.lists(
        st.lists(st.integers(min_value=0, max_value=199), max_size=30),
        max_size=10,
    )
)
@settings(max_examples=60, deadline=None)
def test_tracker_mask_equals_set_union(marks):
    from repro.core.tracker import ModifiedRowTracker
    from repro.distributed.sharding import Shard
    from repro.distributed.topology import DeviceId

    shard = Shard(0, 0, 0, 200, DeviceId(0, 0), 8)
    tracker = ModifiedRowTracker(shard)
    reference: set[int] = set()
    for batch in marks:
        tracker.mark_table_rows(np.array(batch, dtype=np.int64))
        reference.update(batch)
    np.testing.assert_array_equal(
        tracker.modified_table_rows(), sorted(reference)
    )
    assert tracker.modified_count == len(reference)
