"""Unit tests for backends, bandwidth accounting, and the object store."""

from __future__ import annotations

import pytest

from repro.config import StorageConfig
from repro.distributed.clock import SimClock
from repro.errors import (
    CapacityExceededError,
    ObjectExistsError,
    ObjectNotFoundError,
    StorageError,
)
from repro.storage.backends import (
    FileBackend,
    InMemoryBackend,
    MirroredBackend,
)
from repro.storage.bandwidth import Transfer, TransferLog, transfer_time_s
from repro.storage.object_store import ObjectStore


@pytest.fixture(params=["memory", "file", "mirrored"])
def backend(request, tmp_path):
    if request.param == "memory":
        return InMemoryBackend()
    if request.param == "file":
        return FileBackend(tmp_path / "store")
    return MirroredBackend([InMemoryBackend() for _ in range(3)])


class TestBackends:
    def test_write_read(self, backend):
        backend.write("a/b/key1", b"data")
        assert backend.read("a/b/key1") == b"data"
        assert backend.exists("a/b/key1")

    def test_overwrite(self, backend):
        backend.write("k", b"v1")
        backend.write("k", b"v2")
        assert backend.read("k") == b"v2"

    def test_missing_key(self, backend):
        with pytest.raises(ObjectNotFoundError):
            backend.read("missing")
        with pytest.raises(ObjectNotFoundError):
            backend.delete("missing")

    def test_delete(self, backend):
        backend.write("k", b"v")
        backend.delete("k")
        assert not backend.exists("k")

    def test_list_prefix(self, backend):
        backend.write("job0/ckpt0/a", b"1")
        backend.write("job0/ckpt1/b", b"2")
        backend.write("job1/ckpt0/c", b"3")
        assert backend.list_keys("job0/") == [
            "job0/ckpt0/a",
            "job0/ckpt1/b",
        ]
        assert len(backend.list_keys()) == 3


class TestFileBackend:
    def test_rejects_traversal_keys(self, tmp_path):
        backend = FileBackend(tmp_path)
        with pytest.raises(StorageError, match="invalid"):
            backend.write("../escape", b"x")
        with pytest.raises(StorageError, match="invalid"):
            backend.write("/absolute", b"x")

    def test_survives_reopen(self, tmp_path):
        FileBackend(tmp_path / "s").write("k", b"persisted")
        assert FileBackend(tmp_path / "s").read("k") == b"persisted"


class TestMirroredBackend:
    def test_survives_replica_loss(self):
        mirror = MirroredBackend([InMemoryBackend() for _ in range(3)])
        mirror.write("k", b"v")
        mirror.fail_replica(0)
        mirror.fail_replica(1)
        assert mirror.read("k") == b"v"

    def test_all_replicas_failed(self):
        mirror = MirroredBackend([InMemoryBackend()])
        mirror.fail_replica(0)
        with pytest.raises(StorageError, match="all replicas"):
            mirror.read("k")

    def test_requires_replicas(self):
        with pytest.raises(StorageError):
            MirroredBackend([])


class TestTransferMath:
    def test_transfer_time(self):
        assert transfer_time_s(1000, 100.0, 0.5) == pytest.approx(10.5)

    def test_invalid_args(self):
        with pytest.raises(StorageError):
            transfer_time_s(-1, 100, 0)
        with pytest.raises(StorageError):
            transfer_time_s(1, 0, 0)

    def test_windowed_bandwidth_pro_rata(self):
        log = TransferLog()
        log.record(Transfer("k", 100, 0.0, 10.0, "put"))
        # Half the transfer overlaps [5, 10]: 50 bytes over 5 s.
        assert log.average_bandwidth(5.0, 10.0) == pytest.approx(10.0)

    def test_window_without_transfers(self):
        assert TransferLog().average_bandwidth(0, 10) == 0.0

    def test_empty_window_rejected(self):
        with pytest.raises(StorageError):
            TransferLog().average_bandwidth(5, 5)


class TestObjectStore:
    @pytest.fixture
    def store(self):
        clock = SimClock()
        config = StorageConfig(
            write_bandwidth=1000.0,
            read_bandwidth=2000.0,
            replication_factor=3,
            latency_s=0.0,
        )
        return ObjectStore(config, clock)

    def test_put_get_roundtrip(self, store):
        store.put("k", b"hello")
        assert store.get("k") == b"hello"

    def test_put_duration_uses_replicated_bytes(self, store):
        receipt = store.put("k", b"x" * 1000)
        # 3000 physical bytes over 1000 B/s.
        assert receipt.duration_s == pytest.approx(3.0)
        assert receipt.physical_bytes == 3000

    def test_puts_serialise_on_the_link(self, store):
        r1 = store.put("a", b"x" * 1000)
        r2 = store.put("b", b"x" * 1000)
        assert r2.start_s == pytest.approx(r1.end_s)

    def test_no_accidental_overwrite(self, store):
        store.put("k", b"v1")
        with pytest.raises(ObjectExistsError):
            store.put("k", b"v2")
        store.put("k", b"v2", overwrite=True)
        assert store.get("k") == b"v2"

    def test_capacity_enforced(self):
        clock = SimClock()
        config = StorageConfig(
            replication_factor=2, capacity_bytes=100
        )
        store = ObjectStore(config, clock)
        store.put("a", b"x" * 40)  # 80 physical
        with pytest.raises(CapacityExceededError):
            store.put("b", b"x" * 20)  # would be 120

    def test_capacity_accounts_overwrite(self):
        clock = SimClock()
        store = ObjectStore(
            StorageConfig(replication_factor=1, capacity_bytes=100), clock
        )
        store.put("a", b"x" * 90)
        store.put("a", b"x" * 95, overwrite=True)  # replaces, fits

    def test_delete_frees_capacity(self, store):
        store.put("k", b"x" * 100)
        assert store.live_logical_bytes == 100
        store.delete("k")
        assert store.live_logical_bytes == 0
        assert store.stats().peak_physical_bytes == 300

    def test_capacity_series_records_history(self, store):
        store.put("a", b"x" * 10)
        store.put("b", b"x" * 20)
        store.delete("a")
        series = store.capacity_series()
        logical = [p.logical_bytes for p in series]
        assert logical == [0, 10, 30, 20]

    def test_stats(self, store):
        store.put("a", b"x" * 10)
        stats = store.stats()
        assert stats.num_objects == 1
        assert stats.total_bytes_written == 30
        assert stats.live_physical_bytes == 30

    def test_empty_key_rejected(self, store):
        with pytest.raises(StorageError):
            store.put("", b"x")

    def test_object_size(self, store):
        store.put("k", b"x" * 7)
        assert store.object_size("k") == 7
        with pytest.raises(StorageError):
            store.object_size("nope")

    def test_earliest_defers_write(self, store):
        receipt = store.put("k", b"x", earliest=100.0)
        assert receipt.start_s == 100.0
