"""Unit tests for failure models, traces, injection, fleet scheduling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.experiments import build_experiment, small_config
from repro.failures import (
    HOUR_S,
    ExponentialFailures,
    FailureInjector,
    FailureTrace,
    FleetScheduler,
    Job,
    LogNormalFailures,
    MixtureFailures,
    WeibullFailures,
    make_job_batch,
    paper_failure_model,
)


class TestFailureModels:
    def test_exponential_mean(self, rng):
        model = ExponentialFailures(3600.0)
        samples = model.sample_many(20_000, rng)
        assert np.mean(samples) == pytest.approx(3600.0, rel=0.05)
        assert model.failure_rate_per_hour() == pytest.approx(1.0)

    def test_weibull_from_quantiles_hits_published_points(self):
        """The fitted model reproduces the paper's P90/P99 exactly —
        as quantiles of the 5-minute-filtered distribution, which is
        what Fig 3 plots."""
        model = WeibullFailures.from_quantiles()
        assert model.conditioned_quantile(0.90, 300.0) == pytest.approx(
            13.5 * HOUR_S, rel=1e-6
        )
        assert model.conditioned_quantile(0.99, 300.0) == pytest.approx(
            53.9 * HOUR_S, rel=1e-6
        )

    def test_weibull_unconditioned_fit(self):
        model = WeibullFailures.from_quantiles(conditioned_above_s=0.0)
        assert model.quantile(0.90) == pytest.approx(
            13.5 * HOUR_S, rel=1e-9
        )
        assert model.quantile(0.99) == pytest.approx(
            53.9 * HOUR_S, rel=1e-9
        )

    def test_weibull_heavy_tail_shape(self):
        model = WeibullFailures.from_quantiles()
        assert model.shape < 1.0  # decreasing hazard, heavy tail

    def test_weibull_cdf_quantile_inverse(self):
        model = WeibullFailures(0.7, 10_000.0)
        for p in (0.1, 0.5, 0.9):
            assert model.cdf(model.quantile(p)) == pytest.approx(p)

    def test_lognormal_mean(self, rng):
        model = LogNormalFailures(mu=np.log(1000.0), sigma=0.5)
        samples = model.sample_many(50_000, rng)
        assert np.mean(samples) == pytest.approx(
            model.mean_s(), rel=0.05
        )

    def test_mixture_mean_weighted(self):
        fast = ExponentialFailures(100.0)
        slow = ExponentialFailures(10_000.0)
        mix = MixtureFailures([fast, slow], [0.5, 0.5])
        assert mix.mean_s() == pytest.approx(5050.0)

    def test_mixture_validation(self):
        with pytest.raises(SimulationError):
            MixtureFailures([], [])
        with pytest.raises(SimulationError):
            MixtureFailures([ExponentialFailures(1.0)], [-1.0])

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            ExponentialFailures(0.0)
        with pytest.raises(SimulationError):
            WeibullFailures(0.0, 1.0)
        with pytest.raises(SimulationError):
            WeibullFailures.from_quantiles(p90_s=10.0, p99_s=5.0)


class TestFailureTrace:
    def test_generate_filters_short_failures(self):
        model = ExponentialFailures(600.0)
        trace = FailureTrace.generate(
            model, 10_000, seed=1, min_failure_s=300.0
        )
        assert trace.times_s.min() >= 300.0
        assert trace.count < 10_000  # some were filtered

    def test_empirical_quantiles_near_model(self):
        model = paper_failure_model()
        trace = FailureTrace.generate(model, 50_000, seed=2)
        assert trace.quantile(0.90) == pytest.approx(
            13.5 * HOUR_S, rel=0.15
        )
        assert trace.quantile(0.99) == pytest.approx(
            53.9 * HOUR_S, rel=0.20
        )

    def test_cdf_monotone(self):
        trace = FailureTrace.generate(
            ExponentialFailures(1000.0), 5000, seed=3
        )
        cdf = trace.cdf(50)
        times = [p.time_s for p in cdf]
        fractions = [p.fraction for p in cdf]
        assert times == sorted(times)
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_json_roundtrip(self):
        trace = FailureTrace.generate(
            ExponentialFailures(1000.0), 100, seed=4
        )
        back = FailureTrace.from_json(trace.to_json())
        np.testing.assert_allclose(back.times_s, trace.times_s)

    def test_corrupt_json(self):
        with pytest.raises(SimulationError):
            FailureTrace.from_json("{}")


class TestFailureInjector:
    def test_injected_failures_trigger_restores(self):
        exp = build_experiment(
            small_config(
                interval_batches=5,
                num_tables=2,
                rows_per_table=512,
                batch_size=32,
            )
        )
        # Run lasts ~5 simulated seconds; MTTF 1.5 s guarantees crashes.
        model = ExponentialFailures(1.5)
        injector = FailureInjector(exp.controller, model, seed=5)
        report = injector.run(target_intervals=6)
        assert report.completed_intervals == 6
        assert report.failures > 0
        assert report.total_batches_trained >= report.effective_batches
        assert 0 < report.goodput <= 1.0

    def test_no_failures_is_clean_run(self):
        exp = build_experiment(
            small_config(
                interval_batches=3,
                num_tables=2,
                rows_per_table=256,
                batch_size=32,
            )
        )
        model = ExponentialFailures(1e12)  # effectively never
        injector = FailureInjector(exp.controller, model, seed=6)
        report = injector.run(target_intervals=3)
        assert report.failures == 0
        assert report.goodput == 1.0
        assert report.wasted_batches == 0

    def test_crash_before_first_checkpoint_restarts_scratch(self):
        exp = build_experiment(
            small_config(
                interval_batches=50,
                num_tables=2,
                rows_per_table=256,
                batch_size=32,
            )
        )
        model = ExponentialFailures(2.0)  # fails mid-first-interval
        injector = FailureInjector(
            exp.controller, model, seed=7, max_failures=1
        )
        report = injector.run(target_intervals=1)
        assert report.events[0].restored_from is None  # from scratch


class TestFleetScheduler:
    def test_all_jobs_complete(self):
        scheduler = FleetScheduler(
            num_clusters=4,
            failure_model=ExponentialFailures(20 * HOUR_S * 3600 / 3600),
            checkpoint_interval_hours=0.5,
            seed=8,
        )
        jobs = make_job_batch(20, mean_required_hours=10.0, seed=9)
        report = scheduler.run(jobs)
        assert report.jobs_completed == 20
        assert report.makespan_hours > 0

    def test_waste_bounded_by_checkpoint_interval(self):
        model = ExponentialFailures(5 * 3600.0)
        scheduler = FleetScheduler(
            num_clusters=2,
            failure_model=model,
            checkpoint_interval_hours=0.5,
            seed=10,
        )
        jobs = make_job_batch(10, mean_required_hours=20.0, seed=11)
        report = scheduler.run(jobs)
        if report.total_failures:
            assert (
                report.total_wasted_hours
                <= report.total_failures * 0.5 + 1e-9
            )

    def test_smaller_interval_wastes_less(self):
        """The checkpoint-frequency trade-off the paper motivates."""
        model = ExponentialFailures(3 * 3600.0)
        results = {}
        for interval in (0.25, 2.0):
            scheduler = FleetScheduler(
                num_clusters=2,
                failure_model=model,
                checkpoint_interval_hours=interval,
                seed=12,
            )
            jobs = make_job_batch(15, mean_required_hours=15.0, seed=13)
            results[interval] = scheduler.run(jobs).total_wasted_hours
        assert results[0.25] < results[2.0]

    def test_failure_runtimes_recorded(self):
        model = ExponentialFailures(3600.0)
        scheduler = FleetScheduler(2, model, 0.5, seed=14)
        jobs = make_job_batch(10, mean_required_hours=5.0, seed=15)
        report = scheduler.run(jobs)
        assert len(report.failure_runtimes_h) == report.total_failures

    def test_validation(self):
        with pytest.raises(SimulationError):
            FleetScheduler(0, ExponentialFailures(1.0), 0.5)
        with pytest.raises(SimulationError):
            Job(priority=0, job_id="x", required_hours=0.0)
        with pytest.raises(SimulationError):
            make_job_batch(0)
