"""Event-heap dispatch: heap invariants + heap/lockstep bit-identity.

Two layers of proof that the indexed event heap is a pure perf change:

* unit invariants on :class:`LaneHeap` / :class:`FleetEventQueue` —
  lazy invalidation, re-keying, the pop-time link floor, relative tie
  thresholds, and tie-set enumeration leaving the heap intact;
* a differential matrix: the same seeded fleets run under
  ``dispatch="heap"`` and ``dispatch="lockstep"`` must produce
  *bit-identical* runs — equal :class:`FleetRunReport`s and equal
  event logs (kind, job, time and payload of every event) — across
  seeds, priority mixes, a correlated storm, quotas + dynamic
  admission, and the tiered cache backend.
"""

from __future__ import annotations

import pytest

from repro.config import BackendConfig, FleetConfig, StorageConfig
from repro.errors import FleetError
from repro.fleet import build_fleet, run_fleet
from repro.fleet.eventqueue import (
    TIME_EPS,
    FleetEventQueue,
    LaneHeap,
    tie_threshold,
)
from repro.fleet.scheduler import MIN_EVENT_BUDGET


class TestTieThreshold:
    def test_matches_absolute_epsilon_at_small_times(self):
        assert tie_threshold(0.5) == 0.5 + 1e-12
        assert tie_threshold(0.0) == 1e-12
        assert tie_threshold(1.0) == 1.0 + 1e-12

    def test_scales_relatively_at_large_times(self):
        """At 10k-job clock magnitudes an absolute 1e-12 would vanish
        beneath float spacing; the relative form keeps ties real."""
        big = 1.0e6
        assert tie_threshold(big) - big == pytest.approx(
            TIME_EPS * big, rel=1e-3
        )
        # The threshold is representable: it differs from `big`.
        assert tie_threshold(big) > big


class TestLaneHeap:
    def test_set_and_best(self):
        lane = LaneHeap()
        assert lane.best() is None
        lane.set("b", 5.0)
        lane.set("a", 3.0)
        assert lane.best() == 3.0
        assert len(lane) == 2
        assert "a" in lane and "c" not in lane
        assert lane.key("b") == 5.0

    def test_rekey_lazily_invalidates_old_entry(self):
        lane = LaneHeap()
        lane.set("a", 3.0)
        lane.set("a", 7.0)  # stale (3.0, "a") stays in the heap
        assert lane.best() == 7.0
        assert len(lane) == 1
        lane.set("a", 1.0)
        assert lane.best() == 1.0

    def test_set_same_key_is_a_noop(self):
        lane = LaneHeap()
        lane.set("a", 2.0)
        lane.set("a", 2.0)
        assert len(lane._heap) == 1  # no duplicate entry pushed

    def test_remove_invalidates_in_place(self):
        lane = LaneHeap()
        lane.set("a", 1.0)
        lane.set("b", 2.0)
        lane.remove("a")
        assert lane.best() == 2.0
        lane.remove("b")
        assert lane.best() is None
        assert len(lane) == 0

    def test_best_applies_floor_at_pop_time(self):
        """min_i max(ready_i, L) == max(min_i ready_i, L)."""
        lane = LaneHeap()
        lane.set("a", 3.0)
        lane.set("b", 8.0)
        assert lane.best(floor=5.0) == 5.0  # floored minimum
        assert lane.best(floor=1.0) == 3.0  # floor below: raw min
        assert lane.best() == 3.0

    def test_tied_enumerates_exact_and_epsilon_ties(self):
        lane = LaneHeap()
        lane.set("a", 1.0)
        lane.set("b", 1.0)
        lane.set("c", 1.0 + 0.5e-12)  # within the relative epsilon
        lane.set("d", 2.0)
        assert sorted(lane.tied(1.0)) == ["a", "b", "c"]

    def test_tied_skips_stale_entries(self):
        lane = LaneHeap()
        lane.set("a", 1.0)
        lane.set("b", 1.0)
        lane.set("a", 9.0)  # stale (1.0, "a") still buried in heap
        assert lane.tied(1.0) == ["b"]

    def test_tied_restores_the_heap(self):
        """Valid entries popped during enumeration are re-pushed."""
        lane = LaneHeap()
        for job, t in (("a", 1.0), ("b", 1.0), ("c", 1.5)):
            lane.set(job, t)
        assert sorted(lane.tied(1.0)) == ["a", "b"]
        # A second identical query sees the same heap.
        assert sorted(lane.tied(1.0)) == ["a", "b"]
        assert lane.best() == 1.0
        lane.remove("a")
        lane.remove("b")
        assert lane.best() == 1.5

    def test_tied_with_floor_above_bound_is_empty(self):
        """When the link floor exceeds the tie bound, no floored entry
        can tie: all effective times equal the floor > bound."""
        lane = LaneHeap()
        lane.set("a", 1.0)
        assert lane.tied(1.0, floor=2.0) == []
        # The heap was not disturbed by the early return.
        assert lane.best() == 1.0

    def test_tied_with_floor_below_bound_uses_raw_keys(self):
        lane = LaneHeap()
        lane.set("a", 3.0)
        lane.set("b", 3.0)
        # floor <= bound: flooring maps all of [floor, bound] onto
        # themselves, so raw-key ties are effective-time ties.
        assert sorted(lane.tied(3.0, floor=1.0)) == ["a", "b"]


class TestFleetEventQueue:
    def test_best_write_merges_floored_and_unfloored_lanes(self):
        queue = FleetEventQueue()
        queue.write.set("w", 3.0)
        queue.book.set("k", 4.0)
        # Link free at 5.0: the write part is floored to 5.0, the
        # bookkeeping candidate is not — book wins.
        assert queue.best_write(link_free=5.0) == 4.0
        # Link free at 0: raw write key wins.
        assert queue.best_write(link_free=0.0) == 3.0

    def test_best_write_with_single_lane(self):
        queue = FleetEventQueue()
        assert queue.best_write(link_free=0.0) is None
        queue.write.set("w", 2.0)
        assert queue.best_write(link_free=0.0) == 2.0
        queue.clear_write_lanes("w")
        assert queue.best_write(link_free=0.0) is None
        queue.book.set("k", 6.0)
        assert queue.best_write(link_free=0.0) == 6.0

    def test_tied_writes_spans_both_lanes(self):
        queue = FleetEventQueue()
        queue.write.set("w1", 2.0)
        queue.write.set("w2", 2.0)
        queue.book.set("k", 2.0)
        assert sorted(queue.tied_writes(2.0, link_free=0.0)) == [
            "k",
            "w1",
            "w2",
        ]
        # A saturating floor silences the write lane but not book.
        assert queue.tied_writes(2.0, link_free=9.0) == ["k"]

    def test_clear_write_lanes_drops_both(self):
        queue = FleetEventQueue()
        queue.write.set("j", 1.0)
        queue.book.set("j", 1.0)
        queue.clear_write_lanes("j")
        assert "j" not in queue.write
        assert "j" not in queue.book


# ----------------------------------------------------------------------
# Differential matrix: heap vs lockstep bit-identity
# ----------------------------------------------------------------------


def _cache_storage() -> StorageConfig:
    return StorageConfig(
        backend=BackendConfig(
            cache_bytes=256 * 1024, cache_policy="write_back"
        )
    )


#: (id, FleetConfig) — every named regime the dispatch engines must
#: agree on, across three seeds, storms, quotas and the cache tier.
IDENTITY_MATRIX = [
    (
        "base-seed11",
        FleetConfig(num_jobs=5, intervals_per_job=2, seed=11),
    ),
    (
        "priority-seed23",
        FleetConfig(
            num_jobs=5,
            intervals_per_job=2,
            seed=23,
            priority_mix=0.5,
        ),
    ),
    (
        "storm-seed47",
        FleetConfig(
            num_jobs=6,
            intervals_per_job=2,
            seed=47,
            priority_mix=0.5,
            storm_domain="rack",
            rack_size=2,
        ),
    ),
    (
        "quota-admission-seed11",
        FleetConfig(
            num_jobs=5,
            intervals_per_job=2,
            seed=11,
            per_job_quota_bytes=262_144,
            admission_mode="dynamic",
        ),
    ),
    (
        "cache-tier-seed23",
        FleetConfig(
            num_jobs=5,
            intervals_per_job=2,
            seed=23,
            storage=_cache_storage(),
        ),
    ),
    (
        "hot-first-storm-seed47",
        FleetConfig(
            num_jobs=6,
            intervals_per_job=2,
            seed=47,
            priority_mix=0.5,
            storm_domain="rack",
            rack_size=2,
            restore_order="hot_first",
        ),
    ),
]


class TestDispatchBitIdentity:
    @pytest.mark.parametrize(
        "config",
        [cfg for _, cfg in IDENTITY_MATRIX],
        ids=[name for name, _ in IDENTITY_MATRIX],
    )
    def test_heap_matches_lockstep(self, config):
        heap_sched, heap_report = run_fleet(config, dispatch="heap")
        lock_sched, lock_report = run_fleet(
            config, dispatch="lockstep"
        )
        # Full-report equality: every counter, every per-job result,
        # every bandwidth window, the storm tuple. (Wall-clock pool
        # timings are compare=False by design.)
        assert heap_report == lock_report
        # Event-log equality, payloads included: the engines emitted
        # the same events in the same order at the same sim times.
        heap_log = [
            (e.kind, e.job_id, e.time_s, e.payload)
            for e in heap_sched.events
        ]
        lock_log = [
            (e.kind, e.job_id, e.time_s, e.payload)
            for e in lock_sched.events
        ]
        assert heap_log == lock_log

    def test_storm_config_actually_fired(self):
        """Guard the matrix's storm row against silent no-ops."""
        config = dict(IDENTITY_MATRIX)["storm-seed47"]
        _, report = run_fleet(config, dispatch="heap")
        assert report.storm is not None
        assert len(report.storm[3]) >= 2  # affected jobs

    def test_quota_config_actually_rejected(self):
        config = dict(IDENTITY_MATRIX)["quota-admission-seed11"]
        _, report = run_fleet(config, dispatch="heap")
        assert sum(j.quota_rejections for j in report.jobs) > 0

    def test_cache_config_actually_cached(self):
        config = dict(IDENTITY_MATRIX)["cache-tier-seed23"]
        _, report = run_fleet(config, dispatch="heap")
        assert report.cache_capacity_bytes > 0


class TestDispatchPlumbing:
    def test_unknown_dispatch_mode_rejected(self):
        config = FleetConfig(num_jobs=2, intervals_per_job=1)
        with pytest.raises(FleetError):
            build_fleet(config, dispatch="quantum")

    def test_event_budget_is_derived_and_sufficient(self):
        """The convergence bound scales with the fleet but never
        drops below the legacy floor, and real runs fit inside it."""
        config = FleetConfig(
            num_jobs=4, intervals_per_job=2, seed=11
        )
        scheduler, _ = build_fleet(config)
        assert scheduler.max_events >= MIN_EVENT_BUDGET
        scheduler.run()
        assert len(scheduler.events) < scheduler.max_events

    def test_budget_grows_with_fleet_size(self):
        small, _ = build_fleet(
            FleetConfig(num_jobs=2, intervals_per_job=1)
        )
        big, _ = build_fleet(
            FleetConfig(num_jobs=64, intervals_per_job=8)
        )
        assert big.max_events > small.max_events


class TestHotFirstStormDrain:
    """CPR-style priority restore wired into the fleet storm drain."""

    @staticmethod
    def drain_config(order: str) -> FleetConfig:
        return FleetConfig(
            num_jobs=6,
            intervals_per_job=2,
            seed=47,
            priority_mix=0.5,
            storm_domain="rack",
            rack_size=2,
            restore_order=order,
        )

    def test_hot_first_improves_time_to_first_batch(self):
        """Same storm, same restores — dense-first streaming pulls
        the fleet's time-to-first-batch below the manifest order's."""
        _, manifest_report = run_fleet(self.drain_config("manifest"))
        _, hot_report = run_fleet(self.drain_config("hot_first"))
        assert manifest_report.storm is not None
        assert hot_report.storm is not None

        def storm_ttfb(report):
            return [
                s.time_to_first_batch_s
                for job in report.jobs
                for s in job.restore_samples
                if s.cause == "storm"
            ]

        manifest_ttfb = storm_ttfb(manifest_report)
        hot_ttfb = storm_ttfb(hot_report)
        assert manifest_ttfb and len(manifest_ttfb) == len(hot_ttfb)
        # Fleet-wide improvement: better on average and never worse
        # for any individual storm victim.
        assert sum(hot_ttfb) / len(hot_ttfb) < sum(
            manifest_ttfb
        ) / len(manifest_ttfb)
        for hot, manifest in zip(
            sorted(hot_ttfb), sorted(manifest_ttfb)
        ):
            assert hot <= manifest

    def test_first_batch_never_after_the_full_restore(self):
        _, report = run_fleet(self.drain_config("hot_first"))
        for job in report.jobs:
            for sample in job.restore_samples:
                assert sample.time_to_first_batch_s <= (
                    sample.latency_s + 1e-9
                )

    def test_restored_state_is_order_independent(self):
        """The read order is a latency optimisation only: both orders
        land byte-identical training outcomes."""
        _, manifest_report = run_fleet(self.drain_config("manifest"))
        _, hot_report = run_fleet(self.drain_config("hot_first"))
        for a, b in zip(manifest_report.jobs, hot_report.jobs):
            assert a.job_id == b.job_id
            assert a.batches_trained == b.batches_trained
            assert a.restores == b.restores
            assert a.wasted_batches == b.wasted_batches
