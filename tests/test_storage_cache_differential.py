"""Differential proof: a cache-layered store equals the bare backend.

The cache tier (:mod:`repro.storage.cache`) claims to be *transparent*:
whatever policy, whatever eviction pressure, the composed near/far
stack must be observationally identical to a single flat backend —
same bytes, same listings, same not-found errors. These tests drive a
seeded-random PUT/GET/DELETE/LIST/HEAD stream through a
:class:`CacheTierBackend` and a bare :class:`InMemoryBackend` side by
side and compare every observable after every op, for both policies,
across enough traffic that evictions (and, under write-back, dirty
flushes and forced flushes) demonstrably fired — transparency is only
interesting once the cache has actually churned.

A second differential runs the same idea one layer up, through two
timed :class:`ObjectStore` instances, so the engine integration
(``cost_for`` pricing, ``attach_engine`` flushes, ranged GETs) is
covered too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import StorageConfig
from repro.distributed.clock import SimClock
from repro.errors import ObjectNotFoundError, StorageError
from repro.storage.backends import CrashingBackend, InMemoryBackend
from repro.storage.cache import (
    CACHE_POLICIES,
    POLICY_WRITE_BACK,
    POLICY_WRITE_THROUGH,
    CacheTierBackend,
    find_cache_tier,
)
from repro.storage.object_store import ObjectStore
from repro.storage.requests import OP_GET, StorageRequest

#: Small key pool so the stream revisits keys (hits, overwrites,
#: delete-then-recreate) instead of write-once-read-never traffic.
KEY_POOL = [f"job0/ckpt-{i:03d}/chunk-{i % 4}" for i in range(12)]
#: Capacity far below pool-size * max-payload, so eviction is constant.
CAPACITY = 6_000
MAX_PAYLOAD = 4_000

OPS = ["put", "get", "delete", "list", "head"]
WEIGHTS = [0.40, 0.25, 0.10, 0.10, 0.15]


def _observe(fn):
    """Run one read-class op, normalising absence into a value."""
    try:
        return ("ok", fn())
    except ObjectNotFoundError:
        return ("missing", None)


def _payload(rng: np.random.Generator) -> bytes:
    size = int(rng.integers(1, MAX_PAYLOAD + 1))
    return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()


def _assert_same_listings(cache, bare):
    assert cache.list_keys("") == bare.list_keys("")
    # A narrower prefix exercises the near/far union filter.
    assert cache.list_keys("job0/ckpt-00") == bare.list_keys(
        "job0/ckpt-00"
    )


def _assert_same_contents(cache, bare):
    for key in bare.list_keys(""):
        assert cache.read(key) == bare.read(key), key


@pytest.mark.parametrize("policy", CACHE_POLICIES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_differential_op_stream(policy, seed):
    """400 seeded ops: every observable matches after every op."""
    rng = np.random.default_rng(seed)
    far = InMemoryBackend()
    cache = CacheTierBackend(far, capacity_bytes=CAPACITY, policy=policy)
    bare = InMemoryBackend()

    for step in range(400):
        op = OPS[int(rng.choice(len(OPS), p=WEIGHTS))]
        key = KEY_POOL[int(rng.integers(len(KEY_POOL)))]
        if op == "put":
            data = _payload(rng)
            cache.write(key, data)
            bare.write(key, data)
        elif op == "get":
            got = _observe(lambda: cache.read(key))
            want = _observe(lambda: bare.read(key))
            assert got == want, key
        elif op == "delete":
            got = _observe(lambda: cache.delete(key))
            want = _observe(lambda: bare.delete(key))
            assert got[0] == want[0], key
        elif op == "head":
            assert cache.exists(key) == bare.exists(key), key
        _assert_same_listings(cache, bare)
        if step % 50 == 49:
            _assert_same_contents(cache, bare)
        if policy == POLICY_WRITE_THROUGH:
            # Write-through keeps the far tier authoritative at every
            # instant, not just after a flush.
            assert far.list_keys("") == bare.list_keys("")

    # The stream must actually have churned the cache, or transparency
    # was never under pressure.
    assert cache.evictions > 0
    assert cache.hits > 0 and cache.misses > 0
    if policy == POLICY_WRITE_BACK:
        assert cache.dirty_flushes > 0
        cache.flush()
        assert cache.dirty_backlog == 0
        assert cache.dirty_bytes == 0
    # After draining, the far tier alone reproduces the bare backend.
    assert far.list_keys("") == bare.list_keys("")
    for key in bare.list_keys(""):
        assert far.read(key) == bare.read(key), key
    _assert_same_contents(cache, bare)


@pytest.mark.parametrize("policy", CACHE_POLICIES)
def test_differential_through_timed_stores(policy):
    """Same differential one layer up: two full ObjectStores.

    Covers the engine path — ``cost_for`` per-request pricing,
    ``attach_engine`` so flushes ride the retry loop, staged PUT/GET
    submission — rather than the raw backend shims.
    """
    rng = np.random.default_rng(7)
    config = StorageConfig()
    far = InMemoryBackend()
    cached_store = ObjectStore(
        config,
        SimClock(),
        backend=CacheTierBackend(
            far, capacity_bytes=CAPACITY, policy=policy
        ),
    )
    bare_store = ObjectStore(config, SimClock(), backend=InMemoryBackend())

    for step in range(120):
        op = OPS[int(rng.choice(len(OPS), p=WEIGHTS))]
        key = KEY_POOL[int(rng.integers(len(KEY_POOL)))]
        if op == "put":
            data = _payload(rng)
            cached_store.put(key, data, overwrite=True)
            bare_store.put(key, data, overwrite=True)
        elif op == "get":
            got = _observe(lambda: cached_store.get(key))
            want = _observe(lambda: bare_store.get(key))
            assert got == want, key
        elif op == "delete":
            if bare_store.exists(key):
                cached_store.delete(key)
                bare_store.delete(key)
        elif op == "head":
            assert cached_store.exists(key) == bare_store.exists(key)
        assert cached_store.list_keys("") == bare_store.list_keys("")

    tier = find_cache_tier(cached_store.backend)
    assert tier is not None
    assert tier.evictions > 0
    if policy == POLICY_WRITE_BACK:
        tier.flush()
    for key in bare_store.list_keys(""):
        assert cached_store.get(key) == bare_store.get(key), key
        assert far.read(key) == bare_store.get(key), key


class TestCacheSemantics:
    """Targeted invariants the random stream cannot pin down exactly."""

    def _cache(self, policy=POLICY_WRITE_BACK, capacity=1_000, **kw):
        far = InMemoryBackend()
        return far, CacheTierBackend(
            far, capacity_bytes=capacity, policy=policy, **kw
        )

    def test_eviction_prefers_clean_lru(self):
        far, cache = self._cache(capacity=1_000, flush_watermark=1.0)
        cache.write("dirty-old", b"d" * 300)
        far.write("clean-a", b"a" * 300)
        far.write("clean-b", b"b" * 300)
        cache.read("clean-a")  # admitted clean, LRU-oldest clean
        cache.read("clean-b")
        assert cache.near_bytes == 900
        cache.write("new", b"n" * 300)  # forces one eviction
        assert cache.evictions == 1
        # The dirty object survived; the least-recent clean one went.
        assert "dirty-old" in cache.cached_keys()
        assert "clean-a" not in cache.cached_keys()
        assert "clean-b" in cache.cached_keys()
        assert cache.forced_flushes == 0

    def test_all_dirty_eviction_forces_a_flush(self):
        """When the background flusher fails, eviction force-flushes.

        In the healthy path the auto-flusher keeps dirty bytes below
        the watermark, so eviction always finds clean victims; a
        transient far failure leaves everything dirty, and the next
        capacity squeeze must flush-then-evict rather than drop bytes.
        """
        inner = InMemoryBackend()
        far = CrashingBackend(inner)
        cache = CacheTierBackend(
            far, capacity_bytes=1_000, flush_watermark=1.0
        )
        cache.write("k0", b"0" * 600)
        far.arm(1)  # the auto-flush triggered by the next write crashes
        cache.write("k1", b"1" * 600)
        assert cache.flush_failures == 1  # swallowed, write still acked
        # Eviction pressure inside the same write saw only dirty
        # objects: the oldest was force-flushed to the (recovered) far
        # tier, then evicted.
        assert cache.forced_flushes == 1
        assert cache.evictions == 1
        assert inner.read("k0") == b"0" * 600
        assert "k0" not in cache.cached_keys()
        assert cache.dirty_keys() == ["k1"]

    def test_watermark_triggers_background_flush(self):
        far, cache = self._cache(capacity=1_000, flush_watermark=0.5)
        cache.write("k0", b"0" * 300)
        assert cache.dirty_flushes == 0  # 300 <= 500: below watermark
        cache.write("k1", b"1" * 300)  # 600 > 500: flusher drains
        assert cache.dirty_flushes >= 1
        assert far.exists("k0")
        assert cache.dirty_bytes <= 500

    def test_oversized_object_bypasses_near_tier(self):
        far, cache = self._cache(capacity=1_000)
        big = b"x" * 2_000
        cache.write("big", big)
        assert cache.bypass_writes == 1
        assert "big" not in cache.cached_keys()
        assert far.read("big") == big
        # Reads of the bypassed object also refuse admission.
        assert cache.read("big") == big
        assert "big" not in cache.cached_keys()

    def test_ranged_get_never_admits(self):
        far, cache = self._cache()
        far.write("obj", bytes(range(200)))
        request = StorageRequest(OP_GET, "obj", byte_range=(10, 20))
        assert cache.get_object(request) == bytes(range(10, 20))
        assert cache.misses == 1
        assert "obj" not in cache.cached_keys()
        # A whole-object read admits; a ranged hit then clips near data.
        assert cache.read("obj") == bytes(range(200))
        assert cache.get_object(request) == bytes(range(10, 20))
        assert cache.hits == 1

    def test_delete_of_dirty_only_object_succeeds(self):
        far, cache = self._cache(flush_watermark=1.0)
        cache.write("dirty", b"d")
        assert not far.exists("dirty")
        cache.delete("dirty")  # far raises not-found; near copy absorbs
        assert not cache.exists("dirty")
        with pytest.raises(ObjectNotFoundError):
            cache.delete("never-existed")

    def test_constructor_validation(self):
        far = InMemoryBackend()
        with pytest.raises(StorageError):
            CacheTierBackend(far, capacity_bytes=0)
        with pytest.raises(StorageError):
            CacheTierBackend(far, capacity_bytes=10, policy="write_around")
        with pytest.raises(StorageError):
            CacheTierBackend(far, capacity_bytes=10, flush_watermark=0.0)

    def test_stats_snapshot_round_trip(self):
        _, cache = self._cache(flush_watermark=1.0)
        cache.write("k", b"abc")
        cache.read("k")
        stats = cache.stats()
        assert stats.policy == POLICY_WRITE_BACK
        assert stats.hits == 1 and stats.misses == 0
        assert stats.hit_rate == 1.0
        assert stats.dirty_backlog == 1
        assert stats.near_bytes == 3
        empty = cache.stats()
        assert empty.hit_rate == stats.hit_rate  # frozen snapshot math
