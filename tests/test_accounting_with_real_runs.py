"""Accounting metrics computed from real controller runs."""

from __future__ import annotations

import pytest

from repro.experiments import build_experiment, small_config
from repro.metrics.accounting import (
    average_write_bandwidth,
    interval_size_fractions,
    peak_capacity,
    reduction_summary,
)


def run_policy(policy: str, quantizer: str, bits):
    exp = build_experiment(
        small_config(
            policy=policy,
            quantizer=quantizer,
            bit_width=bits,
            interval_batches=8,
            num_tables=3,
            rows_per_table=4096,
            batch_size=64,
        )
    )
    exp.controller.run_intervals(5)
    reports = [
        e.report for e in exp.controller.stats.events if e.report
    ]
    return exp, reports


class TestAccountingOnRealRuns:
    def test_interval_fractions_start_at_one(self):
        exp, reports = run_policy("one_shot", "none", None)
        model_bytes = reports[0].logical_bytes
        fractions = interval_size_fractions(reports, model_bytes)
        assert fractions[0] == pytest.approx(1.0)
        assert all(f <= 1.0 + 1e-9 for f in fractions)

    def test_average_bandwidth_positive_and_bounded(self):
        exp, reports = run_policy("intermittent", "adaptive", 4)
        bandwidth = average_write_bandwidth(reports, exp.clock.now)
        total = sum(r.logical_bytes for r in reports)
        assert 0 < bandwidth <= total  # run lasts > 1 second

    def test_reduction_summary_from_paired_runs(self):
        base_exp, base_reports = run_policy("full", "none", None)
        cnr_exp, cnr_reports = run_policy("intermittent", "adaptive", 4)
        summary = reduction_summary(
            base_reports,
            base_exp.store.capacity_series(),
            cnr_reports,
            cnr_exp.store.capacity_series(),
            duration_s=max(base_exp.clock.now, cnr_exp.clock.now),
        )
        assert summary.avg_bandwidth_reduction > 1.5
        assert summary.peak_capacity_reduction > 1.0

    def test_peak_capacity_from_store(self):
        exp, _ = run_policy("full", "none", None)
        peak = peak_capacity(exp.store.capacity_series())
        assert peak >= exp.store.live_logical_bytes
        assert peak <= exp.store.stats().total_bytes_written


class TestPublisherWithCumulativeIncrements:
    def test_one_shot_increments_apply_on_top(self):
        """One-shot increments are cumulative-from-baseline, so
        applying the latest on an already-published replica is exact."""
        import numpy as np

        from repro.core.publisher import OnlinePublisher
        from repro.model.dlrm import DLRM

        exp = build_experiment(
            small_config(
                policy="one_shot",
                quantizer="none",
                interval_batches=5,
                num_tables=2,
                rows_per_table=1024,
                batch_size=32,
                keep_last=1_000_000,
            )
        )
        replica = DLRM(exp.config.model)
        publisher = OnlinePublisher(
            exp.store, exp.clock, replica, exp.controller.job_id
        )
        for _ in range(3):
            exp.controller.run_intervals(1)
            exp.clock.advance_to(
                exp.store.timeline.free_at + 1.0, "drain"
            )
            publisher.poll()
        for t in range(exp.model.num_tables):
            np.testing.assert_array_equal(
                replica.table_weight(t), exp.model.table_weight(t)
            )
        assert publisher.stats.publishes == 3
