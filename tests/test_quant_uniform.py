"""Unit tests for symmetric / asymmetric uniform quantization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant import mean_l2_error
from repro.quant.uniform import (
    AsymmetricQuantizer,
    SymmetricQuantizer,
    uniform_dequantize_rows,
    uniform_quantize_rows,
)


class TestUniformPrimitives:
    def test_grid_endpoints_exact(self):
        """xmin and xmax are on the grid, so they reconstruct exactly."""
        x = np.array([[-1.0, 0.0, 1.0]], dtype=np.float32)
        xmin = np.array([-1.0], dtype=np.float32)
        xmax = np.array([1.0], dtype=np.float32)
        codes = uniform_quantize_rows(x, xmin, xmax, 8)
        out = uniform_dequantize_rows(codes, xmin, xmax, 8)
        assert out[0, 0] == pytest.approx(-1.0, abs=1e-6)
        assert out[0, 2] == pytest.approx(1.0, abs=1e-6)

    def test_error_bounded_by_half_step(self, rng):
        x = rng.uniform(-1, 1, size=(100, 16)).astype(np.float32)
        xmin = x.min(axis=1)
        xmax = x.max(axis=1)
        for bits in (2, 3, 4, 8):
            codes = uniform_quantize_rows(x, xmin, xmax, bits)
            out = uniform_dequantize_rows(codes, xmin, xmax, bits)
            step = (xmax - xmin) / ((1 << bits) - 1)
            max_err = np.abs(out - x).max(axis=1)
            assert np.all(max_err <= step / 2 + 1e-6)

    def test_constant_row_reconstructs_value(self):
        x = np.full((1, 8), 0.37, dtype=np.float32)
        xmin = np.array([0.37], dtype=np.float32)
        xmax = np.array([0.37], dtype=np.float32)
        codes = uniform_quantize_rows(x, xmin, xmax, 4)
        out = uniform_dequantize_rows(codes, xmin, xmax, 4)
        np.testing.assert_allclose(out, x, atol=1e-6)

    def test_values_outside_range_clip(self):
        x = np.array([[-5.0, 0.0, 5.0]], dtype=np.float32)
        xmin = np.array([-1.0], dtype=np.float32)
        xmax = np.array([1.0], dtype=np.float32)
        codes = uniform_quantize_rows(x, xmin, xmax, 4)
        out = uniform_dequantize_rows(codes, xmin, xmax, 4)
        assert out[0, 0] == pytest.approx(-1.0, abs=1e-6)
        assert out[0, 2] == pytest.approx(1.0, abs=1e-6)

    def test_codes_within_level_range(self, rng):
        x = rng.normal(size=(50, 8)).astype(np.float32)
        codes = uniform_quantize_rows(
            x, x.min(axis=1), x.max(axis=1), 3
        )
        assert codes.min() >= 0
        assert codes.max() <= 7


class TestSymmetric:
    def test_roundtrip_shape_and_dtype(self, trained_tensor):
        q = SymmetricQuantizer(4)
        out = q.roundtrip(trained_tensor)
        assert out.shape == trained_tensor.shape
        assert out.dtype == np.float32

    def test_single_param_per_row(self, trained_tensor):
        qt = SymmetricQuantizer(4).quantize(trained_tensor)
        assert set(qt.params) == {"xmax"}
        assert qt.param_bytes == trained_tensor.shape[0] * 4

    def test_error_shrinks_with_bits(self, trained_tensor):
        errors = [
            mean_l2_error(
                trained_tensor,
                SymmetricQuantizer(b).roundtrip(trained_tensor),
            )
            for b in (2, 3, 4, 8)
        ]
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < errors[0] / 10


class TestAsymmetric:
    def test_beats_symmetric_on_skewed_data(self, rng):
        """The paper's Fig 9 ordering: asymmetric < symmetric error on
        non-symmetric value distributions."""
        skewed = rng.gamma(2.0, 0.05, size=(512, 16)).astype(np.float32)
        for bits in (2, 3, 4, 8):
            sym = mean_l2_error(
                skewed, SymmetricQuantizer(bits).roundtrip(skewed)
            )
            asym = mean_l2_error(
                skewed, AsymmetricQuantizer(bits).roundtrip(skewed)
            )
            assert asym < sym

    def test_two_params_per_row(self, trained_tensor):
        qt = AsymmetricQuantizer(4).quantize(trained_tensor)
        assert set(qt.params) == {"xmin", "xmax"}

    def test_compression_ratio_accounts_metadata(self, trained_tensor):
        qt = AsymmetricQuantizer(4).quantize(trained_tensor)
        # 16 cols at 4 bits = 8 code bytes + 8 param bytes per row,
        # versus 64 fp32 bytes: ratio 4x.
        assert qt.compression_ratio == pytest.approx(4.0)

    def test_8bit_near_lossless_for_training(self, trained_tensor):
        out = AsymmetricQuantizer(8).roundtrip(trained_tensor)
        row_range = trained_tensor.max(axis=1) - trained_tensor.min(axis=1)
        np.testing.assert_array_less(
            np.abs(out - trained_tensor).max(axis=1),
            row_range / 255.0 + 1e-7,
        )


class TestInputValidation:
    def test_rejects_1d(self):
        with pytest.raises(QuantizationError, match="2-D"):
            AsymmetricQuantizer(4).quantize(np.zeros(8, dtype=np.float32))

    def test_rejects_empty(self):
        with pytest.raises(QuantizationError, match="empty"):
            AsymmetricQuantizer(4).quantize(
                np.zeros((0, 4), dtype=np.float32)
            )

    def test_rejects_nan(self):
        bad = np.full((2, 2), np.nan, dtype=np.float32)
        with pytest.raises(QuantizationError, match="non-finite"):
            AsymmetricQuantizer(4).quantize(bad)

    def test_rejects_inf(self):
        bad = np.array([[1.0, np.inf]], dtype=np.float32)
        with pytest.raises(QuantizationError, match="non-finite"):
            SymmetricQuantizer(4).quantize(bad)

    def test_rejects_bad_bits(self):
        with pytest.raises(QuantizationError, match="bit width"):
            AsymmetricQuantizer(0)
        with pytest.raises(QuantizationError, match="bit width"):
            AsymmetricQuantizer(9)

    def test_rejects_cross_quantizer_decode(self, trained_tensor):
        qt = SymmetricQuantizer(4).quantize(trained_tensor)
        with pytest.raises(QuantizationError, match="cannot decode"):
            AsymmetricQuantizer(4).dequantize(qt)

    def test_rejects_bit_width_mismatch(self, trained_tensor):
        qt = AsymmetricQuantizer(4).quantize(trained_tensor)
        with pytest.raises(QuantizationError, match="mismatch"):
            AsymmetricQuantizer(2).dequantize(qt)
