"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DataConfig, ModelConfig
from repro.data.synthetic import SyntheticClickDataset
from repro.experiments import build_experiment, small_config
from repro.model.dlrm import DLRM


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_model_config() -> ModelConfig:
    return ModelConfig(
        num_tables=3,
        rows_per_table=(64, 48, 32),
        embedding_dim=8,
        num_dense_features=5,
        bottom_mlp=(8, 8),
        top_mlp=(8, 1),
        hotness=2,
    )


@pytest.fixture
def tiny_data_config() -> DataConfig:
    return DataConfig(batch_size=16)


@pytest.fixture
def tiny_dataset(tiny_model_config, tiny_data_config):
    return SyntheticClickDataset(tiny_model_config, tiny_data_config)


@pytest.fixture
def tiny_model(tiny_model_config) -> DLRM:
    return DLRM(tiny_model_config)


@pytest.fixture
def trained_tensor(rng) -> np.ndarray:
    """A value-distribution-realistic 2-D tensor for quantizer tests.

    Normal bulk with occasional outlier elements, like trained
    embedding rows.
    """
    base = rng.normal(0.0, 0.05, size=(256, 16)).astype(np.float32)
    outlier_rows = rng.choice(256, size=32, replace=False)
    outlier_cols = rng.integers(0, 16, size=32)
    base[outlier_rows, outlier_cols] += rng.choice(
        [-1.0, 1.0], size=32
    ) * rng.uniform(0.3, 0.6, size=32).astype(np.float32)
    return base


@pytest.fixture
def tiny_experiment():
    """A fully wired seconds-scale experiment."""
    return build_experiment(
        small_config(
            num_tables=3,
            rows_per_table=512,
            embedding_dim=8,
            batch_size=32,
            interval_batches=5,
            num_nodes=1,
            devices_per_node=2,
        )
    )
