"""Unit tests for modified-row tracking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tracker import ModifiedRowTracker, TrackerSet
from repro.distributed.sharding import Shard, ShardingPlan, plan_row_wise
from repro.distributed.topology import DeviceId, SimCluster
from repro.config import ClusterConfig, ModelConfig
from repro.errors import SimulationError


@pytest.fixture
def shard() -> Shard:
    return Shard(0, 0, 100, 200, DeviceId(0, 0), 8)


class TestModifiedRowTracker:
    def test_marks_only_in_range_rows(self, shard):
        tracker = ModifiedRowTracker(shard)
        newly = tracker.mark_table_rows(np.array([50, 100, 150, 250]))
        assert newly == 2  # 100 and 150 fall in [100, 200)
        np.testing.assert_array_equal(
            tracker.modified_table_rows(), [100, 150]
        )

    def test_remarking_is_idempotent(self, shard):
        tracker = ModifiedRowTracker(shard)
        tracker.mark_table_rows(np.array([110, 120]))
        newly = tracker.mark_table_rows(np.array([110, 120, 130]))
        assert newly == 1
        assert tracker.modified_count == 3

    def test_empty_mark(self, shard):
        tracker = ModifiedRowTracker(shard)
        assert tracker.mark_table_rows(np.zeros(0, dtype=np.int64)) == 0

    def test_reset(self, shard):
        tracker = ModifiedRowTracker(shard)
        tracker.mark_table_rows(np.array([105]))
        tracker.reset()
        assert tracker.modified_count == 0
        assert tracker.fraction_modified == 0.0

    def test_mark_all(self, shard):
        tracker = ModifiedRowTracker(shard)
        tracker.mark_all()
        assert tracker.fraction_modified == 1.0

    def test_local_rows_offset(self, shard):
        tracker = ModifiedRowTracker(shard)
        tracker.mark_table_rows(np.array([100, 199]))
        np.testing.assert_array_equal(
            tracker.modified_local_rows(), [0, 99]
        )

    def test_mask_copy_is_independent(self, shard):
        tracker = ModifiedRowTracker(shard)
        tracker.mark_table_rows(np.array([100]))
        mask = tracker.mask_copy()
        tracker.reset()
        assert mask[0]  # copy unaffected by reset

    def test_load_mask_shape_check(self, shard):
        tracker = ModifiedRowTracker(shard)
        with pytest.raises(SimulationError, match="shape"):
            tracker.load_mask(np.zeros(5, dtype=bool))

    def test_bitvector_memory_footprint(self, shard):
        tracker = ModifiedRowTracker(shard)
        assert tracker.bitvector_bytes == 13  # ceil(100 / 8)


class TestTrackerSet:
    @pytest.fixture
    def plan_and_set(self):
        config = ModelConfig(
            num_tables=2,
            rows_per_table=(100, 60),
            embedding_dim=8,
            bottom_mlp=(16, 8),
            top_mlp=(8, 1),
        )
        cluster = SimCluster(ClusterConfig(num_nodes=1, devices_per_node=2))
        plan = plan_row_wise(config, cluster)
        return plan, TrackerSet(plan)

    def test_mark_spans_shards(self, plan_and_set):
        plan, tracker_set = plan_and_set
        # Table 0 is split at row 50 across two devices.
        tracker_set.mark_table_rows(0, np.array([10, 60]))
        assert tracker_set.modified_rows == 2

    def test_fraction_modified(self, plan_and_set):
        _, tracker_set = plan_and_set
        tracker_set.mark_table_rows(0, np.arange(100))
        assert tracker_set.fraction_modified == pytest.approx(100 / 160)

    def test_reset_all(self, plan_and_set):
        _, tracker_set = plan_and_set
        tracker_set.mark_table_rows(1, np.array([5]))
        tracker_set.reset_all()
        assert tracker_set.modified_rows == 0

    def test_mask_copies_keyed_by_shard(self, plan_and_set):
        plan, tracker_set = plan_and_set
        masks = tracker_set.mask_copies()
        assert set(masks) == {s.shard_id for s in plan.shards}

    def test_step_hook_forward_proxy_superset(
        self, tiny_experiment
    ):
        """Forward-proxy tracking marks at least the optimizer-updated
        rows (the paper's proxy argument, section 5.1.1)."""
        exp = tiny_experiment
        exp.reader.begin_interval(3)
        exact = TrackerSet(exp.plan, track_in_forward_pass=False)
        proxy = exp.controller.tracker_set  # forward mode by default
        exp.trainer.register_step_hook(exact.step_hook)
        for _ in range(3):
            exp.trainer.train_one_batch()
        for shard_id, tracker in exact.trackers.items():
            proxy_mask = proxy.trackers[shard_id].mask_copy()
            exact_mask = tracker.mask_copy()
            assert np.all(proxy_mask | ~exact_mask)  # proxy >= exact

    def test_bitvector_total(self, plan_and_set):
        _, tracker_set = plan_and_set
        # 160 rows total across shards of 50/50/30/30.
        assert tracker_set.bitvector_bytes == 7 + 7 + 4 + 4
