"""Capacity-planner edge cases: degenerate grids and storm-off runs.

:func:`repro.fleet.planner.run_plan` re-runs one seeded fleet per grid
point; these tests pin the sweep's boundary behavior rather than its
happy path (which the CLI smoke and b04-adjacent benches cover):

* an *empty* quota axis is a legal request for zero points, not an
  error — the curve renders with a header and no rows;
* a single-point sweep produces exactly one row whose knobs echo the
  base config's overrides;
* with no storm armed, ``storm_recover_s`` is 0.0 and the table
  renders the storm column as ``-``;
* invalid axes (unknown admission mode, static without a write cap,
  nonpositive retention) fail fast with :class:`ReproError` before
  any fleet runs.
"""

from __future__ import annotations

import pytest

from repro.config import FleetConfig
from repro.errors import ReproError
from repro.fleet.planner import (
    PLAN_ADMISSION_MODES,
    ProvisioningCurve,
    peak_bandwidth,
    plan_point,
    run_plan,
    storm_time_to_recover,
)


def base_config(**overrides) -> FleetConfig:
    defaults = dict(
        num_jobs=4,
        intervals_per_job=2,
        seed=11,
        inject_failures=False,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestDegenerateGrids:
    def test_empty_quota_axis_yields_no_points(self):
        curve = run_plan(base_config(), quotas=())
        assert curve.points == ()
        assert curve.num_jobs == 4
        # The empty curve still formats: header + column row, no data.
        formatted = curve.format()
        assert "Provisioning curve" in formatted
        assert len(formatted.splitlines()) == 2

    def test_single_point_sweep(self):
        progressed = []
        curve = run_plan(
            base_config(),
            quotas=(None,),
            keep_lasts=(3,),
            admissions=("none",),
            progress=progressed.append,
        )
        assert len(curve.points) == 1
        point = curve.points[0]
        assert point.quota_bytes is None
        assert point.keep_last == 3
        assert point.admission == "none"
        assert point.duration_s > 0
        assert progressed == [point]

    def test_grid_order_is_quota_keep_admission(self):
        curve = run_plan(
            base_config(),
            quotas=(None, 1 << 30),
            keep_lasts=(1, 2),
            admissions=("none",),
        )
        knobs = [
            (p.quota_bytes, p.keep_last) for p in curve.points
        ]
        assert knobs == [
            (None, 1),
            (None, 2),
            (1 << 30, 1),
            (1 << 30, 2),
        ]


class TestStormOff:
    def test_no_storm_recovers_in_zero(self):
        point = plan_point(base_config())
        assert point.storm_recover_s == 0.0

    def test_storm_column_renders_dash(self):
        curve = run_plan(base_config())
        assert curve.storm_domain is None
        row = curve.format().splitlines()[-1]
        assert "-" in row
        assert "s" not in row.split()[-3]  # no seconds value rendered

    def test_storm_time_to_recover_reads_storm_samples_only(self):
        _, report = __import__(
            "repro.fleet", fromlist=["run_fleet"]
        ).run_fleet(base_config())
        assert report.storm is None
        assert storm_time_to_recover(report) == 0.0

    def test_peak_bandwidth_of_empty_series_is_zero(self):
        assert peak_bandwidth(()) == 0.0
        assert peak_bandwidth(((0.0, 1.0, 5.0), (1.0, 2.0, 9.0))) == 9.0


class TestAxisValidation:
    def test_unknown_admission_mode_rejected(self):
        with pytest.raises(ReproError):
            run_plan(base_config(), admissions=("quantum",))

    def test_static_requires_write_cap(self):
        assert "static" in PLAN_ADMISSION_MODES
        with pytest.raises(ReproError):
            run_plan(base_config(), admissions=("static",))

    def test_nonpositive_keep_last_rejected(self):
        with pytest.raises(ReproError):
            run_plan(base_config(), keep_lasts=(0,))

    def test_validation_happens_before_any_runs(self):
        """A bad axis must fail even when quotas would be swept first
        (no partial sweeps)."""
        with pytest.raises(ReproError):
            run_plan(
                base_config(),
                quotas=(None, 1 << 30),
                admissions=("none", "bogus"),
            )


class TestCurveShape:
    def test_curve_is_frozen_and_echoes_the_base(self):
        curve = run_plan(base_config(seed=23))
        assert isinstance(curve, ProvisioningCurve)
        assert curve.seed == 23
        assert curve.dispatch == "heap"
        with pytest.raises(Exception):
            curve.points = ()
