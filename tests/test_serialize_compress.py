"""Unit tests for the generic compressors (the paper's negative baseline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.serialize.compress import (
    DeflateCompressor,
    RleCompressor,
    make_compressor,
)


@pytest.fixture(params=["deflate", "rle"])
def compressor(request):
    return make_compressor(request.param)


class TestRoundTrip:
    def test_empty(self, compressor):
        assert compressor.decompress(compressor.compress(b"")) == b""

    def test_ascii(self, compressor):
        data = b"the quick brown fox jumps over the lazy dog" * 10
        assert compressor.decompress(compressor.compress(data)) == data

    def test_random_bytes(self, compressor, rng):
        data = rng.integers(0, 256, size=10_000, dtype=np.uint8).tobytes()
        assert compressor.decompress(compressor.compress(data)) == data

    def test_long_runs(self, compressor):
        data = b"\x00" * 1000 + b"\xff" * 1000 + b"ab" * 500
        assert compressor.decompress(compressor.compress(data)) == data

    def test_run_boundary_255(self, compressor):
        for run in (254, 255, 256, 511):
            data = b"z" * run
            assert compressor.decompress(compressor.compress(data)) == data

    def test_fp32_weights_roundtrip(self, compressor, trained_tensor):
        data = trained_tensor.tobytes()
        assert compressor.decompress(compressor.compress(data)) == data


class TestCompressionBehaviour:
    def test_runs_compress_well(self):
        report = RleCompressor().report(b"\x00" * 100_000)
        assert report.savings > 0.9

    def test_trained_fp32_weights_barely_compress(self, trained_tensor):
        """The paper's observation: generic codecs save <= ~7% on
        trained fp32 checkpoints."""
        data = trained_tensor.tobytes()
        deflate = DeflateCompressor().report(data)
        assert deflate.savings < 0.15  # nothing like quantization's 4-13x
        rle = RleCompressor().report(data)
        assert rle.savings < 0.05

    def test_report_ratio_of_empty(self, compressor):
        report = compressor.report(b"")
        assert report.ratio == 1.0


class TestErrors:
    def test_unknown_name(self):
        with pytest.raises(SerializationError, match="unknown"):
            make_compressor("zstd")

    def test_bad_deflate_level(self):
        with pytest.raises(SerializationError, match="level"):
            DeflateCompressor(level=17)

    def test_corrupt_deflate_stream(self):
        with pytest.raises(SerializationError, match="corrupt"):
            DeflateCompressor().decompress(b"not a zlib stream")

    def test_truncated_rle_literal(self):
        rle = RleCompressor()
        blob = rle.compress(b"abcdef")
        with pytest.raises(SerializationError, match="truncated"):
            rle.decompress(blob[:-2])

    def test_truncated_rle_run(self):
        with pytest.raises(SerializationError, match="truncated"):
            RleCompressor().decompress(b"\x05")  # run tag without value
