"""Unit tests: row cache, serving publisher, hot-first restore order."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.integrity import quarantine_checkpoint
from repro.core.restore import (
    ORDER_HOT_FIRST,
    ORDER_MANIFEST,
    CheckpointRestorer,
    ReadStep,
)
from repro.errors import CheckpointError, ServingError
from repro.experiments import build_experiment, small_config
from repro.model.dlrm import DLRM
from repro.serving import RowCache, RowCacheStats, ServingPublisher


def drain(exp) -> None:
    exp.clock.advance_to(exp.store.timeline.free_at + 1.0, "drain")


def _value(seed: int) -> np.ndarray:
    return np.full(4, float(seed), dtype=np.float32)


class TestRowCache:
    def test_lru_evicts_oldest_untouched(self):
        cache = RowCache(3, version_index=0)
        for row in range(3):
            cache.admit(0, row, _value(row))
        cache.lookup(0, 0)  # refresh row 0's recency
        cache.admit(0, 3, _value(3))  # evicts row 1, the LRU victim
        assert cache.lookup(0, 1) is None
        assert cache.lookup(0, 0) is not None
        assert cache.lookup(0, 3) is not None

    def test_pinned_rows_never_evicted(self):
        cache = RowCache(2, version_index=0)
        assert cache.pin(0, 7, _value(7))
        for row in range(10, 20):
            cache.admit(0, row, _value(row))
        assert cache.lookup(0, 7) is not None
        assert len(cache) <= 2

    def test_pin_budget_is_capacity(self):
        cache = RowCache(2, version_index=0)
        assert cache.pin(0, 1, _value(1))
        assert cache.pin(0, 2, _value(2))
        assert not cache.pin(0, 3, _value(3))
        assert cache.pinned_rows == 2

    def test_admit_is_noop_for_pinned_row(self):
        stats = RowCacheStats()
        cache = RowCache(4, version_index=0, stats=stats)
        cache.pin(0, 1, _value(1))
        inserts = stats.inserts
        cache.admit(0, 1, _value(99))
        assert stats.inserts == inserts
        np.testing.assert_array_equal(cache.lookup(0, 1), _value(1))

    def test_peek_counts_nothing(self):
        stats = RowCacheStats()
        cache = RowCache(2, version_index=0, stats=stats)
        cache.admit(0, 1, _value(1))
        hits, misses = stats.hits, stats.misses
        assert cache.peek(0, 1) is not None
        assert cache.peek(0, 2) is None
        assert (stats.hits, stats.misses) == (hits, misses)

    def test_stats_count_hits_and_misses(self):
        stats = RowCacheStats()
        cache = RowCache(2, version_index=0, stats=stats)
        cache.admit(0, 1, _value(1))
        assert cache.lookup(0, 1) is not None
        assert cache.lookup(0, 2) is None
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_carry_drops_invalidated_rows(self):
        old = RowCache(4, version_index=0)
        old.admit(0, 1, _value(1))
        old.admit(0, 2, _value(2))
        old.pin(0, 3, _value(3))
        new = RowCache.from_previous(
            old, 1, {0: np.asarray([2], dtype=np.int64)}
        )
        assert new.version_index == 1
        assert new.peek(0, 1) is not None  # untouched row carried
        assert new.peek(0, 2) is None  # modified row dropped
        assert new.peek(0, 3) is not None  # pins carry as plain entries
        assert new.pinned_rows == 0
        assert new.stats is old.stats

    def test_rejects_zero_capacity(self):
        with pytest.raises(ServingError):
            RowCache(0, version_index=0)


@pytest.fixture
def serving_exp():
    exp = build_experiment(
        small_config(
            policy="consecutive",
            quantizer="none",
            interval_batches=5,
            num_tables=2,
            rows_per_table=256,
            batch_size=32,
            keep_last=1_000_000,
        )
    )
    return exp


class TestServingPublisher:
    def _publisher(self, exp) -> ServingPublisher:
        return ServingPublisher(
            exp.store,
            exp.clock,
            DLRM(exp.config.model),
            exp.controller.job_id,
            hot_rows_per_table=16,
        )

    def test_versions_announce_in_order(self, serving_exp):
        exp = serving_exp
        publisher = self._publisher(exp)
        for _ in range(3):
            exp.controller.run_intervals(1)
            drain(exp)
            publisher.poll()
        assert len(publisher.versions) == 3
        assert [v.version_index for v in publisher.versions] == [0, 1, 2]
        assert publisher.latest_version is publisher.versions[-1]

    def test_locator_covers_every_row_and_matches_replica(
        self, serving_exp
    ):
        exp = serving_exp
        publisher = self._publisher(exp)
        exp.controller.run_intervals(2)
        drain(exp)
        publisher.poll()
        version = publisher.latest_version
        assert version is not None
        for t in range(exp.model.num_tables):
            rows = exp.model.table_weight(t).shape[0]
            assert len(version.locator[t]) == rows
            np.testing.assert_array_equal(
                publisher.replica.table_weight(t),
                exp.model.table_weight(t),
            )

    def test_hot_rows_only_count_incremental_touches(self, serving_exp):
        exp = serving_exp
        publisher = self._publisher(exp)
        # After only a full checkpoint there is no tracker signal yet.
        exp.controller.run_intervals(1)
        drain(exp)
        publisher.poll()
        first = publisher.versions[0]
        assert all(ids.size == 0 for ids in first.hot_rows.values())
        # Incremental checkpoints carry exactly the modified rows.
        exp.controller.run_intervals(1)
        drain(exp)
        publisher.poll()
        second = publisher.versions[1]
        for t, hot in second.hot_rows.items():
            assert hot.size > 0
            assert set(hot.tolist()) <= set(
                second.modified_rows[t].tolist()
            )

    def test_row_ref_unknown_row_raises(self, serving_exp):
        exp = serving_exp
        publisher = self._publisher(exp)
        exp.controller.run_intervals(1)
        drain(exp)
        publisher.poll()
        with pytest.raises(ServingError):
            publisher.latest_version.row_ref(0, 10_000_000)

    def test_quarantined_checkpoint_never_publishes(self, serving_exp):
        """Satellite: the publisher must skip quarantined checkpoints."""
        exp = serving_exp
        publisher = self._publisher(exp)
        exp.controller.run_intervals(1)
        drain(exp)
        publisher.poll()
        exp.controller.run_intervals(1)
        drain(exp)
        restorer = CheckpointRestorer(exp.store, exp.clock)
        manifests = restorer.list_manifests(exp.controller.job_id)
        newest = max(manifests.values(), key=lambda m: m.interval_index)
        quarantine_checkpoint(exp.store, newest)
        events = publisher.poll()
        assert newest.checkpoint_id not in {
            e.checkpoint_id for e in events
        }
        assert all(
            v.checkpoint_id != newest.checkpoint_id
            for v in publisher.versions
        )
        # A descendant increment chains *through* the quarantined link,
        # so it must stay unpublishable until a full re-anchors it.
        exp.controller.run_intervals(1)
        drain(exp)
        assert publisher.poll() == []


class TestDecodeChunkRows:
    def _chunk(self, exp, publisher):
        version = publisher.latest_version
        ref = next(iter(version.locator[0].values()))
        return ref, exp.store.backend.read(ref.key)

    def test_round_trip_matches_replica(self, serving_exp):
        from repro.serving import decode_chunk_rows

        exp = serving_exp
        publisher = ServingPublisher(
            exp.store, exp.clock, DLRM(exp.config.model),
            exp.controller.job_id,
        )
        exp.controller.run_intervals(1)
        drain(exp)
        publisher.poll()
        ref, blob = self._chunk(exp, publisher)
        rows, weights = decode_chunk_rows(ref.key, blob, ref.digest)
        assert rows.dtype == np.int64
        assert weights.shape == (rows.shape[0], weights.shape[1])
        replica = publisher.replica.table_weight(0)
        for i, row in enumerate(rows.tolist()[:8]):
            np.testing.assert_array_equal(weights[i], replica[row])

    def test_digest_mismatch_raises(self, serving_exp):
        from repro.errors import CheckpointCorruptError
        from repro.serving import decode_chunk_rows

        exp = serving_exp
        publisher = ServingPublisher(
            exp.store, exp.clock, DLRM(exp.config.model),
            exp.controller.job_id,
        )
        exp.controller.run_intervals(1)
        drain(exp)
        publisher.poll()
        ref, blob = self._chunk(exp, publisher)
        with pytest.raises(CheckpointCorruptError):
            decode_chunk_rows(ref.key, blob, "00" * 32)
        # A tampered byte fails the recorded digest too.
        tampered = bytes([blob[0] ^ 0x01]) + blob[1:]
        with pytest.raises(CheckpointCorruptError):
            decode_chunk_rows(ref.key, tampered, ref.digest)

    def test_structural_garbage_raises(self):
        from repro.errors import CheckpointCorruptError
        from repro.serving import decode_chunk_rows

        with pytest.raises(CheckpointCorruptError):
            decode_chunk_rows("k", b"not a chunk at all", None)


class TestHotFirstRestore:
    def _run_and_manifests(self, exp, intervals=2):
        exp.controller.run_intervals(intervals)
        drain(exp)
        restorer = CheckpointRestorer(exp.store, exp.clock)
        manifests = restorer.list_manifests(exp.controller.job_id)
        target = max(manifests.values(), key=lambda m: m.interval_index)
        return restorer, manifests, target

    def _steps_and_report(self, restorer, model, target, manifests, **kw):
        steps: list[ReadStep] = []
        gen = restorer.restore_steps(model, target, manifests, **kw)
        try:
            while True:
                steps.append(next(gen))
        except StopIteration as stop:
            return steps, stop.value

    def test_hot_first_restores_identical_state(self, serving_exp):
        exp = serving_exp
        restorer, manifests, target = self._run_and_manifests(exp)
        hot = {
            t: np.arange(8, dtype=np.int64)
            for t in range(exp.model.num_tables)
        }
        plain = DLRM(exp.config.model)
        self._steps_and_report(
            restorer, plain, target, manifests, order=ORDER_MANIFEST
        )
        hot_first = DLRM(exp.config.model)
        self._steps_and_report(
            restorer,
            hot_first,
            target,
            manifests,
            order=ORDER_HOT_FIRST,
            hot_rows=hot,
        )
        for t in range(exp.model.num_tables):
            np.testing.assert_array_equal(
                plain.table_weight(t), hot_first.table_weight(t)
            )

    def test_hot_first_reads_dense_before_chunks(self, serving_exp):
        exp = serving_exp
        restorer, manifests, target = self._run_and_manifests(exp)
        steps, report = self._steps_and_report(
            restorer,
            DLRM(exp.config.model),
            target,
            manifests,
            order=ORDER_HOT_FIRST,
            hot_rows={0: np.arange(4, dtype=np.int64)},
        )
        assert "dense" in steps[0].key
        assert report.first_batch_ready_s <= report.finished_at_s
        assert report.time_to_first_batch_s >= 0.0

    def test_manifest_order_first_batch_equals_finish(self, serving_exp):
        exp = serving_exp
        restorer, manifests, target = self._run_and_manifests(exp)
        _, report = self._steps_and_report(
            restorer, DLRM(exp.config.model), target, manifests
        )
        assert report.first_batch_ready_s == report.finished_at_s

    def test_unknown_order_raises(self, serving_exp):
        exp = serving_exp
        restorer, manifests, target = self._run_and_manifests(exp)
        with pytest.raises(CheckpointError):
            next(
                restorer.restore_steps(
                    DLRM(exp.config.model),
                    target,
                    manifests,
                    order="sideways",
                )
            )
