"""Quantization grid invariants across all methods."""

from __future__ import annotations

import numpy as np
import pytest

from repro.quant import make_quantizer


@pytest.mark.parametrize("name", ["symmetric", "asymmetric", "adaptive"])
@pytest.mark.parametrize("bits", [2, 3, 4])
class TestUniformGridInvariants:
    def test_at_most_2_pow_bits_levels_per_row(
        self, name, bits, trained_tensor
    ):
        """Every reconstructed row uses at most 2^bits distinct values."""
        q = make_quantizer(name, bits=bits)
        recon = q.roundtrip(trained_tensor)
        for row in recon:
            assert np.unique(row).size <= (1 << bits)

    def test_codes_span_declared_range(self, name, bits, trained_tensor):
        q = make_quantizer(name, bits=bits)
        qt = q.quantize(trained_tensor)
        codes = qt.unpacked_codes()
        assert codes.min() >= 0
        assert codes.max() <= (1 << bits) - 1

    def test_reconstruction_within_stored_bounds(
        self, name, bits, trained_tensor
    ):
        """De-quantized values never escape the per-row stored range."""
        q = make_quantizer(name, bits=bits)
        qt = q.quantize(trained_tensor)
        recon = q.dequantize(qt)
        if name == "symmetric":
            xmax = qt.params["xmax"].astype(np.float64)
            xmin = -xmax
        else:
            xmin = qt.params["xmin"].astype(np.float64)
            xmax = qt.params["xmax"].astype(np.float64)
        eps = 1e-5
        assert np.all(recon >= xmin[:, None] - eps)
        assert np.all(recon <= xmax[:, None] + eps)


class TestKMeansGridInvariants:
    def test_reconstruction_values_come_from_codebook(
        self, trained_tensor
    ):
        q = make_quantizer("kmeans", bits=2)
        qt = q.quantize(trained_tensor)
        recon = q.dequantize(qt)
        codebook = qt.params["codebook"]
        for r in range(0, trained_tensor.shape[0], 37):
            row_values = set(np.round(recon[r], 6))
            book_values = set(np.round(codebook[r], 6))
            assert row_values <= book_values

    def test_at_most_k_levels(self, trained_tensor):
        q = make_quantizer("kmeans", bits=3)
        recon = q.roundtrip(trained_tensor)
        for row in recon[::17]:
            assert np.unique(row).size <= 8


class TestSizeMonotonicity:
    def test_packed_bytes_grow_with_bits(self, trained_tensor):
        sizes = []
        for bits in (2, 3, 4, 8):
            qt = make_quantizer("asymmetric", bits=bits).quantize(
                trained_tensor
            )
            sizes.append(qt.code_bytes)
        assert sizes == sorted(sizes)
        # 8-bit codes are exactly 4x the 2-bit codes.
        assert sizes[-1] == 4 * sizes[0]

    def test_total_bytes_beat_fp32_at_all_widths(self, trained_tensor):
        for bits in (2, 3, 4, 8):
            qt = make_quantizer("asymmetric", bits=bits).quantize(
                trained_tensor
            )
            assert qt.nbytes < trained_tensor.nbytes

    def test_quantized_then_compressed_barely_shrinks(
        self, trained_tensor
    ):
        """Quantized codes are near-incompressible: quantization has
        already removed the redundancy generic codecs exploit."""
        from repro.serialize.compress import DeflateCompressor

        qt = make_quantizer("asymmetric", bits=4).quantize(
            trained_tensor
        )
        report = DeflateCompressor().report(qt.codes.tobytes())
        assert report.savings < 0.25
