"""The request-oriented storage API: op classes, costs, receipts.

Covers the redesigned backend interface end to end: classed requests
and typed receipts, per-op-class cost models, the legacy-shim
compatibility surface, FileBackend atomic-rename crash semantics,
MirroredBackend replica loss through the request methods, and the
S3-style RemoteObjectBackend's multipart upload (including partial
aborts leaving no visible object) and ranged-GET fan-out.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.config import BackendConfig, StorageConfig
from repro.distributed.clock import SimClock
from repro.errors import (
    ConfigError,
    ObjectNotFoundError,
    StorageError,
)
from repro.storage import (
    OP_DELETE,
    OP_GET,
    OP_HEAD,
    OP_LIST,
    OP_PUT,
    BandwidthArbiter,
    CrashingBackend,
    FileBackend,
    InMemoryBackend,
    MirroredBackend,
    ObjectStore,
    OpCostModel,
    OpCostSuite,
    RemoteObjectBackend,
    StorageRequest,
    clip_range,
    make_backend,
    s3like_costs,
)


@pytest.fixture(params=["memory", "file", "mirrored", "crashing", "remote"])
def backend(request, tmp_path):
    if request.param == "memory":
        return InMemoryBackend()
    if request.param == "file":
        return FileBackend(tmp_path / "store")
    if request.param == "mirrored":
        return MirroredBackend([InMemoryBackend() for _ in range(3)])
    if request.param == "crashing":
        return CrashingBackend(InMemoryBackend())
    return RemoteObjectBackend(
        s3like_costs(1000.0, 2000.0), part_size_bytes=None
    )


class TestRequestInterface:
    """Every backend speaks classed requests with identical semantics."""

    def test_put_get_head_roundtrip(self, backend):
        backend.put_object(StorageRequest(OP_PUT, "a/b", 4), b"data")
        assert backend.get_object(StorageRequest(OP_GET, "a/b")) == b"data"
        assert backend.head_object(StorageRequest(OP_HEAD, "a/b"))
        assert not backend.head_object(StorageRequest(OP_HEAD, "nope"))

    def test_ranged_get(self, backend):
        backend.put_object(StorageRequest(OP_PUT, "k", 10), b"0123456789")
        assert (
            backend.get_object(
                StorageRequest(OP_GET, "k", byte_range=(2, 5))
            )
            == b"234"
        )
        # Overhanging ranges truncate at the last byte (S3 semantics).
        assert (
            backend.get_object(
                StorageRequest(OP_GET, "k", byte_range=(8, 99))
            )
            == b"89"
        )

    def test_delete_and_missing(self, backend):
        backend.put_object(StorageRequest(OP_PUT, "k", 1), b"v")
        backend.delete_object(StorageRequest(OP_DELETE, "k"))
        assert not backend.head_object(StorageRequest(OP_HEAD, "k"))
        with pytest.raises(ObjectNotFoundError):
            backend.get_object(StorageRequest(OP_GET, "k"))
        with pytest.raises(ObjectNotFoundError):
            backend.delete_object(StorageRequest(OP_DELETE, "k"))

    def test_list_and_delete_prefix(self, backend):
        for key in ("j/c0/a", "j/c0/b", "j/c1/a", "other/x"):
            backend.put_object(StorageRequest(OP_PUT, key, 1), b"1")
        assert backend.list_objects(StorageRequest(OP_LIST, "j/c0/")) == [
            "j/c0/a",
            "j/c0/b",
        ]
        deleted = backend.delete_prefix(StorageRequest(OP_DELETE, "j/"))
        assert deleted == ["j/c0/a", "j/c0/b", "j/c1/a"]
        assert backend.list_objects(StorageRequest(OP_LIST, "")) == [
            "other/x"
        ]

    def test_legacy_shim_matches_request_api(self, backend):
        """The flat write/read/delete/exists/list_keys surface still
        works — the compatibility path legacy call sites rely on."""
        backend.write("k", b"v1")
        assert backend.read("k") == b"v1"
        assert backend.exists("k")
        assert backend.list_keys() == ["k"]
        backend.delete("k")
        assert not backend.exists("k")


class TestRequestValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(StorageError, match="op class"):
            StorageRequest("POKE", "k")

    def test_byte_range_only_on_get(self):
        with pytest.raises(StorageError, match="byte_range"):
            StorageRequest(OP_PUT, "k", byte_range=(0, 1))
        with pytest.raises(StorageError, match="range"):
            StorageRequest(OP_GET, "k", byte_range=(5, 5))

    def test_clip_range_start_beyond_object(self):
        with pytest.raises(StorageError, match="beyond"):
            clip_range(b"abc", (3, 9))


class TestOpCostModel:
    def test_duration_math(self):
        cost = OpCostModel(base_latency_s=0.5, seconds_per_byte=0.01)
        assert cost.duration_s(100) == pytest.approx(0.5 + 1.0)
        assert cost.latency_s() == 0.5
        assert cost.transfer_s(100) == pytest.approx(1.0)

    def test_jitter_and_tail_need_rng(self):
        cost = OpCostModel(
            base_latency_s=0.1, jitter_s=0.05, tail_prob=1.0, tail_factor=3.0
        )
        # No rng: deterministic base only.
        assert cost.latency_s() == pytest.approx(0.1)
        rng = np.random.default_rng(7)
        latency = cost.latency_s(rng)
        # Tail always fires (prob 1): 3x base, plus jitter in [0, 0.05).
        assert 0.3 <= latency < 0.35
        # Same seed, same draw: deterministic under the generator.
        assert cost.latency_s(np.random.default_rng(7)) == pytest.approx(
            latency
        )

    def test_validation(self):
        with pytest.raises(StorageError):
            OpCostModel(base_latency_s=-1.0)
        with pytest.raises(StorageError):
            OpCostModel(tail_prob=1.5)
        with pytest.raises(StorageError):
            OpCostModel(tail_factor=0.5)

    def test_suite_from_storage_config_matches_legacy_timing(self):
        config = StorageConfig(
            write_bandwidth=1000.0, read_bandwidth=2000.0, latency_s=0.25
        )
        suite = OpCostSuite.from_storage_config(config)
        # PUT/GET reproduce latency + bytes/bandwidth exactly.
        assert suite.for_op(OP_PUT).duration_s(500) == pytest.approx(0.75)
        assert suite.for_op(OP_GET).duration_s(500) == pytest.approx(0.5)
        # Metadata classes are free, as the flat store modelled them.
        for op in (OP_LIST, OP_DELETE, OP_HEAD):
            assert suite.for_op(op).duration_s(10) == 0.0

    def test_unknown_op_class(self):
        with pytest.raises(StorageError):
            OpCostSuite().for_op("POKE")


class TestFileBackendAtomicity:
    """Atomic-rename crash semantics: a dying writer never leaves a
    half-written object visible through the request API."""

    def test_crash_before_rename_preserves_old_value(
        self, tmp_path, monkeypatch
    ):
        backend = FileBackend(tmp_path / "s")
        backend.put_object(StorageRequest(OP_PUT, "k", 3), b"old")

        real_replace = os.replace

        def dying_replace(src, dst):  # crash after temp write, pre-rename
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os, "replace", dying_replace)
        with pytest.raises(OSError):
            backend.put_object(StorageRequest(OP_PUT, "k", 3), b"new")
        monkeypatch.setattr(os, "replace", real_replace)

        # The old object is intact; no partial state is observable.
        assert backend.get_object(StorageRequest(OP_GET, "k")) == b"old"
        assert backend.list_objects(StorageRequest(OP_LIST, "")) == ["k"]

    def test_leftover_tmp_files_are_invisible(self, tmp_path):
        backend = FileBackend(tmp_path / "s")
        backend.put_object(StorageRequest(OP_PUT, "a", 1), b"x")
        # A crashed writer's temp file, as the rename-based protocol
        # would leave it.
        (tmp_path / "s" / "b.tmp").write_bytes(b"torn")
        assert backend.list_objects(StorageRequest(OP_LIST, "")) == ["a"]
        assert not backend.head_object(StorageRequest(OP_HEAD, "b"))

    def test_reopen_sees_only_complete_objects(self, tmp_path):
        FileBackend(tmp_path / "s").put_object(
            StorageRequest(OP_PUT, "k", 9), b"persisted"
        )
        (tmp_path / "s" / "half.tmp").write_bytes(b"...")
        reopened = FileBackend(tmp_path / "s")
        assert reopened.list_objects(StorageRequest(OP_LIST, "")) == ["k"]
        assert (
            reopened.get_object(StorageRequest(OP_GET, "k")) == b"persisted"
        )


class TestMirroredReplicaLoss:
    def test_single_replica_loss_through_request_api(self):
        mirror = MirroredBackend([InMemoryBackend() for _ in range(3)])
        mirror.put_object(StorageRequest(OP_PUT, "k", 1), b"v")
        mirror.fail_replica(1)
        assert mirror.get_object(StorageRequest(OP_GET, "k")) == b"v"
        assert mirror.head_object(StorageRequest(OP_HEAD, "k"))
        assert mirror.list_objects(StorageRequest(OP_LIST, "")) == ["k"]
        # Deletes still reach every survivor.
        mirror.delete_object(StorageRequest(OP_DELETE, "k"))
        assert not mirror.head_object(StorageRequest(OP_HEAD, "k"))

    def test_ranged_get_from_survivor(self):
        mirror = MirroredBackend([InMemoryBackend(), InMemoryBackend()])
        mirror.put_object(StorageRequest(OP_PUT, "k", 6), b"abcdef")
        mirror.fail_replica(0)
        assert (
            mirror.get_object(
                StorageRequest(OP_GET, "k", byte_range=(1, 4))
            )
            == b"bcd"
        )


def remote_store(
    part_size=None,
    fanout=4,
    range_get=None,
    put_latency=0.1,
    replication=1,
    arbiter=None,
):
    """An ObjectStore over a RemoteObjectBackend with simple numbers:
    1000 B/s writes, 2000 B/s reads, 0.1 s PUT / 0.05 s GET latency."""
    config = StorageConfig(
        write_bandwidth=1000.0,
        read_bandwidth=2000.0,
        replication_factor=replication,
        latency_s=0.0,
    )
    backend = RemoteObjectBackend(
        s3like_costs(
            1000.0,
            2000.0,
            put_latency_s=put_latency,
            get_latency_s=0.05,
            list_latency_s=0.02,
            delete_latency_s=0.01,
            head_latency_s=0.005,
        ),
        part_size_bytes=part_size,
        fanout=fanout,
        range_get_bytes=range_get,
    )
    return ObjectStore(config, SimClock(), backend=backend, arbiter=arbiter)


class TestMultipartUpload:
    def test_small_objects_stay_single_shot(self):
        store = remote_store(part_size=1000)
        receipt = store.put("k", bytes(1000))
        assert receipt.parts == 1
        assert store.backend.multipart_completed == 0

    def test_multipart_splits_and_reassembles(self):
        store = remote_store(part_size=1000)
        payload = bytes(range(256)) * 16  # 4096 B -> 5 parts of <=1000
        receipt = store.put("k", payload)
        assert receipt.parts == 5
        assert receipt.logical_bytes == 4096
        assert store.backend.multipart_completed == 1
        assert store.get("k") == payload

    def test_fanout_amortises_part_latency(self):
        """Parallel lanes hide per-part request latency; a single lane
        pays it serially — the amortisation multipart exists for."""
        single = remote_store(part_size=None).put("k", bytes(4000))
        serial = remote_store(part_size=1000, fanout=1).put(
            "k", bytes(4000)
        )
        fanned = remote_store(part_size=1000, fanout=4).put(
            "k", bytes(4000)
        )
        # Byte time 4.0 s at 1000 B/s; latency 0.1 s per request.
        assert single.duration_s == pytest.approx(4.1)
        # Fan-out: one exposed part latency + bytes + completion.
        assert fanned.duration_s == pytest.approx(4.2)
        # Serial lane: every part's latency is exposed.
        assert serial.duration_s == pytest.approx(4.0 + 4 * 0.1 + 0.1)
        assert fanned.completed_s < serial.completed_s

    def test_multipart_parts_hit_the_transfer_log(self):
        store = remote_store(part_size=1000)
        store.put("k", bytes(2500), stream="jobX")
        puts = store.log.transfers("put", stream="jobX")
        assert len(puts) == 3  # three parts, op-tagged
        assert all(t.op == OP_PUT for t in puts)
        assert sum(t.nbytes for t in puts) == 2500

    def test_crashing_backend_kills_a_part_upload(self):
        """CrashingBackend is transparent to multipart: it delegates
        the capability knobs, counts each part as a PUT-class write,
        and an armed crash mid-upload drives the store's abort path."""
        remote = RemoteObjectBackend(
            s3like_costs(1000.0, 2000.0), part_size_bytes=1000
        )
        crashing = CrashingBackend(remote)
        config = StorageConfig(
            write_bandwidth=1000.0,
            read_bandwidth=2000.0,
            replication_factor=1,
            latency_s=0.0,
        )
        store = ObjectStore(config, SimClock(), backend=crashing)
        assert crashing.part_size_bytes == 1000  # capability delegated
        crashing.arm(2)  # die on the second part PUT
        with pytest.raises(StorageError, match="simulated crash"):
            store.put("k", bytes(4000))
        assert remote.multipart_aborted == 1
        assert remote.pending_uploads() == []
        assert not crashing.exists("k")
        # Disarmed after the crash: the retried write goes through.
        receipt = store.put("k", bytes(4000))
        assert receipt.parts == 4

    def test_aborted_multipart_leaves_no_visible_object(self):
        class FlakyRemote(RemoteObjectBackend):
            def upload_part(self, upload_id, part_number, data):
                if part_number == 3:
                    raise StorageError("node died mid-upload")
                super().upload_part(upload_id, part_number, data)

        config = StorageConfig(
            write_bandwidth=1000.0,
            read_bandwidth=2000.0,
            replication_factor=1,
            latency_s=0.0,
        )
        backend = FlakyRemote(
            s3like_costs(1000.0, 2000.0), part_size_bytes=1000
        )
        arbiter = BandwidthArbiter()
        arbiter.register("job", quota_bytes=100_000)
        store = ObjectStore(
            config, SimClock(), backend=backend, arbiter=arbiter
        )
        with pytest.raises(StorageError, match="mid-upload"):
            store.put("job/k", bytes(4000), stream="job")
        # The partial upload was aborted: no visible object, no staged
        # parts, and the stream's quota charge was refunded.
        assert not backend.head_object(StorageRequest(OP_HEAD, "job/k"))
        assert backend.pending_uploads() == []
        assert backend.multipart_aborted == 1
        assert arbiter.stream("job").charged_bytes == 0
        with pytest.raises(StorageError):
            store.object_size("job/k")


class TestRangedGetFanout:
    def test_explicit_byte_range(self):
        store = remote_store()
        store.put("k", b"0123456789" * 10)
        assert store.get("k", byte_range=(10, 20)) == b"0123456789"

    def test_large_gets_split_into_ranges(self):
        store = remote_store(range_get=1000)
        payload = bytes(range(256)) * 16  # 4096 B
        store.put("k", payload)
        assert store.get("k", stream="jobY") == payload
        gets = store.log.transfers("get", stream="jobY")
        assert len(gets) == 5
        assert all(t.op == OP_GET for t in gets)
        receipt = store.ops.receipts(OP_GET, stream="jobY")[-1]
        assert receipt.parts == 5
        assert receipt.logical_bytes == 4096

    def test_small_gets_stay_whole(self):
        store = remote_store(range_get=10_000)
        store.put("k", bytes(500))
        store.get("k")
        assert store.ops.receipts(OP_GET)[-1].parts == 1


class TestStoreReceiptsAndOpLog:
    def test_put_receipt_fields(self):
        store = remote_store()
        receipt = store.put("k", bytes(1000), earliest=5.0)
        assert receipt.op == OP_PUT
        assert receipt.issued_s == pytest.approx(5.0)
        assert receipt.start_s == pytest.approx(5.0)
        # First byte lands after the PUT request latency.
        assert receipt.first_byte_s == pytest.approx(5.1)
        assert receipt.completed_s == pytest.approx(6.1)
        assert receipt.throughput == pytest.approx(1000 / 1.1)

    def test_metadata_ops_are_classed_and_costed(self):
        store = remote_store()
        store.put("a/x", bytes(10))
        store.exists("a/x")
        store.list_keys("a/")
        store.delete("a/x")
        assert store.ops.count(OP_HEAD) == 1
        assert store.ops.count(OP_LIST) == 1
        assert store.ops.count(OP_DELETE) == 1
        assert store.ops.mean_duration_s(OP_HEAD) == pytest.approx(0.005)
        # LIST pays base latency + per-key time for one key.
        assert store.ops.mean_duration_s(OP_LIST) == pytest.approx(
            0.02 + 0.0002
        )

    def test_delete_prefix_counts_one_list_plus_n_deletes(self):
        store = remote_store()
        for i in range(4):
            store.put(f"j/c0/{i}", bytes(100))
        before = store.ops.op_counts()
        receipt = store.delete_prefix("j/c0/", stream="j")
        after = store.ops.op_counts()
        assert after[OP_LIST] - before.get(OP_LIST, 0) == 1
        assert after[OP_DELETE] - before.get(OP_DELETE, 0) == 4
        assert receipt.num_objects == 4
        assert receipt.freed_logical_bytes == 400
        # Batch duration: one LIST (+ per-key time) + four DELETEs.
        assert receipt.completed_s - receipt.issued_s == pytest.approx(
            (0.02 + 4 * 0.0002) + 4 * 0.01
        )
        assert store.list_keys("j/") == []

    def test_legacy_backends_keep_config_derived_timing(self):
        """In-process backends defer to the store's config-derived cost
        suite — single-shot PUT timing is the legacy latency+bandwidth
        maths, bit for bit."""
        config = StorageConfig(
            write_bandwidth=1000.0,
            read_bandwidth=2000.0,
            replication_factor=3,
            latency_s=0.25,
        )
        store = ObjectStore(config, SimClock(), backend=InMemoryBackend())
        receipt = store.put("k", bytes(1000))
        assert receipt.duration_s == pytest.approx(0.25 + 3.0)
        assert receipt.parts == 1


class TestBackendFactory:
    def test_kinds(self, tmp_path):
        storage = StorageConfig()
        assert isinstance(
            make_backend(BackendConfig(kind="memory"), storage),
            InMemoryBackend,
        )
        file_backend = make_backend(
            BackendConfig(kind="file", root=str(tmp_path / "s")), storage
        )
        assert isinstance(file_backend, FileBackend)
        mirrored = make_backend(
            BackendConfig(kind="mirrored", replicas=3), storage
        )
        assert isinstance(mirrored, MirroredBackend)
        assert mirrored.replication_factor == 3
        remote = make_backend(
            BackendConfig(
                kind="s3like", part_size_bytes=4096, multipart_fanout=2
            ),
            storage,
        )
        assert isinstance(remote, RemoteObjectBackend)
        assert remote.part_size_bytes == 4096
        assert remote.fanout == 2
        # s3like owns its costs; bytes stream at the link bandwidths.
        assert remote.costs.for_op(OP_PUT).seconds_per_byte == (
            pytest.approx(1.0 / storage.write_bandwidth)
        )

    def test_file_kind_requires_root(self):
        with pytest.raises(ConfigError, match="root"):
            make_backend(BackendConfig(kind="file"), StorageConfig())

    def test_invalid_kind_rejected(self):
        with pytest.raises(ConfigError):
            BackendConfig(kind="carrier-pigeon")

    def test_backend_config_roundtrips_through_serialisation(self):
        from repro.config import (
            ExperimentConfig,
            experiment_config_from_dict,
            experiment_config_to_dict,
        )

        config = ExperimentConfig(
            storage=StorageConfig(
                backend=BackendConfig(
                    kind="s3like",
                    part_size_bytes=8192,
                    put_latency_s=0.05,
                )
            )
        )
        restored = experiment_config_from_dict(
            experiment_config_to_dict(config)
        )
        assert restored.storage.backend == config.storage.backend

    def test_store_builds_backend_from_config(self):
        config = StorageConfig(
            backend=BackendConfig(kind="s3like", part_size_bytes=2048)
        )
        store = ObjectStore(config, SimClock())
        assert isinstance(store.backend, RemoteObjectBackend)
        receipt = store.put("k", bytes(5000))
        assert receipt.parts == 3


class TestCheckpointStackOnRemoteBackend:
    """The full write/restore path runs unchanged over the S3-style
    backend — chunk PUTs become costed (possibly multipart) requests,
    restores issue ranged GETs, retention batches deletes."""

    def test_write_restore_roundtrip_on_s3like(self):
        from repro.experiments import build_experiment, small_config
        from repro.model.dlrm import DLRM

        config = small_config(
            policy="one_shot",
            quantizer="none",
            bit_width=None,
            interval_batches=5,
            num_tables=2,
            rows_per_table=256,
            embedding_dim=8,
            batch_size=32,
            num_nodes=1,
            devices_per_node=2,
        )
        backend = make_backend(
            BackendConfig(
                kind="s3like",
                part_size_bytes=4096,
                range_get_bytes=4096,
                put_latency_s=0.01,
                get_latency_s=0.01,
            ),
            config.storage,
        )
        exp = build_experiment(config, backend=backend)
        exp.controller.run_intervals(3)
        live = {
            t: exp.model.table_weight(t).copy()
            for t in range(exp.model.num_tables)
        }
        horizon = (
            max(
                m.valid_at_s
                for m in exp.controller.manifests.values()
            )
            + 1.0
        )
        target = exp.controller.restorer.latest_valid(
            "job0", at_time_s=horizon
        )
        assert target is not None
        fresh = DLRM(exp.config.model)
        exp.controller.restorer.restore(
            fresh,
            target,
            exp.controller.manifests,
            policy=exp.controller.policy,
        )
        for t in range(exp.model.num_tables):
            np.testing.assert_array_equal(
                fresh.table_weight(t), live[t]
            )
        # The run exercised the remote request surface: costed GETs
        # appear op-tagged, and at least one op class beyond PUT/GET
        # was issued (manifest HEADs / retention LISTs).
        assert store_ops_nonempty(exp.store)

    def test_torn_write_on_s3like_backend_skipped(self):
        """CrashingBackend over the remote backend: a crash between
        chunk and manifest PUT leaves a torn checkpoint the restore
        path never considers (manifest-last invariant)."""
        from repro.core.manifest import checkpoint_prefix
        from repro.core.restore import CheckpointRestorer
        from repro.experiments import build_experiment, small_config

        config = small_config(
            policy="full",
            quantizer="none",
            bit_width=None,
            interval_batches=4,
            num_tables=2,
            rows_per_table=128,
            embedding_dim=8,
            batch_size=16,
            num_nodes=1,
            devices_per_node=1,
        )
        remote = make_backend(
            BackendConfig(kind="s3like"), config.storage
        )
        crashing = CrashingBackend(remote)
        exp = build_experiment(config, backend=crashing)
        exp.controller.run_intervals(1)
        per_checkpoint = len(
            exp.store.list_keys(checkpoint_prefix("job0", "ckpt-000000"))
        )
        crashing.arm(per_checkpoint)  # dies at the next manifest PUT
        with pytest.raises(StorageError):
            exp.controller.run_intervals(1)
        torn = exp.store.list_keys(
            checkpoint_prefix("job0", "ckpt-000001")
        )
        assert torn and not any(
            k.endswith("manifest.json") for k in torn
        )
        restorer = CheckpointRestorer(exp.store, exp.clock)
        target = restorer.latest_valid(
            "job0", at_time_s=exp.clock.now + 1e9
        )
        assert target is not None
        assert target.checkpoint_id == "ckpt-000000"


def store_ops_nonempty(store) -> bool:
    counts = store.ops.op_counts()
    return (
        counts.get(OP_GET, 0) > 0
        and counts.get(OP_PUT, 0) > 0
        and (counts.get(OP_LIST, 0) + counts.get(OP_HEAD, 0)) > 0
    )
