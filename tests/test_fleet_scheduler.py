"""Multi-job fleet end-to-end: shared store, contention, failures.

Eight heterogeneous jobs share one object store through the fleet
scheduler. The paper's per-job invariants must survive fleet scale:

* a job's own checkpoint writes never overlap (section 4.3), even
  while other jobs' transfers interleave with its chunks on the link;
* after an injected failure a job restores its *own newest valid*
  checkpoint — never a torn one, never another job's;
* the per-job namespace is airtight: no job can read, list or delete
  outside its prefix.
"""

from __future__ import annotations

import pytest

from repro.config import FailureConfig, FleetConfig, MiB, StorageConfig
from repro.distributed.clock import SimClock
from repro.errors import NamespaceViolationError
from repro.fleet import (
    ScopedStore,
    build_fleet,
    interleave_score,
    run_fleet,
    summarize_fleet,
)
from repro.storage.bandwidth import BandwidthArbiter
from repro.storage.object_store import ObjectStore


def contended_fleet_config(**overrides) -> FleetConfig:
    """8 heterogeneous jobs on a deliberately slow shared link."""
    defaults = dict(
        num_jobs=8,
        intervals_per_job=3,
        seed=1234,
        rows_per_table_choices=(1024, 2048, 4096),
        storage=StorageConfig(
            write_bandwidth=1.5 * MiB,
            read_bandwidth=3.0 * MiB,
            replication_factor=2,
            latency_s=0.002,
        ),
        failures=FailureConfig(
            mean_time_to_failure_s=12.0,
            weibull_shape=0.9,
            min_failure_s=0.0,
        ),
        inject_failures=True,
        max_failures_per_job=1,
        stagger_s=5.0,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


@pytest.fixture(scope="module")
def fleet_run():
    scheduler, report = run_fleet(contended_fleet_config())
    return scheduler, report


class TestFleetCompletion:
    def test_every_job_trains_its_target_intervals(self, fleet_run):
        scheduler, report = fleet_run
        for job in scheduler.jobs:
            assert job.controller.interval_index >= job.target_intervals
            assert job.pending is None
        assert report.num_jobs == 8

    def test_fleet_is_heterogeneous(self, fleet_run):
        _, report = fleet_run
        assert len({j.policy for j in report.jobs}) >= 2
        assert len({j.quantizer for j in report.jobs}) >= 2
        assert len({j.rows_per_table for j in report.jobs}) >= 2

    def test_every_job_wrote_checkpoints(self, fleet_run):
        _, report = fleet_run
        for j in report.jobs:
            assert j.checkpoints_written >= 1
            assert j.bytes_logical > 0


class TestNoSameJobOverlap:
    def test_write_windows_of_one_job_never_overlap(self, fleet_run):
        scheduler, _ = fleet_run
        for job in scheduler.jobs:
            windows = sorted(
                (e.report.started_at_s, e.report.valid_at_s)
                for e in job.controller.stats.events
                if e.report is not None
            )
            for (s1, v1), (s2, _v2) in zip(windows, windows[1:]):
                assert s2 >= v1 - 1e-9, (
                    f"{job.job_id} started a write at {s2} while the "
                    f"previous one was valid only at {v1}"
                )


class TestCrossJobInterleaving:
    def test_link_switches_between_jobs(self, fleet_run):
        scheduler, report = fleet_run
        puts = scheduler.store.log.transfers("put")
        written = sum(j.checkpoints_written for j in report.jobs)
        # Checkpoint-level serialisation would give about one switch
        # per checkpoint; chunk-level sharing gives strictly more.
        assert interleave_score(puts) > written

    def test_some_checkpoint_has_foreign_chunks_inside_it(self, fleet_run):
        """At least one checkpoint's chunk sequence is interrupted by
        another job's transfer — the literal meaning of interleaving."""
        scheduler, _ = fleet_run
        puts = scheduler.store.log.transfers("put")
        by_prefix: dict[str, list[int]] = {}
        for i, t in enumerate(puts):
            prefix = "/".join(t.key.split("/")[:2])
            by_prefix.setdefault(prefix, []).append(i)
        interrupted = 0
        for prefix, indices in by_prefix.items():
            lo, hi = min(indices), max(indices)
            foreign = [
                i
                for i in range(lo, hi + 1)
                if i not in set(indices)
                and not puts[i].key.startswith(prefix)
            ]
            if foreign:
                interrupted += 1
        assert interrupted >= 1


class TestFailureRecovery:
    def test_failures_were_injected(self, fleet_run):
        _, report = fleet_run
        assert report.failures >= 1
        assert report.restores + sum(
            j.scratch_restarts for j in report.jobs
        ) >= report.failures

    def test_restores_pick_the_jobs_newest_valid_checkpoint(
        self, fleet_run
    ):
        scheduler, _ = fleet_run
        crashes = [e for e in scheduler.events if e.kind == "crash"]
        assert crashes, "the failure model injected no crashes"
        for crash in crashes:
            valid_before = crash.payload["valid_before"]
            restored = crash.payload["restored_from"]
            if valid_before:
                newest_id = valid_before[-1][0]
                assert restored == newest_id
                assert restored is not None
                # The restored checkpoint belongs to the crashed job's
                # namespace by construction of the manifest map.
            else:
                assert restored is None  # scratch restart

    def test_restored_jobs_kept_training_to_completion(self, fleet_run):
        scheduler, _ = fleet_run
        crashed = {
            e.job_id for e in scheduler.events if e.kind == "crash"
        }
        for job in scheduler.jobs:
            if job.job_id in crashed:
                assert job.controller.interval_index >= job.target_intervals


class TestNamespaceIsolation:
    def test_all_keys_partition_by_job_namespace(self, fleet_run):
        scheduler, _ = fleet_run
        job_ids = {job.job_id for job in scheduler.jobs}
        for key in scheduler.store.list_keys():
            owner = key.split("/", 1)[0]
            assert owner in job_ids

    def test_manifests_on_store_carry_their_namespace_job_id(
        self, fleet_run
    ):
        scheduler, _ = fleet_run
        from repro.core.manifest import CheckpointManifest

        for key in scheduler.store.list_keys():
            if key.endswith("/manifest.json"):
                manifest = CheckpointManifest.from_json(
                    scheduler.store.backend.read(key)
                )
                assert key.startswith(f"{manifest.job_id}/")

    def test_scoped_store_rejects_foreign_keys(self):
        store = ObjectStore(
            StorageConfig(), SimClock(), arbiter=BandwidthArbiter()
        )
        store.arbiter.register("jobA")
        store.arbiter.register("jobB")
        clock_a, clock_b = SimClock(), SimClock()
        view_a = ScopedStore(store, "jobA", clock_a)
        view_b = ScopedStore(store, "jobB", clock_b)
        view_a.put("jobA/secret", b"mine")
        with pytest.raises(NamespaceViolationError):
            view_b.get("jobA/secret")
        with pytest.raises(NamespaceViolationError):
            view_b.delete("jobA/secret")
        with pytest.raises(NamespaceViolationError):
            view_b.exists("jobA/secret")
        with pytest.raises(NamespaceViolationError):
            view_b.list_keys("jobA/")
        with pytest.raises(NamespaceViolationError):
            view_b.put("jobA/secret", b"overwrite", overwrite=True)
        # And its own namespace still works.
        view_b.put("jobB/ok", b"fine")
        assert view_b.list_keys() == ["jobB/ok"]
        assert store.exists("jobA/secret")


class TestAdmissionControl:
    def test_concurrent_write_cap_defers_triggers(self):
        config = contended_fleet_config(
            inject_failures=False,
            max_concurrent_writes=1,
            stagger_s=0.0,
        )
        scheduler, report = run_fleet(config)
        deferred = sum(j.admission_deferred for j in report.jobs)
        assert deferred >= 1
        assert any(
            e.kind == "deferred" for e in scheduler.events
        )
        # Jobs still finish their intervals despite deferrals.
        for job in scheduler.jobs:
            assert job.controller.interval_index >= job.target_intervals


class TestPerJobQuota:
    def test_quota_blows_up_offender_and_spares_the_rest(self):
        config = contended_fleet_config(
            inject_failures=False,
            per_job_quota_bytes=600_000,  # physical; large jobs exceed
        )
        scheduler, report = run_fleet(config)
        rejected = [j for j in report.jobs if j.quota_rejections > 0]
        completed = [j for j in report.jobs if j.checkpoints_written > 0]
        assert rejected, "no job hit the quota — tighten the limit"
        assert completed, "quota must not take down the whole fleet"
        # Rejected writes were scrubbed: the store holds no chunks of
        # checkpoints that never produced a manifest.
        manifest_prefixes = {
            "/".join(key.split("/")[:2])
            for key in scheduler.store.list_keys()
            if key.endswith("/manifest.json")
        }
        for key in scheduler.store.list_keys():
            prefix = "/".join(key.split("/")[:2])
            assert prefix in manifest_prefixes, (
                f"orphaned object {key} from a torn/rejected write"
            )


class TestDeterminism:
    def test_same_seed_same_fleet_outcome(self):
        config = contended_fleet_config()
        _, first = run_fleet(config)
        _, second = run_fleet(config)
        assert first.total_put_bytes_logical == second.total_put_bytes_logical
        assert first.duration_s == second.duration_s
        assert first.failures == second.failures
        assert [
            (j.job_id, j.checkpoints_written, j.restores)
            for j in first.jobs
        ] == [
            (j.job_id, j.checkpoints_written, j.restores)
            for j in second.jobs
        ]

    def test_build_fleet_exposes_store_and_jobs(self):
        scheduler, store = build_fleet(
            contended_fleet_config(num_jobs=2, inject_failures=False)
        )
        assert len(scheduler.jobs) == 2
        scheduler.run()
        report = summarize_fleet(scheduler, store)
        assert report.num_jobs == 2
