"""Cross-cluster resume: restore under a different sharding plan.

Paper section 1: "checkpoints are needed for moving training processes
across different nodes or clusters ... server maintenance, hardware
failures, network issues, and resource optimization/re-allocation."

Chunks store table-global row ids, so a checkpoint written on one
cluster topology must restore onto any other. These tests write under
one plan and restore under another (different node/device counts, and
table-wise vs row-wise placement).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.core.controller import CheckNRun
from repro.data.reader import ReaderMaster
from repro.data.synthetic import SyntheticClickDataset
from repro.distributed.clock import SimClock
from repro.distributed.sharding import plan_row_wise, plan_table_wise
from repro.distributed.topology import SimCluster
from repro.distributed.trainer import SimTrainer
from repro.experiments import build_experiment, small_config
from repro.model.dlrm import DLRM


def build_on_cluster(config, store, num_nodes, devices, planner):
    """Wire a job onto a specific cluster topology, sharing a store."""
    clock = store.clock
    dataset = SyntheticClickDataset(config.model, config.data)
    model = DLRM(config.model)
    reader = ReaderMaster(dataset, config.reader)
    cluster = SimCluster(
        ClusterConfig(num_nodes=num_nodes, devices_per_node=devices)
    )
    plan = planner(config.model, cluster)
    trainer = SimTrainer(model, reader, cluster, plan, clock)
    controller = CheckNRun(
        trainer, reader, store, config.checkpoint, clock, job_id="job0"
    )
    return controller


@pytest.mark.parametrize(
    "src_topology,dst_topology",
    [
        ((2, 2, plan_table_wise), (1, 2, plan_row_wise)),
        ((1, 4, plan_row_wise), (4, 2, plan_table_wise)),
        ((2, 4, plan_row_wise), (1, 1, plan_table_wise)),
    ],
)
def test_restore_across_topologies(src_topology, dst_topology):
    config = small_config(
        quantizer="none",
        interval_batches=5,
        num_tables=3,
        rows_per_table=512,
        batch_size=32,
    )
    source = build_experiment(config)  # provides a wired store/clock
    store = source.store

    src = build_on_cluster(config, store, *src_topology)
    src.run_intervals(2)
    store.clock.advance_to(store.timeline.free_at + 1.0, "drain")
    expected = {
        t: src.trainer.model.table_weight(t).copy()
        for t in range(config.model.num_tables)
    }
    expected_accum = {
        t: src.trainer.model.table_accumulator(t).copy()
        for t in range(config.model.num_tables)
    }

    dst = build_on_cluster(config, store, *dst_topology)
    dst.adopt_manifests(src.manifests)
    report = dst.restore_latest()

    for t in range(config.model.num_tables):
        np.testing.assert_array_equal(
            dst.trainer.model.table_weight(t), expected[t]
        )
        np.testing.assert_array_equal(
            dst.trainer.model.table_accumulator(t), expected_accum[t]
        )
    assert dst.trainer.model.batches_trained == 10
    assert report.rows_restored > 0


def test_resumed_training_identical_after_recluster():
    """Training after a cross-cluster restore follows the exact same
    trajectory as never having moved (fp32 end to end)."""
    config = small_config(
        quantizer="none",
        interval_batches=5,
        num_tables=2,
        rows_per_table=256,
        batch_size=32,
    )
    stay = build_experiment(config)
    stay_ctrl = build_on_cluster(
        config, stay.store, 2, 2, plan_table_wise
    )
    stay_ctrl.run_intervals(3)

    move = build_experiment(config)
    src = build_on_cluster(config, move.store, 2, 2, plan_table_wise)
    src.run_intervals(2)
    move.store.clock.advance_to(
        move.store.timeline.free_at + 1.0, "drain"
    )
    dst = build_on_cluster(config, move.store, 1, 3, plan_row_wise)
    dst.adopt_manifests(src.manifests)
    dst.restore_latest()
    dst.run_intervals(1)

    for t in range(config.model.num_tables):
        np.testing.assert_allclose(
            dst.trainer.model.table_weight(t),
            stay_ctrl.trainer.model.table_weight(t),
            atol=1e-6,
        )
