"""Unit tests: online publisher, transfer restore, manifest adoption."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.publisher import OnlinePublisher
from repro.core.restore import CheckpointRestorer
from repro.errors import CheckpointError
from repro.experiments import build_experiment, small_config
from repro.model.dlrm import DLRM


def drain(exp) -> None:
    exp.clock.advance_to(exp.store.timeline.free_at + 1.0, "drain")


@pytest.fixture
def consecutive_exp():
    exp = build_experiment(
        small_config(
            policy="consecutive",
            quantizer="none",
            interval_batches=5,
            num_tables=3,
            rows_per_table=512,
            batch_size=32,
            keep_last=1_000_000,
        )
    )
    return exp


class TestOnlinePublisher:
    def test_replica_matches_trainer_after_polls(self, consecutive_exp):
        exp = consecutive_exp
        replica = DLRM(exp.config.model)
        publisher = OnlinePublisher(
            exp.store, exp.clock, replica, exp.controller.job_id
        )
        for _ in range(3):
            exp.controller.run_intervals(1)
            drain(exp)
            publisher.poll()
        # fp32 consecutive increments reproduce the trainer exactly.
        for t in range(exp.model.num_tables):
            np.testing.assert_array_equal(
                replica.table_weight(t), exp.model.table_weight(t)
            )

    def test_poll_is_incremental(self, consecutive_exp):
        exp = consecutive_exp
        replica = DLRM(exp.config.model)
        publisher = OnlinePublisher(
            exp.store, exp.clock, replica, exp.controller.job_id
        )
        exp.controller.run_intervals(2)
        drain(exp)
        first = publisher.poll()
        assert len(first) == 2
        assert publisher.poll() == []  # nothing new
        exp.controller.run_intervals(1)
        drain(exp)
        assert len(publisher.poll()) == 1

    def test_pending_respects_validity(self, consecutive_exp):
        exp = consecutive_exp
        replica = DLRM(exp.config.model)
        publisher = OnlinePublisher(
            exp.store, exp.clock, replica, exp.controller.job_id
        )
        exp.controller.run_intervals(1)
        # Write still in flight: nothing valid to publish yet.
        assert publisher.pending() == []
        drain(exp)
        assert len(publisher.pending()) == 1

    def test_staleness_tracking(self, consecutive_exp):
        exp = consecutive_exp
        replica = DLRM(exp.config.model)
        publisher = OnlinePublisher(
            exp.store, exp.clock, replica, exp.controller.job_id
        )
        exp.controller.run_intervals(1)
        drain(exp)
        events = publisher.poll()
        assert events[0].staleness_s > 0
        assert publisher.stats.mean_staleness_s > 0

    def test_require_fresh(self, consecutive_exp):
        exp = consecutive_exp
        replica = DLRM(exp.config.model)
        publisher = OnlinePublisher(
            exp.store, exp.clock, replica, exp.controller.job_id
        )
        with pytest.raises(CheckpointError, match="never"):
            publisher.require_fresh(10.0)
        exp.controller.run_intervals(1)
        drain(exp)
        publisher.poll()
        publisher.require_fresh(max_staleness_s=1e9)
        exp.clock.advance(1e6, "idle")
        with pytest.raises(CheckpointError, match="freshness"):
            publisher.require_fresh(max_staleness_s=10.0)


class TestTransferRestore:
    def test_weights_load_but_progress_resets(self):
        exp = build_experiment(
            small_config(quantizer="none", interval_batches=5)
        )
        exp.controller.run_intervals(2)
        drain(exp)
        restorer = CheckpointRestorer(exp.store, exp.clock)
        target = restorer.latest_valid(exp.controller.job_id)
        seeded = DLRM(exp.config.model)
        report = restorer.restore_for_transfer(
            seeded, target, exp.controller.manifests,
            policy=exp.controller.policy,
        )
        np.testing.assert_array_equal(
            seeded.table_weight(0), exp.model.table_weight(0)
        )
        assert seeded.batches_trained == 0
        assert seeded.samples_trained == 0
        assert report.rows_restored > 0

    def test_apply_single_overlays_rows(self):
        exp = build_experiment(
            small_config(
                policy="consecutive",
                quantizer="none",
                interval_batches=5,
                keep_last=1_000_000,
            )
        )
        exp.controller.run_intervals(2)
        drain(exp)
        manifests = sorted(
            exp.controller.manifests.values(),
            key=lambda m: m.interval_index,
        )
        restorer = CheckpointRestorer(exp.store, exp.clock)
        replica = DLRM(exp.config.model)
        bytes_read = restorer.apply_single(replica, manifests[0])
        assert bytes_read > 0
        restorer.apply_single(replica, manifests[1])
        np.testing.assert_array_equal(
            replica.table_weight(0), exp.model.table_weight(0)
        )


class TestAdoptManifests:
    def test_counter_and_lineage_resume(self):
        exp = build_experiment(
            small_config(policy="intermittent", rows_per_table=4096)
        )
        exp.controller.run_intervals(3)
        drain(exp)
        stored = dict(exp.controller.manifests)

        # A "new process": same store, fresh controller.
        fresh = build_experiment(
            small_config(policy="intermittent", rows_per_table=4096)
        )
        fresh.controller.store = exp.store  # not used before adopt
        controller = fresh.controller
        controller.adopt_manifests(stored)
        assert controller._checkpoint_counter == len(stored)
        assert controller.interval_index == 3
        # Baseline lineage reconstructed.
        fulls = [m for m in stored.values() if m.kind == "full"]
        newest_full = max(fulls, key=lambda m: m.interval_index)
        assert controller._current_base_id == newest_full.checkpoint_id
        assert controller._last_full_bytes == newest_full.logical_bytes

    def test_adopt_empty_is_noop(self, tiny_experiment):
        controller = tiny_experiment.controller
        controller.adopt_manifests({})
        assert controller.interval_index == 0
        assert controller._checkpoint_counter == 0
