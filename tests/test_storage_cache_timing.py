"""Timing invariance: cache disabled == seed behaviour, bit for bit.

The cache tier must be pay-for-what-you-use: with ``cache_bytes=0``
(the default; the CLI without ``--cache-tier``) the factory returns
the bare backend, the store prices every request off the very same
:class:`~repro.storage.requests.OpCostModel` objects it always did,
and a fleet run produces a report bit-identical to one configured
without any mention of the cache. These tests pin each link of that
chain — class identity, cost-object identity, end-to-end report
equality — plus the converse: *enabling* the cache visibly changes
the report, so the comparator is not vacuous.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import BackendConfig, FleetConfig, StorageConfig
from repro.distributed.clock import SimClock
from repro.experiments import build_experiment, small_config
from repro.fleet.experiment import format_fleet_report, run_fleet
from repro.storage.backends import InMemoryBackend, MirroredBackend
from repro.storage.cache import CacheTierBackend, find_cache_tier
from repro.storage.factory import make_backend
from repro.storage.object_store import ObjectStore
from repro.storage.remote import RemoteObjectBackend
from repro.storage.requests import OP_CLASSES


class TestFactoryInvariance:
    """cache_bytes=0 must return the exact bare backend class."""

    @pytest.mark.parametrize(
        "kind, expected",
        [
            ("memory", InMemoryBackend),
            ("mirrored", MirroredBackend),
            ("s3like", RemoteObjectBackend),
        ],
    )
    def test_zero_cache_bytes_returns_bare_backend(self, kind, expected):
        backend = make_backend(BackendConfig(kind=kind, cache_bytes=0))
        assert type(backend) is expected
        assert find_cache_tier(backend) is None

    def test_nonzero_cache_bytes_wraps_far_tier(self):
        backend = make_backend(
            BackendConfig(kind="s3like", cache_bytes=1 << 16)
        )
        assert isinstance(backend, CacheTierBackend)
        assert isinstance(backend.far, RemoteObjectBackend)
        # The far price table is the remote backend's own suite.
        assert backend.far_costs is backend.far.costs

    def test_in_process_far_tier_gets_config_derived_costs(self):
        storage = StorageConfig(
            backend=BackendConfig(kind="memory", cache_bytes=1 << 16)
        )
        backend = make_backend(storage.backend, storage)
        assert isinstance(backend, CacheTierBackend)
        # InMemoryBackend carries costs=None; the factory must hand the
        # cache the same config-derived suite the store would use.
        assert backend.far_costs.put.seconds_per_byte > 0

    def test_config_rejects_bad_cache_settings(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            BackendConfig(cache_bytes=-1)
        with pytest.raises(ConfigError):
            BackendConfig(cache_bytes=10, cache_policy="write_around")


class TestCostPathInvariance:
    """Without a cache, per-request pricing is the seed's pricing —
    the *same objects*, so every jitter/tail RNG draw is identical."""

    @pytest.mark.parametrize("kind", ["memory", "s3like"])
    def test_cost_for_returns_identical_objects(self, kind):
        store = ObjectStore(
            StorageConfig(backend=BackendConfig(kind=kind, cache_bytes=0)),
            SimClock(),
        )
        assert find_cache_tier(store.backend) is None
        for op in OP_CLASSES:
            assert store.cost_for(op, "some/key", 123) is (
                store.costs.for_op(op)
            )

    def test_cached_store_prices_hit_and_miss_differently(self):
        store = ObjectStore(
            StorageConfig(
                backend=BackendConfig(kind="memory", cache_bytes=1 << 16)
            ),
            SimClock(),
        )
        tier = find_cache_tier(store.backend)
        assert tier is not None
        store.put("warm", b"x" * 64)
        miss = store.cost_for("GET", "cold")
        hit = store.cost_for("GET", "warm")
        assert hit is tier.near_costs.get
        assert miss is tier.far_costs.get
        assert hit is not miss


class TestFleetReportInvariance:
    def _config(self, **backend_kw) -> FleetConfig:
        return FleetConfig(
            num_jobs=3,
            intervals_per_job=2,
            seed=0xCAFE,
            storage=StorageConfig(backend=BackendConfig(**backend_kw)),
        )

    def test_cache_disabled_report_is_bit_identical(self):
        """A config that never mentions the cache and one that
        explicitly disables it produce *equal* FleetRunReports —
        every timing, byte count and retry tally included."""
        _, baseline = run_fleet(FleetConfig(num_jobs=3, seed=0xCAFE,
                                            intervals_per_job=2))
        _, disabled = run_fleet(self._config(cache_bytes=0))
        assert baseline == disabled
        assert disabled.cache_capacity_bytes == 0
        assert "cache tier" not in format_fleet_report(disabled)

    def test_enabling_the_cache_is_visible(self):
        """The comparator above is not vacuous: turning the cache on
        changes the report (cache columns populate, and write-back
        acks shift timings)."""
        _, baseline = run_fleet(self._config(cache_bytes=0))
        _, cached = run_fleet(
            self._config(cache_bytes=256 * 1024, cache_policy="write_back")
        )
        assert cached != baseline
        assert cached.cache_capacity_bytes == 256 * 1024
        assert cached.cache_policy == "write_back"
        # Checkpoint writes are all PUT traffic, so the write-back
        # counters must have moved even in a run with no restores.
        assert cached.cache_dirty_flushes + cached.cache_dirty_backlog > 0
        text = format_fleet_report(cached)
        assert "cache tier (write_back, 256 KiB)" in text
        assert "dirty flushes:" in text

    def test_report_field_layout_keeps_seed_fields_first(self):
        """The cache columns were appended with defaults — positional
        construction of the seed-era fields still works, so recorded
        baselines comparing field-by-field stay meaningful."""
        fields = [
            f.name
            for f in dataclasses.fields(
                run_fleet(self._config(cache_bytes=0))[1]
            )
        ]
        assert fields.index("cache_capacity_bytes") > fields.index(
            "retries_by_op"
        )


class TestExperimentTimingInvariance:
    def test_factory_path_times_like_direct_construction(self):
        """The seed built its backend directly; the factory (cache
        disabled) must reproduce its run timings exactly."""
        config = small_config(
            num_tables=3,
            rows_per_table=512,
            embedding_dim=8,
            batch_size=32,
            interval_batches=5,
            num_nodes=1,
            devices_per_node=2,
        )
        via_factory = build_experiment(config)
        direct = build_experiment(config, backend=InMemoryBackend())
        via_factory.controller.run_intervals(2)
        direct.controller.run_intervals(2)
        assert via_factory.clock.now == direct.clock.now
        assert {
            m.checkpoint_id: m.valid_at_s
            for m in via_factory.controller.manifests.values()
        } == {
            m.checkpoint_id: m.valid_at_s
            for m in direct.controller.manifests.values()
        }
