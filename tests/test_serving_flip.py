"""Serving plane: flip atomicity, corruption fallback, co-simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServingError
from repro.experiments import build_experiment, small_config
from repro.model.dlrm import DLRM
from repro.serving import (
    InferenceServer,
    LookupRequest,
    ServingConfig,
    ServingPublisher,
    run_serving,
)
from repro.storage.backends import corrupt_stored_object


def drain(exp) -> None:
    exp.clock.advance_to(exp.store.timeline.free_at + 1.0, "drain")


def drive(gen):
    """Run a staged generator to completion; return its value."""
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


@pytest.fixture
def published_pair():
    """An experiment with two published versions + golden snapshots."""
    exp = build_experiment(
        small_config(
            policy="consecutive",
            quantizer="none",
            interval_batches=5,
            num_tables=2,
            rows_per_table=256,
            batch_size=32,
            keep_last=1_000_000,
        )
    )
    publisher = ServingPublisher(
        exp.store,
        exp.clock,
        DLRM(exp.config.model),
        exp.controller.job_id,
        hot_rows_per_table=16,
    )
    golden = []
    for _ in range(2):
        exp.controller.run_intervals(1)
        drain(exp)
        publisher.poll()
        golden.append(
            {
                t: publisher.replica.table_weight(t).copy()
                for t in range(exp.model.num_tables)
            }
        )
    assert len(publisher.versions) == 2
    return exp, publisher, golden


def _modified_row(publisher) -> tuple[int, int]:
    """A (table, row) version 1 actually changed — the telling probe."""
    v1 = publisher.versions[1]
    for table_id in sorted(v1.modified_rows):
        rows = v1.modified_rows[table_id]
        if rows.size:
            return table_id, int(rows[0])
    raise AssertionError("increment modified no rows")


class TestFlipAtomicity:
    def test_inflight_lookup_finishes_on_old_version(
        self, published_pair
    ):
        """A flip mid-lookup must not tear the in-flight request."""
        exp, publisher, golden = published_pair
        server = InferenceServer(
            "s0",
            exp.store,
            publisher,
            cache_rows=64,
            warm_pins=False,
        )
        drive(server.flip_steps(publisher.versions[0], exp.clock.now))
        assert server.version_index == 0
        table_id, row = _modified_row(publisher)
        request = LookupRequest(
            request_id=0,
            arrival_s=exp.clock.now,
            rows=((table_id, row),),
        )
        lookup = server.lookup_steps(request)
        next(lookup)  # the miss announced its read; request in flight
        drive(server.flip_steps(publisher.versions[1], exp.clock.now))
        assert server.version_index == 1
        result = drive(lookup)
        # The request captured version 0 and must finish there, with
        # version 0's value — not the newer one the flip installed.
        assert result.version_index == 0
        np.testing.assert_array_equal(
            result.values[(table_id, row)], golden[0][table_id][row]
        )
        assert not np.array_equal(
            golden[0][table_id][row], golden[1][table_id][row]
        )

    def test_next_lookup_sees_new_version(self, published_pair):
        exp, publisher, golden = published_pair
        server = InferenceServer(
            "s0", exp.store, publisher, cache_rows=64, warm_pins=False
        )
        drive(server.flip_steps(publisher.versions[1], exp.clock.now))
        table_id, row = _modified_row(publisher)
        result = drive(
            server.lookup_steps(
                LookupRequest(
                    request_id=0,
                    arrival_s=exp.clock.now,
                    rows=((table_id, row),),
                )
            )
        )
        assert result.version_index == 1
        np.testing.assert_array_equal(
            result.values[(table_id, row)], golden[1][table_id][row]
        )

    def test_lookup_before_any_flip_raises(self, published_pair):
        exp, publisher, _ = published_pair
        server = InferenceServer(
            "s0", exp.store, publisher, cache_rows=64
        )
        with pytest.raises(ServingError):
            next(
                server.lookup_steps(
                    LookupRequest(
                        request_id=0, arrival_s=0.0, rows=((0, 0),)
                    )
                )
            )


class TestCorruptionFallback:
    def test_lookup_falls_back_to_older_version(self, published_pair):
        """A corrupt chunk poisons the version; the request replays."""
        exp, publisher, golden = published_pair
        server = InferenceServer(
            "s0", exp.store, publisher, cache_rows=64, warm_pins=False
        )
        drive(server.flip_steps(publisher.versions[1], exp.clock.now))
        table_id, row = _modified_row(publisher)
        bad_key = publisher.versions[1].row_ref(table_id, row).key
        corrupt_stored_object(exp.store.backend, bad_key)
        result = drive(
            server.lookup_steps(
                LookupRequest(
                    request_id=0,
                    arrival_s=exp.clock.now,
                    rows=((table_id, row),),
                )
            )
        )
        assert result.version_index == 0
        assert result.fallback_depth == 1
        assert server.version_fallbacks == 1
        assert server.version_index == 0
        np.testing.assert_array_equal(
            result.values[(table_id, row)], golden[0][table_id][row]
        )

    def test_cold_start_flip_falls_back_when_latest_corrupt(
        self, published_pair
    ):
        """A fresh server warming onto a corrupt latest version must
        land on the older clean one instead."""
        exp, publisher, _ = published_pair
        v1 = publisher.versions[1]
        # Corrupt every chunk the latest version's warm pass would
        # read: the chunks its hot rows live in.
        bad_keys = {
            v1.row_ref(t, int(r)).key
            for t in sorted(v1.hot_rows)
            for r in v1.hot_rows[t]
        }
        assert bad_keys, "latest version announced no hot rows"
        for key in bad_keys:
            corrupt_stored_object(exp.store.backend, key)
        server = InferenceServer(
            "s0", exp.store, publisher, cache_rows=64, warm_pins=True
        )
        drive(server.flip_steps(v1, exp.clock.now))
        assert server.version_index == 0
        assert server.version_fallbacks >= 1


class TestCoSimulation:
    CONFIG = dict(
        policy="consecutive",
        interval_batches=25,
        num_tables=2,
        rows_per_table=2048,
        batch_size=64,
    )

    def _exp_config(self):
        import dataclasses

        config = small_config(**self.CONFIG)
        return dataclasses.replace(
            config,
            checkpoint=dataclasses.replace(
                config.checkpoint, chunk_rows=256
            ),
        )

    def _serving(self, **overrides):
        base = dict(
            num_servers=2,
            cache_rows=64,
            qps=16.0,
            num_queries=200,
            train_intervals=5,
            hot_rows_per_table=48,
        )
        base.update(overrides)
        return ServingConfig(**base)

    def test_atomic_flips_under_load(self):
        """>= 3 flips under live traffic, zero torn lookups, and at
        least one request finishing on a pre-flip version (so the
        atomicity claim was actually exercised by a straddler)."""
        report = run_serving(self._exp_config(), self._serving())
        assert report.version_flips >= 3
        assert report.torn_lookups == 0
        assert report.requests == 200
        assert report.straddled_requests > 0
        assert report.publishes >= 3
        assert report.cache_hits > 0

    def test_deterministic_under_fixed_seed(self):
        first = run_serving(self._exp_config(), self._serving())
        second = run_serving(self._exp_config(), self._serving())
        assert first == second
