#!/usr/bin/env python
"""Online training: publishing checkpoints to a live inference model.

The paper's second use case (sections 1 and 5.1): an interim model
serves predictions while training continues; *consecutive* incremental
checkpoints are "directly applied to an already-trained model in
inference to improve its freshness and accuracy".

This example runs a training job with the consecutive policy and an
inference replica that applies each incremental checkpoint as it
becomes valid. It reports the inference replica's held-out quality
after every publish, against a frozen model that never refreshes —
the freshness gap online training exists to close.

Run:  python examples/online_training.py
"""

from __future__ import annotations

from repro.core.publisher import OnlinePublisher
from repro.experiments import build_experiment, small_config
from repro.metrics.accuracy import evaluate
from repro.model.dlrm import DLRM


def main() -> None:
    config = small_config(
        policy="consecutive",  # each increment applies onto the previous
        quantizer="asymmetric",
        bit_width=8,
        interval_batches=20,
        num_tables=4,
        rows_per_table=4096,
        keep_last=1_000_000,  # the serving side applies every increment
    )
    exp = build_experiment(config)
    held_out = exp.dataset.eval_batches(8)

    # The inference replica starts untrained and a frozen twin never
    # updates (the "stale model" comparison).
    inference_model = DLRM(exp.config.model)
    frozen_model = DLRM(exp.config.model)
    publisher = OnlinePublisher(
        exp.store, exp.clock, inference_model, exp.controller.job_id
    )

    print("== consecutive incremental publishing ==")
    print(
        f"{'interval':>8s} {'ckpt':>12s} {'kind':>12s} {'KiB':>7s} "
        f"{'stale_s':>8s} {'live NE':>8s} {'frozen NE':>10s}"
    )
    for interval in range(6):
        exp.controller.run_intervals(1)
        manifest = exp.controller.stats.events[-1].manifest
        # Wait until the write lands, then poll the publisher: every
        # newly valid checkpoint is applied to the replica.
        exp.clock.advance_to(manifest.valid_at_s + 1.0, "serve")
        for event in publisher.poll():
            live = evaluate(inference_model, held_out)
            stale = evaluate(frozen_model, held_out)
            print(
                f"{interval:>8d} {event.checkpoint_id:>12s} "
                f"{event.kind:>12s} {event.bytes_read / 1024:>7.0f} "
                f"{event.staleness_s:>8.1f} "
                f"{live.normalized_entropy:>8.4f} "
                f"{stale.normalized_entropy:>10.4f}"
            )

    stats = publisher.stats
    print(
        f"\npublished {stats.publishes} checkpoints "
        f"({stats.bytes_read / 1024:.0f} KiB read), mean staleness "
        f"{stats.mean_staleness_s:.1f}s; the live replica tracks "
        "training quality while the frozen model stagnates."
    )
    publisher.require_fresh(max_staleness_s=3600.0)
    trainer_eval = evaluate(exp.model, held_out)
    live_eval = evaluate(inference_model, held_out)
    gap = (
        live_eval.normalized_entropy - trainer_eval.normalized_entropy
    ) / trainer_eval.normalized_entropy
    print(
        f"live replica NE is within {gap:+.3%} of the trainer's "
        "(8-bit de-quantization noise only)"
    )


if __name__ == "__main__":
    main()
