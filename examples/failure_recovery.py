#!/usr/bin/env python
"""Failure recovery: training under a production-like failure process.

Two views of the same trade-off the paper motivates (section 3.1):

* **micro** — a real training job driven by a failure injector; every
  crash loses the live state, restores from the newest valid
  checkpoint, and re-trains the lost batches. Reported: goodput and
  wasted work per checkpoint interval length.
* **macro** — a Bistro-like fleet scheduler running a month of jobs on
  failure-prone clusters (the Fig 3 regime), showing how checkpoint
  frequency bounds fleet-wide wasted hours.

Run:  python examples/failure_recovery.py
"""

from __future__ import annotations

from repro.config import BackendConfig
from repro.experiments import build_experiment, small_config
from repro.failures import (
    ExponentialFailures,
    FailureInjector,
    FleetScheduler,
    make_job_batch,
    paper_failure_model,
)
from repro.storage import make_backend


def micro_injection() -> None:
    print("== micro: one training job under failure injection ==")
    print(f"{'interval':>10s} {'failures':>9s} {'wasted':>7s} {'goodput':>8s}")
    for interval_batches in (4, 8, 16):
        config = small_config(
            interval_batches=interval_batches,
            num_tables=3,
            rows_per_table=2048,
            batch_size=64,
            quantizer="asymmetric",
            bit_width=8,
        )
        # Replicated remote storage via the config-driven backend
        # factory — the availability property restores depend on.
        backend = make_backend(
            BackendConfig(kind="mirrored", replicas=2), config.storage
        )
        exp = build_experiment(config, backend=backend)
        injector = FailureInjector(
            exp.controller,
            ExponentialFailures(4.0),  # MTTF of 4 simulated seconds
            seed=17,
        )
        report = injector.run(target_intervals=48 // interval_batches)
        print(
            f"{interval_batches:>10d} {report.failures:>9d} "
            f"{report.wasted_batches:>7d} {report.goodput:>8.1%}"
        )
    print(
        "shorter intervals bound the re-training loss per failure\n"
    )


def macro_fleet() -> None:
    print("== macro: a fleet month under the paper's failure model ==")
    model = paper_failure_model()  # Weibull fit to Fig 3's quantiles
    jobs = make_job_batch(60, mean_required_hours=48.0, seed=18)
    print(
        f"{'ckpt interval':>14s} {'failures':>9s} "
        f"{'wasted_h':>9s} {'waste%':>7s} {'makespan_h':>11s}"
    )
    for interval_hours in (0.5, 2.0, 8.0):
        scheduler = FleetScheduler(
            num_clusters=21,  # the paper's fleet
            failure_model=model,
            checkpoint_interval_hours=interval_hours,
            seed=19,
        )
        # Jobs are stateful; re-create them per run.
        report = scheduler.run(
            make_job_batch(60, mean_required_hours=48.0, seed=18)
        )
        print(
            f"{interval_hours:>13.1f}h {report.total_failures:>9d} "
            f"{report.total_wasted_hours:>9.1f} "
            f"{report.waste_fraction:>7.1%} "
            f"{report.makespan_hours:>11.1f}"
        )
    print(
        "the paper's default 30-minute interval keeps fleet waste low;\n"
        "Check-N-Run's bandwidth savings are what make that frequency "
        "affordable"
    )


def main() -> None:
    micro_injection()
    macro_fleet()


if __name__ == "__main__":
    main()
