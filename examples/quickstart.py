#!/usr/bin/env python
"""Quickstart: train a DLRM under Check-N-Run, crash it, recover.

Demonstrates the minimal end-to-end loop:

1. build a wired experiment (model + reader + simulated cluster +
   object store + Check-N-Run controller);
2. train a few checkpoint intervals — each ends with a decoupled
   snapshot and a background, quantized, incremental checkpoint write;
3. simulate a crash (the live model state is destroyed);
4. restore from the newest valid checkpoint and keep training.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.config import BackendConfig
from repro.experiments import build_experiment, small_config
from repro.storage import make_backend


def main() -> None:
    config = small_config(
        policy="intermittent",  # the paper's default policy
        quantizer="adaptive",  # greedy adaptive asymmetric quantization
        bit_width=4,
        interval_batches=25,
        num_tables=4,
        rows_per_table=8192,
    )
    # Backends are config-built: swap kind="memory" for "file",
    # "mirrored" or "s3like" (request-costed, multipart) without
    # touching any other wiring.
    backend = make_backend(BackendConfig(kind="memory"), config.storage)
    exp = build_experiment(config, backend=backend)

    print("== training 4 checkpoint intervals ==")
    reports = exp.controller.run_intervals(4)
    for i, interval in enumerate(reports):
        event = exp.controller.stats.events[i]
        kind = event.manifest.kind if event.manifest else "-"
        size = event.report.logical_bytes if event.report else 0
        print(
            f"interval {i}: loss={interval.mean_loss:.4f}  "
            f"checkpoint={kind:11s} ({size / 1024:.0f} KiB, "
            f"{size / event.report.rows_written if event.report and event.report.rows_written else 0:.1f} B/row)"
        )

    print(f"\nsnapshot stall fraction: {exp.controller.stall_fraction():.2%}")
    stats = exp.store.stats()
    print(
        f"object store: {stats.num_objects} objects, "
        f"{stats.live_logical_bytes / 1024:.0f} KiB live "
        f"(x{exp.config.storage.replication_factor} replication)"
    )

    # Let the last background write finish, then destroy the model.
    exp.clock.advance_to(exp.store.timeline.free_at + 1.0, "drain")
    print("\n== simulating a crash (model state destroyed) ==")
    batches_before = exp.model.batches_trained
    exp.model.reinitialize()

    report = exp.controller.restore_latest()
    print(
        f"restored {report.checkpoint_id} "
        f"(chain: {' -> '.join(report.chain_ids)}), "
        f"{report.rows_restored} rows, "
        f"{report.bytes_read / 1024:.0f} KiB read"
    )
    print(
        f"training position recovered: batch {exp.model.batches_trained} "
        f"(was {batches_before} at crash)"
    )

    print("\n== continuing training after recovery ==")
    exp.controller.run_intervals(1)
    print(f"now at batch {exp.model.batches_trained}; done.")


if __name__ == "__main__":
    main()
