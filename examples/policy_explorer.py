#!/usr/bin/env python
"""Explore the incremental checkpointing policies (paper section 5.1).

Runs the same training workload under all four policies and prints the
per-interval checkpoint sizes, required storage capacity, and restore
chain lengths — the trade-off space behind Figs 15 and 16 and the
reason Check-N-Run defaults to the intermittent policy.

Run:  python examples/policy_explorer.py
"""

from __future__ import annotations

from repro.experiments import incremental_policy_experiment


def main() -> None:
    print("running 12 checkpoint intervals per policy ...\n")
    runs = incremental_policy_experiment(
        policies=("full", "one_shot", "intermittent", "consecutive"),
        num_intervals=12,
        interval_batches=25,
        rows_per_table=16384,
        num_tables=4,
    )

    print("== checkpoint size per interval (fraction of the model) ==")
    header = "interval  " + "  ".join(
        f"{run.policy:>12s}" for run in runs
    )
    print(header)
    for i in range(12):
        print(
            f"{i:>8d}  "
            + "  ".join(
                f"{run.size_fractions[i]:>12.2f}" for run in runs
            )
        )

    print("\n== required storage capacity (x model size) ==")
    print(header)
    for i in range(12):
        print(
            f"{i:>8d}  "
            + "  ".join(
                f"{run.capacity_fractions[i]:>12.2f}" for run in runs
            )
        )

    print("\n== summary ==")
    for run in runs:
        avg_size = sum(run.size_fractions) / len(run.size_fractions)
        peak_cap = max(run.capacity_fractions)
        refreshes = sum(1 for kind in run.kinds if kind == "full") - 1
        print(
            f"{run.policy:>12s}: avg write {avg_size:.2f}x model, "
            f"peak capacity {peak_cap:.2f}x, "
            f"baseline refreshes {refreshes}"
        )
    print(
        "\nintermittent combines consecutive-like average bandwidth "
        "with one-shot-like capacity — the paper's default."
    )


if __name__ == "__main__":
    main()
