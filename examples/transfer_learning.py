#!/usr/bin/env python
"""Transfer learning from a checkpoint (paper sections 1 and 4.1).

"Checkpoints are also used for performing transfer learning, where an
intermediate model state is used as a seed, which is then trained for a
different goal." Such checkpoints "do not require the reader state" —
the new job trains its own dataset from the start.

This example trains a *source* job with checkpoints, then seeds a new
job — different synthetic dataset (a different "product surface"), same
model architecture — from the source's checkpoint, and compares its
learning curve against training the target task from scratch. Warm
embeddings transfer the hot-row structure, so the seeded run starts
ahead.

Run:  python examples/transfer_learning.py
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.restore import CheckpointRestorer
from repro.data.synthetic import SyntheticClickDataset
from repro.experiments import build_experiment, small_config
from repro.model.dlrm import DLRM


def train_curve(
    model: DLRM, dataset: SyntheticClickDataset, batches: int
) -> list[float]:
    """Per-10-batch mean training loss."""
    losses = []
    window: list[float] = []
    for i in range(batches):
        window.append(model.train_step(dataset.batch(i)).loss)
        if len(window) == 10:
            losses.append(float(np.mean(window)))
            window.clear()
    return losses


def main() -> None:
    # --- Source job: train and checkpoint. -----------------------------
    config = small_config(
        policy="intermittent",
        quantizer="asymmetric",
        bit_width=8,
        interval_batches=30,
        num_tables=4,
        rows_per_table=2048,
    )
    source = build_experiment(config)
    print("== training the source job (3 checkpoint intervals) ==")
    source.controller.run_intervals(3)
    source.clock.advance_to(
        source.store.timeline.free_at + 1.0, "drain"
    )
    print(
        f"source trained {source.model.batches_trained} batches, "
        f"{source.controller.stats.checkpoints_written} checkpoints\n"
    )

    # --- Target task: same architecture, different data distribution. --
    target_data = replace(
        source.config.data, seed=source.config.data.seed ^ 0x7777
    )
    target_dataset = SyntheticClickDataset(
        source.config.model, target_data
    )

    # Seeded model: restore_for_transfer loads weights but no reader
    # state and zeroes the progress counters — a fresh job.
    restorer = CheckpointRestorer(source.store, source.clock)
    target = restorer.latest_valid(source.controller.job_id)
    seeded = DLRM(source.config.model)
    report = restorer.restore_for_transfer(
        seeded, target, source.controller.manifests,
        policy=source.controller.policy,
    )
    assert seeded.batches_trained == 0  # progress reset: a new job
    print(
        f"seeded new job from {report.checkpoint_id} "
        f"(chain {' -> '.join(report.chain_ids)})"
    )

    scratch = DLRM(
        replace(source.config.model, seed=source.config.model.seed + 1)
    )

    print("\n== target-task learning curves (mean loss per 10 batches) ==")
    seeded_curve = train_curve(seeded, target_dataset, 60)
    scratch_curve = train_curve(scratch, target_dataset, 60)
    print(f"{'batches':>8s} {'seeded':>8s} {'scratch':>8s}")
    for i, (a, b) in enumerate(zip(seeded_curve, scratch_curve)):
        print(f"{(i + 1) * 10:>8d} {a:>8.4f} {b:>8.4f}")

    advantage = float(np.mean(np.array(scratch_curve[:3])
                              - np.array(seeded_curve[:3])))
    print(
        f"\nearly-training advantage of the transferred seed: "
        f"{advantage:+.4f} loss (positive = seeded run learns faster)"
    )


if __name__ == "__main__":
    main()
