#!/usr/bin/env python
"""A tour of Check-N-Run's checkpoint quantization (paper section 5.2).

Walks through every quantization approach on a genuinely trained
checkpoint tensor:

1. symmetric vs asymmetric uniform quantization;
2. k-means per vector (better error, prohibitive run time);
3. adaptive asymmetric with the greedy range search;
4. the sampling profiler that auto-tunes num_bins / ratio;
5. dynamic bit-width selection from the expected restore count.

Run:  python examples/quantization_tour.py
"""

from __future__ import annotations

from repro.core.bitwidth import select_bit_width
from repro.distributed.clock import Stopwatch
from repro.experiments import trained_embedding_matrix
from repro.quant import make_quantizer, mean_l2_error
from repro.quant.profiler import select_num_bins, select_ratio


def main() -> None:
    print("training a small DLRM to obtain a realistic checkpoint ...")
    tensor = trained_embedding_matrix(
        rows=4096, dim=16, train_batches=150
    )
    print(
        f"checkpoint tensor: {tensor.shape[0]} rows x {tensor.shape[1]} "
        f"dims, {tensor.nbytes / 1024:.0f} KiB fp32\n"
    )

    print("== approach comparison (paper Fig 9) ==")
    print(
        f"{'method':>11s} {'bits':>5s} {'mean_l2':>10s} "
        f"{'size_KiB':>9s} {'ratio':>6s} {'seconds':>8s}"
    )
    for bits in (2, 4, 8):
        for method in ("symmetric", "asymmetric", "kmeans", "adaptive"):
            quantizer = make_quantizer(method, bits=bits, num_bins=25)
            watch = Stopwatch()
            with watch:
                qt = quantizer.quantize(tensor)
            err = mean_l2_error(tensor, quantizer.dequantize(qt))
            print(
                f"{method:>11s} {bits:>5d} {err:>10.5f} "
                f"{qt.nbytes / 1024:>9.1f} "
                f"{qt.compression_ratio:>5.1f}x {watch.elapsed:>8.3f}"
            )
        print()

    print("== sampling profiler (auto-tuning the greedy search) ==")
    bins = select_num_bins(tensor, bits=2, sample_fraction=0.05, seed=3)
    ratio = select_ratio(
        tensor, bits=2, num_bins=int(bins.chosen),
        sample_fraction=0.05, seed=3,
    )
    print(
        f"profiled {bins.sample_rows} sampled rows -> "
        f"num_bins={bins.chosen:.0f}, ratio={ratio.chosen:.1f}"
    )
    tuned = make_quantizer(
        "adaptive", bits=2, num_bins=int(bins.chosen),
        ratio=float(ratio.chosen),
    )
    naive = make_quantizer("asymmetric", bits=2)
    tuned_err = mean_l2_error(tensor, tuned.roundtrip(tensor))
    naive_err = mean_l2_error(tensor, naive.roundtrip(tensor))
    print(
        f"2-bit error: naive {naive_err:.5f} -> tuned {tuned_err:.5f} "
        f"({1 - tuned_err / naive_err:.0%} better)\n"
    )

    print("== dynamic bit-width selection (paper section 6.2.1) ==")
    for restores in (0, 1, 3, 10, 25):
        print(
            f"expected restores = {restores:>3d} -> "
            f"{select_bit_width(restores)}-bit checkpoints"
        )


if __name__ == "__main__":
    main()
