#!/usr/bin/env python
"""One-command look at the paper's figure shapes (no pytest needed).

Renders the fast subset of the reproduction — the failure CDF (Fig 3),
the modified-fraction curves (Figs 5/6), the incremental-policy series
(Figs 15/16), and the snapshot-stall table (section 6.1) — as plain
text. The full reproduction of every figure lives in ``benchmarks/``:

    pytest benchmarks/ --benchmark-only

Run:  python examples/reproduce_figures.py
"""

from __future__ import annotations

from repro.tools.figures import render_all


def main() -> None:
    print(render_all())


if __name__ == "__main__":
    main()
