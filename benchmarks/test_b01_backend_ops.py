"""B1 — backend op classes: per-class latency/throughput + multipart.

Not a paper figure: this bench characterises the request-oriented
storage backend the reproduction grew beyond the paper. It emits

* a per-op-class table (PUT/GET/LIST/DELETE/HEAD) of mean request
  latency and data-plane throughput against the S3-style
  ``RemoteObjectBackend``;
* the multipart-amortisation comparison the API redesign exists for:
  the same checkpoint-sized payload PUT single-shot, multipart over a
  single upload lane, and multipart fanned out over parallel lanes —
  at identical link bandwidth, the wall times differ measurably
  because per-part request latency is serial in one case and
  overlapped in the other;
* the ranged-GET equivalent on the restore path;
* the retry-amplification / tail-latency table per op class under
  seeded transient-failure injection: how many extra requests the
  transfer engine's retry loop issues per op class, and how the retry
  penalty (wasted attempt latency + backoff) stretches the per-class
  latency tail.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import MiB, StorageConfig
from repro.distributed.clock import SimClock
from repro.storage import (
    OP_CLASSES,
    OP_DELETE,
    OP_GET,
    OP_HEAD,
    OP_LIST,
    OP_PUT,
    ObjectStore,
    RemoteObjectBackend,
    s3like_costs,
)

TITLE = "B1 - backend op classes: request latency/throughput, multipart"

#: Link bandwidths for the bench: 100 MiB/s writes, 200 MiB/s reads.
WRITE_BW = 100.0 * MiB
READ_BW = 200.0 * MiB

#: Per-request latencies (seconds) — same-region object store figures.
LATENCIES = {
    OP_PUT: 0.030,
    OP_GET: 0.020,
    OP_LIST: 0.040,
    OP_DELETE: 0.015,
    OP_HEAD: 0.010,
}


def make_store(part_size=None, fanout=4, range_get=None) -> ObjectStore:
    config = StorageConfig(
        write_bandwidth=WRITE_BW,
        read_bandwidth=READ_BW,
        replication_factor=1,
        latency_s=0.0,
    )
    backend = RemoteObjectBackend(
        s3like_costs(
            WRITE_BW,
            READ_BW,
            put_latency_s=LATENCIES[OP_PUT],
            get_latency_s=LATENCIES[OP_GET],
            list_latency_s=LATENCIES[OP_LIST],
            delete_latency_s=LATENCIES[OP_DELETE],
            head_latency_s=LATENCIES[OP_HEAD],
        ),
        part_size_bytes=part_size,
        fanout=fanout,
        range_get_bytes=range_get,
    )
    return ObjectStore(config, SimClock(), backend=backend)


def test_backend_op_classes(report):
    """One artifact, four sections: per-class costs, multipart PUT
    amortisation, ranged-GET fan-out, and retry amplification under
    transient failures (the module's report fixture emits a single
    file, so the sections share one test)."""
    _per_op_class_costs(report)
    report.row("")
    _multipart_amortisation(report)
    report.row("")
    _ranged_get_amortisation(report)
    report.row("")
    _retry_amplification(report)


def _per_op_class_costs(report):
    """Mean latency and throughput per op class, from receipts."""
    store = make_store()
    object_bytes = 256 * 1024
    for i in range(8):
        store.put(f"bench/obj{i:02d}", bytes(object_bytes))
    for i in range(8):
        store.get(f"bench/obj{i:02d}")
    for i in range(8):
        store.exists(f"bench/obj{i:02d}")
    store.list_keys("bench/")
    for i in range(8):
        store.delete(f"bench/obj{i:02d}")

    rows = []
    for op in OP_CLASSES:
        receipts = store.ops.receipts(op)
        assert receipts, f"no {op} receipts recorded"
        mean_s = sum(r.duration_s for r in receipts) / len(receipts)
        data = [r for r in receipts if r.physical_bytes > 0]
        if data and op in (OP_PUT, OP_GET):
            thru = sum(r.throughput for r in data) / len(data)
            thru_col = f"{thru / MiB:>10.1f}"
        else:
            thru_col = f"{'-':>10s}"
        rows.append(
            f"{op:<8s} {len(receipts):>5d} {mean_s * 1000:>12.2f}"
            f" {thru_col}"
        )
        # Receipts reproduce the configured base latency exactly for
        # control-plane classes (no queueing in this serial workload).
        if op in (OP_HEAD, OP_DELETE):
            assert mean_s == pytest.approx(LATENCIES[op])
    report.row(
        f"remote backend: {WRITE_BW / MiB:.0f} MiB/s write / "
        f"{READ_BW / MiB:.0f} MiB/s read link, "
        f"{object_bytes // 1024} KiB objects"
    )
    report.table("op       count  mean_lat_ms  thru_MiB/s", rows)

    # PUT/GET receipts include the per-byte streaming time.
    put_mean = store.ops.mean_duration_s(OP_PUT)
    assert put_mean == pytest.approx(
        LATENCIES[OP_PUT] + object_bytes / WRITE_BW
    )
    get_mean = store.ops.mean_duration_s(OP_GET)
    assert get_mean == pytest.approx(
        LATENCIES[OP_GET] + object_bytes / READ_BW
    )


def _multipart_amortisation(report):
    """Same payload, same bandwidth: single-shot vs multipart wall time.

    The acceptance property of the API redesign: multipart PUT shows a
    *measurably different* wall time than a single-shot PUT at the same
    link bandwidth — slower by one completion request when parts fan
    out (latency amortised), slower by every part's latency when they
    cannot.
    """
    payload = bytes(8 * MiB)
    part = 1 * MiB

    single = make_store(part_size=None).put("ckpt", payload)
    serial = make_store(part_size=part, fanout=1).put("ckpt", payload)
    fanned = make_store(part_size=part, fanout=4).put("ckpt", payload)

    byte_time = len(payload) / WRITE_BW
    report.row(
        f"payload {len(payload) // MiB} MiB, parts of {part // MiB} MiB, "
        f"link byte time {byte_time:.3f} s, "
        f"PUT latency {LATENCIES[OP_PUT] * 1000:.0f} ms"
    )
    rows = [
        f"{'single-shot':<22s} {1:>5d} {single.duration_s:>9.3f}"
        f" {single.duration_s - byte_time:>12.3f}",
        f"{'multipart fanout=1':<22s} {serial.parts:>5d}"
        f" {serial.duration_s:>9.3f}"
        f" {serial.duration_s - byte_time:>12.3f}",
        f"{'multipart fanout=4':<22s} {fanned.parts:>5d}"
        f" {fanned.duration_s:>9.3f}"
        f" {fanned.duration_s - byte_time:>12.3f}",
    ]
    report.table("upload mode            parts    wall_s  lat_overhead", rows)

    assert serial.parts == 8 and fanned.parts == 8
    # Measurably different wall time at the same bandwidth.
    assert abs(fanned.duration_s - single.duration_s) > 0.02
    assert abs(serial.duration_s - single.duration_s) > 0.2
    # Fan-out amortises per-part latency: only the first part's latency
    # plus the completion request are exposed...
    assert fanned.duration_s == pytest.approx(
        byte_time + 2 * LATENCIES[OP_PUT]
    )
    # ...while a single lane pays every part's latency serially.
    assert serial.duration_s == pytest.approx(
        byte_time + (8 + 1) * LATENCIES[OP_PUT]
    )
    report.row(
        "fanout hides per-part request latency behind the link's byte "
        "time; a single lane exposes all of it"
    )


def _ranged_get_amortisation(report):
    """Restore-side mirror image: whole GET vs ranged sub-GET fan-out."""
    payload = bytes(8 * MiB)
    window = 1 * MiB

    whole_store = make_store()
    whole_store.put("ckpt", payload)
    whole_store.get("ckpt")
    whole = whole_store.ops.receipts(OP_GET)[-1]

    ranged_store = make_store(range_get=window, fanout=4)
    ranged_store.put("ckpt", payload)
    assert ranged_store.get("ckpt") == payload
    ranged = ranged_store.ops.receipts(OP_GET)[-1]

    byte_time = len(payload) / READ_BW
    rows = [
        f"{'whole-object GET':<22s} {whole.parts:>5d}"
        f" {whole.duration_s:>9.3f}",
        f"{'ranged GET fanout=4':<22s} {ranged.parts:>5d}"
        f" {ranged.duration_s:>9.3f}",
    ]
    report.table("read mode              parts    wall_s", rows)
    assert ranged.parts == 8
    assert whole.duration_s == pytest.approx(
        byte_time + LATENCIES[OP_GET]
    )
    # Ranged fan-out exposes the first GET latency plus the latency
    # bubbles the lanes cannot hide when per-range byte time (5 ms) is
    # shorter than the request latency (20 ms): with 4 lanes the second
    # round of ranges waits (latency - 3 windows) = 5 ms on the link.
    window_time = window / READ_BW
    bubble = LATENCIES[OP_GET] - (4 - 1) * window_time
    assert ranged.duration_s == pytest.approx(
        LATENCIES[OP_GET] + 8 * window_time + bubble
    )
    assert whole.duration_s <= ranged.duration_s
    assert ranged.duration_s <= whole.duration_s + LATENCIES[OP_GET]


#: Per-op-class transient-failure probabilities for the retry section.
FAILURE_PROBS = {
    OP_PUT: 0.15,
    OP_GET: 0.12,
    OP_LIST: 0.20,
    OP_DELETE: 0.10,
    OP_HEAD: 0.05,
}


def make_flaky_store(failure_seed=3) -> ObjectStore:
    """A multipart s3like store with seeded failure injection."""
    config = StorageConfig(
        write_bandwidth=WRITE_BW,
        read_bandwidth=READ_BW,
        replication_factor=1,
        latency_s=0.0,
    )
    backend = RemoteObjectBackend(
        s3like_costs(
            WRITE_BW,
            READ_BW,
            put_latency_s=LATENCIES[OP_PUT],
            get_latency_s=LATENCIES[OP_GET],
            list_latency_s=LATENCIES[OP_LIST],
            delete_latency_s=LATENCIES[OP_DELETE],
            head_latency_s=LATENCIES[OP_HEAD],
        ),
        part_size_bytes=1 * MiB,
        fanout=2,
        failure_probs=FAILURE_PROBS,
        failure_seed=failure_seed,
    )
    return ObjectStore(config, SimClock(), backend=backend)


def _flaky_workload(store: ObjectStore) -> None:
    """A mixed workload that exercises every op class (multipart PUTs:
    each 4 MiB object is 4 part requests + 1 completion)."""
    payload = bytes(4 * MiB)
    for i in range(10):
        store.put(f"bench/obj{i:02d}", payload)
    for i in range(10):
        store.get(f"bench/obj{i:02d}")
    for i in range(10):
        store.exists(f"bench/obj{i:02d}")
    for i in range(10):
        store.list_keys("bench/")
    for i in range(10):
        store.delete(f"bench/obj{i:02d}")


def _retry_amplification(report):
    """Retry amplification + tail latency per op class under injected
    transient failures — the acceptance table of the transfer engine's
    retry/backoff loop (``OpReceipt.retries`` is finally nonzero)."""
    store = make_flaky_store()
    _flaky_workload(store)

    clean = make_store(part_size=1 * MiB, fanout=2)
    _flaky_workload(clean)

    report.row(
        "transient-failure injection (seeded): per-request failure "
        "probability by op class, retried by the engine with "
        f"exponential backoff (budget {store.config.max_retries}, "
        f"base {store.config.retry_backoff_s * 1000:.0f} ms)"
    )
    rows = []
    for op in OP_CLASSES:
        receipts = store.ops.receipts(op)
        assert receipts, f"no {op} receipts recorded"
        durations = np.asarray([r.duration_s for r in receipts])
        clean_durations = np.asarray(
            [r.duration_s for r in clean.ops.receipts(op)]
        )
        rows.append(
            f"{op:<8s} {FAILURE_PROBS[op]:>6.2f} {len(receipts):>5d}"
            f" {store.ops.total_retries(op):>8d}"
            f" {store.ops.retry_amplification(op):>7.3f}"
            f" {float(durations.mean()) * 1000:>10.2f}"
            f" {float(np.quantile(durations, 0.95)) * 1000:>10.2f}"
            f" {float(durations.max()) * 1000:>10.2f}"
            f" {float(clean_durations.max()) * 1000:>12.2f}"
        )
    report.table(
        "op        prob  reqs  retries  ampl     mean_ms     p95_ms"
        "     max_ms  clean_max_ms",
        rows,
    )

    # The engine's retry loop fired and populated receipt.retries —
    # the field is no longer dead plumbing.
    assert store.ops.total_retries(OP_PUT) >= 1
    assert store.ops.total_retries(OP_GET) >= 1
    assert store.ops.total_retries() > store.ops.total_retries(
        OP_PUT
    ), "retries must not be confined to one op class"
    assert any(r.retries > 0 for r in store.ops.receipts())
    assert store.ops.retry_amplification() > 1.0
    # No retries without injection: the clean store's receipts stay 0.
    assert clean.ops.total_retries() == 0

    # Retries stretch the latency tail: the flaky store's worst PUT
    # (wasted attempt latencies + backoff) exceeds the clean worst.
    flaky_max = max(r.duration_s for r in store.ops.receipts(OP_PUT))
    clean_max = max(r.duration_s for r in clean.ops.receipts(OP_PUT))
    assert flaky_max > clean_max

    # Deterministic under the fixed failure seed: an identical store
    # reproduces the injected sequence receipt for receipt.
    again = make_flaky_store()
    _flaky_workload(again)
    assert [
        (r.op, r.key, r.retries, r.duration_s)
        for r in again.ops.receipts()
    ] == [
        (r.op, r.key, r.retries, r.duration_s)
        for r in store.ops.receipts()
    ]
    report.row(
        f"overall amplification "
        f"{store.ops.retry_amplification():.3f}x "
        f"({store.ops.total_retries()} retries over "
        f"{len(store.ops.receipts())} ops); deterministic under the "
        "failure seed"
    )
