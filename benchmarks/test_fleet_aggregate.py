"""Fleet-aggregate Figs 15-17: many jobs, one store, one link.

The paper's reduction factors are fleet aggregates. This bench runs the
same 8-job fleet twice — full+fp32 baseline vs intermittent+adaptive —
and reports the aggregate write-bandwidth and capacity reductions
(paper: ~6x-17x bandwidth, ~2.5x-8x capacity depending on the restore
band), plus the heterogeneous fleet's link-sharing metrics.
"""

from __future__ import annotations

from repro.config import FleetConfig
from repro.fleet import (
    fleet_reduction_experiment,
    interleave_score,
    run_fleet,
)

TITLE = "Fleet aggregate - 8 jobs sharing one store (Figs 15-17 at fleet scale)"


def _run():
    config = FleetConfig(num_jobs=8, intervals_per_job=6, seed=0xF1EE7)
    scheduler, hetero = run_fleet(config)
    reduction = fleet_reduction_experiment(config)
    return scheduler, hetero, reduction


def test_fleet_aggregate(benchmark, report):
    scheduler, hetero, reduction = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    header = (
        "job      policy        quantizer   bits  ckpts  KiB_logical"
    )
    rows = [
        f"{j.job_id:<8s} {j.policy:<13s} {j.quantizer:<11s}"
        f" {j.bit_width:>4d}  {j.checkpoints_written:>5d}"
        f"  {j.bytes_logical / 1024:>11.0f}"
        for j in hetero.jobs
    ]
    report.table(header, rows)

    # Every job completed, and the fleet really was heterogeneous.
    assert all(j.checkpoints_written >= 1 for j in hetero.jobs)
    assert len({j.quantizer for j in hetero.jobs}) >= 2

    # The shared link interleaves cross-job traffic at chunk level.
    switches = interleave_score(scheduler.store.log.transfers("put"))
    report.row(f"cross-job interleave switches: {switches}")
    assert switches > 0

    # Aggregate throughput respects the configured link bandwidth.
    bw_cap = scheduler.store.config.write_bandwidth
    for lo, hi, bw in hetero.bandwidth_series:
        assert bw <= bw_cap * (1 + 1e-9)
    report.row(
        f"aggregate write bandwidth {hetero.aggregate_write_bandwidth / 2**20:.3f}"
        f" MiB/s over {hetero.duration_s:.1f} s"
        f" (link cap {bw_cap / 2**20:.0f} MiB/s)"
    )

    report.row("")
    report.row(reduction.format())

    # Paper Fig 17 envelope, within small-simulation tolerance: the
    # measured single-job envelope is 5.8x-12.8x bandwidth and
    # 3.7x-8.4x capacity; fleet aggregates land inside/near it.
    assert reduction.bandwidth_reduction > 5.0
    assert reduction.capacity_reduction > 3.0
