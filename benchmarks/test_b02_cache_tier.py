"""B2 — cache tier: near-tier size vs restore-storm time-to-recover.

Not a paper figure: Check-N-Run writes to a single far tier, but the
related work (TrainingCXL, FastPersist) layers an NVMe-class near tier
in front of remote object storage. This bench arms the same correlated
rack failure over an s3like fleet and sweeps the near-tier capacity of
a write-back :class:`~repro.storage.cache.CacheTierBackend` from
disabled to comfortably-larger-than-the-working-set. The acceptance
property: storm **time-to-recover** (the slowest storm restore,
trigger to finish) improves monotonically with tier size — restores
hit the near tier on a cache hit and only spill to ranged far-tier
GETs on a miss — while the artifact records the hit rate and dirty
backlog behind every point.
"""

from __future__ import annotations

from repro.config import (
    BackendConfig,
    FailureConfig,
    FleetConfig,
    MiB,
    StorageConfig,
)
from repro.fleet import run_fleet

TITLE = "B2 - cache tier: near-tier size vs storm time-to-recover"

KiB = 1024

#: Near-tier capacities swept, smallest first (0 = cache disabled).
CACHE_SWEEP = (0, 64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB)

#: Tolerance for the monotonicity assertion: a bigger tier may tie a
#: smaller one (both fully absorb the working set) but must never be
#: more than 1% slower.
TIE_SLACK = 1.01


def storm_config(cache_bytes: int) -> FleetConfig:
    return FleetConfig(
        num_jobs=6,
        intervals_per_job=3,
        seed=0xB2CAC4E,
        rows_per_table_choices=(1024, 2048, 4096),
        storage=StorageConfig(
            write_bandwidth=2.0 * MiB,
            read_bandwidth=4.0 * MiB,
            replication_factor=1,
            latency_s=0.002,
            backend=BackendConfig(
                kind="s3like",
                put_latency_s=0.030,
                get_latency_s=0.020,
                range_get_bytes=64 * KiB,
                cache_bytes=cache_bytes,
                cache_policy="write_back",
            ),
        ),
        failures=FailureConfig(min_failure_s=0.0),
        inject_failures=False,  # the storm is the only failure event
        stagger_s=5.0,
        storm_domain="rack",
    )


def _time_to_recover(report) -> tuple[float, int]:
    """Slowest storm restore (trigger to finish) and the sample count."""
    samples = [
        s
        for job in report.jobs
        for s in job.restore_samples
        if s.cause == "storm"
    ]
    assert samples, "the storm fired but produced no restore samples"
    return max(s.latency_s for s in samples), len(samples)


def test_cache_tier_storm_sweep(report):
    rows = []
    recover_times = []
    runs = []
    for cache_bytes in CACHE_SWEEP:
        _, run = run_fleet(storm_config(cache_bytes))
        assert run.storm is not None
        ttr, n_samples = _time_to_recover(run)
        recover_times.append(ttr)
        runs.append(run)
        label = (
            "disabled"
            if cache_bytes == 0
            else f"{cache_bytes // KiB:>5d} KiB"
        )
        rows.append(
            f"{label:>9s} {ttr:>12.3f} {n_samples:>8d}"
            f" {run.cache_hit_rate:>9.3f}"
            f" {run.cache_hits:>6d} {run.cache_misses:>7d}"
            f" {run.cache_evictions:>7d} {run.cache_dirty_flushes:>8d}"
            f" {run.cache_dirty_backlog:>8d}"
        )

    report.row(
        "write-back near tier over an s3like far tier "
        "(2 MiB/s write / 4 MiB/s read link, 64 KiB ranged GETs); "
        "rack storm over a 6-job fleet, fixed seed"
    )
    report.table(
        "    cache  recover_s  samples  hit_rate    hits  misses"
        "   evict  flushes  backlog",
        rows,
    )

    # Cache disabled: the seed path — no cache columns populate.
    assert runs[0].cache_capacity_bytes == 0
    assert runs[0].cache_hits == runs[0].cache_misses == 0

    # Monotone improvement: each step up in tier size recovers no
    # slower (1% tie slack), and the largest tier beats no-cache
    # outright.
    for smaller, larger in zip(recover_times, recover_times[1:]):
        assert larger <= smaller * TIE_SLACK, (
            f"time-to-recover regressed with a larger tier: "
            f"{recover_times}"
        )
    assert recover_times[-1] < recover_times[0]
    report.row("")
    report.row(
        f"time-to-recover {recover_times[0]:.3f} s (no cache) -> "
        f"{recover_times[-1]:.3f} s ({CACHE_SWEEP[-1] // KiB} KiB tier), "
        f"{recover_times[0] / recover_times[-1]:.2f}x faster"
    )

    # The sweep genuinely exercised the tier: capacity pressure evicted
    # and the write-back flusher ran in the pressured (sub-working-set)
    # tiers; the largest tier may hold its whole backlog below the
    # flush watermark — that is the point of a big enough tier.
    assert all(r.cache_evictions > 0 for r in runs[1:-1])
    assert all(r.cache_dirty_flushes > 0 for r in runs[1:-1])
    # Hit rate grows with capacity across the sweep's extremes.
    assert runs[-1].cache_hit_rate > runs[1].cache_hit_rate

    # Deterministic under the fixed seed: re-running a mid-sweep point
    # reproduces its report exactly (cache counters included).
    _, again = run_fleet(storm_config(CACHE_SWEEP[2]))
    assert again == runs[2]
