"""Fig 15: incremental checkpoint size per interval (bandwidth proxy).

Paper, over 30-minute intervals: one-shot starts at ~25% of the model
and exceeds 50% after ~10 intervals; intermittent grows identically
until the predictor refreshes the baseline (interval 8 in the paper,
just before 50%); consecutive stays flat (~25%) and averages ~33% less
write bandwidth over 12 intervals.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import incremental_policy_experiment

TITLE = "Fig 15 - checkpoint size per interval (fraction of model), 3 policies"


def _run():
    return incremental_policy_experiment(num_intervals=12)


def test_fig15_incremental_bandwidth(benchmark, report):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)
    by_policy = {r.policy: r for r in runs}

    header = "interval   " + "   ".join(
        f"{r.policy:>12s}" for r in runs
    )
    rows = [
        f"{i:8d}   "
        + "   ".join(f"{r.size_fractions[i]:12.2f}" for r in runs)
        for i in range(12)
    ]
    report.table(header, rows)

    one_shot = by_policy["one_shot"].size_fractions
    intermittent = by_policy["intermittent"]
    consecutive = by_policy["consecutive"].size_fractions

    # One-shot increments grow monotonically past 50%.
    assert list(one_shot[1:]) == sorted(one_shot[1:])
    assert one_shot[-1] > 0.5
    report.row(
        f"one-shot grows {one_shot[1]:.2f} -> {one_shot[-1]:.2f} "
        "(paper: ~0.25 -> >0.5)"
    )

    # Intermittent refreshes its baseline mid-run.
    refreshes = [
        i for i, kind in enumerate(intermittent.kinds) if kind == "full"
    ]
    assert len(refreshes) >= 2  # initial + at least one refresh
    report.row(
        f"intermittent refreshed full baseline at intervals {refreshes} "
        "(paper: interval 8)"
    )
    # The refresh fires before increments reach the full-model size.
    refresh = refreshes[1]
    assert intermittent.size_fractions[refresh - 1] < 1.0

    # Consecutive stays flat.
    flat = consecutive[1:]
    assert max(flat) - min(flat) < 0.1
    # ... and saves average bandwidth vs one-shot (paper: ~33% less).
    saving = 1 - np.mean(flat) / np.mean(one_shot[1:])
    report.row(
        f"consecutive avg increment {np.mean(flat):.2f} vs one-shot "
        f"{np.mean(one_shot[1:]):.2f}: {saving:.0%} lower "
        "(paper: ~33% lower)"
    )
    assert saving > 0.2
