"""Ablation a08: wasted work scales with the checkpoint interval.

Paper section 1, criterion (2): "taking a checkpoint every 1000 batches
of training data may lead to wasting time re-training those 1000
batches. Taking a checkpoint after 5000 batches leads to 5x more wasted
work in the worst case."

The fleet scheduler quantifies the average-case version: with failures
uniform within an interval, expected loss per failure is interval/2, so
wasted hours scale ~linearly with the interval. The bench sweeps a 5x
interval ratio and checks the wasted-work ratio lands near 5x.
"""

from __future__ import annotations

from repro.failures import ExponentialFailures, FleetScheduler, make_job_batch

TITLE = "Ablation a08 - wasted work vs checkpoint interval (intro claim)"

INTERVALS_H = (0.2, 0.5, 1.0)  # 5x between first and last


def _run():
    results = {}
    for interval in INTERVALS_H:
        scheduler = FleetScheduler(
            num_clusters=8,
            failure_model=ExponentialFailures(6 * 3600.0),
            checkpoint_interval_hours=interval,
            seed=42,
        )
        jobs = make_job_batch(200, mean_required_hours=24.0, seed=43)
        report = scheduler.run(jobs)
        results[interval] = {
            "failures": report.total_failures,
            "wasted_h": report.total_wasted_hours,
            "per_failure_h": report.total_wasted_hours
            / max(1, report.total_failures),
        }
    return results


def test_a08_wasted_work(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    report.table(
        "interval_h   failures   wasted_h   wasted_per_failure_h",
        [
            f"{interval:10.1f}   {r['failures']:8d}   "
            f"{r['wasted_h']:8.1f}   {r['per_failure_h']:20.3f}"
            for interval, r in results.items()
        ],
    )

    # Wasted work per failure grows with the interval...
    per_failure = [results[i]["per_failure_h"] for i in INTERVALS_H]
    assert per_failure == sorted(per_failure)
    # ...and the 5x interval ratio produces ~5x the per-failure waste
    # (expected loss is interval/2 under uniform failure placement).
    ratio = per_failure[-1] / per_failure[0]
    assert 3.0 < ratio < 7.0, f"expected ~5x, got {ratio:.1f}x"
    report.row(
        f"5x longer interval -> {ratio:.1f}x more wasted work per "
        "failure (paper's intro: 5x in the worst case)"
    )
