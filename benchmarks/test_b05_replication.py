"""B5 — peer replication vs interval checkpointing under one trace.

Not a paper figure, but Fig 15-style evidence for the replication
tier: the same seeded fleet — identical specs, identical independent
failure trace, the same armed rack storm — runs once with plain
interval checkpointing (``replicate_k=0``, every interval lands on
the store) and once with peer replication (``replicate_k=2``, the
store only sees retention-boundary baselines). The table reports, per
variant:

* **wasted batches** — training lost to crash rewind. A peer restore
  resumes at the crashed step (at most the one mid-send batch is
  lost); a store restore rewinds to the last landed checkpoint.
* **storm/store GET bytes** — restore-storm read traffic on the
  shared link. Peer reads travel the peer link instead, so the
  replicated fleet's GET series collapses.
* **store PUT bytes** — the write-side rent replication pays for
  that: only baseline flushes, but every flush is a full.

Gates: the replicated run must strictly reduce both wasted work and
storm read bytes against the same trace, and must actually have
recovered from peers (no silent no-op).

``B05_JOBS`` scales the fleet (default 8; CI runs reduced scale).
"""

from __future__ import annotations

import os

from repro.config import FailureConfig, FleetConfig
from repro.fleet import run_fleet

TITLE = "B5 - peer replication vs interval checkpointing (one trace)"


def trace_config(jobs: int, replicate_k: int) -> FleetConfig:
    """One shared crash-heavy storm trace; only the tier K varies."""
    return FleetConfig(
        num_jobs=jobs,
        intervals_per_job=6,
        seed=0xB05,
        replicate_k=replicate_k,
        quantizer_choices=("none",),
        bit_width_choices=(4,),
        priority_mix=0.5,
        storm_domain="rack",
        rack_size=2,
        inject_failures=True,
        max_failures_per_job=2,
        failures=FailureConfig(
            mean_time_to_failure_s=60.0, min_failure_s=5.0
        ),
    )


def test_replication_wasted_work_and_storm_reads(report):
    jobs = int(os.environ.get("B05_JOBS", "8"))
    rows = []
    outcomes = {}
    for k in (0, 2):
        _, run = run_fleet(trace_config(jobs, k))
        wasted = sum(j.wasted_batches for j in run.jobs)
        outcomes[k] = (run, wasted)
        rows.append(
            f"{('interval ckpt' if k == 0 else f'replicate k={k}'):>14s}"
            f" {run.failures:>5d} {run.restores:>5d}"
            f" {run.repl_peer_restores:>5d}"
            f" {run.repl_store_fallbacks:>6d}"
            f" {wasted:>7d}"
            f" {run.total_get_bytes / 2**20:>10.2f}"
            f" {run.total_put_bytes_physical / 2**20:>10.2f}"
        )
    base, base_wasted = outcomes[0]
    repl, repl_wasted = outcomes[2]

    report.row(
        f"{jobs} jobs x 6 intervals, rack storm (rack_size=2) + "
        "seeded independent failures; identical trace both runs"
    )
    report.table(
        "       variant  fail  rest  peer  fallbk  wasted"
        "    get_MiB    put_MiB",
        rows,
    )
    report.row("")

    # Both variants saw the same storm and real crash pressure.
    assert base.storm is not None and repl.storm is not None
    assert base.restores > 0
    assert repl.repl_peer_restores > 0

    wasted_reduction = base_wasted / max(1, repl_wasted)
    read_reduction = base.total_get_bytes / max(1, repl.total_get_bytes)
    report.row(
        f"wasted-work reduction: {wasted_reduction:.1f}x "
        f"({base_wasted} -> {repl_wasted} batches)"
    )
    report.row(
        f"storm read-byte reduction: {read_reduction:.1f}x "
        f"({base.total_get_bytes / 2**20:.2f} -> "
        f"{repl.total_get_bytes / 2**20:.2f} MiB)"
    )
    assert repl_wasted < base_wasted, (
        f"replication did not reduce wasted work: "
        f"{base_wasted} -> {repl_wasted}"
    )
    assert repl.total_get_bytes < base.total_get_bytes, (
        f"replication did not reduce storm reads: "
        f"{base.total_get_bytes} -> {repl.total_get_bytes}"
    )
