"""Fig 3: training-job failure CDF.

Paper: over one month on 21 clusters, the longest 10% of failed jobs ran
>= 13.5 hours before failing and the top 1% ran >= 53.9 hours (after
filtering sub-5-minute setup errors).

Reproduction: a Weibull failure model fitted to those two (filtered)
quantiles generates a fleet-month of failures; the bench reports the
empirical CDF and checks the published quantiles fall out.
"""

from __future__ import annotations

from repro.failures import HOUR_S, FailureTrace, paper_failure_model

TITLE = "Fig 3 - training job failure CDF (paper: P90>=13.5h, P99>=53.9h)"


def _generate() -> FailureTrace:
    return FailureTrace.generate(
        paper_failure_model(), num_jobs=50_000, seed=303,
        min_failure_s=300.0,
    )


def test_fig03_failure_cdf(benchmark, report):
    trace = benchmark.pedantic(_generate, rounds=1, iterations=1)

    report.table(
        "fraction_failed_by   runtime_hours",
        [
            f"{point.fraction:18.2f}   {point.time_hours:10.2f}"
            for point in trace.cdf(12)
        ],
    )
    p90_h = trace.quantile(0.90) / HOUR_S
    p99_h = trace.quantile(0.99) / HOUR_S
    report.row(f"measured P90 = {p90_h:.1f} h   (paper: 13.5 h)")
    report.row(f"measured P99 = {p99_h:.1f} h   (paper: 53.9 h)")
    report.row(f"jobs after 5-minute filter: {trace.count}")

    assert abs(p90_h - 13.5) / 13.5 < 0.1
    assert abs(p99_h - 53.9) / 53.9 < 0.15
