"""Ablation a09: restore cost per incremental policy (section 5.1).

The write-side savings of the consecutive policy (flat, small
increments) are paid for at restore time: "all previous checkpoints
must be read for recovery", while one-shot/intermittent read only the
baseline plus the latest increment. This bench crashes the same
workload under each policy after N intervals and measures the restore's
chain length and bytes read.
"""

from __future__ import annotations

from repro.experiments import build_experiment, small_config

TITLE = "Ablation a09 - restore chain length and bytes read per policy"

POLICIES = ("full", "one_shot", "intermittent", "consecutive")


def _run():
    results = {}
    for policy in POLICIES:
        exp = build_experiment(
            small_config(
                policy=policy,
                quantizer="none",
                interval_batches=10,
                num_tables=4,
                rows_per_table=8192,
                batch_size=128,
                keep_last=1_000_000,
            )
        )
        exp.controller.run_intervals(8)
        exp.clock.advance_to(exp.store.timeline.free_at + 1.0, "drain")
        exp.model.reinitialize()
        report = exp.controller.restore_latest()
        results[policy] = {
            "chain": len(report.chain_ids),
            "bytes": report.bytes_read,
            "rows": report.rows_restored,
        }
    return results


def test_a09_restore_cost(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    report.table(
        "policy         chain_length   MiB_read   rows_restored",
        [
            f"{policy:14s} {r['chain']:12d}   "
            f"{r['bytes'] / (1024 * 1024):8.2f}   {r['rows']:13d}"
            for policy, r in results.items()
        ],
    )

    # Full restores exactly one checkpoint; one-shot/intermittent read
    # a baseline + one increment; consecutive walks the whole chain.
    assert results["full"]["chain"] == 1
    assert results["one_shot"]["chain"] == 2
    assert results["intermittent"]["chain"] <= 2
    assert results["consecutive"]["chain"] >= 5
    # Consecutive reads the most data at recovery...
    assert (
        results["consecutive"]["bytes"] > results["full"]["bytes"]
    )
    # ...which is the trade the paper resolves with the intermittent
    # default: near-full restore cost, incremental write cost.
    assert (
        results["intermittent"]["bytes"]
        < results["consecutive"]["bytes"]
    )
    report.row(
        f"consecutive read {results['consecutive']['chain']} "
        "checkpoints to recover; intermittent read "
        f"{results['intermittent']['chain']} (the paper's default "
        "trade-off)"
    )
