"""Fig 13: checkpoint quantization latency vs ratio (25 and 45 bins).

Paper: latency grows with ratio (a wider fraction of the range is
searched); the 45-bin curve sits above the 25-bin curve.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.clock import Stopwatch
from repro.metrics.latency import REFERENCE_ELEMENTS, LatencyModel
from repro.quant.adaptive import greedy_range_search

TITLE = "Fig 13 - quantization latency vs ratio (25 and 45 bins)"

RATIOS = (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)
BINS = (25, 45)


def _measure(tensor: np.ndarray) -> dict[tuple[int, float], float]:
    measured = {}
    for bins in BINS:
        for ratio in RATIOS:
            watch = Stopwatch()
            with watch:
                greedy_range_search(tensor, 4, bins, ratio)
            measured[(bins, ratio)] = watch.elapsed
    return measured


def test_fig13_latency_ratio(benchmark, report, bench_tensor):
    measured = benchmark.pedantic(
        _measure, args=(bench_tensor,), rounds=1, iterations=1
    )
    model = LatencyModel()
    projected = {
        (bins, ratio): model.adaptive_s(REFERENCE_ELEMENTS, bins, ratio)
        for bins in BINS
        for ratio in RATIOS
    }

    report.table(
        "ratio   25bins_paper_s   45bins_paper_s   25bins_local_s",
        [
            f"{ratio:5.1f}   {projected[(25, ratio)]:14.0f}   "
            f"{projected[(45, ratio)]:14.0f}   "
            f"{measured[(25, ratio)]:14.3f}"
            for ratio in RATIOS
        ],
    )

    for bins in BINS:
        series = [projected[(bins, r)] for r in RATIOS]
        assert series == sorted(series)  # latency grows with ratio
        local = [measured[(bins, r)] for r in RATIOS]
        assert local[-1] > local[0]
    # 45-bin curve dominates the 25-bin curve at every ratio.
    for ratio in RATIOS:
        assert projected[(45, ratio)] >= projected[(25, ratio)]
    report.row(
        "latency grows with ratio; 45-bin curve above 25-bin curve "
        "(matches paper)"
    )
