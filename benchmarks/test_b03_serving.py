"""B3 — serving plane: row-cache size vs lookup latency under flips.

Not a paper figure: Check-N-Run's online-training use-case (sections 1,
5.1) publishes checkpoints to inference in real time but the paper
stops at the publisher. This bench co-simulates the full plane — one
training job checkpointing under the *consecutive* policy while an
inference fleet answers Zipf-skewed embedding-row lookups against the
latest published version, everything contending for one storage link —
and sweeps the per-server row-cache capacity. The acceptance
properties: the cache **hit rate rises monotonically** with capacity
(pinned hot rows + LRU over a Zipfian row population must convert
capacity into hits), the **lookup p99 never regresses** as capacity
grows, and across every point the run performs at least 3 atomic
version flips under live traffic with **zero torn lookups** (every
served value bit-equal to the golden snapshot of the version the
request claims).
"""

from __future__ import annotations

import dataclasses

from repro.experiments import small_config
from repro.serving import ServingConfig, run_serving

TITLE = "B3 - serving plane: row-cache size vs lookup latency"

#: Per-server row-cache capacities swept, smallest first.
CACHE_SWEEP = (16, 64, 256, 1024)

#: Tolerance for the p99 monotonicity assertion: a bigger cache may tie
#: a smaller one but must never be more than 5% slower at the tail.
TIE_SLACK = 1.05


def exp_config():
    config = small_config(
        policy="consecutive",
        interval_batches=25,
        num_tables=2,
        rows_per_table=2048,
        batch_size=64,
    )
    # Small chunks make one miss a cheap ranged read instead of a
    # whole-table transfer — the serving-side analogue of ranged GETs.
    return dataclasses.replace(
        config,
        checkpoint=dataclasses.replace(
            config.checkpoint, chunk_rows=256
        ),
    )


def serving_config(cache_rows: int) -> ServingConfig:
    return ServingConfig(
        num_servers=3,
        cache_rows=cache_rows,
        qps=16.0,
        num_queries=300,
        train_intervals=6,
        hot_rows_per_table=48,
    )


def test_row_cache_sweep(report):
    config = exp_config()
    rows = []
    results = []
    for cache_rows in CACHE_SWEEP:
        run = run_serving(config, serving_config(cache_rows))
        results.append(run)
        rows.append(
            f"{cache_rows:>6d} {run.hit_rate:>9.3f}"
            f" {run.lookup_p50_s * 1e3:>9.2f} {run.lookup_p99_s * 1e3:>9.2f}"
            f" {run.version_flips:>6d} {run.straddled_requests:>10d}"
            f" {run.torn_lookups:>5d} {run.publishes:>5d}"
            f" {run.serving_read_bytes // 1024:>9d}"
        )

    report.row(
        "3 inference servers, 16 qps Zipfian lookups over 300 requests;"
        " training checkpoints underneath (consecutive policy, 6"
        " intervals, 256-row chunks); shared-link contention"
    )
    report.table(
        " cache  hit_rate   p50_ms    p99_ms  flips  straddled"
        "  torn  pubs  read_KiB",
        rows,
    )

    # Flip atomicity under load: every point flips >= 3 times with
    # traffic in flight and never serves a torn (version-mixed) value.
    for run in results:
        assert run.version_flips >= 3, "too few flips to prove anything"
        assert run.torn_lookups == 0, "a lookup mixed two versions"
        assert run.requests == 300
        assert run.publishes >= 3

    # The cache converts capacity into hits, monotonically...
    hit_rates = [run.hit_rate for run in results]
    for smaller, larger in zip(hit_rates, hit_rates[1:]):
        assert larger >= smaller, f"hit rate regressed: {hit_rates}"
    assert hit_rates[-1] > hit_rates[0] + 0.2

    # ...and hits into tail latency: p99 never regresses with capacity
    # and the largest cache beats the smallest outright.
    p99s = [run.lookup_p99_s for run in results]
    for smaller, larger in zip(p99s, p99s[1:]):
        assert larger <= smaller * TIE_SLACK, (
            f"lookup p99 regressed with a larger cache: {p99s}"
        )
    assert p99s[-1] < p99s[0]
    p50s = [run.lookup_p50_s for run in results]
    assert p50s[-1] < p50s[0]

    report.row("")
    report.row(
        f"hit rate {hit_rates[0]:.3f} -> {hit_rates[-1]:.3f}, lookup"
        f" p99 {p99s[0] * 1e3:.2f} ms -> {p99s[-1] * 1e3:.2f} ms"
        f" ({CACHE_SWEEP[0]} -> {CACHE_SWEEP[-1]} rows/server),"
        f" {sum(r.version_flips for r in results)} flips /"
        f" {sum(r.torn_lookups for r in results)} torn lookups total"
    )
