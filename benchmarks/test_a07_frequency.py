"""Ablation a07: sustainable checkpoint frequency (paper section 4.3).

"The checkpointing frequency is bounded by the available write
bandwidth to remote storage ... it is necessary to minimize the
required bandwidth to enable frequent checkpoints."

Two checkpoints may never overlap, so an interval is *sustainable* only
if each checkpoint's write completes before the next one triggers. This
bench sweeps the interval length for the fp32 full-checkpoint baseline
and for Check-N-Run (intermittent + 4-bit adaptive) on a
bandwidth-constrained store, counting skipped checkpoints: Check-N-Run
sustains intervals the baseline cannot.
"""

from __future__ import annotations

from repro.config import MiB, StorageConfig
from repro.experiments import build_experiment, small_config

TITLE = "Ablation a07 - sustainable checkpoint frequency vs write bandwidth"

INTERVALS = (6, 12, 24)  # batches per interval; short = frequent


def _run_one(policy, quantizer, bits, interval_batches):
    config = small_config(
        policy=policy,
        quantizer=quantizer,
        bit_width=bits,
        interval_batches=interval_batches,
        num_tables=4,
        rows_per_table=16384,
        batch_size=256,
    ).with_overrides(
        storage=StorageConfig(write_bandwidth=4.0 * MiB, latency_s=0.0)
    )
    exp = build_experiment(config)
    exp.controller.run_intervals(10)
    stats = exp.controller.stats
    return stats.checkpoints_written, stats.checkpoints_skipped


def _run():
    results = {}
    for interval in INTERVALS:
        results[("baseline", interval)] = _run_one(
            "full", "none", None, interval
        )
        results[("check-n-run", interval)] = _run_one(
            "intermittent", "adaptive", 4, interval
        )
    return results


def test_a07_sustainable_frequency(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    report.table(
        "interval_batches   baseline written/skipped   cnr written/skipped",
        [
            f"{interval:16d}   "
            f"{results[('baseline', interval)][0]:8d}/"
            f"{results[('baseline', interval)][1]:<8d}   "
            f"{results[('check-n-run', interval)][0]:3d}/"
            f"{results[('check-n-run', interval)][1]:<3d}"
            for interval in INTERVALS
        ],
    )

    # At the shortest interval the baseline must skip checkpoints
    # (writes outlast intervals) while Check-N-Run keeps up.
    base_written, base_skipped = results[("baseline", INTERVALS[0])]
    cnr_written, cnr_skipped = results[("check-n-run", INTERVALS[0])]
    assert base_skipped > 0, "baseline should be bandwidth-bound"
    assert cnr_skipped == 0, "Check-N-Run should sustain the frequency"
    assert cnr_written > base_written
    # At a long enough interval, both sustain.
    assert results[("baseline", INTERVALS[-1])][1] == 0
    report.row(
        f"at {INTERVALS[0]}-batch intervals the fp32 baseline skipped "
        f"{base_skipped} of 10 checkpoints; Check-N-Run skipped none "
        "(section 4.3's bandwidth-bounded frequency, lifted by 6-17x "
        "smaller writes)"
    )
