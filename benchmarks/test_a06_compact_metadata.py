"""Ablation a06: fp16 quantization metadata (paper's future work).

Section 6.3.2: reduction factors "are not linearly proportional to the
chosen quantization bit-width due to the metadata structure ...
Metadata structure can be further optimized in future work." This bench
implements that optimisation — per-row (xmin, xmax) stored as fp16
instead of fp32 — and measures both sides of the trade: bytes saved vs
l2 error added, across embedding widths.
"""

from __future__ import annotations

from repro.quant import make_quantizer, mean_l2_error

TITLE = "Ablation a06 - fp16 quantization metadata (bytes vs error)"


def _run(tensor):
    results = {}
    for bits in (2, 4):
        for compact in (False, True):
            quantizer = make_quantizer(
                "adaptive", bits=bits, num_bins=25,
                compact_params=compact,
            )
            qt = quantizer.quantize(tensor)
            results[(bits, compact)] = {
                "total_bytes": qt.nbytes,
                "param_bytes": qt.param_bytes,
                "error": mean_l2_error(
                    tensor, quantizer.dequantize(qt)
                ),
            }
    return results


def test_a06_compact_metadata(benchmark, report, bench_tensor):
    results = benchmark.pedantic(
        _run, args=(bench_tensor,), rounds=1, iterations=1
    )

    report.table(
        "bits   params   total_KiB   param_KiB   mean_l2",
        [
            f"{bits:4d}   {'fp16' if compact else 'fp32':6s}   "
            f"{r['total_bytes'] / 1024:9.1f}   "
            f"{r['param_bytes'] / 1024:9.1f}   {r['error']:.6f}"
            for (bits, compact), r in sorted(results.items())
        ],
    )

    for bits in (2, 4):
        fp32 = results[(bits, False)]
        fp16 = results[(bits, True)]
        # Metadata halves exactly.
        assert fp16["param_bytes"] == fp32["param_bytes"] // 2
        # Error cost of the rounded bounds is marginal (< 5% relative).
        assert fp16["error"] <= fp32["error"] * 1.05
        saved = 1 - fp16["total_bytes"] / fp32["total_bytes"]
        report.row(
            f"{bits}-bit: fp16 metadata saves {saved:.1%} of the "
            f"checkpoint at {fp16['error'] / fp32['error'] - 1:+.2%} "
            "relative error"
        )
    # The saving matters more at lower bit widths, where metadata is a
    # larger share of the checkpoint — the paper's observation.
    saving2 = 1 - (
        results[(2, True)]["total_bytes"]
        / results[(2, False)]["total_bytes"]
    )
    saving4 = 1 - (
        results[(4, True)]["total_bytes"]
        / results[(4, False)]["total_bytes"]
    )
    assert saving2 > saving4
