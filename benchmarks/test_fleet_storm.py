"""Restore storm under priority tiers: correlated failure, one link.

CPR (Maeng et al.) argues recovery behaviour dominates recommendation-
training goodput; Check-N-Run's fleet distinguishes production from
experimental jobs. This bench arms a correlated power-domain failure
over a tiered fleet on a deliberately slow shared link and measures the
per-tier restore-latency distribution, contention degradation
(latency / idle-link service time), preemption counts and goodput. The
invariant under test: prod restores, served first by the tier-aware
arbiter and allowed to preempt experimental staged writes, degrade
measurably less than experimental ones in the same storm.
"""

from __future__ import annotations

import numpy as np

from repro.config import FailureConfig, FleetConfig, MiB, StorageConfig
from repro.fleet import (
    TIER_EXPERIMENTAL,
    TIER_PROD,
    format_storm_report,
    run_fleet,
    summarize_tiers,
)

TITLE = "Fleet storm - tiered restore latency under a correlated failure"


def storm_config() -> FleetConfig:
    return FleetConfig(
        num_jobs=8,
        intervals_per_job=4,
        seed=0x5709,
        rows_per_table_choices=(1024, 2048, 4096),
        storage=StorageConfig(
            write_bandwidth=1.5 * MiB,
            read_bandwidth=3.0 * MiB,
            replication_factor=2,
            latency_s=0.002,
        ),
        failures=FailureConfig(min_failure_s=0.0),
        inject_failures=False,  # the storm is the only failure event
        stagger_s=5.0,
        priority_mix=0.375,  # 3 of 8 jobs run as prod
        storm_domain="power",  # whole-fleet blast radius
        preempt_wait_s=0.25,  # ~one chunk time on this link
    )


def test_fleet_storm(benchmark, report):
    scheduler, run = benchmark.pedantic(
        lambda: run_fleet(storm_config()), rounds=1, iterations=1
    )

    report.row(format_storm_report(run))

    tiers = {t.tier: t for t in summarize_tiers(run)}
    prod, exp = tiers[TIER_PROD], tiers[TIER_EXPERIMENTAL]

    # The storm fired and both tiers restored through the shared link.
    assert run.storm is not None
    assert prod.storm_restores >= 1
    assert exp.storm_restores >= 1

    # Tier arbitration: prod restores are never starved behind
    # experimental read traffic, so their queueing degradation stays
    # measurably below experimental's. (Absolute latencies are not
    # tier-comparable — model sizes differ across jobs — which is why
    # the invariant is on the contention-inflation factor.)
    assert prod.restore_degradation < exp.restore_degradation
    report.row("")
    report.row(
        f"prod degradation {prod.restore_degradation:.2f}x vs "
        f"experimental {exp.restore_degradation:.2f}x"
    )

    # Preemption ledger is consistent across scheduler, arbiter and
    # report: every abort-and-requeue was counted exactly once.
    preempted_events = [
        e for e in scheduler.events if e.kind == "preempted"
    ]
    arbiter_count = sum(
        s.preemptions for s in scheduler.store.arbiter.streams()
    )
    assert (
        len(preempted_events)
        == arbiter_count
        == prod.preempted_writes + exp.preempted_writes
    )
    # Only experimental writes are ever preempted.
    assert prod.preempted_writes == 0

    # Deterministic under the fixed seed: same config, same outcome.
    _, again = run_fleet(storm_config())
    assert again == run

    # Goodput stays meaningful on both tiers (the storm wastes work but
    # does not zero anyone out).
    for t in (prod, exp):
        assert 0.0 < t.goodput <= 1.0
    report.row(
        f"goodput prod {prod.goodput:.3f} / experimental "
        f"{exp.goodput:.3f}; restore p95 prod "
        f"{prod.restore_latency_p95_s:.3f}s vs experimental "
        f"{exp.restore_latency_p95_s:.3f}s "
        f"(mean over {prod.storm_restores}+{exp.storm_restores} storm "
        "restores)"
    )
    assert float(np.mean([prod.goodput, exp.goodput])) > 0.5
