"""Shared benchmark fixtures and the figure-report helper.

Every bench regenerates one table or figure from the paper. Results are
printed to stdout *and* appended to ``benchmarks/results/<name>.txt`` so
the series survive pytest's output capturing; EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


class FigureReport:
    """Collects the rows of one regenerated figure/table."""

    def __init__(self, name: str, title: str) -> None:
        self.name = name
        self.title = title
        self.lines: list[str] = []

    def row(self, text: str) -> None:
        self.lines.append(text)

    def table(self, header: str, rows: list[str]) -> None:
        self.lines.append(header)
        self.lines.append("-" * len(header))
        self.lines.extend(rows)

    def emit(self) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        body = "\n".join(
            [f"== {self.title} ==", *self.lines, ""]
        )
        (RESULTS_DIR / f"{self.name}.txt").write_text(body)
        print("\n" + body)
        return body


@pytest.fixture
def report(request) -> FigureReport:
    """A per-test figure report named after the test module."""
    module = request.module.__name__.split(".")[-1]
    name = module.replace("test_", "")
    title = getattr(request.module, "TITLE", name)
    fig = FigureReport(name, title)
    yield fig
    fig.emit()


@pytest.fixture(scope="session")
def bench_tensor():
    """The shared trained-checkpoint tensor for quantization benches."""
    from repro.experiments import trained_embedding_matrix

    return trained_embedding_matrix(
        rows=8192, dim=16, train_batches=200, num_tables=4, seed=11
    )
