"""Fig 14: lifetime accuracy degradation from quantized-checkpoint
restores, panels (a) 2-bit, (b) 3-bit, (c) 4-bit.

Paper: degradation accumulates with the number of restores and shrinks
with bit width; 2-bit stays under the 0.01% threshold only for <= 1
restore, 3-bit up to 3, 4-bit up to 20, 8-bit beyond 100.

Reproduction: paired fp32 training runs on a sparse-dominated synthetic
click log; the variant's embeddings pass through a quantize/de-quantize
round trip at each restore point and the cumulative progressive loss
gap (seed-averaged) is the lifetime degradation. Absolute values depend
on model scale; the assertions pin the structure the paper's
threshold table rests on.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import accuracy_degradation_experiment

TITLE = "Fig 14 - lifetime accuracy degradation (2/3/4-bit panels)"

PANELS = {
    2: (1, 2, 3),
    3: (2, 3, 4),
    4: (10, 20, 30),
}


def _run_all():
    return {
        bits: accuracy_degradation_experiment(bits, restore_counts)
        for bits, restore_counts in PANELS.items()
    }


def test_fig14_accuracy_degradation(benchmark, report):
    panels = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    for bits, curves in panels.items():
        report.table(
            f"panel {bits}-bit:  restores | degradation_pct over the run",
            [
                f"{'':18s}{curve.num_restores:8d} | "
                + "  ".join(
                    f"{p.degradation_pct:+.4f}" for p in curve.points
                )
                for curve in curves
            ],
        )

    # (1) 2-bit: lifetime degradation grows with the number of restores,
    # and a single restore stays small (the paper's L <= 1 verdict).
    two_bit = {
        c.num_restores: c.final_degradation_pct for c in panels[2]
    }
    assert two_bit[1] < 0.03, "one 2-bit restore should be benign"
    assert two_bit[3] > two_bit[1], (
        "repeated 2-bit restores must accumulate damage"
    )
    assert two_bit[2] > two_bit[1] - 0.01
    report.row(
        f"2-bit final degradation 1/2/3 restores: "
        f"{two_bit[1]:+.4f}% / {two_bit[2]:+.4f}% / {two_bit[3]:+.4f}%"
    )

    # (2) 3-bit degrades less than 2-bit at matched restore counts.
    three_bit = {
        c.num_restores: c.final_degradation_pct for c in panels[3]
    }
    assert three_bit[3] < two_bit[3]
    assert three_bit[2] < two_bit[2] + 0.01
    report.row(
        f"at 3 restores: 2-bit {two_bit[3]:+.4f}% vs 3-bit "
        f"{three_bit[3]:+.4f}% (wider bits degrade less)"
    )

    # (3) Per-restore damage ordering across widths: 2 > 3 > 4 bit.
    per_restore = {}
    for bits, curves in panels.items():
        damage = [
            c.final_degradation_pct / c.num_restores for c in curves
        ]
        per_restore[bits] = float(np.mean(damage))
    assert per_restore[2] > per_restore[3] > per_restore[4]
    report.row(
        "mean damage per restore: "
        + ", ".join(
            f"{b}-bit {per_restore[b]:+.5f}%" for b in (2, 3, 4)
        )
        + " (matches the paper's width-tolerance ordering)"
    )

    # (4) Nothing systematically *improves* from being quantized.
    for bits, curves in panels.items():
        for curve in curves:
            assert curve.final_degradation_pct > -0.03, (
                f"{bits}-bit x{curve.num_restores} shows systematic "
                "improvement, which would be unphysical"
            )
