"""Fig 10: adaptive-vs-naive l2 improvement as a function of num_bins.

Paper: improvement grows with the number of bins and is largest for the
lowest bit widths (up to ~25-30% at 2 bits); the curve flattens around
25-45 bins.
"""

from __future__ import annotations

from repro.experiments import adaptive_bins_sweep, optimal_bins

TITLE = "Fig 10 - adaptive improvement over naive asymmetric vs num_bins"

BINS = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50)


def test_fig10_adaptive_bins(benchmark, report, bench_tensor):
    points = benchmark.pedantic(
        adaptive_bins_sweep,
        args=(bench_tensor,),
        kwargs={"bit_widths": (2, 3, 4), "bins_values": BINS},
        rounds=1,
        iterations=1,
    )

    series = {
        bits: [p.improvement for p in points if p.bits == bits]
        for bits in (2, 3, 4)
    }
    report.table(
        "bins    2-bit     3-bit     4-bit",
        [
            f"{bins:4d}   {series[2][i]:6.1%}   {series[3][i]:6.1%}   "
            f"{series[4][i]:6.1%}"
            for i, bins in enumerate(BINS)
        ],
    )
    for bits in (2, 3, 4):
        report.row(
            f"{bits}-bit optimal bins: {optimal_bins(points, bits)}"
        )

    # Improvement is non-negative everywhere and meaningful at 2 bits.
    assert all(p.improvement >= -1e-9 for p in points)
    assert max(series[2]) > 0.05
    # Lower widths gain at least as much as higher ones at the optimum.
    assert max(series[2]) >= max(series[4])
    # The curve grows from few bins to the optimum.
    assert series[2][-1] >= series[2][0]
