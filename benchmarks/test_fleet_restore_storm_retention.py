"""Storm read traffic: chain-depth vs storm-aware retention.

A correlated rack failure makes every job on the rack re-read its
restore chain through the shared link at once. Chain-depth retention
(the default) lets a ``consecutive``-policy job owe that storm a
full-plus-N-increment re-read; storm-aware retention bounds the chain
at ``storm_chain_limit`` links by forcing baseline refreshes, trading a
little extra write traffic for a hard cap on per-job storm read bytes.

This bench runs the *same* rack-failure storm twice — identical seeds,
identical job sampling, only the retention mode differs — and measures
the storm read-byte reduction. It also exercises read-side admission:
in both runs experimental restores are paced on the projected backlog
(nonzero ``rdefer``) while prod restores start immediately (zero).
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import FailureConfig, FleetConfig, MiB, StorageConfig
from repro.fleet import (
    TIER_EXPERIMENTAL,
    TIER_PROD,
    format_storm_report,
    run_fleet,
    summarize_tiers,
)

TITLE = (
    "Restore storm read traffic - chain-depth vs storm-aware retention"
)


def storm_fleet_config() -> FleetConfig:
    """A consecutive-policy fleet (longest chains) facing a rack storm."""
    return FleetConfig(
        num_jobs=8,
        intervals_per_job=8,
        seed=0xC4A1,
        rows_per_table_choices=(2048,),
        num_tables_choices=(2,),
        # Long intervals: every write lands well before the next
        # trigger, so chains build from *landed* checkpoints instead of
        # skip-on-overlap and the storm fires on restorable jobs.
        interval_batches_choices=(24,),
        # Consecutive increments chain all the way back to the last
        # full checkpoint - the policy storm-aware retention exists for.
        policy_choices=("consecutive",),
        policy_weights=(1.0,),
        quantizer_choices=("float16",),
        bit_width_choices=(8,),
        keep_last=2,
        stagger_s=5.0,
        storage=StorageConfig(
            write_bandwidth=1.5 * MiB,
            read_bandwidth=3.0 * MiB,
            replication_factor=2,
            latency_s=0.002,
        ),
        failures=FailureConfig(min_failure_s=0.0),
        inject_failures=False,  # the storm is the only failure event
        priority_mix=0.375,  # 3 of 8 jobs run as prod
        storm_domain="rack",
        rack_size=4,
        storm_at_fraction=0.6,  # let chains build up first
        # Write preemption off: on this slow link synchronized prod
        # writers would keep experimental checkpoints from ever
        # landing, and the storm could only force-fire onto scratch
        # restarts — this bench isolates the *read* path.
        preempt_staged_writes=False,
        # Read-side admission: pace experimental restores hard enough
        # that the storm's prod drain visibly defers them.
        restore_admission="dynamic",
        restore_backlog_factor=0.05,
    )


def total_storm_read_bytes(scheduler) -> int:
    """GET bytes moved at or after the storm fired (chain re-reads)."""
    fired = scheduler.storm_fired_at_s
    assert fired is not None
    return sum(
        t.nbytes
        for t in scheduler.store.log.transfers("get")
        if t.end_s >= fired
    )


def test_restore_storm_retention(benchmark, report):
    chain_depth = storm_fleet_config()
    storm_aware = replace(
        chain_depth, retention_mode="storm_aware", storm_chain_limit=2
    )

    (sched_depth, run_depth), (sched_aware, run_aware) = (
        benchmark.pedantic(
            lambda: (run_fleet(chain_depth), run_fleet(storm_aware)),
            rounds=1,
            iterations=1,
        )
    )

    # The same storm fired in both runs: same domain, same victims.
    assert run_depth.storm is not None and run_aware.storm is not None
    assert run_depth.storm[0] == run_aware.storm[0] == "rack"
    assert run_depth.storm[3] == run_aware.storm[3]

    depth_bytes = total_storm_read_bytes(sched_depth)
    aware_bytes = total_storm_read_bytes(sched_aware)
    reduction = depth_bytes / aware_bytes if aware_bytes else float("inf")

    report.row("same rack-failure storm, two retention modes:")
    report.row("")
    report.row(
        "retention     storm_read_KiB  baseline_refreshes  write_KiB"
    )
    report.row("-" * 58)
    for label, run, nbytes in (
        ("chain_depth", run_depth, depth_bytes),
        ("storm_aware", run_aware, aware_bytes),
    ):
        report.row(
            f"{label:<13s} {nbytes / 1024:>14.1f}"
            f"  {run.baseline_refreshes:>18d}"
            f"  {run.total_put_bytes_logical / 1024:>9.1f}"
        )
    report.row("")
    report.row(
        f"storm read-byte reduction: {reduction:.2f}x "
        f"(chain bound = {storm_aware.storm_chain_limit})"
    )

    # Storm-aware retention must actually cut the storm's read traffic
    # under the identical failure, by bounding every job's chain.
    assert run_aware.baseline_refreshes > 0
    assert run_depth.baseline_refreshes == 0
    assert aware_bytes < depth_bytes

    # Read-side admission in the same runs: experimental restores were
    # paced (nonzero deferrals), prod restores never are.
    for run in (run_depth, run_aware):
        tiers = {t.tier: t for t in summarize_tiers(run)}
        assert tiers[TIER_PROD].restore_deferred == 0
        assert tiers[TIER_EXPERIMENTAL].restore_deferred > 0

    report.row("")
    report.row("== chain-depth retention, per-tier storm table ==")
    report.row(format_storm_report(run_depth))
    report.row("")
    report.row("== storm-aware retention, per-tier storm table ==")
    report.row(format_storm_report(run_aware))
