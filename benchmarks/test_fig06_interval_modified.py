"""Fig 6: fraction of model modified during fixed-length intervals.

Paper: for a given interval length the modified fraction is almost the
same in every interval (e.g. ~26% in every 30-minute interval), and
longer intervals touch more.

Reproduction: the same Zipf-lookup trace cut into 10/20/30/60-minute
windows.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import interval_modified_experiment

TITLE = "Fig 6 - % of model modified per 10/20/30/60-minute interval"


def _run():
    return interval_modified_experiment(
        rows=200_000,
        alpha=1.05,
        lookups_per_minute=4_000,
        total_minutes=360,
        interval_minutes=(10, 20, 30, 60),
        seed=32,
    )


def test_fig06_interval_modified(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    report.table(
        "interval_min   mean_fraction   min..max across windows",
        [
            f"{r.interval_steps:12d}   {r.mean_fraction:13.3f}   "
            f"{min(r.fractions):.3f}..{max(r.fractions):.3f}"
            for r in results
        ],
    )

    # Longer intervals touch more of the model.
    means = [r.mean_fraction for r in results]
    assert means == sorted(means)

    # Stability within an interval length (paper: "remains almost the
    # same in all intervals").
    for result in results:
        rel_spread = (max(result.fractions) - min(result.fractions)) / (
            result.mean_fraction
        )
        assert rel_spread < 0.1, (
            f"{result.interval_steps}-minute windows vary by "
            f"{rel_spread:.1%}"
        )

    # Sub-additivity: doubling the interval less than doubles the
    # fraction (hot rows repeat).
    by_len = {r.interval_steps: r.mean_fraction for r in results}
    assert by_len[60] < 2 * by_len[30]
    assert by_len[20] < 2 * by_len[10]
    report.row(
        f"30-min interval mean fraction: {by_len[30]:.3f} "
        "(paper: ~0.26)"
    )
    assert 0.05 < by_len[30] < 0.6
