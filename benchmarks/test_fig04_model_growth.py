"""Fig 4: normalised model size over two years.

Paper: the recommendation model grew more than 3x over the past two
years (absolute sizes confidential). Reproduction: the synthetic growth
trace with the published factor; downstream experiments only consume
the >3x headline and monotonicity.
"""

from __future__ import annotations

from repro.metrics.growth import growth_factor, model_growth_trace

TITLE = "Fig 4 - normalised model size over 2 years (paper: > 3x)"


def test_fig04_model_growth(benchmark, report):
    trace = benchmark(model_growth_trace, months=24, total_growth=3.2)

    report.table(
        "month   relative_size",
        [
            f"{p.month:5d}   {p.relative_size:13.2f}"
            for p in trace
            if p.month % 3 == 0
        ],
    )
    factor = growth_factor(trace)
    report.row(f"measured growth factor = {factor:.2f}x (paper: > 3x)")
    assert factor > 3.0
    sizes = [p.relative_size for p in trace]
    assert sizes == sorted(sizes)
