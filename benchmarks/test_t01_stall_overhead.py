"""Section 6.1 overhead table: snapshot stall and tracking overhead.

Paper numbers at production scale: creating a snapshot of a typical
model across 16 nodes stalls training for < 7 s; at 30-minute intervals
that is < 0.4% of training time; efficient tracking costs < 1% of
iteration time.
"""

from __future__ import annotations

from repro.config import GiB
from repro.experiments import (
    snapshot_stall_at_scale,
    tracking_overhead_experiment,
)

TITLE = "Table (section 6.1) - snapshot stall and tracking overhead"

MODEL_SIZES_GIB = (256, 512, 1024, 2048)


def _run():
    stalls = [
        snapshot_stall_at_scale(size * GiB) for size in MODEL_SIZES_GIB
    ]
    tracking = tracking_overhead_experiment(batches=50)
    return stalls, tracking


def test_t01_stall_and_tracking_overhead(benchmark, report):
    stalls, tracking = benchmark.pedantic(_run, rounds=1, iterations=1)

    report.table(
        "model_size   stall_seconds   interval_overhead",
        [
            f"{size:7d}GiB   {row.stall_s:13.2f}   "
            f"{row.overhead_fraction:16.3%}"
            for size, row in zip(MODEL_SIZES_GIB, stalls)
        ],
    )

    # Paper: <= 7 s stall for a typical (terabyte-class) model on the
    # 16-node cluster, < 0.4% of a 30-minute interval.
    typical = stalls[2]  # 1 TiB
    assert typical.stall_s < 7.0
    assert typical.overhead_fraction < 0.004
    report.row(
        f"1 TiB model: {typical.stall_s:.2f}s stall, "
        f"{typical.overhead_fraction:.3%} of a 30-min interval "
        "(paper: <7s, <0.4%)"
    )

    # Tracking: exposed overhead < 1% of training time.
    assert tracking.overhead_fraction < 0.01
    report.row(
        f"tracking exposed overhead: {tracking.overhead_fraction:.3%} "
        "of training time (paper: ~1%)"
    )
