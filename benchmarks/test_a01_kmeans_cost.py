"""Ablation a01: why Check-N-Run rejects k-means quantization.

Paper (section 5.2, A2): k-means' mean l2 error is only marginally
better than adaptive asymmetric, but clustering one production
checkpoint took > 48 hours — orders of magnitude slower than uniform
methods. The bench measures both sides of that trade on real tensors
and projects to paper scale with the calibrated latency model.
"""

from __future__ import annotations

from repro.distributed.clock import Stopwatch
from repro.metrics.latency import REFERENCE_ELEMENTS, LatencyModel
from repro.quant import make_quantizer, mean_l2_error

TITLE = "Ablation a01 - k-means cost vs adaptive asymmetric"


def _run(tensor):
    # 2 bits: 4 clusters over 16-wide rows keeps the cluster-to-element
    # ratio of the paper's setup (16 clusters over ~64-wide vectors);
    # at equal counts k-means would trivially hit zero error.
    sample = tensor[:2048]
    out = {}
    for name in ("asymmetric", "adaptive", "kmeans"):
        quantizer = make_quantizer(name, bits=2, num_bins=25)
        watch = Stopwatch()
        with watch:
            qt = quantizer.quantize(sample)
        out[name] = (
            watch.elapsed,
            mean_l2_error(sample, quantizer.dequantize(qt)),
        )
    return out


def test_a01_kmeans_cost(benchmark, report, bench_tensor):
    results = benchmark.pedantic(
        _run, args=(bench_tensor,), rounds=1, iterations=1
    )
    model = LatencyModel()
    paper_scale = {
        "asymmetric": model.asymmetric_s(REFERENCE_ELEMENTS),
        "adaptive": model.adaptive_s(REFERENCE_ELEMENTS, 25, 1.0),
        "kmeans": model.kmeans_s(REFERENCE_ELEMENTS, 4),  # paper's k=16
    }

    report.table(
        "method       local_seconds   mean_l2      paper_scale",
        [
            f"{name:12s} {results[name][0]:13.3f}   "
            f"{results[name][1]:.6f}   {paper_scale[name]:10.0f}s"
            for name in ("asymmetric", "adaptive", "kmeans")
        ],
    )

    kmeans_time, kmeans_err = results["kmeans"]
    adaptive_time, adaptive_err = results["adaptive"]
    asym_time, asym_err = results["asymmetric"]
    # k-means is at best marginally better on error than adaptive...
    assert kmeans_err < adaptive_err * 1.2
    assert kmeans_err < asym_err
    # ...but "orders of magnitude slower than uniform quantization".
    assert kmeans_time > 20 * asym_time
    assert kmeans_time > 2 * adaptive_time
    # Paper-scale projection: ~48 hours vs minutes.
    assert paper_scale["kmeans"] > 40 * 3600
    report.row(
        f"measured slowdown vs uniform: {kmeans_time / asym_time:.0f}x; "
        f"projected paper-scale k-means: "
        f"{paper_scale['kmeans'] / 3600:.0f} hours (paper: > 48 h)"
    )
