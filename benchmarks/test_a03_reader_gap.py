"""Ablation a03: the trainer-reader state gap (section 4.1).

Without Check-N-Run's exact-batch-count coordination, the reader's
prefetch queue holds in-flight batches at checkpoint time; resuming
from such a checkpoint silently skips them. With coordination the
resume is seamless. The bench quantifies the skipped samples.
"""

from __future__ import annotations

from repro.config import ReaderConfig
from repro.experiments import build_experiment, small_config

TITLE = "Ablation a03 - reader-trainer gap with/without coordination"


def _run():
    results = {}
    # Uncoordinated: free-running prefetch, state gap on resume.
    config = small_config().with_overrides(
        reader=ReaderConfig(
            num_workers=4, prefetch_depth=8, coordinated=False
        )
    )
    exp = build_experiment(config)
    trained: list[int] = []
    exp.trainer.register_step_hook(
        lambda result, batch: trained.append(batch.batch_index)
    )
    for _ in range(20):
        exp.trainer.train_one_batch()
    state = exp.reader.collect_state()
    exp.reader.restore(state)
    resumed = exp.reader.next_batch().batch_index
    results["uncoordinated"] = {
        "last_trained": trained[-1],
        "resumed_at": resumed,
        "skipped_batches": resumed - trained[-1] - 1,
        "in_flight_at_checkpoint": state.in_flight,
    }

    # Coordinated: quota-driven reads, zero in-flight at interval end.
    exp2 = build_experiment(small_config())
    trained2: list[int] = []
    exp2.trainer.register_step_hook(
        lambda result, batch: trained2.append(batch.batch_index)
    )
    exp2.controller.coordinator.grant_interval(20)
    exp2.trainer.train_interval(20)
    state2 = exp2.controller.coordinator.collect_state()
    exp2.reader.restore(state2)
    exp2.controller.coordinator.grant_interval(1)
    resumed2 = exp2.reader.next_batch().batch_index
    results["coordinated"] = {
        "last_trained": trained2[-1],
        "resumed_at": resumed2,
        "skipped_batches": resumed2 - trained2[-1] - 1,
        "in_flight_at_checkpoint": state2.in_flight,
    }
    return results


def test_a03_reader_gap(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    report.table(
        "mode            last_trained  resumed_at  skipped  in_flight",
        [
            f"{mode:14s} {r['last_trained']:13d} {r['resumed_at']:11d} "
            f"{r['skipped_batches']:8d} {r['in_flight_at_checkpoint']:9d}"
            for mode, r in results.items()
        ],
    )

    assert results["uncoordinated"]["skipped_batches"] > 0
    assert results["uncoordinated"]["in_flight_at_checkpoint"] > 0
    assert results["coordinated"]["skipped_batches"] == 0
    assert results["coordinated"]["in_flight_at_checkpoint"] == 0
    report.row(
        f"uncoordinated resume silently skipped "
        f"{results['uncoordinated']['skipped_batches']} batches; "
        "coordinated resume skipped none"
    )
