"""Ablation a05: chunked pipelining hides quantization latency.

Paper (section 6.1): quantization is pipelined chunk by chunk with the
storage writes, so "the latency of our pipelined quantization approach
is virtually zero" whenever storage bandwidth is the bottleneck. The
bench compares the checkpoint's trigger-to-valid latency against the
serial lower bound (quantize everything, then write everything).
"""

from __future__ import annotations

from repro.core.manifest import KIND_FULL
from repro.core.snapshot import SnapshotManager
from repro.core.writer import CheckpointWriter
from repro.experiments import build_experiment, small_config
from repro.quant import make_quantizer

TITLE = "Ablation a05 - pipelined vs serial checkpoint write latency"


def _run():
    exp = build_experiment(
        small_config(
            num_tables=4,
            rows_per_table=16384,
            embedding_dim=16,
            interval_batches=10,
        )
    )
    exp.controller.coordinator.grant_interval(10)
    exp.trainer.train_interval(10)
    manager = SnapshotManager(exp.trainer, exp.clock)
    snapshot = manager.take_snapshot(
        0, exp.controller.tracker_set, exp.reader.collect_state()
    )
    writer = CheckpointWriter(exp.store, exp.clock)
    quantizer = make_quantizer("adaptive", bits=4, num_bins=25)
    manifest, pipelined = writer.write_checkpoint(
        snapshot, KIND_FULL, "pipe", "job0", None, "full",
        quantizer, chunk_rows=2048,
    )
    snapshot.release(exp.trainer)

    # Serial lower bound: all quantization strictly before all writes.
    serial_latency = pipelined.quantize_sim_s + sum(
        t.duration_s
        for t in exp.store.log.transfers("put")
        if t.key.startswith("job0/pipe/")
    )
    return {
        "pipelined_s": pipelined.pipeline_duration_s,
        "serial_s": serial_latency,
        "quantize_s": pipelined.quantize_sim_s,
        "chunks": pipelined.num_chunks,
    }


def test_a05_pipelining(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    report.table(
        "metric                 seconds",
        [
            f"pipelined trigger-to-valid   {results['pipelined_s']:8.2f}",
            f"serial (quantize then write) {results['serial_s']:8.2f}",
            f"total quantization work      {results['quantize_s']:8.2f}",
            f"chunks written               {results['chunks']:8d}",
        ],
    )

    # Pipelining always beats (or matches) the serial schedule...
    assert results["pipelined_s"] <= results["serial_s"] + 1e-6
    # ...and hides a meaningful share of the quantization work.
    hidden = results["serial_s"] - results["pipelined_s"]
    assert hidden > 0.25 * results["quantize_s"]
    report.row(
        f"pipelining hid {hidden:.2f}s of {results['quantize_s']:.2f}s "
        f"quantization work "
        f"({hidden / results['quantize_s']:.0%}) behind storage writes"
    )
