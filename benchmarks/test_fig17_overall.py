"""Fig 17: overall write-bandwidth and storage-capacity reduction.

Paper: combining intermittent incremental checkpointing with the
dynamically selected quantization bit width reduces average write
bandwidth 17x (L <= 1) down to 6x (20 <= L), and maximum storage
capacity 8x down to 2.5x, versus a baseline with neither technique.
"""

from __future__ import annotations

from repro.experiments import overall_reduction_experiment

TITLE = "Fig 17 - overall bandwidth/capacity reduction vs restore band"

PAPER_REFERENCE = {
    "L <= 1": (17.0, 8.0),
    "20 <= L": (6.0, 2.5),
}


def _run():
    return overall_reduction_experiment(
        num_intervals=12, rows_per_table=24576
    )


def test_fig17_overall_reduction(benchmark, report):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    report.table(
        "band         bits   bandwidth_reduction   capacity_reduction",
        [
            f"{row.band:12s} {row.bit_width:4d}   "
            f"{row.bandwidth_reduction:18.1f}x   "
            f"{row.capacity_reduction:17.1f}x"
            for row in rows
        ],
    )

    # Reductions shrink as the restore band (and bit width) grows.
    bw = [r.bandwidth_reduction for r in rows]
    cap = [r.capacity_reduction for r in rows]
    assert bw == sorted(bw, reverse=True)
    assert cap == sorted(cap, reverse=True)

    # Paper's envelope: 6-17x bandwidth, 2.5-8x capacity. Our scaled
    # model lands inside (or near) that envelope at both extremes.
    assert bw[0] > 8.0, f"best-band bandwidth reduction only {bw[0]:.1f}x"
    assert bw[-1] > 3.0
    assert cap[0] > 5.0
    assert cap[-1] > 2.0

    # Bandwidth reduction always exceeds capacity reduction (increments
    # help bandwidth every interval but capacity keeps a full baseline).
    for row in rows:
        assert row.bandwidth_reduction > row.capacity_reduction
    report.row(
        f"measured envelope: bandwidth {bw[-1]:.1f}x..{bw[0]:.1f}x "
        f"(paper 6x..17x); capacity {cap[-1]:.1f}x..{cap[0]:.1f}x "
        "(paper 2.5x..8x)"
    )
