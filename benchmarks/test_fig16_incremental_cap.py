"""Fig 16: required storage capacity per interval, 3 policies.

Paper: one-shot needs baseline + latest increment (slow growth);
intermittent resets to 1x at each baseline refresh; consecutive must
keep every increment and approaches ~4x the model size after 11
intervals — which is why Check-N-Run defaults to intermittent.
"""

from __future__ import annotations

from repro.experiments import incremental_policy_experiment

TITLE = "Fig 16 - required storage capacity per interval (x model size)"


def _run():
    return incremental_policy_experiment(num_intervals=12)


def test_fig16_incremental_capacity(benchmark, report):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)
    by_policy = {r.policy: r for r in runs}

    header = "interval   " + "   ".join(
        f"{r.policy:>12s}" for r in runs
    )
    rows = [
        f"{i:8d}   "
        + "   ".join(
            f"{r.capacity_fractions[i]:12.2f}" for r in runs
        )
        for i in range(12)
    ]
    report.table(header, rows)

    one_shot = by_policy["one_shot"].capacity_fractions
    intermittent = by_policy["intermittent"]
    consecutive = by_policy["consecutive"].capacity_fractions

    # Consecutive accumulates every increment: the largest footprint.
    assert consecutive[-1] > one_shot[-1]
    assert consecutive[-1] > 2.5  # paper: ~4x after 11 intervals
    report.row(
        f"consecutive reaches {consecutive[-1]:.2f}x the model size "
        "(paper: ~4x)"
    )

    # One-shot capacity = 1 + latest increment, under 2x throughout.
    assert all(c < 2.0 for c in one_shot)

    # Intermittent resets to ~1x at its baseline refresh.
    refresh = [
        i
        for i, kind in enumerate(intermittent.kinds)
        if kind == "full" and i > 0
    ]
    assert refresh, "intermittent never refreshed its baseline"
    assert intermittent.capacity_fractions[refresh[0]] < 1.1
    report.row(
        f"intermittent capacity resets to "
        f"{intermittent.capacity_fractions[refresh[0]]:.2f}x at "
        f"interval {refresh[0]} (paper: resets to 1x at interval 8)"
    )
