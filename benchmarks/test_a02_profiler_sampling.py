"""Ablation a02: sampled parameter profiling matches full profiling.

Paper (section 5.2, parameter selection): Check-N-Run picks the greedy
parameters by profiling a uniformly sampled 0.001% of the checkpoint;
"the sampled checkpoint provided identical parameter selection compared
with the full checkpoint". The bench compares the selections and times
both.
"""

from __future__ import annotations

from repro.distributed.clock import Stopwatch
from repro.quant.profiler import select_num_bins, select_ratio

TITLE = "Ablation a02 - sampled vs full profiling parameter selection"

CANDIDATE_BINS = (5, 15, 25, 35, 45)
SAMPLE_FRACTIONS = (1.0, 0.25, 0.05, 0.01)


def _run(tensor):
    out = {}
    for fraction in SAMPLE_FRACTIONS:
        watch = Stopwatch()
        with watch:
            bins = select_num_bins(
                tensor,
                bits=2,
                candidates=CANDIDATE_BINS,
                sample_fraction=fraction,
                seed=7,
            )
        out[fraction] = (bins.chosen, bins.sample_rows, watch.elapsed)
    return out


def test_a02_profiler_sampling(benchmark, report, bench_tensor):
    results = benchmark.pedantic(
        _run, args=(bench_tensor,), rounds=1, iterations=1
    )

    report.table(
        "sample_fraction   rows_profiled   chosen_bins   seconds",
        [
            f"{fraction:15.2f}   {rows:13d}   {chosen:11.0f}   "
            f"{seconds:7.3f}"
            for fraction, (chosen, rows, seconds) in results.items()
        ],
    )

    full_choice = results[1.0][0]
    for fraction in SAMPLE_FRACTIONS[1:]:
        assert results[fraction][0] == full_choice, (
            f"sampling at {fraction} changed the parameter selection"
        )
    # Sampling must actually be cheaper than full profiling.
    assert results[0.01][2] < results[1.0][2]
    speedup = results[1.0][2] / max(results[0.01][2], 1e-9)
    report.row(
        f"identical selection at every fraction; 1% sampling is "
        f"{speedup:.0f}x faster than full profiling"
    )

    # The ratio selector works off the sampled choice too.
    ratio = select_ratio(
        bench_tensor,
        bits=2,
        num_bins=int(full_choice),
        sample_fraction=0.05,
        seed=7,
    )
    report.row(f"selected ratio at 5% sampling: {ratio.chosen:.1f}")
    assert 0.0 < ratio.chosen <= 1.0
