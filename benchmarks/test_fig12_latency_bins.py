"""Fig 12: checkpoint quantization latency vs num_bins (ratio = 1.0).

Paper: latency grows roughly linearly with the number of bins, from
~126 s (the plain asymmetric floor) to at most ~600 s at 50 bins, for
one full production checkpoint.

Reproduction: the calibrated latency model projects paper-scale
seconds; the bench *also* measures real numpy wall time on the local
tensor and asserts the same linear shape, so the curve is both
calibrated and empirically reproduced.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.clock import Stopwatch
from repro.metrics.latency import REFERENCE_ELEMENTS, LatencyModel
from repro.quant.adaptive import greedy_range_search

TITLE = "Fig 12 - quantization latency vs num_bins (ratio = 1.0)"

BINS = (5, 15, 25, 35, 45, 50)


def _measure(tensor: np.ndarray) -> dict[int, float]:
    measured = {}
    for bins in BINS:
        watch = Stopwatch()
        with watch:
            greedy_range_search(tensor, 4, bins, 1.0)
        measured[bins] = watch.elapsed
    return measured


def test_fig12_latency_bins(benchmark, report, bench_tensor):
    measured = benchmark.pedantic(
        _measure, args=(bench_tensor,), rounds=1, iterations=1
    )
    model = LatencyModel()
    projected = {
        bins: model.adaptive_s(REFERENCE_ELEMENTS, bins, 1.0)
        for bins in BINS
    }

    report.table(
        "bins   paper_scale_seconds   measured_local_seconds",
        [
            f"{bins:4d}   {projected[bins]:19.0f}   "
            f"{measured[bins]:22.3f}"
            for bins in BINS
        ],
    )

    # Paper anchors: ~126 s floor, <= 600 s at 50 bins.
    assert projected[50] <= 605.0
    assert projected[5] >= 126.0
    # Both projected and measured latencies grow with bins.
    proj_series = [projected[b] for b in BINS]
    meas_series = [measured[b] for b in BINS]
    assert proj_series == sorted(proj_series)
    assert meas_series[-1] > meas_series[0]
    report.row(
        f"paper-scale range: {projected[5]:.0f}s .. "
        f"{projected[50]:.0f}s (paper: ~126s .. ~600s)"
    )
