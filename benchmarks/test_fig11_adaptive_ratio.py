"""Fig 11: adaptive improvement as a function of the ratio parameter.

Paper: lower bit widths are more sensitive to ratio; improvement
saturates as the ratio approaches the point where the greedy search has
covered the useful part of the range (bins fixed at each width's
optimum from Fig 10).
"""

from __future__ import annotations

from repro.experiments import (
    adaptive_bins_sweep,
    adaptive_ratio_sweep,
    optimal_bins,
)

TITLE = "Fig 11 - adaptive improvement vs ratio (at optimal bins)"

RATIOS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def test_fig11_adaptive_ratio(benchmark, report, bench_tensor):
    bins_points = adaptive_bins_sweep(
        bench_tensor, bit_widths=(2, 3, 4)
    )
    bins_per_width = {
        bits: optimal_bins(bins_points, bits) for bits in (2, 3, 4)
    }

    points = benchmark.pedantic(
        adaptive_ratio_sweep,
        args=(bench_tensor, bins_per_width),
        kwargs={"ratios": RATIOS},
        rounds=1,
        iterations=1,
    )

    series = {
        bits: [p.improvement for p in points if p.bits == bits]
        for bits in (2, 3, 4)
    }
    report.row(f"optimal bins per width: {bins_per_width}")
    report.table(
        "ratio    2-bit     3-bit     4-bit",
        [
            f"{ratio:5.1f}   {series[2][i]:6.1%}   {series[3][i]:6.1%}   "
            f"{series[4][i]:6.1%}"
            for i, ratio in enumerate(RATIOS)
        ],
    )

    # Improvement grows (or saturates) with ratio for every width.
    for bits in (2, 3, 4):
        assert series[bits][-1] >= series[bits][0] - 1e-9
    # 2-bit ends with the largest gain (paper: lower widths gain more).
    assert max(series[2]) >= max(series[3]) - 1e-9
    assert max(series[2]) >= max(series[4]) - 1e-9
