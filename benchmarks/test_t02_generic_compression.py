"""Section 1 baseline: generic compression saves at most ~7%.

Paper: "we were able to reduce the checkpoint size ... by at most 7%
using Zstandard compression" on recommendation checkpoints — the
motivation for quantization. Zstandard is substituted by DEFLATE
(stdlib zlib) plus a from-scratch RLE codec; both run on a genuinely
trained fp32 checkpoint and on its 4-bit quantized form for contrast.
"""

from __future__ import annotations

from repro.quant import make_quantizer
from repro.serialize.compress import make_compressor

TITLE = "Table (section 1) - generic compression on fp32 checkpoints"


def _run(tensor):
    raw = tensor.tobytes()
    quantized = make_quantizer("asymmetric", bits=4).quantize(tensor)
    reports = {}
    for name in ("deflate", "rle"):
        compressor = make_compressor(name)
        reports[(name, "fp32")] = compressor.report(raw)
        reports[(name, "4bit-codes")] = compressor.report(
            quantized.codes.tobytes()
        )
    return reports, len(raw) / quantized.nbytes


def test_t02_generic_compression(benchmark, report, bench_tensor):
    reports, quant_ratio = benchmark.pedantic(
        _run, args=(bench_tensor,), rounds=1, iterations=1
    )

    rows = [
        f"{name:8s} on {what:10s}: saves {rep.savings:6.1%} "
        f"({rep.original_bytes} -> {rep.compressed_bytes} bytes)"
        for (name, what), rep in reports.items()
    ]
    report.table("codec    target      savings", rows)

    deflate_fp32 = reports[("deflate", "fp32")]
    rle_fp32 = reports[("rle", "fp32")]
    # The paper's point: generic codecs recover almost nothing on
    # trained fp32 weights...
    assert deflate_fp32.savings < 0.15
    assert rle_fp32.savings < 0.05
    # ...while 4-bit quantization cuts the same tensor by >3x.
    assert quant_ratio > 3.0
    report.row(
        f"for contrast, 4-bit quantization: {quant_ratio:.1f}x smaller "
        "(paper: 4-13x from quantization vs <=7% from Zstd)"
    )
