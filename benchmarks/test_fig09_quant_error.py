"""Fig 9: mean l2 error of the four quantization approaches.

Paper ordering at each bit width: symmetric worst; asymmetric better
(values are not symmetrically distributed); k-means-per-vector slightly
better still (except 4-bit, where init randomness makes it marginally
worse); adaptive asymmetric comparable to k-means. Error shrinks with
bit width.
"""

from __future__ import annotations

from repro.experiments import quant_error_comparison

TITLE = "Fig 9 - mean l2 error per quantization approach and bit width"


def test_fig09_quant_error(benchmark, report, bench_tensor):
    rows = benchmark.pedantic(
        quant_error_comparison,
        args=(bench_tensor,),
        kwargs={"bit_widths": (2, 3, 4, 8)},
        rounds=1,
        iterations=1,
    )

    by_key = {(r.method, r.bits): r.mean_l2 for r in rows}
    report.table(
        "bits   symmetric   asymmetric   kmeans   adaptive",
        [
            f"{bits:4d}   "
            f"{by_key[('symmetric', bits)]:9.5f}   "
            f"{by_key[('asymmetric', bits)]:10.5f}   "
            f"{by_key[('kmeans', bits)]:6.5f}   "
            f"{by_key[('adaptive', bits)]:8.5f}"
            for bits in (2, 3, 4, 8)
        ],
    )

    for bits in (2, 3, 4, 8):
        sym = by_key[("symmetric", bits)]
        asym = by_key[("asymmetric", bits)]
        adaptive = by_key[("adaptive", bits)]
        # Paper: asymmetric consistently beats symmetric.
        assert asym < sym, f"asymmetric should win at {bits} bits"
        # Paper: adaptive never loses to naive asymmetric.
        assert adaptive <= asym * 1.001

    # Error decreases with bit width for every method.
    for method in ("symmetric", "asymmetric", "kmeans", "adaptive"):
        series = [by_key[(method, b)] for b in (2, 3, 4, 8)]
        assert series == sorted(series, reverse=True)

    report.row(
        "orderings verified: asym < sym at all widths; adaptive <= asym;"
        " error monotone in bit width"
    )
