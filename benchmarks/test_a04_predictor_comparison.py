"""Ablation a04: the paper's history predictor vs the linear-trend
extension (section 5.1's "can be improved with more accurate prediction
models, which are part of future work").

Both predictors drive the intermittent policy over the same synthetic
increment-size traces; the score is the total bytes written (as model
fractions) over the horizon — lower is better.
"""

from __future__ import annotations

import numpy as np

from repro.core.predictor import HistoryPredictor, LinearTrendPredictor

TITLE = "Ablation a04 - history vs linear-trend baseline-refresh predictor"


def _simulate_policy(predictor, increment_curve, horizon: int) -> float:
    """Total written fraction when refreshes follow the predictor.

    ``increment_curve(k)`` is the size of the k-th increment since the
    last baseline (as a fraction of a full checkpoint).
    """
    total = 1.0  # initial full baseline
    sizes: list[float] = []
    for _ in range(1, horizon):
        if sizes and predictor.should_take_full(sizes):
            total += 1.0
            sizes = []
        else:
            nxt = increment_curve(len(sizes) + 1)
            sizes.append(nxt)
            total += nxt
    return total


def _run():
    curves = {
        # Saturating growth (the shape Fig 5 exhibits).
        "saturating": lambda k: min(0.95, 0.25 * (1 + np.log1p(k) / 1.5)),
        # Linear growth: increments keep climbing.
        "linear": lambda k: min(1.0, 0.15 + 0.08 * k),
        # Flat: tiny constant increments (refresh never pays off).
        "flat": lambda k: 0.1,
    }
    results = {}
    for name, curve in curves.items():
        results[name] = {
            "history": _simulate_policy(HistoryPredictor(), curve, 24),
            "linear_trend": _simulate_policy(
                LinearTrendPredictor(), curve, 24
            ),
            "never_refresh": 1.0
            + sum(curve(k) for k in range(1, 24)),
        }
    return results


def test_a04_predictor_comparison(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    report.table(
        "workload     history   linear_trend   never_refresh",
        [
            f"{name:11s} {r['history']:8.2f}   {r['linear_trend']:12.2f}"
            f"   {r['never_refresh']:13.2f}"
            for name, r in results.items()
        ],
    )

    # Both predictors beat never-refreshing on growing workloads.
    for name in ("saturating", "linear"):
        assert results[name]["history"] < results[name]["never_refresh"]
        assert (
            results[name]["linear_trend"]
            < results[name]["never_refresh"]
        )
    # On flat workloads refreshing cannot pay off; neither predictor
    # should be much worse than never refreshing.
    flat = results["flat"]
    assert flat["history"] <= flat["never_refresh"] * 1.05
    # The trend extension wins (or ties) on linearly growing increments.
    assert (
        results["linear"]["linear_trend"]
        <= results["linear"]["history"] * 1.02
    )
    report.row(
        "both predictors beat never-refresh on growing increment "
        "curves; the linear-trend extension is at least as good on "
        "linear growth (the paper's future-work hypothesis)"
    )
