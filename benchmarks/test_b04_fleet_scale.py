"""B4 — fleet scale: event-heap dispatch vs the lockstep scan.

Not a paper figure: the paper's fleet results (Figs 15-17) aggregate
thousands of concurrent jobs, and reproducing that regime needs a
dispatcher that does not rescan every job per event. This bench runs
deliberately tiny jobs (one interval, one small table each) so that
*dispatch* — finding the globally earliest event — is the variable
under test, and measures:

* end-to-end events/sec under heap dispatch at 100 / 1k / 10k jobs —
  the heap's O(log n) pops keep this roughly flat while the lockstep
  scan's O(jobs) rescan decays linearly;
* dispatch-only throughput (time spent inside the pick-next-event
  call, excluding the handlers' real work — the two engines run
  bit-identical event sequences, so handler cost is common-mode) for
  both engines at the comparison scale, asserting the heap is at
  least ``DISPATCH_SPEEDUP_FLOOR`` x faster.

``B04_MAX_JOBS`` caps the swept scale (default 1000, which keeps the
default pytest run quick); the committed artifact was generated with
``B04_MAX_JOBS=10000``. The lockstep engine is never swept past 1k —
at 10k its rescan alone would dominate the suite's runtime, which is
the point of the heap.
"""

from __future__ import annotations

import os
from time import perf_counter

from repro.config import FleetConfig
from repro.fleet import build_fleet

TITLE = "B4 - fleet scale: event-heap dispatch vs lockstep scan"

#: Scales swept (clamped by B04_MAX_JOBS).
SCALES = (100, 1_000, 10_000)
#: The lockstep baseline stops here; beyond it the O(jobs) scan is
#: the suite's runtime, not a data point.
LOCKSTEP_MAX = 1_000

#: CI gate: heap dispatch must out-throughput lockstep dispatch by at
#: least this factor at the comparison scale (measured ~15-25x at 1k).
DISPATCH_SPEEDUP_FLOOR = 5.0
#: Flatness gate: heap events/sec at the largest scale must hold this
#: fraction of its 100-job throughput (O(log n) vs O(n) growth).
FLATNESS_FLOOR = 0.35


def scale_config(jobs: int) -> FleetConfig:
    """A fleet of minimal jobs: dispatch cost is the variable.

    One interval, one tiny table, no quantizer, no failures — each
    job contributes a handful of events whose handlers are as cheap
    as the simulator allows. The start stagger scales with the fleet
    so the shared link never becomes one permanent fleet-wide tie
    set (a saturated link costs O(backlog) per pick in *both*
    engines, which would measure the arbiter, not dispatch).
    """
    return FleetConfig(
        num_jobs=jobs,
        intervals_per_job=1,
        seed=0xB04,
        batch_size=4,
        embedding_dim=4,
        rows_per_table_choices=(64,),
        num_tables_choices=(1,),
        interval_batches_choices=(2,),
        policy_choices=("one_shot",),
        policy_weights=(1.0,),
        quantizer_choices=("none",),
        bit_width_choices=(8,),
        inject_failures=False,
        stagger_s=max(30.0, 0.05 * jobs),
    )


def run_instrumented(jobs: int, dispatch: str):
    """Run one fleet, timing the dispatch call separately.

    Wraps the engine's pick-next-event method with a perf_counter
    accumulator (``run()`` resolves it per iteration, so an instance
    attribute shadows the bound method). Returns the scheduler, total
    wall seconds, dispatch-only seconds and the event count.
    """
    scheduler, _ = build_fleet(scale_config(jobs), dispatch=dispatch)
    inner = (
        scheduler._next_event_heap
        if dispatch == "heap"
        else scheduler._next_event
    )
    spent = [0.0]

    def timed():
        t0 = perf_counter()
        result = inner()
        spent[0] += perf_counter() - t0
        return result

    if dispatch == "heap":
        scheduler._next_event_heap = timed
    else:
        scheduler._next_event = timed
    t0 = perf_counter()
    scheduler.run()
    wall = perf_counter() - t0
    return scheduler, wall, spent[0], len(scheduler.events)


def test_fleet_scale_dispatch(report):
    max_jobs = int(os.environ.get("B04_MAX_JOBS", "1000"))
    scales = [s for s in SCALES if s <= max_jobs]
    assert scales, f"B04_MAX_JOBS={max_jobs} below the smallest scale"

    rows = []
    evps = {}  # (dispatch, jobs) -> end-to-end events/sec
    dispatch_evps = {}  # (dispatch, jobs) -> dispatch-only events/sec
    event_logs = {}
    for dispatch in ("heap", "lockstep"):
        for jobs in scales:
            if dispatch == "lockstep" and jobs > LOCKSTEP_MAX:
                continue
            sched, wall, dispatch_s, events = run_instrumented(
                jobs, dispatch
            )
            evps[dispatch, jobs] = events / wall
            dispatch_evps[dispatch, jobs] = events / dispatch_s
            if jobs == scales[0]:
                event_logs[dispatch] = [
                    (e.kind, e.job_id, e.time_s) for e in sched.events
                ]
            rows.append(
                f"{dispatch:>9s} {jobs:>6d} {events:>8d} "
                f"{wall:>8.2f} {events / wall:>9.0f} "
                f"{dispatch_s * 1e3:>11.1f} "
                f"{1e6 * dispatch_s / events:>12.2f}"
            )

    report.row(
        "minimal jobs (1 interval, 1 tiny table each); dispatch "
        "timed separately from the handlers' common-mode work"
    )
    report.table(
        " dispatch   jobs   events   wall_s  events/s  dispatch_ms"
        "  us/dispatch",
        rows,
    )

    # The engines agree event-for-event at the smallest scale (the
    # full payload-level matrix lives in tests/test_fleet_eventqueue).
    assert event_logs["heap"] == event_logs["lockstep"]

    # Dispatch-only speedup at the largest common scale: handler work
    # is identical (bit-identical runs), so this isolates the O(n)
    # scan vs O(log n) heap difference the refactor claims.
    compare = max(s for s in scales if s <= LOCKSTEP_MAX)
    speedup = (
        dispatch_evps["heap", compare]
        / dispatch_evps["lockstep", compare]
    )
    report.row("")
    report.row(
        f"dispatch-only speedup at {compare} jobs: {speedup:.1f}x "
        f"(gate: >= {DISPATCH_SPEEDUP_FLOOR:.0f}x)"
    )
    assert speedup >= DISPATCH_SPEEDUP_FLOOR, (
        f"heap dispatch only {speedup:.1f}x lockstep at {compare} "
        f"jobs (floor {DISPATCH_SPEEDUP_FLOOR}x)"
    )

    # Heap throughput stays roughly flat as the fleet grows.
    flatness = evps["heap", scales[-1]] / evps["heap", scales[0]]
    report.row(
        f"heap events/sec ratio {scales[-1]} vs {scales[0]} jobs: "
        f"{flatness:.2f} (gate: >= {FLATNESS_FLOOR})"
    )
    assert flatness >= FLATNESS_FLOOR, (
        f"heap events/sec decayed {scales[0]}->{scales[-1]} jobs: "
        f"{flatness:.2f}"
    )
