"""Fig 5: fraction of model modified vs training samples, 3 start points.

Paper: starting from the origin, the touched fraction grows sub-linearly
and reaches only ~52% after 11B samples; curves started at the 4B-th and
8B-th sample follow the same slope.

Reproduction: Zipfian lookups over a scaled table; one step stands for a
fixed sample budget. The assertions pin the paper's two qualitative
claims: sub-linear saturation well below 100%, and start-point
invariance of the growth slope.
"""

from __future__ import annotations

from repro.experiments import modified_fraction_experiment

TITLE = "Fig 5 - % of model modified vs samples (3 observation starts)"


def _run():
    return modified_fraction_experiment(
        rows=200_000,
        alpha=1.05,
        lookups_per_step=20_000,
        total_steps=60,
        starts=(0, 20, 40),
        seed=31,
    )


def test_fig05_modified_fraction(benchmark, report):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)

    origin = curves[0]
    marks = [4, 9, 19, 39, 59]
    report.table(
        "start   steps_observed   fraction_modified",
        [
            f"{curve.start_step:5d}   {i + 1:14d}   {curve.fractions[i]:17.3f}"
            for curve in curves
            for i in marks
            if i < len(curve.fractions)
        ],
    )

    # Sub-linear saturation: final fraction far below linear growth.
    final = origin.fractions[-1]
    early_slope = origin.fractions[4] / 5
    report.row(
        f"origin curve: {final:.3f} after 60 steps "
        f"(linear extrapolation of early slope: {early_slope * 60:.2f})"
    )
    assert final < 0.8  # paper: ~52% after the full run
    assert final < early_slope * 60 * 0.8  # visibly sub-linear

    # Start-point invariance: same-length windows touch similar counts.
    window = 19
    fractions_at_window = [c.fractions[window] for c in curves]
    spread = max(fractions_at_window) - min(fractions_at_window)
    report.row(
        f"fraction after {window + 1} steps from starts 0/20/40: "
        + ", ".join(f"{f:.3f}" for f in fractions_at_window)
        + f" (spread {spread:.3f})"
    )
    assert spread < 0.02
