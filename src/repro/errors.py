"""Exception hierarchy for the Check-N-Run reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at integration boundaries while tests can
assert on precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class CheckpointError(ReproError):
    """Base class for checkpoint lifecycle errors."""


class CheckpointNotFoundError(CheckpointError):
    """No checkpoint with the requested id (or no valid checkpoint at all)."""


class CheckpointCorruptError(CheckpointError):
    """A stored checkpoint failed CRC or structural validation."""


class CheckpointInProgressError(CheckpointError):
    """A new checkpoint was requested while the previous one is still
    being written (the paper forbids overlapping checkpoints, section 4.3)."""


class RestoreChainBrokenError(CheckpointError):
    """An incremental checkpoint's base (or a link in its chain) is missing."""


class QuantizationError(ReproError):
    """Quantization/de-quantization failed or was configured impossibly."""


class PackingError(QuantizationError):
    """Bit-packing was asked to handle an unsupported width or bad codes."""


class StorageError(ReproError):
    """Base class for object-store failures."""


class TransientStorageError(StorageError):
    """A request failed in a way a retry may fix (throttling, a dropped
    connection, a 5xx from the object store). The transfer engine's
    retry/backoff loop re-issues these; only after exhausting its retry
    budget does the failure become permanent."""


class RetriesExhaustedError(StorageError):
    """A request kept failing transiently past the engine's retry budget."""


class ObjectNotFoundError(StorageError):
    """GET/DELETE on a key that does not exist."""


class ObjectExistsError(StorageError):
    """PUT with ``overwrite=False`` on a key that already exists."""


class CapacityExceededError(StorageError):
    """A PUT would exceed the store's configured capacity (or a
    per-stream quota on a shared store)."""


class NamespaceViolationError(StorageError):
    """A scoped store view touched a key outside its job namespace."""


class FleetError(ReproError):
    """The multi-job fleet scheduler was configured or driven invalidly."""


class ReplicationError(ReproError):
    """The peer-replication tier was configured or driven invalidly."""


class ServingError(ReproError):
    """The inference serving plane was configured or driven invalidly."""


class ShardingError(ReproError):
    """An embedding table cannot be placed on the simulated cluster."""


class ReaderError(ReproError):
    """The reader tier was driven through an invalid transition."""


class ReaderQuotaExceededError(ReaderError):
    """The trainer asked for more batches than the coordinated quota allows."""


class TrainingError(ReproError):
    """The trainer was driven through an invalid transition."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class SerializationError(ReproError):
    """A frame or codec could not encode/decode a payload."""
