"""Peer-memory replication tier (Checkmate-style, PAPERS.md).

Every fleet job mirrors its per-step training delta to K peer jobs'
bounded memory rings over the arbitrated link; the object store only
receives retention-boundary baseline flushes, and recovery prefers
the nearest live replica (same rack > cross rack > object store).
See ``docs/replication.md`` for the recovery ladder, ring sizing and
failure-domain caveats.
"""

from .recovery import PeerRestoreResult, restore_from_peer
from .replicator import PeerReplicator, replication_stream_id
from .ring import MemoryRing, RingReservation
from .state import ReplicaState, StepDelta, capture_delta

__all__ = [
    "MemoryRing",
    "PeerReplicator",
    "PeerRestoreResult",
    "ReplicaState",
    "RingReservation",
    "StepDelta",
    "capture_delta",
    "replication_stream_id",
    "restore_from_peer",
]
