"""Bounded peer-memory delta rings for the replication tier.

Checkmate-style peer replication keeps, on each replica host, a
*materialized anchor* (a full copy of the owner's state at the last
baseline) plus a bounded log of per-step deltas. The ring's byte
budget bounds the **delta log only**: the anchor is the replica itself
and always exists, so capacity pressure never loses data — the oldest
delta is *folded into* the anchor instead of dropped, preserving the
invariant

    materialized replica = anchor + (all committed deltas, in order).

Appends are two-phase (``reserve`` then ``commit``/``abort``) so a
sender that dies mid-transfer leaves no partial delta behind: an
aborted reservation is discarded and the ring still materializes to a
consistent pre-send state. A delta larger than the whole ring budget
is legal — it *folds through*, applied straight into the anchor at
commit, which keeps a tiny ring correct (just with no rewind depth).

The ring is deliberately agnostic about payloads. Anchors expose
``apply(delta)``, ``copy()`` and a ``step`` attribute; deltas expose
``step``. That keeps the invariants unit-testable with dict-backed
fakes (see ``tests/test_replication_ring.py``) independent of the
DLRM state machinery in :mod:`repro.replication.state`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..errors import ReplicationError


@dataclass
class RingReservation:
    """A reserved (not yet committed) slot for one delta append."""

    nbytes: int
    #: Reserved payload exceeds the whole ring budget; on commit it
    #: is folded straight into the anchor instead of logged.
    fold_through: bool
    _active: bool = field(default=True, repr=False)


@dataclass(frozen=True)
class _Entry:
    step: int
    nbytes: int
    delta: object


class MemoryRing:
    """One owner's bounded delta log in one peer host's memory."""

    def __init__(
        self,
        owner_id: str,
        host_id: str,
        capacity_bytes: int,
        anchor,
        same_rack: bool = True,
    ) -> None:
        if capacity_bytes <= 0:
            raise ReplicationError(
                f"ring capacity must be positive, got {capacity_bytes}"
            )
        self.owner_id = owner_id
        self.host_id = host_id
        self.capacity_bytes = capacity_bytes
        self.same_rack = same_rack
        self.anchor = anchor
        self._entries: deque[_Entry] = deque()
        self.used_bytes = 0
        self._reserved_bytes = 0
        # Counters surfaced through the replicator's fleet report.
        self.commits = 0
        self.aborts = 0
        self.evictions = 0

    # -- introspection -------------------------------------------------

    @property
    def depth(self) -> int:
        """Committed deltas currently in the log."""
        return len(self._entries)

    @property
    def last_step(self) -> int:
        """Step the materialized replica represents."""
        if self._entries:
            return self._entries[-1].step
        return self.anchor.step

    def check_invariants(self) -> None:
        """Assert the ring's structural invariants (test hook)."""
        total = sum(entry.nbytes for entry in self._entries)
        if total != self.used_bytes:
            raise ReplicationError(
                f"ring accounting drift: used={self.used_bytes} "
                f"sum={total}"
            )
        if self.used_bytes > self.capacity_bytes:
            raise ReplicationError(
                f"ring over budget: {self.used_bytes} > "
                f"{self.capacity_bytes}"
            )
        steps = [self.anchor.step] + [e.step for e in self._entries]
        for older, newer in zip(steps, steps[1:]):
            if newer <= older:
                raise ReplicationError(
                    f"non-monotonic ring steps: {steps}"
                )

    # -- two-phase append ----------------------------------------------

    def reserve(self, nbytes: int) -> RingReservation:
        """Reserve space for one delta, evicting oldest-first to fit.

        Eviction folds deltas into the anchor (never discards them), so
        a reservation always succeeds; payloads larger than the entire
        budget come back marked ``fold_through``.
        """
        if nbytes < 0:
            raise ReplicationError(
                f"delta size must be >= 0, got {nbytes}"
            )
        if nbytes > self.capacity_bytes:
            return RingReservation(nbytes=nbytes, fold_through=True)
        while (
            self.used_bytes + self._reserved_bytes + nbytes
            > self.capacity_bytes
            and self._entries
        ):
            self._evict_oldest()
        self._reserved_bytes += nbytes
        return RingReservation(nbytes=nbytes, fold_through=False)

    def commit(self, reservation: RingReservation, delta) -> None:
        """Land a reserved delta; the replica now includes it."""
        self._close(reservation)
        if delta.step <= self.last_step:
            raise ReplicationError(
                f"delta step {delta.step} not ahead of replica step "
                f"{self.last_step} (owner {self.owner_id} on "
                f"{self.host_id})"
            )
        if reservation.fold_through:
            # Older logged deltas must fold first, or materialize()
            # would replay them on top of the newer fold-through state.
            while self._entries:
                self._evict_oldest()
            self.anchor.apply(delta)
            self.evictions += 1
        else:
            self._reserved_bytes -= reservation.nbytes
            self._entries.append(
                _Entry(
                    step=delta.step,
                    nbytes=reservation.nbytes,
                    delta=delta,
                )
            )
            self.used_bytes += reservation.nbytes
        self.commits += 1

    def abort(self, reservation: RingReservation) -> None:
        """Discard a reservation: a partial send leaves no trace."""
        self._close(reservation)
        if not reservation.fold_through:
            self._reserved_bytes -= reservation.nbytes
        self.aborts += 1

    def _close(self, reservation: RingReservation) -> None:
        if not reservation._active:
            raise ReplicationError(
                "reservation already committed or aborted"
            )
        reservation._active = False

    def _evict_oldest(self) -> None:
        entry = self._entries.popleft()
        self.used_bytes -= entry.nbytes
        self.anchor.apply(entry.delta)
        self.evictions += 1

    # -- reads ---------------------------------------------------------

    def materialize(self):
        """Return the replica state at ``last_step`` (non-destructive)."""
        state = self.anchor.copy()
        for entry in self._entries:
            state.apply(entry.delta)
        return state

    def rebase(self) -> None:
        """Fold the whole log into the anchor (baseline-flush hook).

        Run when the owner lands a store baseline: the anchor then
        matches the flushed full checkpoint and the log budget is free
        for the next flush window. Costs no transfer — the host
        already holds every byte being folded.
        """
        while self._entries:
            entry = self._entries.popleft()
            self.used_bytes -= entry.nbytes
            self.anchor.apply(entry.delta)
