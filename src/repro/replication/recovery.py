"""Peer-replica recovery: load a materialized ring back into a job.

The scheduler calls :func:`restore_from_peer` when
:meth:`~repro.replication.replicator.PeerReplicator.best_replica`
found a live ring. The read happens over the *peer* link — the
owner's clock pays the full-replica transfer, the arbiter accounts
the bytes on the ``repl:`` stream, and the object store's timeline is
never touched (which is exactly why peer restores sidestep a restore
storm's link contention).

Unlike a store restore, the loaded state is bit-exact: replica deltas
were never quantized, the reader resumes at the captured position,
and the scheduler countdown (``batches_left``) plus the controller's
interval index are restored, so the job replays at most the one batch
a mid-send crash discarded.
"""

from __future__ import annotations

from dataclasses import dataclass

from .replicator import replication_stream_id
from .ring import MemoryRing


@dataclass(frozen=True)
class PeerRestoreResult:
    """What one peer-replica recovery did, for samples and events."""

    #: Peer whose ring served the replica.
    host_id: str
    same_rack: bool
    #: ``batches_trained`` the job resumed at.
    step: int
    #: Full-replica bytes moved over the peer link.
    nbytes: int
    #: Peer-link transfer time (crash-to-training-ready latency).
    latency_s: float
    interval_index: int
    batches_left: int


def restore_from_peer(job, ring: MemoryRing, replicator) -> PeerRestoreResult:
    """Materialize ``ring`` and load it into the crashed ``job``."""
    state = ring.materialize()
    nbytes = state.total_nbytes
    latency_s = replicator.peer_time_s(nbytes, ring.same_rack)
    job.clock.advance(latency_s, "peer-restore")
    replicator.arbiter.on_transfer(
        replication_stream_id(job.job_id), nbytes, "get"
    )

    model = job.model
    for table_id in range(model.num_tables):
        model.table_weight(table_id)[:] = state.table_weights[table_id]
        model.table_accumulator(table_id)[:] = state.table_accumulators[
            table_id
        ]
    model.load_dense_state(state.dense)
    model.batches_trained = state.batches_trained
    model.samples_trained = state.samples_trained
    job.reader.restore(state.reader_state)

    controller = job.controller
    # Store writes under replication are forced-full baselines, so the
    # incremental trackers carry no restore obligations; reset them to
    # the same post-restore state a store recovery would leave.
    controller.tracker_set.reset_all()
    controller.interval_index = state.interval_index
    controller.stats.restores += 1
    job.batches_left = state.batches_left

    # Rings at another step (a mid-send crash committed to only some
    # peers) would fork the delta log; drop them until the next flush.
    replicator.resync_after_recovery(job, restored_step=state.step)
    return PeerRestoreResult(
        host_id=ring.host_id,
        same_rack=ring.same_rack,
        step=state.batches_trained,
        nbytes=nbytes,
        latency_s=latency_s,
        interval_index=state.interval_index,
        batches_left=state.batches_left,
    )
