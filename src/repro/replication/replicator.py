"""Fleet-wide peer-memory replication: placement, sends, liveness.

The :class:`PeerReplicator` is the fleet scheduler's one handle on the
replication tier. At construction it places K replica rings per job —
rack-aware, using the *same* failure-domain assignment the storm
planner uses, so "same rack" here means "dies with me in a rack
storm" — and registers one ``repl:{job}`` stream per job with the
link arbiter under :data:`~repro.storage.bandwidth.TIER_REPLICATION`
(strictly below every training tier).

During the run the scheduler calls:

* :meth:`on_step` after every training batch — captures the step
  delta and pushes it to each peer ring over the peer link (sender's
  clock pays the transfer; the storage timeline never sees it). A
  send that would cross the owner's scheduled failure is *aborted*:
  the partial ring write is discarded and remaining peers are skipped,
  modelling a host that died mid-transfer.
* :meth:`on_job_death` during crash bookkeeping — rings hosted *by*
  the dead job vanish with its memory; rings it *owns* on live peers
  survive and are exactly what recovery reads.
* :meth:`best_replica` at recovery — the preference ladder: live
  same-rack ring, then live cross-rack ring, newest-step first within
  each; ``None`` sends the scheduler to the object store
  (``plan_resume`` fallback).
* :meth:`rebase_rings` when a baseline flush lands — folds every
  surviving ring's log into its anchor (free: the host already holds
  the bytes) and re-establishes rings lost to host deaths by shipping
  a fresh full anchor (paid on the peer link).
* :meth:`resync_after_recovery` after any recovery — drops rings
  whose replica step disagrees with the state the owner resumed from,
  so the delta log never forks.
"""

from __future__ import annotations

import numpy as np

from ..failures.domains import DOMAIN_RACK, assign_domains
from ..storage.bandwidth import TIER_REPLICATION, transfer_time_s
from .ring import MemoryRing
from .state import ReplicaState, capture_delta

#: Seed tweak for the peer-placement RNG (decorrelates placement from
#: every other seeded draw in the fleet).
PLACEMENT_SEED_XOR = 0x9EE9


def replication_stream_id(job_id: str) -> str:
    """Arbiter stream carrying one job's outbound replica traffic."""
    return f"repl:{job_id}"


class PeerReplicator:
    """Owns every job's replica rings and the peer-link accounting."""

    def __init__(self, config, jobs, arbiter) -> None:
        self.config = config
        self.arbiter = arbiter
        self._jobs_by_id = {job.job_id: job for job in jobs}
        job_ids = sorted(self._jobs_by_id)
        domains = assign_domains(
            job_ids,
            DOMAIN_RACK,
            rack_size=config.rack_size,
            tiers={job.job_id: job.tier for job in jobs},
        )
        self._rack_of = {
            job_id: domain.domain_id
            for domain in domains
            for job_id in domain.job_ids
        }
        self.peers = self._place_peers(job_ids)
        for job_id in job_ids:
            arbiter.register(
                replication_stream_id(job_id),
                weight=1.0,
                tier=TIER_REPLICATION,
            )
        #: rings[owner][host] — owner's replica in host's memory.
        self.rings: dict[str, dict[str, MemoryRing]] = {}
        for owner_id in job_ids:
            owner = self._jobs_by_id[owner_id]
            self.rings[owner_id] = {
                host_id: self._new_ring(owner, host_id)
                for host_id in self.peers[owner_id]
            }
        # Counter residue of destroyed rings, so fleet totals survive
        # ring churn.
        self._retired_evictions = 0
        self._retired_commits = 0
        self._retired_aborts = 0

    # -- placement -----------------------------------------------------

    def _place_peers(self, job_ids: list[str]) -> dict[str, tuple[str, ...]]:
        """K peers per owner: 1 same-rack (fast restore), rest cross.

        Cross-rack replicas are what survive a rack storm; the single
        same-rack copy is the cheap nearest restore for independent
        failures. Seeded and iterated in sorted-owner order, so
        placement is deterministic for a fleet seed.
        """
        rng = np.random.default_rng(self.config.seed ^ PLACEMENT_SEED_XOR)
        placement: dict[str, tuple[str, ...]] = {}
        for owner in job_ids:
            same = [
                j
                for j in job_ids
                if j != owner and self._rack_of[j] == self._rack_of[owner]
            ]
            cross = [
                j
                for j in job_ids
                if j != owner and self._rack_of[j] != self._rack_of[owner]
            ]
            same = [same[i] for i in rng.permutation(len(same))]
            cross = [cross[i] for i in rng.permutation(len(cross))]
            chosen: list[str] = []
            if same:
                chosen.append(same.pop(0))
            while len(chosen) < self.config.replicate_k and cross:
                chosen.append(cross.pop(0))
            while len(chosen) < self.config.replicate_k and same:
                chosen.append(same.pop(0))
            placement[owner] = tuple(sorted(chosen))
        return placement

    def same_rack(self, a: str, b: str) -> bool:
        return self._rack_of[a] == self._rack_of[b]

    def _new_ring(self, owner, host_id: str) -> MemoryRing:
        return MemoryRing(
            owner_id=owner.job_id,
            host_id=host_id,
            capacity_bytes=self.config.peer_ring_bytes,
            anchor=ReplicaState.from_job(owner),
            same_rack=self.same_rack(owner.job_id, host_id),
        )

    # -- peer-link timing ----------------------------------------------

    def peer_time_s(self, nbytes: int, same_rack: bool) -> float:
        """Transfer time on the peer link (cross-rack pays a factor)."""
        bandwidth = self.config.peer_bandwidth
        latency = self.config.peer_latency_s
        if not same_rack:
            bandwidth /= self.config.peer_cross_rack_factor
            latency *= self.config.peer_cross_rack_factor
        return transfer_time_s(nbytes, bandwidth, latency)

    # -- per-step replication ------------------------------------------

    def on_step(self, job, result) -> None:
        """Mirror one finished batch's delta to the owner's peers.

        The owner's clock pays each send in deterministic host order.
        If a send would straddle the job's scheduled failure time, the
        clock advances *to* the failure instead, the reservation is
        aborted (the ring materializes as if the send never started)
        and remaining peers are skipped — the scheduler's failure
        check then crashes the job.
        """
        rings = self.rings.get(job.job_id)
        if not rings:
            return
        delta = capture_delta(job, result)
        crash_pending = (
            self.config.inject_failures
            and job.next_failure_s is not None
            and job.failures_injected < self.config.max_failures_per_job
        )
        stream = replication_stream_id(job.job_id)
        for host_id in sorted(rings):
            ring = rings[host_id]
            send_s = self.peer_time_s(delta.nbytes, ring.same_rack)
            reservation = ring.reserve(delta.nbytes)
            if (
                crash_pending
                and job.clock.now + send_s > job.next_failure_s
            ):
                ring.abort(reservation)
                job.repl_partial_discards += 1
                job.clock.advance_to(
                    job.next_failure_s, "peer-replication-torn"
                )
                break
            job.clock.advance(send_s, "peer-replication")
            self.arbiter.on_transfer(stream, delta.nbytes, "put")
            ring.commit(reservation, delta)
            job.repl_deltas_sent += 1
            job.repl_bytes_sent += delta.nbytes

    # -- baseline flushes ----------------------------------------------

    def is_flush_interval(self, job) -> bool:
        """Does this trigger write a store baseline (vs replicate)?"""
        interval = job.controller.interval_index
        return interval % self.config.baseline_flush_intervals == 0

    def rebase_rings(self, job) -> None:
        """Align rings with a just-begun baseline flush.

        Surviving rings fold their log into the anchor for free. Rings
        lost to a host death are re-established by shipping a full
        anchor over the peer link (the one moment replication pays
        full-state bytes).
        """
        rings = self.rings.setdefault(job.job_id, {})
        stream = replication_stream_id(job.job_id)
        for host_id in self.peers[job.job_id]:
            ring = rings.get(host_id)
            if ring is not None:
                ring.rebase()
                continue
            ring = self._new_ring(job, host_id)
            nbytes = ring.anchor.total_nbytes
            job.clock.advance(
                self.peer_time_s(nbytes, ring.same_rack),
                "peer-ring-rebuild",
            )
            self.arbiter.on_transfer(stream, nbytes, "put")
            rings[host_id] = ring
            job.repl_rings_rebuilt += 1
            job.repl_bytes_sent += nbytes

    # -- liveness ------------------------------------------------------

    def on_job_death(self, job_id: str) -> None:
        """A host died: every ring living in its memory dies with it."""
        for owner_id in sorted(self.rings):
            ring = self.rings[owner_id].pop(job_id, None)
            if ring is not None:
                self._retire(ring)
                self._jobs_by_id[owner_id].repl_rings_lost += 1

    def best_replica(self, owner_id: str) -> MemoryRing | None:
        """Recovery ladder: same rack, then cross rack; newest first."""
        rings = self.rings.get(owner_id)
        if not rings:
            return None
        return min(
            rings.values(),
            key=lambda ring: (
                0 if ring.same_rack else 1,
                -ring.last_step,
                ring.host_id,
            ),
        )

    def resync_after_recovery(self, job, restored_step=None) -> None:
        """Drop rings that disagree with the state the owner resumed at.

        After a store or scratch recovery every ring is ahead of the
        owner (``restored_step=None`` drops them all); after a peer
        recovery only rings whose partial sends left them at another
        step are dropped. Dropped rings come back at the owner's next
        baseline flush.
        """
        rings = self.rings.get(job.job_id)
        if not rings:
            return
        for host_id in sorted(rings):
            ring = rings[host_id]
            if restored_step is None or ring.last_step != restored_step:
                self._retire(rings.pop(host_id))
                job.repl_rings_lost += 1

    def _retire(self, ring: MemoryRing) -> None:
        self._retired_evictions += ring.evictions
        self._retired_commits += ring.commits
        self._retired_aborts += ring.aborts

    # -- fleet-report aggregates ---------------------------------------

    def _live_rings(self):
        for hosts in self.rings.values():
            yield from hosts.values()

    @property
    def total_ring_evictions(self) -> int:
        return self._retired_evictions + sum(
            ring.evictions for ring in self._live_rings()
        )

    @property
    def total_ring_commits(self) -> int:
        return self._retired_commits + sum(
            ring.commits for ring in self._live_rings()
        )

    @property
    def total_ring_aborts(self) -> int:
        return self._retired_aborts + sum(
            ring.aborts for ring in self._live_rings()
        )
