"""Replica payloads: per-step deltas and materialized anchors.

Two payload types flow through :class:`~repro.replication.ring.MemoryRing`:

* :class:`StepDelta` — everything one training step changed, captured
  right after ``train_one_batch``: the exact embedding rows the step
  touched (weights *and* optimizer accumulators, from
  ``StepResult.touched_rows``), a copy of the small dense half, the
  reader's position, and the progress scalars a resume needs
  (``batches_trained``, the scheduler's ``batches_left``, the
  controller's interval index).
* :class:`ReplicaState` — a full materialized copy of the owner's
  state. It serves both as the ring *anchor* (deltas fold into it) and
  as the object a peer restore loads back into a dead job.

Unlike store checkpoints, deltas are **not quantized**: a replica
restore reproduces the owner's tensors bit-for-bit, which is what the
recovery-equivalence differential suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.state import ReaderState

#: Fixed per-delta overhead (headers, reader position, scalars).
DELTA_OVERHEAD_BYTES = 64


@dataclass(frozen=True)
class StepDelta:
    """All state one training step changed, keyed by the step index."""

    #: Owner's ``batches_trained`` *after* this step landed.
    step: int
    #: Per-table touched row indices (sorted, unique).
    rows: dict[int, np.ndarray]
    #: Per-table weight slices at those rows.
    weights: dict[int, np.ndarray]
    #: Per-table optimizer-accumulator slices at those rows.
    accumulators: dict[int, np.ndarray]
    #: Full dense half (MLPs + their optimizer state) — small.
    dense: dict[str, np.ndarray]
    reader_state: ReaderState
    samples_trained: int
    #: Scheduler countdown to the owner's next checkpoint trigger.
    batches_left: int
    #: Controller interval index at capture time.
    interval_index: int
    #: Wire size charged to the ring budget and the peer link.
    nbytes: int


def capture_delta(job, result) -> StepDelta:
    """Build the step delta for one just-finished training batch.

    ``result`` is the :class:`~repro.model.dlrm.StepResult` the batch
    returned; its ``touched_rows`` names exactly the embedding rows
    the optimizer wrote, so the delta carries no untouched state.
    """
    model = job.model
    rows: dict[int, np.ndarray] = {}
    weights: dict[int, np.ndarray] = {}
    accumulators: dict[int, np.ndarray] = {}
    nbytes = DELTA_OVERHEAD_BYTES
    for table_id, touched in sorted(result.touched_rows.items()):
        idx = np.array(touched, dtype=np.int64)
        rows[table_id] = idx
        weights[table_id] = model.table_weight(table_id)[idx]
        accumulators[table_id] = model.table_accumulator(table_id)[idx]
        nbytes += (
            idx.nbytes
            + weights[table_id].nbytes
            + accumulators[table_id].nbytes
        )
    dense = model.dense_state()
    for array in dense.values():
        nbytes += array.nbytes
    return StepDelta(
        step=model.batches_trained,
        rows=rows,
        weights=weights,
        accumulators=accumulators,
        dense=dense,
        reader_state=job.reader.collect_state(),
        samples_trained=model.samples_trained,
        batches_left=job.batches_left,
        interval_index=job.controller.interval_index,
        nbytes=nbytes,
    )


class ReplicaState:
    """A materialized full replica of one job's training state."""

    def __init__(
        self,
        table_weights: dict[int, np.ndarray],
        table_accumulators: dict[int, np.ndarray],
        dense: dict[str, np.ndarray],
        reader_state: ReaderState,
        batches_trained: int,
        samples_trained: int,
        batches_left: int,
        interval_index: int,
    ) -> None:
        self.table_weights = table_weights
        self.table_accumulators = table_accumulators
        self.dense = dense
        self.reader_state = reader_state
        self.batches_trained = batches_trained
        self.samples_trained = samples_trained
        self.batches_left = batches_left
        self.interval_index = interval_index

    @property
    def step(self) -> int:
        """Ring-anchor protocol: the step this state represents."""
        return self.batches_trained

    @property
    def total_nbytes(self) -> int:
        """Bytes a full-replica transfer (rebuild or restore) moves."""
        total = DELTA_OVERHEAD_BYTES
        for table_id in self.table_weights:
            total += self.table_weights[table_id].nbytes
            total += self.table_accumulators[table_id].nbytes
        for array in self.dense.values():
            total += array.nbytes
        return total

    @classmethod
    def from_job(cls, job) -> "ReplicaState":
        """Capture a job's full live state (initial/rebuilt anchor)."""
        model = job.model
        return cls(
            table_weights={
                t: model.table_weight(t).copy()
                for t in range(model.num_tables)
            },
            table_accumulators={
                t: model.table_accumulator(t).copy()
                for t in range(model.num_tables)
            },
            dense=model.dense_state(),
            reader_state=job.reader.collect_state(),
            batches_trained=model.batches_trained,
            samples_trained=model.samples_trained,
            batches_left=job.batches_left,
            interval_index=job.controller.interval_index,
        )

    def apply(self, delta: StepDelta) -> None:
        """Fold one step delta into this state (in step order).

        Deltas are shared across a job's K rings, so everything taken
        from the delta is copied — two anchors must never alias.
        """
        for table_id, idx in delta.rows.items():
            self.table_weights[table_id][idx] = delta.weights[table_id]
            self.table_accumulators[table_id][idx] = delta.accumulators[
                table_id
            ]
        self.dense = {k: v.copy() for k, v in delta.dense.items()}
        self.reader_state = delta.reader_state
        self.batches_trained = delta.step
        self.samples_trained = delta.samples_trained
        self.batches_left = delta.batches_left
        self.interval_index = delta.interval_index

    def copy(self) -> "ReplicaState":
        """Deep copy (ring ``materialize`` works on a throwaway)."""
        return ReplicaState(
            table_weights={
                t: w.copy() for t, w in self.table_weights.items()
            },
            table_accumulators={
                t: a.copy()
                for t, a in self.table_accumulators.items()
            },
            dense={k: v.copy() for k, v in self.dense.items()},
            reader_state=self.reader_state,
            batches_trained=self.batches_trained,
            samples_trained=self.samples_trained,
            batches_left=self.batches_left,
            interval_index=self.interval_index,
        )
