"""Checkpoint serialization: frame format, codecs, generic compression."""

from .codec import (
    decode_array,
    decode_payload,
    decode_quantized,
    encode_array,
    encode_payload,
    encode_quantized,
)
from .compress import (
    CompressionReport,
    Compressor,
    DeflateCompressor,
    RleCompressor,
    make_compressor,
)
from .format import (
    Chunk,
    FrameReader,
    FrameWriter,
    decode_frames,
    encode_frames,
)

__all__ = [
    "Chunk",
    "CompressionReport",
    "Compressor",
    "DeflateCompressor",
    "FrameReader",
    "FrameWriter",
    "RleCompressor",
    "decode_array",
    "decode_frames",
    "decode_payload",
    "decode_quantized",
    "encode_array",
    "encode_frames",
    "encode_payload",
    "encode_quantized",
    "make_compressor",
]
