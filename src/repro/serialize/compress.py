"""Generic byte compressors — the paper's negative baseline.

Section 1 of the paper reports that Zstandard recovers at most ~7% on
recommendation-model checkpoints, which motivates quantization instead.
Zstandard is not available offline, so we substitute:

* :class:`DeflateCompressor` — zlib/DEFLATE from the standard library, the
  closest widely deployed general-purpose codec (documented substitution
  in DESIGN.md).
* :class:`RleCompressor` — a from-scratch run-length codec over repeated
  bytes; useful as a worst-case generic baseline and fully self-contained.

Both operate on raw checkpoint bytes and are exercised by the
``tab-zstd`` bench to confirm the paper's "generic compression doesn't
help" observation on trained fp32 embedding data.
"""

from __future__ import annotations

import struct
import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import SerializationError


@dataclass(frozen=True)
class CompressionReport:
    """Outcome of compressing one payload."""

    original_bytes: int
    compressed_bytes: int

    @property
    def ratio(self) -> float:
        """compressed / original; 1.0 means no savings."""
        if self.original_bytes == 0:
            return 1.0
        return self.compressed_bytes / self.original_bytes

    @property
    def savings(self) -> float:
        """Fractional size reduction (paper quotes <= 0.07 for Zstd)."""
        return 1.0 - self.ratio


class Compressor(ABC):
    """A reversible bytes -> bytes codec."""

    name: str = "abstract"

    @abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress ``data``; output must round-trip via ``decompress``."""

    @abstractmethod
    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`."""

    def report(self, data: bytes) -> CompressionReport:
        """Compress and report sizes without keeping the output."""
        return CompressionReport(len(data), len(self.compress(data)))


class DeflateCompressor(Compressor):
    """DEFLATE (zlib) — stands in for Zstandard in the paper's baseline."""

    name = "deflate"

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise SerializationError(f"invalid deflate level {level}")
        self._level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self._level)

    def decompress(self, data: bytes) -> bytes:
        try:
            return zlib.decompress(data)
        except zlib.error as exc:
            raise SerializationError(f"corrupt deflate stream: {exc}") from exc


class RleCompressor(Compressor):
    """Byte-level run-length encoding, implemented from scratch.

    Format: a sequence of ``(u8 count, u8 value)`` pairs for runs, with a
    literal-block escape for incompressible spans::

        0x00 | u16 length | raw bytes      (literal block)
        count>=1 | value                   (run of `count` copies)

    fp32 training weights have almost no repeated bytes, so this codec
    demonstrates the generic-compression failure mode even more starkly
    than DEFLATE.
    """

    name = "rle"

    _LITERAL = 0x00
    _MAX_RUN = 255
    _MAX_LITERAL = 0xFFFF

    def compress(self, data: bytes) -> bytes:
        out = bytearray()
        literal = bytearray()

        def flush_literal() -> None:
            start = 0
            while start < len(literal):
                block = literal[start : start + self._MAX_LITERAL]
                out.append(self._LITERAL)
                out.extend(struct.pack(">H", len(block)))
                out.extend(block)
                start += len(block)
            literal.clear()

        i = 0
        n = len(data)
        while i < n:
            run = 1
            while (
                i + run < n
                and data[i + run] == data[i]
                and run < self._MAX_RUN
            ):
                run += 1
            if run >= 4:  # runs shorter than 4 cost more than literals
                flush_literal()
                out.append(run)
                out.append(data[i])
            else:
                literal += data[i : i + run]
            i += run
        flush_literal()
        return bytes(out)

    def decompress(self, data: bytes) -> bytes:
        out = bytearray()
        i = 0
        n = len(data)
        while i < n:
            tag = data[i]
            i += 1
            if tag == self._LITERAL:
                if i + 2 > n:
                    raise SerializationError("truncated RLE literal header")
                (length,) = struct.unpack(">H", data[i : i + 2])
                i += 2
                if i + length > n:
                    raise SerializationError("truncated RLE literal block")
                out += data[i : i + length]
                i += length
            else:
                if i >= n:
                    raise SerializationError("truncated RLE run")
                out += bytes([data[i]]) * tag
                i += 1
        return bytes(out)


_COMPRESSORS = {
    "deflate": DeflateCompressor,
    "rle": RleCompressor,
}


def make_compressor(name: str, **kwargs: object) -> Compressor:
    """Instantiate a compressor by name ('deflate' or 'rle')."""
    try:
        factory = _COMPRESSORS[name]
    except KeyError:
        raise SerializationError(
            f"unknown compressor {name!r}; valid: {sorted(_COMPRESSORS)}"
        ) from None
    return factory(**kwargs)  # type: ignore[arg-type]
