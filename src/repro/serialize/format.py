"""Chunked binary checkpoint framing with CRC32 integrity.

Checkpoint payloads are stored as a sequence of self-describing frames::

    MAGIC "CNR1" | u16 version | u32 meta_len | meta (UTF-8 JSON)
    for each chunk:
        "CHNK" | u32 chunk_id | u64 payload_len | u32 crc32 | payload
    "CEND" | u32 num_chunks | u32 crc_of_chunk_ids

The format is deliberately simple: every chunk can be written as soon as
it is produced (the paper's pipelined quantize-then-store, section 4.4)
and every chunk is independently verifiable on restore.
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Iterator

from ..errors import SerializationError

MAGIC = b"CNR1"
CHUNK_MAGIC = b"CHNK"
END_MAGIC = b"CEND"
VERSION = 1

_HEADER_FMT = struct.Struct(">HI")  # version, meta_len
_CHUNK_FMT = struct.Struct(">IQI")  # chunk_id, payload_len, crc32
_END_FMT = struct.Struct(">II")  # num_chunks, ids_crc


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


@dataclass(frozen=True)
class Chunk:
    """One verified chunk read back from a frame stream."""

    chunk_id: int
    payload: bytes


class FrameWriter:
    """Streams frames to a binary file-like object.

    Usage::

        writer = FrameWriter(stream)
        writer.write_header({"checkpoint_id": "ckpt-3"})
        writer.write_chunk(0, payload)
        writer.finish()
    """

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        self._chunk_ids: list[int] = []
        self._header_written = False
        self._finished = False
        self.bytes_written = 0

    def write_header(self, meta: dict) -> int:
        """Write the header frame; returns bytes written."""
        if self._header_written:
            raise SerializationError("header already written")
        blob = json.dumps(meta, sort_keys=True).encode("utf-8")
        out = MAGIC + _HEADER_FMT.pack(VERSION, len(blob)) + blob
        self._stream.write(out)
        self._header_written = True
        self.bytes_written += len(out)
        return len(out)

    def write_chunk(self, chunk_id: int, payload: bytes) -> int:
        """Write one chunk frame; returns bytes written."""
        if not self._header_written:
            raise SerializationError("write_header must precede chunks")
        if self._finished:
            raise SerializationError("writer already finished")
        if chunk_id < 0 or chunk_id > 0xFFFFFFFF:
            raise SerializationError(f"chunk_id {chunk_id} out of range")
        out = CHUNK_MAGIC + _CHUNK_FMT.pack(
            chunk_id, len(payload), _crc(payload)
        )
        self._stream.write(out)
        self._stream.write(payload)
        self._chunk_ids.append(chunk_id)
        written = len(out) + len(payload)
        self.bytes_written += written
        return written

    def finish(self) -> int:
        """Write the end frame; returns bytes written."""
        if not self._header_written:
            raise SerializationError("cannot finish before header")
        if self._finished:
            raise SerializationError("writer already finished")
        ids_blob = b"".join(struct.pack(">I", i) for i in self._chunk_ids)
        out = END_MAGIC + _END_FMT.pack(len(self._chunk_ids), _crc(ids_blob))
        self._stream.write(out)
        self._finished = True
        self.bytes_written += len(out)
        return len(out)


class FrameReader:
    """Reads and verifies frames produced by :class:`FrameWriter`."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        self._meta: dict | None = None

    def _read_exact(self, n: int, what: str) -> bytes:
        data = self._stream.read(n)
        if len(data) != n:
            raise SerializationError(
                f"truncated stream while reading {what} "
                f"(wanted {n} bytes, got {len(data)})"
            )
        return data

    def read_header(self) -> dict:
        """Read and return the header metadata dict."""
        magic = self._read_exact(len(MAGIC), "magic")
        if magic != MAGIC:
            raise SerializationError(f"bad magic {magic!r}; not a CNR frame")
        version, meta_len = _HEADER_FMT.unpack(
            self._read_exact(_HEADER_FMT.size, "header")
        )
        if version != VERSION:
            raise SerializationError(f"unsupported frame version {version}")
        blob = self._read_exact(meta_len, "metadata")
        try:
            self._meta = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SerializationError(f"corrupt metadata: {exc}") from exc
        return self._meta

    def iter_chunks(self) -> Iterator[Chunk]:
        """Yield verified chunks; raises on CRC mismatch or truncation."""
        if self._meta is None:
            self.read_header()
        seen_ids: list[int] = []
        while True:
            magic = self._read_exact(4, "chunk magic")
            if magic == END_MAGIC:
                num_chunks, ids_crc = _END_FMT.unpack(
                    self._read_exact(_END_FMT.size, "end frame")
                )
                if num_chunks != len(seen_ids):
                    raise SerializationError(
                        f"end frame declares {num_chunks} chunks, "
                        f"stream contained {len(seen_ids)}"
                    )
                ids_blob = b"".join(struct.pack(">I", i) for i in seen_ids)
                if _crc(ids_blob) != ids_crc:
                    raise SerializationError("chunk id list CRC mismatch")
                return
            if magic != CHUNK_MAGIC:
                raise SerializationError(f"bad chunk magic {magic!r}")
            chunk_id, payload_len, crc = _CHUNK_FMT.unpack(
                self._read_exact(_CHUNK_FMT.size, "chunk header")
            )
            payload = self._read_exact(payload_len, f"chunk {chunk_id}")
            if _crc(payload) != crc:
                raise SerializationError(
                    f"chunk {chunk_id} CRC mismatch (corrupt payload)"
                )
            seen_ids.append(chunk_id)
            yield Chunk(chunk_id, payload)


def encode_frames(meta: dict, chunks: list[tuple[int, bytes]]) -> bytes:
    """One-shot encode: header + chunks + end frame into a bytes blob."""
    buf = io.BytesIO()
    writer = FrameWriter(buf)
    writer.write_header(meta)
    for chunk_id, payload in chunks:
        writer.write_chunk(chunk_id, payload)
    writer.finish()
    return buf.getvalue()


def decode_frames(data: bytes) -> tuple[dict, list[Chunk]]:
    """One-shot decode: returns (meta, chunks); raises on any corruption."""
    reader = FrameReader(io.BytesIO(data))
    meta = reader.read_header()
    return meta, list(reader.iter_chunks())
