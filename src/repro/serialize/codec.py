"""Codecs for numpy arrays and quantized tensors.

Payloads are self-describing: a small JSON header (dtype, shape, and for
quantized tensors the quantizer name, bit width and parameter arrays)
followed by raw little-endian bytes. Kept independent from the frame
format so codecs can be unit-tested in isolation.
"""

from __future__ import annotations

import json
import struct
from typing import TYPE_CHECKING

import numpy as np

from ..errors import SerializationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..quant.base import QuantizedTensor

_LEN = struct.Struct(">I")

#: dtypes the codec will round-trip; checkpoints only ever contain these.
_ALLOWED_DTYPES = {
    "float64",
    "float32",
    "float16",
    "int64",
    "int32",
    "int16",
    "uint8",
    "int8",
    "bool",
}


def _header(blob: dict) -> bytes:
    encoded = json.dumps(blob, sort_keys=True).encode("utf-8")
    return _LEN.pack(len(encoded)) + encoded


def _split_header(data: bytes) -> tuple[dict, bytes]:
    if len(data) < _LEN.size:
        raise SerializationError("payload too short for codec header")
    (length,) = _LEN.unpack(data[: _LEN.size])
    end = _LEN.size + length
    if len(data) < end:
        raise SerializationError("truncated codec header")
    try:
        header = json.loads(data[_LEN.size : end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"corrupt codec header: {exc}") from exc
    return header, data[end:]


def encode_array(arr: np.ndarray) -> bytes:
    """Encode an ndarray as header + raw little-endian bytes."""
    dtype = np.dtype(arr.dtype)
    if dtype.name not in _ALLOWED_DTYPES:
        raise SerializationError(f"refusing to encode dtype {dtype.name}")
    contiguous = np.ascontiguousarray(arr)
    le = contiguous.astype(dtype.newbyteorder("<"), copy=False)
    header = _header(
        {"kind": "array", "dtype": dtype.name, "shape": list(arr.shape)}
    )
    return header + le.tobytes()


def decode_array(data: bytes) -> np.ndarray:
    """Decode bytes produced by :func:`encode_array`."""
    header, body = _split_header(data)
    if header.get("kind") != "array":
        raise SerializationError(f"expected array payload, got {header!r}")
    dtype_name = header["dtype"]
    if dtype_name not in _ALLOWED_DTYPES:
        raise SerializationError(f"refusing to decode dtype {dtype_name}")
    dtype = np.dtype(dtype_name).newbyteorder("<")
    shape = tuple(header["shape"])
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if len(body) != expected:
        raise SerializationError(
            f"array body is {len(body)} bytes, expected {expected}"
        )
    arr = np.frombuffer(body, dtype=dtype).reshape(shape)
    return arr.astype(np.dtype(dtype_name), copy=True)


def encode_quantized(qt: "QuantizedTensor") -> bytes:
    """Encode a quantized tensor: header + packed codes + param arrays."""
    parts: list[bytes] = []
    param_specs: list[dict] = []
    for name in sorted(qt.params):
        payload = encode_array(qt.params[name])
        param_specs.append({"name": name, "length": len(payload)})
        parts.append(payload)
    codes = encode_array(qt.codes)
    header = _header(
        {
            "kind": "quantized",
            "quantizer": qt.quantizer,
            "bit_width": qt.bit_width,
            "shape": list(qt.shape),
            "codes_length": len(codes),
            "params": param_specs,
        }
    )
    return header + codes + b"".join(parts)


def decode_quantized(data: bytes) -> "QuantizedTensor":
    """Decode bytes produced by :func:`encode_quantized`."""
    from ..quant.base import QuantizedTensor

    header, body = _split_header(data)
    if header.get("kind") != "quantized":
        raise SerializationError(
            f"expected quantized payload, got {header!r}"
        )
    codes_length = int(header["codes_length"])
    if len(body) < codes_length:
        raise SerializationError("truncated quantized payload (codes)")
    codes = decode_array(body[:codes_length])
    offset = codes_length
    params: dict[str, np.ndarray] = {}
    for spec in header["params"]:
        length = int(spec["length"])
        segment = body[offset : offset + length]
        if len(segment) != length:
            raise SerializationError(
                f"truncated quantized payload (param {spec['name']})"
            )
        params[spec["name"]] = decode_array(segment)
        offset += length
    if offset != len(body):
        raise SerializationError("trailing bytes after quantized payload")
    return QuantizedTensor(
        codes=codes,
        bit_width=int(header["bit_width"]),
        shape=tuple(header["shape"]),
        quantizer=str(header["quantizer"]),
        params=params,
    )


def encode_payload(obj: "np.ndarray | QuantizedTensor") -> bytes:
    """Encode either a raw array or a quantized tensor (dispatching)."""
    from ..quant.base import QuantizedTensor

    if isinstance(obj, QuantizedTensor):
        return encode_quantized(obj)
    if isinstance(obj, np.ndarray):
        return encode_array(obj)
    raise SerializationError(f"cannot encode object of type {type(obj)!r}")


def decode_payload(data: bytes) -> "np.ndarray | QuantizedTensor":
    """Decode a payload produced by :func:`encode_payload`."""
    header, _ = _split_header(data)
    kind = header.get("kind")
    if kind == "array":
        return decode_array(data)
    if kind == "quantized":
        return decode_quantized(data)
    raise SerializationError(f"unknown payload kind {kind!r}")
