"""Checkpoint-to-inference serving plane (paper sections 1, 5.1).

Online training's whole point is that freshly trained state reaches
inference quickly. This package closes that loop inside the simulation:
a :class:`~repro.serving.publisher.ServingPublisher` turns each vetted
checkpoint into a :class:`~repro.serving.version.PublishedVersion`
(row locator + modified-row set + tracker-derived hot rows), and a
fleet of :class:`~repro.serving.server.InferenceServer`\\ s answers
high-QPS embedding-row lookups against the latest version through
version-pinned :class:`~repro.serving.rowcache.RowCache`\\ s, flipping
atomically when a new version lands.
:class:`~repro.serving.fleet.ServingFleet` co-simulates the whole plane
against a live checkpointing training job on one shared link.
"""

from .chunks import decode_chunk_rows
from .fleet import (
    ServingConfig,
    ServingFleet,
    ServingReport,
    format_serving_report,
    run_serving,
)
from .publisher import ServingPublisher
from .rowcache import RowCache, RowCacheStats
from .server import InferenceServer, LookupRequest, LookupResult
from .version import PublishedVersion, RowRef, rows_changed_between

__all__ = [
    "InferenceServer",
    "LookupRequest",
    "LookupResult",
    "PublishedVersion",
    "RowCache",
    "RowCacheStats",
    "RowRef",
    "ServingConfig",
    "ServingFleet",
    "ServingPublisher",
    "ServingReport",
    "decode_chunk_rows",
    "format_serving_report",
    "rows_changed_between",
    "run_serving",
]
