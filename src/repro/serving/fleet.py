"""Co-simulated checkpoint-to-inference serving plane.

One training job checkpoints under Check-N-Run while a small inference
fleet answers Zipf-skewed embedding-row lookups against the latest
*published* checkpoint version — all on one shared object store, so
training-side chunk PUTs, publisher chain reads and serving-side row
GETs contend for the same link under the
:class:`~repro.storage.bandwidth.BandwidthArbiter` (serving streams in
the strict-priority ``serving`` tier, the training job in ``prod``).

The driver mirrors the fleet scheduler's conservative-lockstep loop:
every staged operation (a checkpoint PUT part, a flip warm-read, a
lookup miss GET) announces itself before submitting, and the globally
earliest announcement runs next; ties on the link go to the arbiter.
That interleaving is exactly what lets the run demonstrate the two
properties the report asserts: lookups straddle version flips (and
finish untorn on the version they started on), and cache capacity —
not link luck — moves the p99.

Queries reuse the *training* dataset's Zipfian samplers, so the serving
hot set is the same skewed row population whose modifications drive the
incremental checkpoints — the paper's observation that access skew
makes the recently-modified set the hot set, applied end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ExperimentConfig
from ..core.controller import CheckpointEvent
from ..distributed.clock import SimClock
from ..errors import ServingError
from ..experiments.common import Experiment, build_experiment
from ..fleet.eventqueue import tie_threshold
from ..fleet.namespace import ScopedStore
from ..storage.backends import Backend
from ..storage.bandwidth import (
    BandwidthArbiter,
    TIER_PROD,
    TIER_SERVING,
)
from ..storage.factory import make_backend
from ..storage.object_store import ObjectStore
from .publisher import ServingPublisher
from .server import InferenceServer, LookupRequest, LookupResult

#: Hard ceiling on driver iterations — a stuck loop raises, never spins.
MAX_EVENTS = 2_000_000

#: Stream id of the publisher's chain reads on the shared link.
PUBLISH_STREAM = "publish"


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving-plane co-simulation."""

    num_servers: int = 2
    #: Per-server row-cache capacity (pinned hot rows + LRU ring).
    cache_rows: int = 256
    #: Arrival rate of lookup requests, fleet-wide.
    qps: float = 200.0
    num_queries: int = 400
    #: Hot rows the publisher announces (and servers pin) per table.
    hot_rows_per_table: int = 64
    #: Fixed per-request service overhead on top of storage reads.
    lookup_overhead_s: float = 0.0002
    #: Prefetch-and-pin the announced hot rows at each flip.
    warm_pins: bool = True
    #: Check every served value against the golden per-version replica
    #: snapshot (the torn-lookup detector).
    verify: bool = True
    seed: int = 7
    #: Checkpoint intervals the training job runs underneath.
    train_intervals: int = 6


@dataclass
class ServingReport:
    """Outcome of one serving-plane co-simulation."""

    num_servers: int
    cache_rows: int
    requests: int
    rows_looked_up: int
    cache_hits: int
    cache_misses: int
    lookup_p50_s: float
    lookup_p99_s: float
    lookup_mean_s: float
    version_flips: int
    flip_stall_total_s: float
    flip_stall_max_s: float
    version_lag_mean_s: float
    version_lag_max_s: float
    #: Requests whose served values mismatched the golden snapshot of
    #: the version they claim — must be zero (flip atomicity).
    torn_lookups: int
    #: Requests that completed on a version older than the fleet-wide
    #: latest at their completion moment — they straddled a flip.
    straddled_requests: int
    version_fallbacks: int
    publishes: int
    publish_mean_staleness_s: float
    serving_read_bytes: int
    publish_read_bytes: int
    train_write_bytes: int
    cache_evictions: int
    cache_inserts: int
    carried_rows: int
    pinned_rows: int
    duration_s: float

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class _PublisherStore(ScopedStore):
    """The publisher's store window: training namespace, own stream.

    Keeps the training job's key namespace (the publisher reads that
    job's checkpoints) but attributes transfers to the serving-tier
    ``publish`` stream, so publish chain reads are accounted — and
    prioritised — separately from the job's own traffic.
    """

    def __init__(
        self,
        store: ObjectStore,
        train_job_id: str,
        stream: str,
        clock: SimClock,
    ) -> None:
        super().__init__(store, train_job_id, clock)
        # ScopedStore tags transfers with ``job_id``; the namespace was
        # already derived from the training job id above, so swapping
        # the attribute swaps only the attribution.
        self.job_id = stream


class _Drive:
    """One staged generator in flight (a flip, a lookup or a publish)."""

    def __init__(
        self, kind: str, server: InferenceServer | None, gen
    ) -> None:
        self.kind = kind  # "flip", "lookup" or "publish"
        self.server = server
        self.gen = gen
        self.step = None
        self.result = None
        self.done = False

    def advance(self) -> None:
        try:
            self.step = next(self.gen)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self.step = None


class _GoldenPublisher(ServingPublisher):
    """A serving publisher that snapshots the replica per version.

    The snapshots are the ground truth the torn-lookup verifier
    compares served values against: ``golden[k]`` is exactly the model
    state version ``k`` announced.
    """

    def __init__(self, *args, capture_golden: bool = True, **kwargs):
        super().__init__(*args, **kwargs)
        self.capture_golden = capture_golden
        self.golden: list[dict[int, np.ndarray]] = []

    def _published(self, manifest, event) -> None:
        super()._published(manifest, event)
        if self.capture_golden:
            self.golden.append(
                {
                    table_id: self.replica.table_weight(table_id).copy()
                    for table_id in range(self.replica.config.num_tables)
                }
            )


@dataclass
class _ServerSlot:
    """Driver-side runtime state of one inference server."""

    server: InferenceServer
    queue: list[tuple[float, tuple[tuple[int, int], ...]]] = field(
        default_factory=list
    )
    next_query: int = 0
    free_s: float = 0.0
    flip: _Drive | None = None
    lookup: _Drive | None = None


class ServingFleet:
    """Drives training, publishing and serving on one simulated link."""

    TRAIN_JOB = "train0"

    def __init__(
        self,
        exp_config: ExperimentConfig,
        serving: ServingConfig,
        backend: Backend | None = None,
    ) -> None:
        if serving.num_servers < 1:
            raise ServingError("serving fleet needs at least one server")
        if serving.train_intervals < 1:
            raise ServingError("co-simulation needs >= 1 train interval")
        self.serving = serving
        self.store_clock = SimClock()
        arbiter = BandwidthArbiter()
        arbiter.register(self.TRAIN_JOB, tier=TIER_PROD)
        arbiter.register(PUBLISH_STREAM, tier=TIER_SERVING)
        self.store = ObjectStore(
            exp_config.storage,
            self.store_clock,
            backend=(
                backend
                if backend is not None
                else make_backend(
                    exp_config.storage.backend, exp_config.storage
                )
            ),
            arbiter=arbiter,
        )
        self.train_clock = SimClock()
        scoped = ScopedStore(self.store, self.TRAIN_JOB, self.train_clock)
        self.exp: Experiment = build_experiment(
            exp_config,
            job_id=self.TRAIN_JOB,
            overlap_action="skip_new",
            store=scoped,
            clock=self.train_clock,
        )
        self.pub_clock = SimClock()
        self.publisher = _GoldenPublisher(
            _PublisherStore(
                self.store, self.TRAIN_JOB, PUBLISH_STREAM, self.pub_clock
            ),
            self.pub_clock,
            self.exp.model.clone_config_model(),
            self.TRAIN_JOB,
            hot_rows_per_table=serving.hot_rows_per_table,
            capture_golden=serving.verify,
        )
        self.slots: list[_ServerSlot] = []
        for index in range(serving.num_servers):
            stream = f"serve{index}"
            arbiter.register(stream, tier=TIER_SERVING)
            self.slots.append(
                _ServerSlot(
                    server=InferenceServer(
                        server_id=stream,
                        store=self.store,
                        publisher=self.publisher,
                        cache_rows=serving.cache_rows,
                        stream=stream,
                        lookup_overhead_s=serving.lookup_overhead_s,
                        warm_pins=serving.warm_pins,
                    )
                )
            )
        self._assign_queries()
        self.results: list[LookupResult] = []
        self.torn_lookups = 0
        self.straddled_requests = 0
        self._query_base: float | None = None
        self._request_counter = 0
        self._train_pending = None
        self._batches_left = exp_config.checkpoint.interval_batches
        self._publish: _Drive | None = None
        self._publish_again = False

    # ------------------------------------------------------------------
    # Query workload
    # ------------------------------------------------------------------

    def _assign_queries(self) -> None:
        """Precompute every request's row batch and arrival offset.

        Rows come from the training dataset's own Zipfian samplers (one
        row per table per request), so serving traffic hits the same
        skewed population training modifies. Arrivals are Poisson at
        the configured fleet QPS, round-robin across servers, and
        *offsets*: the absolute times anchor at the moment the whole
        fleet first flips, because before that there is nothing to
        serve.
        """
        rng = np.random.default_rng(self.serving.seed)
        samplers = self.exp.dataset.samplers
        num_tables = len(samplers)
        gaps = rng.exponential(
            1.0 / self.serving.qps, size=self.serving.num_queries
        )
        offsets = np.cumsum(gaps)
        for index in range(self.serving.num_queries):
            rows = tuple(
                (table_id, int(samplers[table_id].sample((1,), rng)[0]))
                for table_id in range(num_tables)
            )
            slot = self.slots[index % len(self.slots)]
            slot.queue.append((float(offsets[index]), rows))

    # ------------------------------------------------------------------
    # Training side (a single-job mirror of the fleet scheduler)
    # ------------------------------------------------------------------

    def _training_done(self) -> bool:
        return (
            self.exp.controller.interval_index
            >= self.serving.train_intervals
        )

    def _step_train(self) -> None:
        if self._batches_left == 0 and not self._training_done():
            self._trigger_checkpoint()
            return
        if self._training_done():
            return
        self.exp.controller.coordinator.grant_interval(1)
        self.exp.trainer.train_one_batch()
        self._batches_left -= 1

    def _trigger_checkpoint(self) -> None:
        self._batches_left = (
            self.exp.config.checkpoint.interval_batches
        )
        if self._train_pending is not None:
            self.exp.controller.record_skip("skipped_overlap")
            return
        began = self.exp.controller.begin_checkpoint()
        if isinstance(began, CheckpointEvent):
            return  # paper-rule skip: previous manifest not valid yet
        self._train_pending = began

    def _step_write(self) -> None:
        pending = self._train_pending
        assert pending is not None
        step = pending.advance()
        if step is not None:
            return
        event = self.exp.controller.finish_checkpoint(pending)
        assert event.manifest is not None
        self._on_written(event.manifest.valid_at_s)

    def _on_written(self, valid_at_s: float) -> None:
        """A checkpoint landed: start (or queue) a staged publish.

        The poll runs at the moment the manifest became *valid* (its
        write completed on the shared timeline) — the training job's
        own clock lags its async writes, and polling earlier would
        reject the fresh manifest as not-yet-valid. The publisher's
        chain reads run as a staged drive on the ``publish`` stream, so
        lookups interleave with them part by part instead of queueing
        behind a whole chain; servers are notified at the time the
        publish reads actually completed. A checkpoint landing while a
        publish is already in flight queues one re-poll.
        """
        self._train_pending = None
        self.pub_clock.advance(
            max(
                0.0,
                max(self.train_clock.now, valid_at_s)
                - self.pub_clock.now,
            ),
            "publish-poll",
        )
        if self._publish is not None:
            self._publish_again = True
            return
        self._start_publish()

    def _start_publish(self) -> None:
        drive = _Drive("publish", None, self.publisher.poll_steps())
        drive.advance()
        if drive.done:
            self._finish_publish(drive)
        else:
            self._publish = drive

    def _finish_publish(self, drive: _Drive) -> None:
        self._publish = None
        events = drive.result or []
        if events:
            notify = max(
                self.pub_clock.now,
                max(e.applied_at_s for e in events),
            )
            for slot in self.slots:
                self._maybe_flip(slot, notify)
        if self._publish_again:
            self._publish_again = False
            self._start_publish()

    # ------------------------------------------------------------------
    # Serving side
    # ------------------------------------------------------------------

    def _maybe_flip(self, slot: _ServerSlot, notify_s: float) -> None:
        latest = self.publisher.latest_version
        if latest is None or slot.flip is not None:
            return
        if slot.server.version_index >= latest.version_index:
            return
        drive = _Drive(
            "flip", slot.server, slot.server.flip_steps(latest, notify_s)
        )
        drive.advance()
        if drive.done:
            self._finish_flip(slot, drive)
        else:
            slot.flip = drive

    def _finish_flip(self, slot: _ServerSlot, drive: _Drive) -> None:
        slot.flip = None
        done_s = float(drive.result)
        if self._query_base is None and all(
            s.server.version_index >= 0 for s in self.slots
        ):
            # The whole fleet serves now; anchor the query arrivals.
            self._query_base = done_s
        # A newer version may have published while this flip warmed.
        self._maybe_flip(slot, done_s)

    def _dispatch(self, slot: _ServerSlot, at_s: float) -> None:
        arrival_offset, rows = slot.queue[slot.next_query]
        slot.next_query += 1
        assert self._query_base is not None
        request = LookupRequest(
            request_id=self._request_counter,
            arrival_s=self._query_base + arrival_offset,
            rows=rows,
        )
        self._request_counter += 1
        drive = _Drive(
            "lookup",
            slot.server,
            slot.server.lookup_steps(request, start_s=at_s),
        )
        drive.advance()
        if drive.done:
            self._finish_lookup(slot, drive)
        else:
            slot.lookup = drive

    def _finish_lookup(self, slot: _ServerSlot, drive: _Drive) -> None:
        slot.lookup = None
        result: LookupResult = drive.result
        slot.free_s = result.completed_s
        self.results.append(result)
        latest = self.publisher.latest_version
        if (
            latest is not None
            and result.version_index < latest.version_index
        ):
            self.straddled_requests += 1
        if self.serving.verify:
            golden = self.publisher.golden[result.version_index]
            for (table_id, row), value in result.values.items():
                if not np.array_equal(value, golden[table_id][row]):
                    self.torn_lookups += 1
                    break

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------

    def _next_event(self):
        """The globally earliest pending event, fleet-scheduler style.

        Link operations (write parts, flip/lookup read parts) compete
        at ``max(ready, link free)``; ties go to the arbiter (serving
        tier outranks prod, SFQ within the tier). Non-link events
        (training compute, request dispatch) run at their own clocks
        and lose ties to link operations, so a ready transfer claims
        its slot first.
        """
        link_free = self.store.timeline.free_at
        link_ops: list[tuple[float, str, object, str]] = []
        other: list[tuple[float, str, object]] = []
        if self._train_pending is not None:
            step = self._train_pending.next_step
            when = (
                max(step.ready_s, link_free)
                if step is not None
                else self.train_clock.now
            )
            link_ops.append((when, "write", None, self.TRAIN_JOB))
        if self._publish is not None and self._publish.step is not None:
            link_ops.append(
                (
                    max(self._publish.step.ready_s, link_free),
                    "drive",
                    (None, self._publish),
                    PUBLISH_STREAM,
                )
            )
        if not self._training_done():
            other.append((self.train_clock.now, "train", None))
        for slot in self.slots:
            for drive in (slot.flip, slot.lookup):
                if drive is not None and drive.step is not None:
                    link_ops.append(
                        (
                            max(drive.step.ready_s, link_free),
                            "drive",
                            (slot, drive),
                            slot.server.stream,
                        )
                    )
            if (
                self._query_base is not None
                and slot.lookup is None
                and slot.next_query < len(slot.queue)
            ):
                arrival = (
                    self._query_base + slot.queue[slot.next_query][0]
                )
                other.append(
                    (max(arrival, slot.free_s), "dispatch", slot)
                )
        if not link_ops and not other:
            return None
        best_link = min(link_ops, key=lambda e: e[0], default=None)
        best_other = min(other, key=lambda e: e[0], default=None)
        if best_link is not None and (
            best_other is None or best_link[0] <= best_other[0]
        ):
            tied = [
                entry
                for entry in link_ops
                if entry[0] <= tie_threshold(best_link[0])
            ]
            if len(tied) > 1:
                # Flip warm-reads are *background* prefetch: when the
                # link is contended (a tie means everyone is queued at
                # link-free), a pending lookup or checkpoint part beats
                # them — prefetch must never add to the lookup tail.
                # With the link idle there is no tie and a ready warm
                # part runs immediately.
                foreground = [
                    e
                    for e in tied
                    if not (
                        e[1] == "drive" and e[2][1].kind == "flip"
                    )
                ]
                if foreground:
                    tied = foreground
            if len(tied) > 1:
                chosen_stream = self.store.arbiter.pick(
                    sorted({entry[3] for entry in tied})
                )
                # Within one stream, flips precede lookups (stable).
                tied = [e for e in tied if e[3] == chosen_stream]
            entry = tied[0]
            return entry[0], entry[1], entry[2]
        assert best_other is not None
        return best_other

    def run(self) -> ServingReport:
        started = self.train_clock.now
        for _ in range(MAX_EVENTS):
            event = self._next_event()
            if event is None:
                break
            _, kind, payload = event
            if kind == "write":
                self._step_write()
            elif kind == "train":
                self._step_train()
            elif kind == "dispatch":
                self._dispatch(payload, event[0])
            else:
                slot, drive = payload
                drive.advance()
                if drive.done:
                    if drive.kind == "publish":
                        self._finish_publish(drive)
                    elif drive.kind == "flip":
                        self._finish_flip(slot, drive)
                    else:
                        self._finish_lookup(slot, drive)
        else:
            raise ServingError(
                f"serving co-simulation did not converge within "
                f"{MAX_EVENTS} events"
            )
        return self._report(started)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _report(self, started: float) -> ServingReport:
        latencies = np.asarray(
            [r.latency_s for r in self.results], dtype=np.float64
        )
        lags = np.asarray(
            [
                r.completed_s
                - self.publisher.versions[r.version_index].created_at_s
                for r in self.results
            ],
            dtype=np.float64,
        )
        arbiter = self.store.arbiter
        assert arbiter is not None
        serving_read = sum(
            arbiter.stream(slot.server.stream).served_get_bytes
            for slot in self.slots
        )
        servers = [slot.server for slot in self.slots]
        end = max(
            [self.train_clock.now]
            + [r.completed_s for r in self.results]
        )
        return ServingReport(
            num_servers=len(servers),
            cache_rows=self.serving.cache_rows,
            requests=len(self.results),
            rows_looked_up=sum(s.rows_served for s in servers),
            cache_hits=sum(r.hits for r in self.results),
            cache_misses=sum(r.misses for r in self.results),
            lookup_p50_s=(
                float(np.percentile(latencies, 50)) if latencies.size else 0.0
            ),
            lookup_p99_s=(
                float(np.percentile(latencies, 99)) if latencies.size else 0.0
            ),
            lookup_mean_s=(
                float(latencies.mean()) if latencies.size else 0.0
            ),
            version_flips=sum(s.flips for s in servers),
            flip_stall_total_s=sum(s.flip_stall_total_s for s in servers),
            flip_stall_max_s=max(
                (s.flip_stall_max_s for s in servers), default=0.0
            ),
            version_lag_mean_s=float(lags.mean()) if lags.size else 0.0,
            version_lag_max_s=float(lags.max()) if lags.size else 0.0,
            torn_lookups=self.torn_lookups,
            straddled_requests=self.straddled_requests,
            version_fallbacks=sum(s.version_fallbacks for s in servers),
            publishes=self.publisher.stats.publishes,
            publish_mean_staleness_s=self.publisher.stats.mean_staleness_s,
            serving_read_bytes=serving_read,
            publish_read_bytes=arbiter.stream(
                PUBLISH_STREAM
            ).served_get_bytes,
            train_write_bytes=arbiter.stream(
                self.TRAIN_JOB
            ).served_put_bytes,
            cache_evictions=sum(
                s.cache_stats.evictions for s in servers
            ),
            cache_inserts=sum(s.cache_stats.inserts for s in servers),
            carried_rows=sum(
                s.cache_stats.carried_rows for s in servers
            ),
            pinned_rows=sum(
                s.current.cache.pinned_rows
                for s in servers
                if s.current is not None
            ),
            duration_s=end - started,
        )


def run_serving(
    exp_config: ExperimentConfig,
    serving: ServingConfig,
    backend: Backend | None = None,
) -> ServingReport:
    """Build and run one serving-plane co-simulation."""
    return ServingFleet(exp_config, serving, backend=backend).run()


def format_serving_report(report: ServingReport) -> str:
    """Human-readable summary (the CLI artifact)."""
    lines = [
        "serving plane co-simulation",
        f"  servers                {report.num_servers}",
        f"  cache rows/server      {report.cache_rows}",
        f"  requests served        {report.requests}",
        f"  rows looked up         {report.rows_looked_up}",
        f"  cache hit rate         {report.hit_rate:.3f} "
        f"({report.cache_hits} hits / {report.cache_misses} misses)",
        f"  lookup p50             {report.lookup_p50_s * 1e3:.3f} ms",
        f"  lookup p99             {report.lookup_p99_s * 1e3:.3f} ms",
        f"  lookup mean            {report.lookup_mean_s * 1e3:.3f} ms",
        f"  version flips          {report.version_flips}",
        f"  flip stall total/max   {report.flip_stall_total_s:.3f} s / "
        f"{report.flip_stall_max_s:.3f} s",
        f"  version lag mean/max   {report.version_lag_mean_s:.3f} s / "
        f"{report.version_lag_max_s:.3f} s",
        f"  straddled requests     {report.straddled_requests}",
        f"  torn lookups           {report.torn_lookups}",
        f"  version fallbacks      {report.version_fallbacks}",
        f"  publishes              {report.publishes} "
        f"(mean staleness {report.publish_mean_staleness_s:.3f} s)",
        f"  serving read bytes     {report.serving_read_bytes}",
        f"  publish read bytes     {report.publish_read_bytes}",
        f"  train write bytes      {report.train_write_bytes}",
        f"  cache inserts/evicts   {report.cache_inserts} / "
        f"{report.cache_evictions}",
        f"  carried rows (flips)   {report.carried_rows}",
        f"  pinned rows (now)      {report.pinned_rows}",
        f"  duration               {report.duration_s:.3f} s",
    ]
    return "\n".join(lines) + "\n"
