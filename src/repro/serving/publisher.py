"""The serving publisher: checkpoint -> announced version pipeline.

:class:`ServingPublisher` extends the online-training publisher
(:class:`~repro.core.publisher.OnlinePublisher`): besides keeping a
golden replica fresh, it turns every applied checkpoint into a
:class:`~repro.serving.version.PublishedVersion` the inference fleet
can flip to. The version's row locator is assembled from the apply
itself — the publisher reads every chunk anyway, so recording which
chunk carries each row's newest value costs nothing extra — and the
hot set is the cumulative modification-frequency ranking: incremental
checkpoints store exactly the rows the training-side modified-row
trackers flagged, so publish history *is* the tracker signal (paper
section 4.2: access skew makes the recently-modified set the hot set).

Candidate selection inherits the resume planner's vetting: quarantined
checkpoints, chains with quarantined links, and chains with missing
objects never publish (see ``OnlinePublisher.pending``).
"""

from __future__ import annotations

import numpy as np

from ..core.manifest import KIND_INCREMENTAL, CheckpointManifest
from ..core.publisher import OnlinePublisher, PublishEvent
from .version import PublishedVersion, RowRef


class ServingPublisher(OnlinePublisher):
    """Publishes vetted checkpoints as versioned, locatable snapshots."""

    def __init__(
        self,
        store,
        clock,
        replica,
        job_id: str,
        hot_rows_per_table: int = 64,
    ) -> None:
        super().__init__(store, clock, replica, job_id)
        self.hot_rows_per_table = hot_rows_per_table
        #: Append-only announcement log; index == ``version_index``.
        self.versions: list[PublishedVersion] = []
        self._locator: dict[int, dict[int, RowRef]] = {}
        self._touch_counts: dict[int, np.ndarray] = {}
        self._pending_rows: dict[int, list[np.ndarray]] = {}

    @property
    def latest_version(self) -> PublishedVersion | None:
        return self.versions[-1] if self.versions else None

    # -- hooks from the base publisher ---------------------------------

    def _on_chunk(self, manifest, shard_record, chunk, rows) -> None:
        """Point every row of a decoded chunk at that chunk.

        Chain applies run oldest-first, so later links overwrite
        earlier locator entries — after the walk, each row maps to the
        chunk holding its *newest* value, mirroring what the replica's
        weights ended up as. A failed fallback candidate cannot poison
        the locator: every successful chain starts at a full
        checkpoint, which re-points every row.
        """
        table_id = shard_record.table_id
        ref = RowRef(key=chunk.key, digest=chunk.digest, table_id=table_id)
        table = self._locator.setdefault(table_id, {})
        row_list = np.asarray(rows).astype(np.int64)
        for row in row_list.tolist():
            table[int(row)] = ref
        self._pending_rows.setdefault(table_id, []).append(row_list)
        counts = self._touch_counts.get(table_id)
        if counts is None:
            counts = np.zeros(
                self.replica.table_weight(table_id).shape[0],
                dtype=np.int64,
            )
            self._touch_counts[table_id] = counts
        if manifest.kind == KIND_INCREMENTAL:
            # Only tracker-flagged rows count toward hotness: a full
            # checkpoint touches *every* row once, which is no signal
            # and would drown the skew the hot set exists to capture.
            counts[row_list] += 1

    def _published(
        self, manifest: CheckpointManifest, event: PublishEvent
    ) -> None:
        modified = {
            table_id: np.unique(np.concatenate(parts))
            for table_id, parts in sorted(self._pending_rows.items())
        }
        self._pending_rows = {}
        self.versions.append(
            PublishedVersion(
                version_index=len(self.versions),
                checkpoint_id=manifest.checkpoint_id,
                kind=manifest.kind,
                created_at_s=manifest.created_at_s,
                published_at_s=self.clock.now,
                locator={
                    table_id: dict(rows)
                    for table_id, rows in self._locator.items()
                },
                modified_rows=modified,
                hot_rows=self._hot_rows(),
            )
        )

    # -- hot set -------------------------------------------------------

    def _hot_rows(self) -> dict[int, np.ndarray]:
        """Top rows per table by cumulative modification count.

        Ties break toward lower row ids for determinism; rows never
        modified (count 0) are excluded even when the budget allows.
        """
        hot: dict[int, np.ndarray] = {}
        for table_id, counts in sorted(self._touch_counts.items()):
            touched = int(np.count_nonzero(counts))
            budget = min(self.hot_rows_per_table, touched)
            if budget == 0:
                hot[table_id] = np.zeros(0, dtype=np.int64)
                continue
            order = np.lexsort(
                (np.arange(counts.shape[0]), -counts)
            )
            hot[table_id] = np.sort(order[:budget]).astype(np.int64)
        return hot
