"""The version-pinned embedding-row cache each inference server holds.

A :class:`RowCache` is pinned to exactly one published version: every
entry it returns is that version's value for the row, never anything
older or newer. Two mechanisms fill it:

* **LRU admission** — a lookup miss fetches the row's chunk; every row
  of the chunk *that the pinned version maps to that same chunk* is
  admitted (block-granular fill, the cheap side effect of a ranged GET),
  and the least-recently-used rows fall out under capacity pressure;
* **hot-row pinning** — the publisher's tracker-derived hot set is
  pinned outside the LRU ring, so the rows that dominate Zipf-skewed
  traffic can never be evicted by a burst of cold lookups.

Across an atomic version flip a *new* generation is built with
:meth:`RowCache.from_previous`: entries for rows the new version did
not modify are carried over (their bytes are identical in both
versions), modified rows are dropped, and the hot set re-warms. Stats
are shared across generations so hit rates describe the server, not
one version's lifetime.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..errors import ServingError


@dataclass
class RowCacheStats:
    """Cumulative counters shared across a server's cache generations."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0
    carried_rows: int = 0
    dropped_rows: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class RowCache:
    """LRU row cache with pinned hot rows, bound to one version."""

    def __init__(
        self,
        capacity_rows: int,
        version_index: int,
        stats: RowCacheStats | None = None,
    ) -> None:
        if capacity_rows < 1:
            raise ServingError(
                f"row cache needs capacity >= 1, got {capacity_rows}"
            )
        self.capacity_rows = capacity_rows
        self.version_index = version_index
        self.stats = stats if stats is not None else RowCacheStats()
        self._pinned: dict[tuple[int, int], np.ndarray] = {}
        self._lru: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return len(self._pinned) + len(self._lru)

    @property
    def pinned_rows(self) -> int:
        return len(self._pinned)

    def contains(self, table_id: int, row: int) -> bool:
        """Presence probe without touching hit/miss stats or LRU order."""
        key = (table_id, int(row))
        return key in self._pinned or key in self._lru

    def peek(self, table_id: int, row: int) -> np.ndarray | None:
        """The cached value without stats or recency side effects.

        Flip warm-up uses this to re-pin carried entries: promoting a
        carried row to a pin is bookkeeping, not serving traffic, so it
        must not inflate the hit rate.
        """
        key = (table_id, int(row))
        value = self._pinned.get(key)
        if value is None:
            value = self._lru.get(key)
        return value

    # -- lookup / admission --------------------------------------------

    def lookup(self, table_id: int, row: int) -> np.ndarray | None:
        """The cached value, or ``None`` on a miss (stats counted)."""
        key = (table_id, int(row))
        value = self._pinned.get(key)
        if value is not None:
            self.stats.hits += 1
            return value
        value = self._lru.get(key)
        if value is not None:
            self._lru.move_to_end(key)
            self.stats.hits += 1
            return value
        self.stats.misses += 1
        return None

    def admit(self, table_id: int, row: int, value: np.ndarray) -> None:
        """Insert one row into the LRU ring (no-op if pinned).

        Pinned rows own their capacity; the LRU ring gets whatever is
        left. When pins fill the whole cache, plain admissions bounce.
        """
        key = (table_id, int(row))
        if key in self._pinned:
            return
        ring_capacity = self.capacity_rows - len(self._pinned)
        if ring_capacity <= 0:
            return
        if key not in self._lru:
            self.stats.inserts += 1
        self._lru[key] = value
        self._lru.move_to_end(key)
        while len(self._lru) > ring_capacity:
            self._lru.popitem(last=False)
            self.stats.evictions += 1

    def pin(self, table_id: int, row: int, value: np.ndarray) -> bool:
        """Pin one hot row outside the LRU ring; False when full.

        A row already in the ring is promoted (its slot moves from ring
        to pin). Pins never exceed the cache's total capacity — hot
        sets larger than the cache pin a prefix and leave the rest to
        the LRU.
        """
        key = (table_id, int(row))
        if key in self._pinned:
            self._pinned[key] = value
            return True
        if len(self._pinned) >= self.capacity_rows:
            return False
        self._lru.pop(key, None)
        self._pinned[key] = value
        # Pinning shrinks the ring's share; spill the coldest entries.
        ring_capacity = self.capacity_rows - len(self._pinned)
        while len(self._lru) > ring_capacity:
            self._lru.popitem(last=False)
            self.stats.evictions += 1
        return True

    # -- version flips -------------------------------------------------

    @classmethod
    def from_previous(
        cls,
        previous: "RowCache",
        version_index: int,
        invalidate_rows: dict[int, np.ndarray],
    ) -> "RowCache":
        """The next generation: carry unmodified entries, drop the rest.

        ``invalidate_rows`` must cover every row any version between the
        generations modified (see
        :func:`~repro.serving.version.rows_changed_between`) — those
        values changed, so carrying them would serve torn reads. All
        other entries are byte-identical across the flip and carry over
        warm. Pins are *not* carried: the new version's hot set re-pins
        (and re-reads) explicitly, which is what the flip-stall metric
        measures.
        """
        cache = cls(
            previous.capacity_rows, version_index, stats=previous.stats
        )
        dropped: dict[int, set[int]] = {
            table_id: set(np.asarray(rows).tolist())
            for table_id, rows in invalidate_rows.items()
        }
        for (table_id, row), value in previous._lru.items():
            if row in dropped.get(table_id, ()):
                cache.stats.dropped_rows += 1
                continue
            cache._lru[(table_id, row)] = value
            cache.stats.carried_rows += 1
        for (table_id, row), value in previous._pinned.items():
            if row in dropped.get(table_id, ()):
                cache.stats.dropped_rows += 1
                continue
            # Still-valid pinned values re-enter as ring entries; the
            # new version's own hot set decides what gets pinned.
            cache._lru[(table_id, row)] = value
            cache.stats.carried_rows += 1
        while len(cache._lru) > cache.capacity_rows:
            cache._lru.popitem(last=False)
            cache.stats.evictions += 1
        return cache
