"""A simulated inference server answering row lookups from checkpoints.

Each :class:`InferenceServer` serves embedding-row lookups against
exactly one published version at a time, reading missed rows straight
from the version's checkpoint chunks through the shared object store
(its GETs ride the same bandwidth arbiter as training-side checkpoint
writes). Both the version flip and the lookup are *staged generators*
in the style of the core writer/restorer: they yield a
:class:`~repro.core.restore.ReadStep` before every GET part and resume
to submit it, so the serving fleet driver can interleave many servers'
reads with training traffic on one simulated clock.

**Atomic flips.** ``current`` is a single reference to an immutable
``(version, cache)`` pair. A lookup captures the reference once, serves
every row of the request against that capture, and never re-reads
``current`` mid-request — so a flip landing while a lookup is in flight
leaves the old request on the old version (finishing cleanly) while the
next request sees the new one. No request ever mixes rows from two
versions; the fleet verifies this against golden per-version snapshots.

**Corruption fallback.** Every chunk read is digest-verified. A corrupt
chunk during a flip makes the server retry the flip against the next
older published version; during a lookup it poisons the current state,
falls back one version with a cold cache, and replays the whole request
there — a request is atomic even across a fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.restore import ReadStep
from ..errors import CheckpointCorruptError, ServingError
from ..storage.object_store import ObjectStore
from .chunks import decode_chunk_rows
from .publisher import ServingPublisher
from .rowcache import RowCache, RowCacheStats
from .version import PublishedVersion, RowRef, rows_changed_between


@dataclass(frozen=True)
class LookupRequest:
    """One inference-side embedding lookup: a batch of (table, row)."""

    request_id: int
    arrival_s: float
    rows: tuple[tuple[int, int], ...]


@dataclass
class LookupResult:
    """The served answer, pinned to one version end to end."""

    request_id: int
    server_id: str
    version_index: int
    arrival_s: float
    completed_s: float
    hits: int
    misses: int
    #: How many version fallbacks this request survived (0 = clean).
    fallback_depth: int
    values: dict[tuple[int, int], np.ndarray] = field(repr=False)

    @property
    def latency_s(self) -> float:
        return self.completed_s - self.arrival_s


@dataclass
class _VersionState:
    """One immutable serving generation: a version plus its cache."""

    version: PublishedVersion
    cache: RowCache
    poisoned: bool = False


class InferenceServer:
    """Serves row lookups against the latest flipped version."""

    def __init__(
        self,
        server_id: str,
        store: ObjectStore,
        publisher: ServingPublisher,
        cache_rows: int,
        stream: str = "",
        lookup_overhead_s: float = 0.0002,
        warm_pins: bool = True,
    ) -> None:
        self.server_id = server_id
        self.store = store
        self.publisher = publisher
        self.cache_rows = cache_rows
        self.stream = stream
        self.lookup_overhead_s = lookup_overhead_s
        self.warm_pins = warm_pins
        self.cache_stats = RowCacheStats()
        self.current: _VersionState | None = None
        self.lookups = 0
        self.rows_served = 0
        self.flips = 0
        self.flip_stall_total_s = 0.0
        self.flip_stall_max_s = 0.0
        self.version_fallbacks = 0

    @property
    def version_index(self) -> int:
        """The currently served version, -1 before the first flip."""
        return self.current.version.version_index if self.current else -1

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def _staged_read(self, key: str, earliest: float):
        """Yield a :class:`ReadStep` per GET part; resume submits it.

        Returns ``(bytes, completed_s)``. ``earliest`` is server-local
        sequencing: a server handles one read at a time, so each read
        starts no earlier than the previous one finished.
        """
        staged = self.store.stage_get(
            key, earliest=earliest, stream=self.stream
        )
        while not staged.done:
            yield ReadStep(
                key=key,
                ready_s=staged.next_ready_s,
                part_index=staged.next_part_number,
                num_parts=staged.num_parts,
            )
            staged.submit_next()
        receipt = staged.receipt
        assert receipt is not None
        return staged.data(), receipt.completed_s

    def _fetch_chunk(self, ref: RowRef, earliest: float):
        """Read + verify + decode one chunk; admit its resident rows.

        Only rows the *served version's* locator still maps to this very
        chunk are admitted: a full checkpoint's chunk carries stale
        copies of rows that later increments re-wrote, and admitting
        those would serve old values for them. Returns
        ``(rows, weights, completed_s)``.
        """
        blob, completed = yield from self._staged_read(ref.key, earliest)
        rows, weights = decode_chunk_rows(ref.key, blob, ref.digest)
        return rows, weights, completed

    @staticmethod
    def _admit_resident(
        state: _VersionState,
        ref: RowRef,
        rows: np.ndarray,
        weights: np.ndarray,
        center_index: int,
    ) -> None:
        """Admit a bounded window of the chunk around the wanted row.

        Fetching one row pulls its whole chunk, but admitting *all* of
        it would let a single cold miss flush a cache smaller than the
        chunk. Instead a window around the requested row (an eighth of
        the cache on each side) is admitted — spatial prefetch without
        the flood. Only rows the served version's locator still maps to
        this very chunk are eligible: a full checkpoint's chunk carries
        stale copies of rows that later increments re-wrote.
        """
        window = max(1, state.cache.capacity_rows // 8)
        lo = max(0, center_index - window)
        hi = min(rows.shape[0], center_index + window + 1)
        table_locator = state.version.locator.get(ref.table_id, {})
        for index in range(lo, hi):
            row = int(rows[index])
            resident = table_locator.get(row)
            if resident is not None and resident.key == ref.key:
                state.cache.admit(
                    ref.table_id, row, weights[index].copy()
                )

    # ------------------------------------------------------------------
    # Version flips
    # ------------------------------------------------------------------

    def flip_steps(self, version: PublishedVersion, notify_s: float):
        """Generator: atomically flip to ``version`` (or a fallback).

        Builds the next cache generation off-line (carrying entries the
        new version did not modify), warm-reads and pins the version's
        hot rows, and only then swaps ``current`` — in-flight lookups
        holding the old state finish undisturbed. A corrupt chunk while
        warming retries the whole flip against the next older published
        version (counted in ``version_fallbacks``); with no viable
        candidate an already-serving server simply stays put. Returns
        the simulated time the flip completed.
        """
        target = version.version_index
        current_index = self.version_index
        for candidate_index in range(target, current_index, -1):
            candidate = self.publisher.versions[candidate_index]
            try:
                cache = self._next_cache(candidate)
                ready = notify_s
                if self.warm_pins:
                    ready = yield from self._warm(candidate, cache, notify_s)
                self.current = _VersionState(version=candidate, cache=cache)
                self.flips += 1
                stall = max(0.0, ready - notify_s)
                self.flip_stall_total_s += stall
                self.flip_stall_max_s = max(self.flip_stall_max_s, stall)
                return ready
            except CheckpointCorruptError:
                self.version_fallbacks += 1
        if self.current is None:
            raise CheckpointCorruptError(
                f"server {self.server_id}: no published version could be "
                "verified for the initial flip"
            )
        return notify_s

    def _next_cache(self, candidate: PublishedVersion) -> RowCache:
        if self.current is None:
            return RowCache(
                self.cache_rows,
                candidate.version_index,
                stats=self.cache_stats,
            )
        return RowCache.from_previous(
            self.current.cache,
            candidate.version_index,
            rows_changed_between(
                self.publisher.versions,
                self.current.version.version_index,
                candidate.version_index,
            ),
        )

    def _warm(
        self, version: PublishedVersion, cache: RowCache, notify_s: float
    ):
        """Generator: pin the version's hot rows, reading missing chunks."""
        ready = notify_s
        missing: dict[str, tuple[RowRef, list[int]]] = {}
        for table_id in sorted(version.hot_rows):
            for row in version.hot_rows[table_id].tolist():
                carried = cache.peek(table_id, row)
                if carried is not None:
                    cache.pin(table_id, row, carried)
                    continue
                ref = version.row_ref(table_id, row)
                missing.setdefault(ref.key, (ref, []))[1].append(row)
        for key in sorted(missing):
            if cache.pinned_rows >= cache.capacity_rows:
                break  # pins exhausted the cache; stop prefetching
            ref, want = missing[key]
            rows, weights, completed = yield from self._fetch_chunk(
                ref, ready
            )
            ready = max(ready, completed)
            position = {int(r): i for i, r in enumerate(rows.tolist())}
            state = _VersionState(version=version, cache=cache)
            for row in want:
                index = position.get(row)
                if index is None:
                    raise CheckpointCorruptError(
                        f"chunk {ref.key} is missing hot row {row} of "
                        f"table {ref.table_id} its version maps to it"
                    )
                cache.pin(ref.table_id, row, weights[index].copy())
                # A window around each hot row rides along for free.
                self._admit_resident(state, ref, rows, weights, index)
        return ready

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def lookup_steps(self, request: LookupRequest, start_s: float | None = None):
        """Generator: serve one request, atomically on one version.

        Captures ``current`` once and serves the full batch against the
        captured version — a concurrent flip cannot tear the request. A
        digest failure mid-request poisons the captured state, drops the
        server one version (cold cache), and replays the request there.
        Returns the :class:`LookupResult`.

        ``start_s`` is when the server actually begins service (it may
        be later than the arrival when the request queued behind an
        earlier one); latency is still measured from the arrival, so
        queueing delay counts.
        """
        if self.current is None:
            raise ServingError(
                f"server {self.server_id} has no flipped version to serve"
            )
        start = request.arrival_s if start_s is None else start_s
        fallback_depth = 0
        for _ in range(len(self.publisher.versions) + 2):
            state = self.current
            try:
                values, hits, misses, done = yield from self._serve_on(
                    state, request, start
                )
            except CheckpointCorruptError:
                self.version_fallbacks += 1
                fallback_depth += 1
                if state is self.current:
                    older_index = state.version.version_index - 1
                    if older_index < 0:
                        raise
                    state.poisoned = True
                    self.current = _VersionState(
                        version=self.publisher.versions[older_index],
                        cache=RowCache(
                            self.cache_rows,
                            older_index,
                            stats=self.cache_stats,
                        ),
                    )
                continue
            completed = done + self.lookup_overhead_s
            self.lookups += 1
            self.rows_served += len(request.rows)
            return LookupResult(
                request_id=request.request_id,
                server_id=self.server_id,
                version_index=state.version.version_index,
                arrival_s=request.arrival_s,
                completed_s=completed,
                hits=hits,
                misses=misses,
                fallback_depth=fallback_depth,
                values=values,
            )
        raise ServingError(
            f"server {self.server_id} exhausted fallback candidates for "
            f"request {request.request_id}"
        )

    def _serve_on(
        self, state: _VersionState, request: LookupRequest, start: float
    ):
        """Generator: answer every row of ``request`` from one state."""
        values: dict[tuple[int, int], np.ndarray] = {}
        hits = misses = 0
        earliest = start
        for table_id, row in request.rows:
            cached = state.cache.lookup(table_id, row)
            if cached is not None:
                hits += 1
                values[(table_id, int(row))] = cached
                continue
            misses += 1
            ref = state.version.row_ref(table_id, row)
            rows, weights, completed = yield from self._fetch_chunk(
                ref, earliest
            )
            earliest = max(earliest, completed)
            hit_positions = np.nonzero(rows == int(row))[0]
            if hit_positions.size == 0:
                raise CheckpointCorruptError(
                    f"chunk {ref.key} is missing row {row} of table "
                    f"{table_id} its version maps to it"
                )
            values[(table_id, int(row))] = weights[
                int(hit_positions[0])
            ].copy()
            self._admit_resident(
                state, ref, rows, weights, int(hit_positions[0])
            )
        return values, hits, misses, earliest
