"""Model-free chunk decoding for the serving read path.

Inference servers answer row lookups straight from stored checkpoint
chunks — there is no DLRM replica on the serving side to load rows
into, so the restorer's decode path (which writes into a model) does
not fit. :func:`decode_chunk_rows` does the same digest verification
and frame decoding but simply returns the row ids and dequantized
weight rows, leaving placement to the caller's row cache.

Accumulator payloads are decoded-and-discarded territory: inference
only serves weights, and skipping frame 2 entirely keeps the integrity
story honest (the digest already covers all frames, so nothing is
silently trusted).
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..errors import CheckpointCorruptError, SerializationError
from ..quant.base import QuantizedTensor
from ..quant.registry import dequantize_tensor
from ..serialize.codec import decode_array, decode_payload
from ..serialize.format import decode_frames


def decode_chunk_rows(
    key: str, blob: bytes, expected_digest: str | None
) -> tuple[np.ndarray, np.ndarray]:
    """Verify and decode one chunk object into ``(row_ids, weights)``.

    ``row_ids`` is int64, ``weights`` is float32 of shape
    ``(len(row_ids), embedding_dim)``; ``weights[i]`` is the value of
    ``row_ids[i]``. Raises :class:`CheckpointCorruptError` on a digest
    mismatch or any structural decode failure — the serving layer turns
    that into a fallback to an older published version.
    """
    if expected_digest is not None:
        actual = hashlib.sha256(blob).hexdigest()
        if actual != expected_digest:
            raise CheckpointCorruptError(
                f"chunk {key} digest mismatch: stored bytes hash "
                f"{actual}, version records {expected_digest}"
            )
    try:
        meta, frames = decode_frames(blob)
    except SerializationError as exc:
        raise CheckpointCorruptError(
            f"chunk {key} failed verification: {exc}"
        ) from exc
    if len(frames) != 3:
        raise CheckpointCorruptError(
            f"chunk {key} has {len(frames)} frames, "
            "expected rows/weights/accumulator"
        )
    try:
        rows = decode_array(frames[0].payload).astype(np.int64)
        if rows.size == 0 and int(meta.get("row_base", -1)) >= 0:
            # Full-checkpoint chunk: contiguous range, ids
            # reconstructed from (row_base, row_count).
            rows = np.arange(
                int(meta["row_base"]),
                int(meta["row_base"]) + int(meta["row_count"]),
                dtype=np.int64,
            )
        obj = decode_payload(frames[1].payload)
    except SerializationError as exc:
        raise CheckpointCorruptError(
            f"chunk {key} failed verification: {exc}"
        ) from exc
    weights = (
        dequantize_tensor(obj) if isinstance(obj, QuantizedTensor) else obj
    )
    weights = np.asarray(weights, dtype=np.float32)
    if weights.ndim != 2 or weights.shape[0] != rows.shape[0]:
        raise CheckpointCorruptError(
            f"chunk {key} holds {rows.shape[0]} row ids but a "
            f"{weights.shape} weight payload"
        )
    return rows, weights
