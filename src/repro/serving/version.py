"""Published checkpoint versions and their row locators.

A *published version* is one checkpoint the serving publisher has
applied to its golden replica and announced to the inference fleet. The
version carries everything a server needs to answer row lookups against
exactly that snapshot without holding the model itself:

* a **row locator** — per table, which stored chunk object holds each
  row's *newest* value as of this version, with the manifest's sha256
  digest so every fetched chunk is integrity-verified before a single
  row is served;
* the **modified rows** this version changed relative to the previous
  one — the invalidation set a version-pinned cache uses to carry
  unmodified entries across an atomic flip;
* the publisher's current **hot rows** — the most frequently modified
  rows across publishes (tracker stats by construction: incremental
  checkpoints store exactly the rows the modified-row trackers marked),
  which servers pin in their caches.

Locators map rows to the chunks of *several* checkpoints: after an
incremental publish, an untouched row still points at the full
baseline's chunk while a retrained row points at the increment's. That
is what makes serving reads cheap — a lookup fetches one chunk, never a
chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ServingError


@dataclass(frozen=True)
class RowRef:
    """Where one row's newest value lives: a chunk object + its digest."""

    key: str
    digest: str | None
    table_id: int


@dataclass(frozen=True)
class PublishedVersion:
    """One checkpoint version announced to the inference fleet."""

    version_index: int
    checkpoint_id: str
    kind: str
    #: Snapshot time of the underlying checkpoint (training-side).
    created_at_s: float
    #: When the publisher finished applying it and announced it.
    published_at_s: float
    #: table id -> row id -> :class:`RowRef` holding the row's newest
    #: value as of this version.
    locator: dict[int, dict[int, RowRef]] = field(repr=False)
    #: Rows this version changed vs the previous published version
    #: (every row, for a full checkpoint) — the flip invalidation set.
    modified_rows: dict[int, np.ndarray] = field(repr=False)
    #: The publisher's hot set at publish time: top rows by cumulative
    #: modification frequency, per table. Servers pin these.
    hot_rows: dict[int, np.ndarray] = field(repr=False)

    def row_ref(self, table_id: int, row: int) -> RowRef:
        """The chunk holding ``row``'s value at this version."""
        try:
            return self.locator[table_id][int(row)]
        except KeyError:
            raise ServingError(
                f"version {self.checkpoint_id!r} has no location for "
                f"row {row} of table {table_id}"
            ) from None

def rows_changed_between(
    versions: list[PublishedVersion], old_index: int, new_index: int
) -> dict[int, np.ndarray]:
    """Rows modified by any version in ``(old_index, new_index]``.

    ``versions`` is the publisher's append-only version list (index ==
    ``version_index``). A server flipping from ``old_index`` straight to
    ``new_index`` must drop cached entries for exactly this union — the
    rows whose values differ between the two snapshots are a subset of
    it, and everything else is bit-identical across the flip.
    """
    if not 0 <= old_index <= new_index < len(versions):
        raise ServingError(
            f"invalid version span ({old_index}, {new_index}] over "
            f"{len(versions)} published versions"
        )
    merged: dict[int, list[np.ndarray]] = {}
    for version in versions[old_index + 1 : new_index + 1]:
        for table_id, rows in version.modified_rows.items():
            merged.setdefault(table_id, []).append(np.asarray(rows))
    return {
        table_id: np.unique(np.concatenate(parts))
        for table_id, parts in merged.items()
    }
