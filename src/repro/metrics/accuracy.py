"""Model-quality evaluation and the paper's degradation metric.

Fig 14 plots "lifetime accuracy degradation" of runs that resumed from
quantized checkpoints, against a run that never quantized. We evaluate
on a held-out batch stream and report normalised entropy (NE) — the
canonical production CTR metric — with degradation expressed in
percent, matching the paper's 0.01% business threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.batch import Batch
from ..errors import TrainingError
from ..model.dlrm import DLRM
from ..model.loss import auc, log_loss, normalized_entropy

#: The paper's accuracy-loss budget, in percent.
DEGRADATION_THRESHOLD_PERCENT = 0.01


@dataclass(frozen=True)
class EvalResult:
    """Held-out evaluation of one model."""

    log_loss: float
    normalized_entropy: float
    auc: float
    num_samples: int


def evaluate(model: DLRM, batches: list[Batch]) -> EvalResult:
    """Evaluate on held-out batches (no training side effects)."""
    if not batches:
        raise TrainingError("evaluation needs at least one batch")
    probs = []
    labels = []
    for batch in batches:
        probs.append(model.predict_proba(batch))
        labels.append(batch.labels)
    p = np.concatenate(probs)
    y = np.concatenate(labels)
    return EvalResult(
        log_loss=log_loss(p, y),
        normalized_entropy=normalized_entropy(p, y),
        auc=auc(p, y),
        num_samples=int(y.size),
    )


def degradation_percent(baseline: EvalResult, variant: EvalResult) -> float:
    """Relative NE regression of ``variant`` vs ``baseline``, in percent.

    Positive means the variant is worse. NE is a lower-is-better metric,
    so degradation = 100 * (NE_v - NE_b) / NE_b.
    """
    if baseline.normalized_entropy <= 0:
        raise TrainingError("baseline NE must be positive")
    return (
        100.0
        * (variant.normalized_entropy - baseline.normalized_entropy)
        / baseline.normalized_entropy
    )


def within_threshold(
    degradation_pct: float,
    threshold_pct: float = DEGRADATION_THRESHOLD_PERCENT,
) -> bool:
    """Whether a degradation stays inside the business threshold."""
    return degradation_pct <= threshold_pct
