"""Quantization latency model, calibrated to the paper's CPUs.

The quantizers in this repository run for real in numpy, but measured
laptop-seconds are not the paper's production-CPU-seconds on a
terabyte-scale checkpoint. For the latency figures (12/13 and the
k-means cost ablation) we therefore project *simulated* latencies from
per-element cost constants calibrated against two anchors the paper
states explicitly (section 6.1):

* plain asymmetric quantization of one checkpoint: <= 126 s;
* adaptive asymmetric at 50 bins, ratio 1.0: <= 600 s;
* k-means (15 iterations) on one checkpoint: > 48 hours.

With a reference checkpoint of ``REFERENCE_ELEMENTS`` fp32 values, the
constants below land on those anchors; the *shape* of the latency
curves (linear in ``bins * ratio``; k-means ~300x adaptive) is what the
benches verify, and they additionally report measured wall time of the
real numpy run for transparency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

#: Elements in the paper-scale reference checkpoint used to calibrate
#: the constants (a multi-hundred-GB embedding snapshot).
REFERENCE_ELEMENTS = 125_000_000_000

#: Seconds per element for one plain asymmetric quantization pass.
ASYMMETRIC_COST_PER_ELEMENT_S = 126.0 / REFERENCE_ELEMENTS

#: Extra seconds per element per greedy iteration (two candidate
#: quantizations + error reductions). 126 + 50 * step = 600 at 50 bins.
ADAPTIVE_COST_PER_ELEMENT_PER_ITER_S = (
    (600.0 - 126.0) / 50.0 / REFERENCE_ELEMENTS
)

#: Seconds per element per Lloyd iteration per cluster. Calibrated so a
#: 4-bit (k=16), 15-iteration run on the reference checkpoint takes
#: ~48 hours: 48 * 3600 / (15 * 16) / REFERENCE_ELEMENTS.
KMEANS_COST_PER_ELEMENT_PER_ITER_PER_CLUSTER_S = (
    48.0 * 3600.0 / (15.0 * 16.0) / REFERENCE_ELEMENTS
)

#: Symmetric quantization needs no min/max scan refinement; it is
#: slightly cheaper than asymmetric.
SYMMETRIC_COST_PER_ELEMENT_S = 0.8 * ASYMMETRIC_COST_PER_ELEMENT_S


@dataclass(frozen=True)
class LatencyModel:
    """Projects simulated quantization latency for a chunk of elements."""

    def asymmetric_s(self, elements: int) -> float:
        self._check(elements)
        return elements * ASYMMETRIC_COST_PER_ELEMENT_S

    def symmetric_s(self, elements: int) -> float:
        self._check(elements)
        return elements * SYMMETRIC_COST_PER_ELEMENT_S

    def adaptive_s(
        self, elements: int, num_bins: int, ratio: float
    ) -> float:
        """Base asymmetric pass + one candidate pair per greedy step."""
        self._check(elements)
        if num_bins < 1:
            raise ConfigError(f"num_bins must be >= 1, got {num_bins}")
        if not 0.0 < ratio <= 1.0:
            raise ConfigError(f"ratio must be in (0, 1], got {ratio}")
        iterations = min(int(num_bins * ratio), max(num_bins - 1, 0))
        return elements * (
            ASYMMETRIC_COST_PER_ELEMENT_S
            + iterations * ADAPTIVE_COST_PER_ELEMENT_PER_ITER_S
        )

    def kmeans_s(self, elements: int, bits: int, iterations: int = 15):
        self._check(elements)
        if not 1 <= bits <= 8:
            raise ConfigError(f"bits must be in [1, 8], got {bits}")
        clusters = 1 << bits
        return (
            elements
            * iterations
            * clusters
            * KMEANS_COST_PER_ELEMENT_PER_ITER_PER_CLUSTER_S
        )

    def identity_s(self, elements: int) -> float:
        """The fp32 pass-through costs (approximately) a memcpy."""
        self._check(elements)
        return elements * 0.05 * ASYMMETRIC_COST_PER_ELEMENT_S

    def float16_s(self, elements: int) -> float:
        """A cast pass: one read + one narrowing write per element."""
        self._check(elements)
        return elements * 0.1 * ASYMMETRIC_COST_PER_ELEMENT_S

    def for_quantizer(
        self,
        name: str,
        elements: int,
        bits: int = 8,
        num_bins: int = 25,
        ratio: float = 1.0,
    ) -> float:
        """Dispatch by registry name."""
        if name == "none":
            return self.identity_s(elements)
        if name == "float16":
            return self.float16_s(elements)
        if name == "symmetric":
            return self.symmetric_s(elements)
        if name == "asymmetric":
            return self.asymmetric_s(elements)
        if name == "adaptive":
            return self.adaptive_s(elements, num_bins, ratio)
        if name == "kmeans":
            return self.kmeans_s(elements, bits)
        raise ConfigError(f"unknown quantizer {name!r} for latency model")

    @staticmethod
    def _check(elements: int) -> None:
        if elements < 0:
            raise ConfigError(f"negative element count {elements}")
