"""Fleet-level checkpointing cost model (the paper's TCO argument).

The abstract and section 4.3 frame Check-N-Run's savings as total-cost-
of-ownership reductions: "thousands of checkpoints, each in the order
of terabytes" flowing to remote storage make write bandwidth and
capacity the provisioned — and paid-for — resources. This model turns
per-job measurements (average checkpoint size fraction, required
capacity fraction) into fleet-level aggregate demand, so the Fig 17
reduction factors can be read as infrastructure units saved.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import GiB
from ..errors import SimulationError


@dataclass(frozen=True)
class FleetProfile:
    """The checkpointing fleet being provisioned for."""

    concurrent_jobs: int = 300  # "hundreds of training clusters"
    model_bytes: int = 1024 * GiB  # terabyte-class models
    checkpoint_interval_s: float = 1800.0  # 30 minutes
    replication_factor: int = 3

    def __post_init__(self) -> None:
        if self.concurrent_jobs < 1:
            raise SimulationError("need at least one job")
        if self.model_bytes <= 0:
            raise SimulationError("model bytes must be positive")
        if self.checkpoint_interval_s <= 0:
            raise SimulationError("interval must be positive")
        if self.replication_factor < 1:
            raise SimulationError("replication factor >= 1")


@dataclass(frozen=True)
class FleetDemand:
    """Aggregate storage-side demand of one checkpointing configuration."""

    write_bandwidth_bytes_per_s: float
    storage_capacity_bytes: float

    def bandwidth_reduction_vs(self, other: "FleetDemand") -> float:
        return (
            other.write_bandwidth_bytes_per_s
            / self.write_bandwidth_bytes_per_s
        )

    def capacity_reduction_vs(self, other: "FleetDemand") -> float:
        return other.storage_capacity_bytes / self.storage_capacity_bytes


def fleet_demand(
    profile: FleetProfile,
    avg_checkpoint_fraction: float,
    capacity_fraction: float,
) -> FleetDemand:
    """Fleet demand from per-job measurements.

    Args:
        profile: fleet shape.
        avg_checkpoint_fraction: average bytes written per interval as a
            fraction of the model (Fig 15's series averaged; 1.0 for the
            fp32 full baseline).
        capacity_fraction: peak retained bytes as a fraction of the
            model (Fig 16's peak; includes every checkpoint the restore
            chain needs).
    """
    if avg_checkpoint_fraction <= 0 or capacity_fraction <= 0:
        raise SimulationError("fractions must be positive")
    logical_per_interval = profile.model_bytes * avg_checkpoint_fraction
    physical_per_interval = (
        logical_per_interval * profile.replication_factor
    )
    bandwidth = (
        profile.concurrent_jobs
        * physical_per_interval
        / profile.checkpoint_interval_s
    )
    capacity = (
        profile.concurrent_jobs
        * profile.model_bytes
        * capacity_fraction
        * profile.replication_factor
    )
    return FleetDemand(
        write_bandwidth_bytes_per_s=bandwidth,
        storage_capacity_bytes=capacity,
    )


@dataclass(frozen=True)
class TcoComparison:
    """Baseline vs Check-N-Run fleet demand, with reduction factors."""

    baseline: FleetDemand
    check_n_run: FleetDemand

    @property
    def bandwidth_reduction(self) -> float:
        return self.check_n_run.bandwidth_reduction_vs(self.baseline)

    @property
    def capacity_reduction(self) -> float:
        return self.check_n_run.capacity_reduction_vs(self.baseline)

    @property
    def bandwidth_saved_bytes_per_s(self) -> float:
        return (
            self.baseline.write_bandwidth_bytes_per_s
            - self.check_n_run.write_bandwidth_bytes_per_s
        )

    @property
    def capacity_saved_bytes(self) -> float:
        return (
            self.baseline.storage_capacity_bytes
            - self.check_n_run.storage_capacity_bytes
        )


def compare_tco(
    profile: FleetProfile,
    baseline_avg_fraction: float = 1.0,
    baseline_capacity_fraction: float = 2.0,  # keep_last=2 fp32 fulls
    cnr_avg_fraction: float = 1.0 / 12.0,  # Fig 17 best band: ~12x BW
    cnr_capacity_fraction: float = 0.25,  # ~8x capacity
) -> TcoComparison:
    """Build the fleet comparison from per-job fractions.

    The defaults encode this repository's measured Fig 17 factors; pass
    measured fractions from an actual run for an end-to-end number.
    """
    return TcoComparison(
        baseline=fleet_demand(
            profile, baseline_avg_fraction, baseline_capacity_fraction
        ),
        check_n_run=fleet_demand(
            profile, cnr_avg_fraction, cnr_capacity_fraction
        ),
    )
