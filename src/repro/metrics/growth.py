"""Synthetic model-size growth trace (paper Fig 4).

The paper's Fig 4 shows the (confidential, normalised) recommendation
model size growing more than 3x over two years. We generate a
deterministic trace with the same normalisation and headline factor: a
compounding monthly growth rate with small seeded month-to-month
jitter, normalised to 1.0 at month 0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError


@dataclass(frozen=True)
class GrowthPoint:
    """Normalised model size at one month."""

    month: int
    relative_size: float


def model_growth_trace(
    months: int = 24,
    total_growth: float = 3.2,
    jitter: float = 0.02,
    seed: int = 7,
) -> list[GrowthPoint]:
    """Monotone, compounding growth reaching ``total_growth`` x.

    Args:
        months: trace length (the paper shows ~2 years).
        total_growth: size multiple at the final month (paper: > 3x).
        jitter: relative month-to-month noise (kept monotone).
        seed: jitter seed.
    """
    if months < 1:
        raise SimulationError("need at least one month")
    if total_growth <= 1.0:
        raise SimulationError("total_growth must exceed 1.0")
    if not 0.0 <= jitter < 0.2:
        raise SimulationError("jitter must be in [0, 0.2)")
    rng = np.random.default_rng(seed)
    monthly_rate = total_growth ** (1.0 / months)
    sizes = [1.0]
    for _ in range(months):
        noise = 1.0 + rng.uniform(-jitter, jitter)
        step = max(1.0, monthly_rate * noise)  # growth never reverses
        sizes.append(sizes[-1] * step)
    # Renormalise the endpoint to hit the target factor exactly.
    scale_curve = np.array(sizes)
    exponent = np.log(total_growth) / np.log(scale_curve[-1])
    scale_curve = scale_curve**exponent
    return [
        GrowthPoint(month=m, relative_size=float(s))
        for m, s in enumerate(scale_curve)
    ]


def growth_factor(trace: list[GrowthPoint]) -> float:
    """End-to-end growth multiple of a trace."""
    if not trace:
        raise SimulationError("empty growth trace")
    return trace[-1].relative_size / trace[0].relative_size
