"""Bandwidth and capacity accounting over checkpoint runs.

Turns the raw artifacts of a run — write reports, the object store's
capacity series — into the quantities the paper plots: per-interval
checkpoint sizes as a fraction of the model (Fig 15), required storage
capacity over time (Fig 16), and average-bandwidth / peak-capacity
reduction factors versus the non-incremental fp32 baseline (Fig 17).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.writer import WriteReport
from ..errors import SimulationError
from ..storage.object_store import CapacityPoint


@dataclass(frozen=True)
class ReductionSummary:
    """Fig 17's two bars for one configuration."""

    avg_bandwidth_reduction: float  # baseline avg BW / variant avg BW
    peak_capacity_reduction: float  # baseline peak cap / variant peak cap


def interval_size_fractions(
    reports: list[WriteReport], model_bytes: int
) -> list[float]:
    """Checkpoint logical size per interval / full model size (Fig 15)."""
    if model_bytes <= 0:
        raise SimulationError("model_bytes must be positive")
    return [r.logical_bytes / model_bytes for r in reports]


def average_write_bandwidth(
    reports: list[WriteReport], total_duration_s: float
) -> float:
    """Mean checkpoint write bandwidth over a run (logical bytes/s)."""
    if total_duration_s <= 0:
        raise SimulationError("duration must be positive")
    return sum(r.logical_bytes for r in reports) / total_duration_s


def capacity_fractions_at(
    series: list[CapacityPoint],
    timestamps: list[float],
    model_bytes: int,
) -> list[float]:
    """Live logical capacity / model size sampled at timestamps (Fig 16).

    Each sample takes the last capacity point at or before the
    timestamp (capacity is a step function of PUT/DELETE events).
    """
    if model_bytes <= 0:
        raise SimulationError("model_bytes must be positive")
    if not series:
        return [0.0 for _ in timestamps]
    fractions = []
    for ts in timestamps:
        latest = 0
        for point in series:
            if point.time_s <= ts:
                latest = point.logical_bytes
            else:
                break
        fractions.append(latest / model_bytes)
    return fractions


def peak_capacity(series: list[CapacityPoint]) -> int:
    """Highest live logical byte count over a run."""
    return max((p.logical_bytes for p in series), default=0)


def reduction_summary(
    baseline_reports: list[WriteReport],
    baseline_capacity: list[CapacityPoint],
    variant_reports: list[WriteReport],
    variant_capacity: list[CapacityPoint],
    duration_s: float,
) -> ReductionSummary:
    """Fig 17: how much bandwidth/capacity the variant saves."""
    baseline_bw = average_write_bandwidth(baseline_reports, duration_s)
    variant_bw = average_write_bandwidth(variant_reports, duration_s)
    baseline_peak = peak_capacity(baseline_capacity)
    variant_peak = peak_capacity(variant_capacity)
    if variant_bw <= 0 or variant_peak <= 0:
        raise SimulationError(
            "variant wrote no bytes; reduction factors undefined"
        )
    return ReductionSummary(
        avg_bandwidth_reduction=baseline_bw / variant_bw,
        peak_capacity_reduction=baseline_peak / variant_peak,
    )
