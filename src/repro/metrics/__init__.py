"""Accounting, accuracy, growth and latency metrics."""

from .accounting import (
    ReductionSummary,
    average_write_bandwidth,
    capacity_fractions_at,
    interval_size_fractions,
    peak_capacity,
    reduction_summary,
)
from .accuracy import (
    DEGRADATION_THRESHOLD_PERCENT,
    EvalResult,
    degradation_percent,
    evaluate,
    within_threshold,
)
from .growth import GrowthPoint, growth_factor, model_growth_trace
from .latency import LatencyModel
from .tco import (
    FleetDemand,
    FleetProfile,
    TcoComparison,
    compare_tco,
    fleet_demand,
)

__all__ = [
    "DEGRADATION_THRESHOLD_PERCENT",
    "EvalResult",
    "FleetDemand",
    "FleetProfile",
    "GrowthPoint",
    "LatencyModel",
    "ReductionSummary",
    "TcoComparison",
    "compare_tco",
    "fleet_demand",
    "average_write_bandwidth",
    "capacity_fractions_at",
    "degradation_percent",
    "evaluate",
    "growth_factor",
    "interval_size_fractions",
    "model_growth_trace",
    "peak_capacity",
    "reduction_summary",
    "within_threshold",
]
