"""Fleet-scale multi-job checkpointing against one shared object store.

The paper's headline numbers (Figs 15-17) are aggregates over thousands
of concurrent training jobs writing to one replicated blob store. This
package reproduces that regime in miniature: a :class:`FleetScheduler`
co-simulates N heterogeneous jobs — each a full Check-N-Run stack with
its own clock — against a single :class:`~repro.storage.ObjectStore`,
interleaving their chunk transfers under a fair-share bandwidth arbiter,
injecting failures from the Fig 3 CDF, and enforcing per-job namespaces
and capacity quotas.
"""

from .arbitration import busy_span, interleave_score
from .experiment import (
    FleetJobResult,
    FleetReductionResult,
    FleetRunReport,
    build_fleet,
    fleet_reduction_experiment,
    format_fleet_report,
    run_fleet,
    summarize_fleet,
)
from .jobs import (
    FleetJob,
    FleetJobSpec,
    build_fleet_job,
    sample_fleet_specs,
    spec_experiment_config,
)
from .namespace import ScopedStore
from .scheduler import FleetEvent, FleetScheduler

__all__ = [
    "FleetEvent",
    "FleetJob",
    "FleetJobResult",
    "FleetJobSpec",
    "FleetReductionResult",
    "FleetRunReport",
    "FleetScheduler",
    "ScopedStore",
    "build_fleet",
    "build_fleet_job",
    "busy_span",
    "fleet_reduction_experiment",
    "format_fleet_report",
    "interleave_score",
    "run_fleet",
    "sample_fleet_specs",
    "spec_experiment_config",
    "summarize_fleet",
]
