"""Fleet-scale multi-job checkpointing against one shared object store.

The paper's headline numbers (Figs 15-17) are aggregates over thousands
of concurrent training jobs writing to one replicated blob store. This
package reproduces that regime in miniature: a :class:`FleetScheduler`
co-simulates N heterogeneous jobs — each a full Check-N-Run stack with
its own clock — against a single :class:`~repro.storage.ObjectStore`,
interleaving their chunk transfers under a tier-aware fair-share
bandwidth arbiter, injecting independent failures from the Fig 3 CDF
plus optional correlated rack/power failures (restore storms), and
enforcing per-job namespaces and capacity quotas.

Jobs split into paper-style priority classes: ``prod`` streams hold
strict link priority and may preempt (abort-and-requeue) experimental
staged writes; :func:`summarize_tiers` / :func:`format_storm_report`
roll a run up into the per-tier restore-latency and goodput table the
``repro fleet --priority-mix/--storm`` CLI emits.
"""

from ..storage.bandwidth import TIER_EXPERIMENTAL, TIER_PROD
from .arbitration import busy_span, interleave_score, part_split_score
from .experiment import (
    FleetJobResult,
    FleetReductionResult,
    FleetRunReport,
    TierSummary,
    build_fleet,
    fleet_reduction_experiment,
    format_fleet_report,
    format_storm_report,
    run_fleet,
    summarize_fleet,
    summarize_tiers,
)
from .jobs import (
    FleetJob,
    FleetJobSpec,
    RestoreSample,
    build_fleet_job,
    sample_fleet_specs,
    sample_priority_tiers,
    spec_experiment_config,
)
from .namespace import ScopedStore
from .planner import (
    PlanPoint,
    ProvisioningCurve,
    plan_point,
    run_plan,
    storm_time_to_recover,
)
from .scheduler import FleetEvent, FleetScheduler

__all__ = [
    "TIER_EXPERIMENTAL",
    "TIER_PROD",
    "FleetEvent",
    "FleetJob",
    "FleetJobResult",
    "FleetJobSpec",
    "FleetReductionResult",
    "FleetRunReport",
    "FleetScheduler",
    "PlanPoint",
    "ProvisioningCurve",
    "RestoreSample",
    "ScopedStore",
    "TierSummary",
    "build_fleet",
    "build_fleet_job",
    "busy_span",
    "fleet_reduction_experiment",
    "format_fleet_report",
    "format_storm_report",
    "interleave_score",
    "part_split_score",
    "plan_point",
    "run_fleet",
    "run_plan",
    "storm_time_to_recover",
    "sample_fleet_specs",
    "sample_priority_tiers",
    "spec_experiment_config",
    "summarize_fleet",
    "summarize_tiers",
]
