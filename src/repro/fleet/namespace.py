"""Per-job namespaced views of a shared object store.

Every checkpoint object key already begins with its job id (see
:mod:`repro.core.manifest`), so on a shared store the job id *is* the
namespace. A :class:`ScopedStore` hands a job the full store API while

* rejecting any key outside ``<job_id>/`` with
  :class:`~repro.errors.NamespaceViolationError` — a job can never read,
  overwrite or delete another job's checkpoints, no matter how confused
  its controller gets;
* tagging every transfer with the job's *stream* so the bandwidth
  arbiter can attribute link time and enforce the job's capacity quota;
* flooring every transfer's start at the job's own clock — jobs advance
  their private clocks at different rates, and a transfer must never be
  timed before the moment its job issued it.

The wrapped store is duck-type compatible with
:class:`~repro.storage.object_store.ObjectStore` everywhere the core
checkpoint stack touches it (writer, restorer, retention, controller).
"""

from __future__ import annotations

from ..distributed.clock import SimClock, Timeline
from ..errors import NamespaceViolationError
from ..storage.backends import Backend
from ..storage.object_store import (
    ObjectStore,
    OpReceipt,
    PrefixDeleteReceipt,
)


class ScopedStore:
    """A job's window onto the shared store: one namespace, one stream."""

    def __init__(
        self, store: ObjectStore, job_id: str, clock: SimClock
    ) -> None:
        if not job_id or "/" in job_id:
            raise NamespaceViolationError(
                f"invalid job namespace {job_id!r}"
            )
        self.base = store
        self.job_id = job_id
        self.clock = clock
        self.namespace = f"{job_id}/"

    # ------------------------------------------------------------------

    def _check(self, key: str) -> str:
        if not key.startswith(self.namespace):
            raise NamespaceViolationError(
                f"job {self.job_id!r} may not touch key {key!r} outside "
                f"its {self.namespace!r} namespace"
            )
        return key

    # -- pass-through surface the core stack relies on -----------------

    @property
    def config(self):
        return self.base.config

    @property
    def timeline(self) -> Timeline:
        return self.base.timeline

    @property
    def backend(self) -> Backend:
        return self.base.backend

    @property
    def ops(self):
        return self.base.ops

    @property
    def costs(self):
        return self.base.costs

    @property
    def engine(self):
        return self.base.engine

    # -- scoped object operations --------------------------------------

    def put(
        self,
        key: str,
        data: bytes,
        overwrite: bool = False,
        earliest: float | None = None,
    ) -> OpReceipt:
        self._check(key)
        floor = self.clock.now
        if earliest is not None:
            floor = max(floor, earliest)
        return self.base.put(
            key,
            data,
            overwrite=overwrite,
            earliest=floor,
            stream=self.job_id,
        )

    def stage_put(
        self,
        key: str,
        data: bytes,
        overwrite: bool = False,
        earliest: float | None = None,
    ):
        """Stage a part-granular PUT (see
        :meth:`~repro.storage.object_store.ObjectStore.stage_put`),
        namespace-checked, stream-tagged and clock-floored like
        :meth:`put`."""
        self._check(key)
        floor = self.clock.now
        if earliest is not None:
            floor = max(floor, earliest)
        return self.base.stage_put(
            key,
            data,
            overwrite=overwrite,
            earliest=floor,
            stream=self.job_id,
        )

    def get(
        self, key: str, byte_range: tuple[int, int] | None = None
    ) -> bytes:
        self._check(key)
        return self.base.get(
            key,
            earliest=self.clock.now,
            stream=self.job_id,
            byte_range=byte_range,
        )

    def stage_get(
        self, key: str, byte_range: tuple[int, int] | None = None
    ):
        """Stage a part-granular GET (see
        :meth:`~repro.storage.object_store.ObjectStore.stage_get`),
        namespace-checked, stream-tagged and clock-floored like
        :meth:`get`."""
        self._check(key)
        return self.base.stage_get(
            key,
            earliest=self.clock.now,
            stream=self.job_id,
            byte_range=byte_range,
        )

    def delete(self, key: str) -> OpReceipt:
        self._check(key)
        return self.base.delete(
            key, stream=self.job_id, at_s=self.clock.now
        )

    def delete_prefix(self, prefix: str) -> PrefixDeleteReceipt:
        """Batch-remove the job's objects under a prefix (LIST + N
        DELETE under the cost model), stream-tagged and clock-floored
        like every other scoped operation."""
        if not prefix.startswith(self.namespace):
            raise NamespaceViolationError(
                f"job {self.job_id!r} may not delete prefix {prefix!r} "
                f"outside its {self.namespace!r} namespace"
            )
        return self.base.delete_prefix(
            prefix, stream=self.job_id, at_s=self.clock.now
        )

    def predict_put_duration(self, logical_bytes: int) -> float:
        return self.base.predict_put_duration(logical_bytes)

    def exists(self, key: str) -> bool:
        self._check(key)
        return self.base.exists(key, stream=self.job_id)

    def object_size(self, key: str) -> int:
        self._check(key)
        return self.base.object_size(key)

    def list_keys(self, prefix: str = "") -> list[str]:
        if not prefix:
            prefix = self.namespace
        if not prefix.startswith(self.namespace):
            raise NamespaceViolationError(
                f"job {self.job_id!r} may not list prefix {prefix!r} "
                f"outside its {self.namespace!r} namespace"
            )
        return self.base.list_keys(prefix, stream=self.job_id)
