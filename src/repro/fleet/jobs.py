"""Fleet job specs: paper-like heterogeneity, sampled deterministically.

Meta's fleet mixes model sizes spanning orders of magnitude, different
checkpoint intervals, different quantization aggressiveness per job's
expected restore count (paper section 6.2.1), and — through its job
scheduler — different *priority classes*: high-priority production jobs
versus experimental ones (section 2.2). A :class:`FleetJobSpec` pins one
job's draw from those distributions, including its priority ``tier``;
:func:`build_fleet_job` wires the job's full Check-N-Run stack — its own
clock, dataset, model, trainer and controller — against a *shared*
object store through a namespaced
:class:`~repro.fleet.namespace.ScopedStore`, registering the job's
transfer stream (weight, quota, tier) with the store's bandwidth
arbiter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..config import (
    CheckpointConfig,
    ClusterConfig,
    DataConfig,
    ExperimentConfig,
    FleetConfig,
    ModelConfig,
    ReaderConfig,
)
from ..core.controller import CheckNRun, PendingCheckpoint
from ..data.reader import ReaderMaster
from ..distributed.clock import SimClock
from ..distributed.trainer import SimTrainer
from ..experiments.common import build_experiment
from ..model.dlrm import DLRM
from ..storage.bandwidth import TIER_EXPERIMENTAL, TIER_PROD
from ..storage.object_store import ObjectStore
from .namespace import ScopedStore


@dataclass(frozen=True)
class FleetJobSpec:
    """One job's sampled configuration within a fleet."""

    job_id: str
    num_tables: int
    rows_per_table: int
    interval_batches: int
    policy: str
    quantizer: str
    bit_width: int
    weight: float
    start_offset_s: float
    seed: int
    failure_seed: int
    #: Priority class: ``"prod"`` streams get strict link priority and
    #: may preempt experimental staged writes; ``"experimental"`` is the
    #: default tier.
    tier: str = TIER_EXPERIMENTAL


def sample_priority_tiers(config: FleetConfig) -> list[str]:
    """Assign each job a priority tier honouring ``priority_mix``.

    The count of prod jobs is exact — ``round(mix * num_jobs)``, at
    least one whenever the mix is positive — and *which* jobs are prod
    is a seeded permutation draw. Tiers use a dedicated RNG stream so
    changing the mix never perturbs the heterogeneity sampling (model
    sizes, intervals, failure seeds stay identical across mixes).
    """
    if config.priority_mix <= 0.0:
        return [TIER_EXPERIMENTAL] * config.num_jobs
    num_prod = int(round(config.priority_mix * config.num_jobs))
    num_prod = min(config.num_jobs, max(1, num_prod))
    tier_rng = np.random.default_rng(config.seed ^ 0x71E5)
    prod_indices = set(
        tier_rng.permutation(config.num_jobs)[:num_prod].tolist()
    )
    return [
        TIER_PROD if index in prod_indices else TIER_EXPERIMENTAL
        for index in range(config.num_jobs)
    ]


def sample_fleet_specs(config: FleetConfig) -> list[FleetJobSpec]:
    """Draw ``num_jobs`` heterogeneous specs from the fleet distributions."""
    rng = np.random.default_rng(config.seed)
    weights = np.asarray(config.policy_weights, dtype=np.float64)
    weights = weights / weights.sum()
    tiers = sample_priority_tiers(config)
    specs = []
    for index in range(config.num_jobs):
        policy = str(
            rng.choice(list(config.policy_choices), p=weights)
        )
        quant_index = int(rng.integers(len(config.quantizer_choices)))
        specs.append(
            FleetJobSpec(
                job_id=f"job{index:03d}",
                num_tables=int(rng.choice(config.num_tables_choices)),
                rows_per_table=int(
                    rng.choice(config.rows_per_table_choices)
                ),
                interval_batches=int(
                    rng.choice(config.interval_batches_choices)
                ),
                policy=policy,
                quantizer=config.quantizer_choices[quant_index],
                bit_width=config.bit_width_choices[quant_index],
                weight=float(rng.choice(config.weight_choices)),
                start_offset_s=float(
                    rng.uniform(0.0, config.stagger_s)
                ),
                seed=int(rng.integers(1, 2**31 - 1)),
                failure_seed=int(rng.integers(1, 2**31 - 1)),
                tier=tiers[index],
            )
        )
    return specs


#: Lookups per sample in every fleet job's synthetic model (the
#: ``hotness`` handed to :class:`~repro.config.ModelConfig` below); the
#: adaptive chain bound uses it to predict per-interval touched rows.
FLEET_HOTNESS = 4


def expected_interval_delta_bytes(
    spec: FleetJobSpec, fleet: FleetConfig
) -> int:
    """Predicted incremental-checkpoint bytes one interval produces.

    An interval trains ``interval_batches`` batches of ``batch_size``
    samples, each touching ``FLEET_HOTNESS`` rows per table; the
    touched set saturates at the table itself. Each touched row ships
    its fp32 weight and optimizer-accumulator slices.
    """
    lookups = (
        spec.interval_batches * fleet.batch_size * FLEET_HOTNESS
    )
    rows_touched = min(spec.rows_per_table, lookups)
    bytes_per_row = fleet.embedding_dim * 4 * 2
    return spec.num_tables * rows_touched * bytes_per_row


def spec_baseline_bytes(spec: FleetJobSpec, fleet: FleetConfig) -> int:
    """Bytes a full (baseline) checkpoint writes for this spec."""
    rows = spec.num_tables * spec.rows_per_table
    return rows * fleet.embedding_dim * 4 * 2


def adaptive_chain_limit(
    baseline_bytes: int,
    interval_delta_bytes: int,
    storm_read_weight: float = 1.0,
    floor: int = 1,
    cap: int = 8,
) -> int:
    """CPR-style per-job chain bound from read cost vs refresh cost.

    A chain bound ``L`` costs ``baseline/L`` amortized refresh-write
    bytes per interval and, under a storm, up to ``L * delta`` extra
    read bytes down the chain. Weighting reads by ``storm_read_weight``
    (the write/read bandwidth ratio: how expensive a read byte is
    relative to a write byte) and minimizing the sum gives

        L* = sqrt(baseline / (storm_read_weight * delta)),

    clamped to ``[floor, cap]``. Big models with sparse touch sets
    earn long chains; small hot models refresh almost every interval.
    """
    if baseline_bytes <= 0 or interval_delta_bytes <= 0:
        return floor
    optimum = math.sqrt(
        baseline_bytes
        / (max(storm_read_weight, 1e-12) * interval_delta_bytes)
    )
    return max(floor, min(cap, int(round(optimum))))


def spec_chain_limit(
    spec: FleetJobSpec, fleet: FleetConfig
) -> int | None:
    """The restore-chain bound a spec's job runs under (None = off)."""
    if fleet.retention_mode != "storm_aware":
        return None
    if not fleet.storm_chain_adaptive:
        return fleet.storm_chain_limit
    storage = fleet.storage
    return adaptive_chain_limit(
        baseline_bytes=spec_baseline_bytes(spec, fleet),
        interval_delta_bytes=expected_interval_delta_bytes(spec, fleet),
        storm_read_weight=(
            storage.write_bandwidth / storage.read_bandwidth
        ),
    )


def spec_experiment_config(
    spec: FleetJobSpec, fleet: FleetConfig
) -> ExperimentConfig:
    """The per-job experiment configuration a spec denotes."""
    dim = fleet.embedding_dim
    return ExperimentConfig(
        model=ModelConfig(
            num_tables=spec.num_tables,
            rows_per_table=tuple(
                [spec.rows_per_table] * spec.num_tables
            ),
            embedding_dim=dim,
            bottom_mlp=(16, dim),
            top_mlp=(16, 1),
            hotness=FLEET_HOTNESS,
            seed=spec.seed,
        ),
        data=DataConfig(
            batch_size=fleet.batch_size,
            zipf_alpha=fleet.zipf_alpha,
            seed=spec.seed ^ 0xDA7A,
        ),
        reader=ReaderConfig(coordinated=True),
        cluster=ClusterConfig(num_nodes=1, devices_per_node=2),
        storage=fleet.storage,
        checkpoint=CheckpointConfig(
            interval_batches=spec.interval_batches,
            policy=spec.policy,
            quantizer=spec.quantizer,
            bit_width=spec.bit_width,
            keep_last=fleet.keep_last,
            # Storm-aware retention bounds every job's restore chain so
            # a correlated storm re-reads short chains per job; the
            # adaptive mode derives the bound from the job's own
            # refresh-write vs storm-read byte trade-off.
            max_chain_length=spec_chain_limit(spec, fleet),
        ),
        failures=fleet.failures,
    )


@dataclass(frozen=True)
class RestoreSample:
    """One measured restore through the shared link.

    ``latency_s`` is trigger-to-finish including link queueing;
    ``service_s`` is the sum of the restore's own GET transfer times —
    what the restore would have cost on an idle link. Their ratio is the
    contention *degradation* a storm inflicts, the quantity the per-tier
    storm table reports.
    """

    cause: str  # "failure" (independent) or "storm" (correlated)
    latency_s: float
    service_s: float
    #: Where the restored state came from: ``"store"`` (object store,
    #: possibly through ``plan_resume`` fallback), ``"peer_same_rack"``
    #: or ``"peer_cross_rack"`` (a live replica ring).
    source: str = "store"
    #: Crash-to-first-trainable-batch latency — equals ``latency_s``
    #: for manifest-order store restores, shrinks under
    #: ``restore_order="hot_first"``, and equals the peer-link
    #: transfer time for replica restores.
    time_to_first_batch_s: float = 0.0

    @property
    def degradation(self) -> float:
        """Queueing inflation factor (>= 1 on a serial link)."""
        if self.service_s <= 0:
            return 1.0
        return max(1.0, self.latency_s / self.service_s)


@dataclass
class FleetJob:
    """One running job plus the scheduler's per-job runtime state."""

    spec: FleetJobSpec
    config: ExperimentConfig
    clock: SimClock
    model: DLRM
    reader: ReaderMaster
    trainer: SimTrainer
    store: ScopedStore
    controller: CheckNRun

    target_intervals: int = 0
    batches_left: int = 0  # remaining in the current interval (0 = boundary)
    pending: PendingCheckpoint | None = None
    next_failure_s: float | None = None
    failures_injected: int = 0
    torn_writes: int = 0
    admission_deferred: int = 0
    #: Restores the read-side admission controller paced (deferred
    #: start until the projected backlog drained to the threshold) —
    #: always 0 for prod jobs, which admit unconditionally.
    restore_deferred: int = 0
    quota_rejections: int = 0
    #: Writes lost to a permanently failing request (transient-failure
    #: retries exhausted): aborted, scrubbed, training continued.
    failed_writes: int = 0
    wasted_batches: int = 0
    total_batches_trained: int = 0
    scratch_restarts: int = 0
    #: Resume-plan candidates that failed digest/CRC verification
    #: before a restore landed (sum of per-restore fallback depths):
    #: nonzero means the job restored *through* corruption.
    restore_fallbacks: int = 0
    preempted_writes: int = 0
    storm_crashes: int = 0
    #: A preempted staged write awaiting re-stage (set by the fleet
    #: scheduler's abort-and-requeue path, cleared on re-stage/crash).
    requeue_write: bool = False
    #: Job-clock time of the last checkpoint trigger; successive
    #: triggers measure the job's checkpoint interval in simulated
    #: seconds, the admission controller's deferral threshold.
    last_trigger_s: float | None = None
    #: Measured gap between the job's last two checkpoint triggers —
    #: the threshold unit for both write- and read-side admission.
    measured_interval_s: float | None = None
    restore_samples: list[RestoreSample] = field(default_factory=list)
    # -- peer-replication tier counters (all zero with replication off)
    #: Recoveries served from a live replica ring instead of the store.
    peer_restores: int = 0
    #: Recoveries that wanted a replica but found none alive (same
    #: failure domain took the peers too) and fell back to the store.
    repl_store_fallbacks: int = 0
    #: Step deltas committed to peer rings.
    repl_deltas_sent: int = 0
    #: Bytes shipped over the peer link (deltas + anchor rebuilds).
    repl_bytes_sent: int = 0
    #: Mid-send crashes whose partial ring write was discarded.
    repl_partial_discards: int = 0
    #: Replica rings lost to a peer-host death or a post-recovery
    #: resync (rebuilt at the next baseline flush).
    repl_rings_lost: int = 0
    #: Rings re-established by shipping a fresh full anchor.
    repl_rings_rebuilt: int = 0

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def tier(self) -> str:
        return self.spec.tier

    @property
    def useful_batches(self) -> int:
        """Batches trained that were never re-trained after a crash."""
        return max(0, self.total_batches_trained - self.wasted_batches)

    @property
    def intervals_done(self) -> int:
        return self.controller.interval_index

    def training_done(self) -> bool:
        return self.intervals_done >= self.target_intervals

    def model_fp32_bytes(self) -> int:
        return self.config.model.embedding_bytes


def build_fleet_job(
    spec: FleetJobSpec,
    fleet: FleetConfig,
    shared_store: ObjectStore,
) -> FleetJob:
    """Wire a job's full stack against the shared store.

    The job gets its own :class:`SimClock` (clusters run independently;
    only storage is shared), advanced to its staggered start offset so
    fleet checkpoint triggers de-align. Its stream is registered with
    the store's arbiter if one is attached. The stack itself comes from
    :func:`repro.experiments.common.build_experiment`, with the job's
    namespaced view of the shared store injected.
    """
    config = spec_experiment_config(spec, fleet)
    clock = SimClock()
    clock.advance(spec.start_offset_s, "fleet-stagger")
    scoped = ScopedStore(shared_store, spec.job_id, clock)
    if shared_store.arbiter is not None:
        shared_store.arbiter.register(
            spec.job_id,
            weight=spec.weight,
            quota_bytes=fleet.per_job_quota_bytes,
            tier=spec.tier,
        )
    exp = build_experiment(
        config,
        job_id=spec.job_id,
        overlap_action="skip_new",
        store=scoped,  # duck-typed ObjectStore scoped to the namespace
        clock=clock,
    )
    return FleetJob(
        spec=spec,
        config=config,
        clock=clock,
        model=exp.model,
        reader=exp.reader,
        trainer=exp.trainer,
        store=scoped,
        controller=exp.controller,
        target_intervals=fleet.intervals_per_job,
        batches_left=spec.interval_batches,
    )
