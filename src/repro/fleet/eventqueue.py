"""Indexed event heap for the fleet scheduler's dispatch loop.

The lockstep dispatcher rescans every job per event to find the
globally earliest candidate — O(events x jobs), fine at 64 jobs and
hopeless at 10k. This module gives the scheduler an indexed heap per
*lane* so dispatch is O(log n) pops plus O(log n) re-keys for only the
jobs an event actually touched.

Lanes mirror the lockstep candidate classes exactly:

* ``write`` — jobs with a staged write whose next PUT part is
  announced. The heap key is the part's static ``ready_s``; the link
  floor (``timeline.free_at``) is applied *at pop time*. That is sound
  because ``min_i max(ready_i, L) == max(min_i ready_i, L)`` — taking
  the max with a common floor is monotone, so the raw-``ready_s``
  minimum is the floored minimum.
* ``book`` — jobs whose staged write's generator is exhausted but
  whose bookkeeping event is still owed, keyed at the job clock
  (the lockstep scan's un-floored ``job.clock.now`` candidate).
* ``train`` — jobs with training (or a re-stage slot) due, keyed at
  the job clock.

Entries are *lazily invalidated*: re-keying a job pushes a new entry
and leaves the stale one in the heap; pops discard entries whose key no
longer matches the lane's authoritative ``job -> key`` map. A job's key
only changes while the scheduler is processing that job's own event
(per-job clocks never advance in the background), so the scheduler
re-keys exactly the jobs an event touched and every other cached key
stays valid.

Tie handling reproduces the lockstep semantics: candidates within
:data:`TIME_EPS` (applied *relatively* — see :func:`tie_threshold`) of
the best time form the tie set, which the scheduler resolves with the
arbiter (writes) or the lowest job id (train).
"""

from __future__ import annotations

from heapq import heappop, heappush

#: Relative tie-break tolerance between event times. Two candidate
#: times tie when they differ by at most ``TIME_EPS * max(1, |best|)``
#: — the relative form keeps ties meaningful at 10k-job clock
#: magnitudes where an absolute ``1e-12`` would vanish beneath float
#: spacing. (For ``|best| <= 1`` this is exactly the historical
#: absolute epsilon.)
TIME_EPS = 1e-12


def tie_threshold(best: float) -> float:
    """Inclusive upper bound on times that tie ``best``."""
    return best + TIME_EPS * max(1.0, abs(best))


class LaneHeap:
    """One lane's indexed min-heap of ``(time, job_id)`` entries.

    ``set`` re-keys (push + stale-mark), ``remove`` drops, ``best``
    returns the earliest valid time, ``tied`` enumerates the jobs whose
    time ties a threshold. Stale entries are discarded lazily whenever
    they surface at the top.
    """

    __slots__ = ("_heap", "_keys")

    def __init__(self) -> None:
        self._heap: list[tuple[float, str]] = []
        self._keys: dict[str, float] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._keys

    def key(self, job_id: str) -> float | None:
        return self._keys.get(job_id)

    def set(self, job_id: str, time_s: float) -> None:
        """Insert or re-key a job; the old entry goes stale in place."""
        if self._keys.get(job_id) == time_s:
            return
        self._keys[job_id] = time_s
        heappush(self._heap, (time_s, job_id))

    def remove(self, job_id: str) -> None:
        """Drop a job; its heap entries go stale in place."""
        self._keys.pop(job_id, None)

    def _prune(self) -> None:
        heap = self._heap
        while heap and self._keys.get(heap[0][1]) != heap[0][0]:
            heappop(heap)

    def best(self, floor: float | None = None) -> float | None:
        """Earliest valid time, optionally floored (write lane)."""
        self._prune()
        if not self._heap:
            return None
        time_s = self._heap[0][0]
        if floor is not None and floor > time_s:
            return floor
        return time_s

    def tied(
        self, threshold: float, floor: float | None = None
    ) -> list[str]:
        """Jobs whose (floored) time ties ``threshold``.

        With a floor ``L``, an entry's effective time is
        ``max(key, L)``; when ``L <= tie_threshold(threshold)`` that
        ties iff the raw key does, and when ``L`` exceeds the bound no
        floored entry can tie at all — so raw-key comparison suffices.
        Valid entries popped past the bound are re-pushed, restoring
        the heap; stale ones are discarded as a side effect.
        """
        bound = tie_threshold(threshold)
        if floor is not None and floor > bound:
            return []
        heap = self._heap
        keys = self._keys
        popped: list[tuple[float, str]] = []
        out: list[str] = []
        while heap and heap[0][0] <= bound:
            entry = heappop(heap)
            if keys.get(entry[1]) == entry[0]:
                popped.append(entry)
                out.append(entry[1])
        for entry in popped:
            heappush(heap, entry)
        return out


class FleetEventQueue:
    """The scheduler's three dispatch lanes as indexed heaps."""

    __slots__ = ("write", "book", "train")

    def __init__(self) -> None:
        self.write = LaneHeap()
        self.book = LaneHeap()
        self.train = LaneHeap()

    def clear_write_lanes(self, job_id: str) -> None:
        self.write.remove(job_id)
        self.book.remove(job_id)

    def best_write(self, link_free: float) -> float | None:
        """Earliest staged-write event time across both write lanes.

        The ``write`` lane is floored by the link's ``free_at`` (a part
        cannot start earlier); the ``book`` lane is not — matching the
        lockstep scan's two write-candidate forms exactly.
        """
        floored = self.write.best(floor=link_free)
        book = self.book.best()
        if floored is None:
            return book
        if book is None:
            return floored
        return min(floored, book)

    def tied_writes(self, best: float, link_free: float) -> list[str]:
        """The write-lane tie set at ``best`` (both lanes)."""
        return self.write.tied(best, floor=link_free) + self.book.tied(
            best
        )
