"""Fleet experiments: aggregate bandwidth/capacity over many jobs.

The paper's Figs 15-17 are fleet aggregates; these drivers reproduce
them by running whole fleets against one shared store:

* :func:`run_fleet` — one heterogeneous fleet, returning per-job and
  aggregate traffic/capacity numbers plus fairness and interleaving
  metrics for the shared link;
* :func:`fleet_reduction_experiment` — the Fig 17 comparison at fleet
  scale: the same fleet run once as the fp32/full baseline and once
  with Check-N-Run's incremental + quantized policies, yielding the
  aggregate write-bandwidth and storage-capacity reduction factors;
* :func:`summarize_tiers` / :func:`format_storm_report` — the
  priority-tier view of a run: restore-latency distribution, contention
  degradation, preemption counts and goodput per tier, the table the
  ``repro fleet --priority-mix/--storm`` CLI and the fleet-storm
  benchmark emit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from ..config import FleetConfig
from ..distributed.clock import SimClock
from ..errors import FleetError
from ..metrics.accounting import peak_capacity
from ..storage.bandwidth import (
    TIER_EXPERIMENTAL,
    TIER_PROD,
    BandwidthArbiter,
)
from ..storage.object_store import ObjectStore
from ..storage.requests import OP_CLASSES
from .arbitration import busy_span, interleave_score, part_split_score
from .jobs import (
    FleetJobSpec,
    RestoreSample,
    build_fleet_job,
    sample_fleet_specs,
)
from .scheduler import FleetEvent, FleetScheduler


@dataclass(frozen=True)
class FleetJobResult:
    """One job's outcome inside a fleet run."""

    job_id: str
    tier: str
    policy: str
    quantizer: str
    bit_width: int
    num_tables: int
    rows_per_table: int
    intervals: int
    checkpoints_written: int
    checkpoints_skipped: int
    admission_deferred: int
    #: Restores paced by the read-side admission controller (start
    #: deferred until the projected backlog drained to the threshold).
    restore_deferred: int
    #: Checkpoints forced full by storm-aware retention's chain bound.
    baseline_refreshes: int
    restores: int
    failures: int
    storm_crashes: int
    torn_writes: int
    scratch_restarts: int
    quota_rejections: int
    #: Writes lost to retry exhaustion (permanent request failure).
    failed_writes: int
    preempted_writes: int
    wasted_batches: int
    #: Resume-plan candidates that failed digest/CRC verification
    #: before the job's restores landed (restore-through-corruption
    #: fallbacks; see :meth:`CheckpointRestorer.plan_resume`).
    restore_fallbacks: int
    batches_trained: int
    #: Copied from :attr:`FleetJob.useful_batches` (single source of
    #: the goodput definition).
    useful_batches: int
    bytes_logical: int
    bytes_physical: int
    model_fp32_bytes: int
    duration_s: float
    restore_samples: tuple[RestoreSample, ...] = ()
    #: Peer-replication outcome (all 0 with ``replicate_k == 0``):
    #: restores served from a peer ring, recoveries that fell through
    #: to the object store because no replica survived, per-step deltas
    #: mirrored (and their bytes), sends torn by a crash mid-transfer,
    #: rings this job hosted that died with it, and rings rebuilt by
    #: anchor resend after a baseline flush.
    peer_restores: int = 0
    repl_store_fallbacks: int = 0
    repl_deltas_sent: int = 0
    repl_bytes_sent: int = 0
    repl_partial_discards: int = 0
    repl_rings_lost: int = 0
    repl_rings_rebuilt: int = 0


@dataclass(frozen=True)
class FleetRunReport:
    """Aggregate outcome of one fleet run on a shared store."""

    jobs: tuple[FleetJobResult, ...]
    duration_s: float  # last event (training or transfer) in sim time
    total_put_bytes_logical: int
    total_put_bytes_physical: int
    aggregate_write_bandwidth: float  # physical put bytes / duration
    peak_logical_bytes: int
    peak_physical_bytes: int
    fairness_index: float
    interleave_switches: int
    failures: int
    restores: int
    torn_writes: int
    #: Restore/publish read traffic over the shared link (GET-class
    #: transfers, op-tagged in the transfer log) — restore storms show
    #: up here rather than hiding inside the write series.
    total_get_bytes: int
    aggregate_read_bandwidth: float
    #: Fig 15 at fleet scale: (window_start, window_end, bytes/sec)
    #: for PUT-class traffic. Windows span the link's full busy period
    #: (writes and reads), so the two series below align row by row.
    bandwidth_series: tuple[tuple[float, float, float], ...]
    #: The same windows for GET-class traffic: write vs read link load
    #: attribution, separated per op class.
    read_bandwidth_series: tuple[tuple[float, float, float], ...]
    #: Correlated-failure outcome: (domain kind, domain id, fired-at
    #: seconds, affected job ids), or None when no storm was armed/fired.
    storm: tuple[str, str, float, tuple[str, ...]] | None = None
    #: Checkpoint triggers the admission controller deferred (static
    #: cap or dynamic backlog), summed over the fleet.
    admission_deferrals: int = 0
    #: Restores the read-side admission controller paced, summed over
    #: the fleet (prod restores are never paced).
    restore_deferrals: int = 0
    #: Checkpoints forced full by storm-aware retention, fleet-wide.
    baseline_refreshes: int = 0
    #: Restore-through-corruption fallbacks, fleet-wide: resume-plan
    #: candidates that failed verification before a restore landed.
    restore_fallbacks: int = 0
    #: From-scratch restarts (nothing restorable, or every candidate
    #: failed verification), fleet-wide.
    scratch_restarts: int = 0
    #: PUT-class writes whose payload the armed bit-rot injector
    #: silently corrupted (0 when ``FleetConfig.bitrot_prob`` is 0).
    bitrot_injected: int = 0
    #: Transient-failure retries per op class, from the op log's
    #: receipts: ``((op, total_retries), ...)`` over every class that
    #: saw requests.
    retries_by_op: tuple[tuple[str, int], ...] = ()
    #: How often the link served another stream *mid-chunk* (between
    #: two multipart parts of one object) — the part-granular
    #: interleaving the transfer engine provides; 0 on backends
    #: without multipart.
    part_interleave_splits: int = 0
    #: Near/far cache tier (0/"" when no cache tier is configured):
    #: capacity, policy, GET hit/miss counters, evictions, asynchronous
    #: dirty flushes and the end-of-run dirty backlog — the columns the
    #: ``--cache-tier`` fleet reports and the b02 bench surface.
    cache_capacity_bytes: int = 0
    cache_policy: str = ""
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit_rate: float = 0.0
    cache_evictions: int = 0
    cache_dirty_flushes: int = 0
    cache_forced_flushes: int = 0
    cache_flush_failures: int = 0
    cache_dirty_backlog: int = 0
    cache_dirty_bytes: int = 0
    #: Measured (real, not simulated) quantization worker-pool seconds:
    #: busy time, caller-blocked time, and their difference — the wall
    #: time the pool hid behind the writers' own work. Excluded from
    #: equality: wall-clock measurements differ run to run even when
    #: the simulation is deterministic.
    pool_busy_s: float = field(default=0.0, compare=False)
    pool_wait_s: float = field(default=0.0, compare=False)
    pool_overlap_s: float = field(default=0.0, compare=False)
    #: Peer-replication tier (all 0 when ``FleetConfig.replicate_k``
    #: is 0): replica count, fleet-wide recovery-ladder outcomes
    #: (peer restores vs store fallbacks), mirror traffic, torn sends
    #: discarded at crash boundaries, ring lifecycle counters, and the
    #: delta-log evictions the bounded rings folded into their anchors.
    replicate_k: int = 0
    repl_peer_restores: int = 0
    repl_store_fallbacks: int = 0
    repl_deltas_sent: int = 0
    repl_bytes_sent: int = 0
    repl_partial_discards: int = 0
    repl_rings_lost: int = 0
    repl_rings_rebuilt: int = 0
    repl_ring_evictions: int = 0

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    def jobs_in_tier(self, tier: str) -> tuple[FleetJobResult, ...]:
        return tuple(j for j in self.jobs if j.tier == tier)


def _bandwidth_series(
    store: ObjectStore, windows: int, kind: str
) -> tuple[tuple[float, float, float], ...]:
    """Windowed mean bandwidth of one transfer kind ("put"/"get").

    Windows cover the link's full busy span across *both* kinds so the
    write and read series align and can be printed side by side.
    """
    start, end = busy_span(store.log.transfers())
    if end <= start:
        return ()
    width = (end - start) / windows
    series = []
    for i in range(windows):
        lo = start + i * width
        hi = lo + width
        series.append(
            (lo, hi, store.log.average_bandwidth(lo, hi, kind))
        )
    return tuple(series)


def build_fleet(
    config: FleetConfig,
    specs: list[FleetJobSpec] | None = None,
    on_event: Callable[[FleetEvent], None] | None = None,
    dispatch: str = "heap",
) -> tuple[FleetScheduler, ObjectStore]:
    """Wire a shared store + arbiter and a full fleet of jobs.

    With ``config.bitrot_prob > 0`` the shared backend is wrapped in a
    bit-rot-armed :class:`~repro.storage.backends.CrashingBackend`, so
    a seeded fraction of the fleet's writes land silently corrupted
    and restores must fall back through the resume plan.
    """
    backend = None
    if config.bitrot_prob > 0.0:
        from ..storage.backends import CrashingBackend
        from ..storage.factory import make_backend

        backend = CrashingBackend(
            make_backend(config.storage.backend, config.storage)
        )
        backend.arm_bitrot(config.bitrot_prob, config.bitrot_seed)
    store = ObjectStore(
        config.storage,
        SimClock(),
        backend=backend,
        arbiter=BandwidthArbiter(),
    )
    if specs is None:
        specs = sample_fleet_specs(config)
    jobs = [build_fleet_job(spec, config, store) for spec in specs]
    scheduler = FleetScheduler(
        config, store, jobs=jobs, on_event=on_event, dispatch=dispatch
    )
    return scheduler, store


def summarize_fleet(
    scheduler: FleetScheduler, store: ObjectStore, windows: int = 12
) -> FleetRunReport:
    """Collect a finished fleet run's aggregate report."""
    job_results = []
    for job in scheduler.jobs:
        stats = job.controller.stats
        job_results.append(
            FleetJobResult(
                job_id=job.job_id,
                tier=job.tier,
                policy=job.spec.policy,
                quantizer=job.spec.quantizer,
                bit_width=job.spec.bit_width,
                num_tables=job.spec.num_tables,
                rows_per_table=job.spec.rows_per_table,
                intervals=job.controller.interval_index,
                checkpoints_written=stats.checkpoints_written,
                checkpoints_skipped=stats.checkpoints_skipped,
                admission_deferred=job.admission_deferred,
                restore_deferred=job.restore_deferred,
                baseline_refreshes=stats.baseline_refreshes,
                restores=stats.restores,
                failures=job.failures_injected,
                storm_crashes=job.storm_crashes,
                torn_writes=job.torn_writes,
                scratch_restarts=job.scratch_restarts,
                quota_rejections=job.quota_rejections,
                failed_writes=job.failed_writes,
                preempted_writes=job.preempted_writes,
                wasted_batches=job.wasted_batches,
                restore_fallbacks=job.restore_fallbacks,
                batches_trained=job.total_batches_trained,
                useful_batches=job.useful_batches,
                bytes_logical=stats.bytes_written_logical,
                bytes_physical=stats.bytes_written_physical,
                model_fp32_bytes=job.model_fp32_bytes(),
                duration_s=job.clock.now,
                restore_samples=tuple(job.restore_samples),
                peer_restores=job.peer_restores,
                repl_store_fallbacks=job.repl_store_fallbacks,
                repl_deltas_sent=job.repl_deltas_sent,
                repl_bytes_sent=job.repl_bytes_sent,
                repl_partial_discards=job.repl_partial_discards,
                repl_rings_lost=job.repl_rings_lost,
                repl_rings_rebuilt=job.repl_rings_rebuilt,
            )
        )
    puts = store.log.transfers("put")
    _, last_transfer_end = busy_span(store.log.transfers())
    duration = max(
        [last_transfer_end] + [job.clock.now for job in scheduler.jobs]
    )
    if duration <= 0:
        raise FleetError("fleet run produced no simulated time")
    total_physical = store.log.total_bytes("put")
    total_read = store.log.total_bytes("get")
    arbiter = store.arbiter
    assert arbiter is not None
    storm = None
    if (
        scheduler.storm_plan is not None
        and scheduler.storm_fired_at_s is not None
    ):
        storm = (
            scheduler.storm_plan.domain.kind,
            scheduler.storm_plan.domain.domain_id,
            scheduler.storm_fired_at_s,
            scheduler.storm_plan.affected_job_ids,
        )
    retries_by_op = tuple(
        (op, sum(r.retries for r in store.ops.receipts(op)))
        for op in OP_CLASSES
        if store.ops.receipts(op)
    )
    engine = store.engine
    from ..storage.cache import find_cache_tier

    cache = find_cache_tier(store.backend)
    cache_fields = {}
    if cache is not None:
        cache_fields = dict(
            cache_capacity_bytes=cache.capacity_bytes,
            cache_policy=cache.policy,
            cache_hits=cache.hits,
            cache_misses=cache.misses,
            cache_hit_rate=cache.hit_rate,
            cache_evictions=cache.evictions,
            cache_dirty_flushes=cache.dirty_flushes,
            cache_forced_flushes=cache.forced_flushes,
            cache_flush_failures=cache.flush_failures,
            cache_dirty_backlog=cache.dirty_backlog,
            cache_dirty_bytes=cache.dirty_bytes,
        )
    repl_fields = {}
    replicator = getattr(scheduler, "replicator", None)
    if replicator is not None:
        repl_fields = dict(
            replicate_k=scheduler.config.replicate_k,
            repl_peer_restores=sum(
                r.peer_restores for r in job_results
            ),
            repl_store_fallbacks=sum(
                r.repl_store_fallbacks for r in job_results
            ),
            repl_deltas_sent=sum(
                r.repl_deltas_sent for r in job_results
            ),
            repl_bytes_sent=sum(
                r.repl_bytes_sent for r in job_results
            ),
            repl_partial_discards=sum(
                r.repl_partial_discards for r in job_results
            ),
            repl_rings_lost=sum(
                r.repl_rings_lost for r in job_results
            ),
            repl_rings_rebuilt=sum(
                r.repl_rings_rebuilt for r in job_results
            ),
            repl_ring_evictions=replicator.total_ring_evictions,
        )
    return FleetRunReport(
        **cache_fields,
        **repl_fields,
        jobs=tuple(job_results),
        duration_s=duration,
        total_put_bytes_logical=sum(
            r.bytes_logical for r in job_results
        ),
        total_put_bytes_physical=total_physical,
        aggregate_write_bandwidth=total_physical / duration,
        peak_logical_bytes=peak_capacity(store.capacity_series()),
        peak_physical_bytes=store.stats().peak_physical_bytes,
        fairness_index=arbiter.fairness_index("put"),
        interleave_switches=interleave_score(puts),
        failures=sum(r.failures for r in job_results),
        restores=sum(r.restores for r in job_results),
        torn_writes=sum(r.torn_writes for r in job_results),
        total_get_bytes=total_read,
        aggregate_read_bandwidth=total_read / duration,
        bandwidth_series=_bandwidth_series(store, windows, "put"),
        read_bandwidth_series=_bandwidth_series(store, windows, "get"),
        storm=storm,
        admission_deferrals=sum(
            r.admission_deferred for r in job_results
        ),
        restore_deferrals=sum(
            r.restore_deferred for r in job_results
        ),
        baseline_refreshes=sum(
            r.baseline_refreshes for r in job_results
        ),
        restore_fallbacks=sum(
            r.restore_fallbacks for r in job_results
        ),
        scratch_restarts=sum(
            r.scratch_restarts for r in job_results
        ),
        bitrot_injected=len(
            getattr(store.backend, "bitrot_injected", ())
        ),
        retries_by_op=retries_by_op,
        part_interleave_splits=part_split_score(puts),
        pool_busy_s=engine.pool_busy_s,
        pool_wait_s=engine.pool_wait_s,
        pool_overlap_s=engine.pool_overlap_s,
    )


def run_fleet(
    config: FleetConfig,
    specs: list[FleetJobSpec] | None = None,
    on_event: Callable[[FleetEvent], None] | None = None,
    dispatch: str = "heap",
) -> tuple[FleetScheduler, FleetRunReport]:
    """Run one fleet to completion and summarise it."""
    scheduler, store = build_fleet(config, specs, on_event, dispatch)
    scheduler.run()
    return scheduler, summarize_fleet(scheduler, store)


# ----------------------------------------------------------------------
# Fig 17 at fleet scale
# ----------------------------------------------------------------------


def format_fleet_report(report: FleetRunReport) -> str:
    """Human-readable fleet summary (CLI + benchmark artifact)."""
    lines = [
        f"fleet: {report.num_jobs} jobs sharing one store, "
        f"{report.duration_s:.1f} simulated seconds",
        "",
        "job      policy        quantizer  bits  rows/tbl  ckpts  skip"
        "  fail  rest  torn    KiB",
    ]
    lines.append("-" * len(lines[-1]))
    for j in report.jobs:
        lines.append(
            f"{j.job_id:<8s} {j.policy:<13s} {j.quantizer:<10s}"
            f" {j.bit_width:>4d}  {j.rows_per_table:>8d}"
            f"  {j.checkpoints_written:>5d} {j.checkpoints_skipped:>5d}"
            f" {j.failures:>5d} {j.restores:>5d} {j.torn_writes:>5d}"
            f" {j.bytes_logical / 1024:>6.0f}"
        )
    lines += [
        "",
        f"aggregate write bandwidth: "
        f"{report.aggregate_write_bandwidth / 2**20:.3f} MiB/s "
        f"(physical, over {report.duration_s:.1f} s)",
        f"aggregate read bandwidth: "
        f"{report.aggregate_read_bandwidth / 2**20:.3f} MiB/s "
        f"({report.total_get_bytes / 2**20:.2f} MiB restored/published)",
        f"total logical bytes written: "
        f"{report.total_put_bytes_logical / 2**20:.2f} MiB",
        f"peak live capacity: {report.peak_logical_bytes / 2**20:.2f}"
        f" MiB logical / {report.peak_physical_bytes / 2**20:.2f}"
        " MiB physical",
        f"link fairness (Jain, weighted): {report.fairness_index:.3f}",
        f"cross-job interleave switches: {report.interleave_switches}"
        f"  mid-chunk part splits: {report.part_interleave_splits}",
        f"failures: {report.failures}  restores: {report.restores}"
        f"  torn writes: {report.torn_writes}",
        "engine retries per op class: "
        + (
            "  ".join(
                f"{op}={retries}" for op, retries in report.retries_by_op
            )
            or "none"
        ),
        f"admission deferrals: {report.admission_deferrals}"
        f"  restore pacing deferrals: {report.restore_deferrals}"
        f"  baseline refreshes: {report.baseline_refreshes}",
        f"bit-rot injected writes: {report.bitrot_injected}"
        f"  restore fallbacks: {report.restore_fallbacks}"
        f"  scratch restarts: {report.scratch_restarts}",
        f"quantize pool (measured): {report.pool_busy_s:.3f} s busy, "
        f"{report.pool_wait_s:.3f} s blocked, "
        f"{report.pool_overlap_s:.3f} s overlapped",
    ]
    if report.replicate_k > 0:
        lines += [
            f"peer replication (k={report.replicate_k}): "
            f"peer restores: {report.repl_peer_restores}"
            f"  store fallbacks: {report.repl_store_fallbacks}"
            f"  deltas sent: {report.repl_deltas_sent}"
            f" ({report.repl_bytes_sent / 2**20:.2f} MiB)",
            f"replication rings: "
            f"partial discards: {report.repl_partial_discards}"
            f"  lost: {report.repl_rings_lost}"
            f"  rebuilt: {report.repl_rings_rebuilt}"
            f"  evictions: {report.repl_ring_evictions}",
        ]
    if report.cache_capacity_bytes > 0:
        lines += [
            f"cache tier ({report.cache_policy}, "
            f"{report.cache_capacity_bytes / 1024:.0f} KiB): "
            f"hit rate {report.cache_hit_rate:.3f} "
            f"(hits={report.cache_hits} misses={report.cache_misses})",
            f"cache evictions: {report.cache_evictions}"
            f"  dirty flushes: {report.cache_dirty_flushes}"
            f"  forced flushes: {report.cache_forced_flushes}"
            f"  flush failures: {report.cache_flush_failures}"
            f"  dirty backlog: {report.cache_dirty_backlog}"
            f" ({report.cache_dirty_bytes / 1024:.0f} KiB)",
        ]
    if report.bandwidth_series:
        # Write vs read link load per window, attributed by op class.
        lines += [
            "",
            "window_start  window_end   agg_put_MiB/s   agg_get_MiB/s",
        ]
        reads = report.read_bandwidth_series or tuple(
            (lo, hi, 0.0) for lo, hi, _ in report.bandwidth_series
        )
        for (lo, hi, put_bw), (_, _, get_bw) in zip(
            report.bandwidth_series, reads
        ):
            lines.append(
                f"{lo:>12.1f} {hi:>11.1f} {put_bw / 2**20:>13.3f}"
                f" {get_bw / 2**20:>15.3f}"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Priority tiers and restore storms
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TierSummary:
    """One priority tier's aggregate outcome in a fleet run."""

    tier: str
    num_jobs: int
    restores: int
    storm_restores: int
    preempted_writes: int
    #: Checkpoint triggers the admission controller deferred for this
    #: tier's jobs (dynamic mode defers experimental, admits prod).
    admission_deferred: int
    #: Restores the read-side admission controller paced for this
    #: tier's jobs (always 0 for prod — prod restores admit at once).
    restore_deferred: int
    #: Restore-latency distribution over the tier's storm restores
    #: (all restores when no storm fired), seconds.
    restore_latency_p50_s: float
    restore_latency_p95_s: float
    restore_latency_max_s: float
    #: Mean queueing-inflation factor (latency / idle-link service) of
    #: those restores: 1.0 = uncontended, higher = storm contention.
    restore_degradation: float
    #: Fraction of trained batches that survived (were never re-trained
    #: after a crash) — the CPR-style goodput number.
    goodput: float
    #: Useful (non-wasted) batches per simulated second.
    useful_batches_per_s: float


def _latency_stats(samples: list[RestoreSample]) -> tuple[float, ...]:
    if not samples:
        return (0.0, 0.0, 0.0, 1.0)
    latencies = np.asarray([s.latency_s for s in samples])
    degradation = float(
        np.mean([s.degradation for s in samples])
    )
    return (
        float(np.quantile(latencies, 0.5)),
        float(np.quantile(latencies, 0.95)),
        float(latencies.max()),
        degradation,
    )


def summarize_tiers(report: FleetRunReport) -> tuple[TierSummary, ...]:
    """Per-tier restore-latency/preemption/goodput roll-up of a run.

    In a run whose storm fired, restore-latency statistics cover the
    *storm* restores of every tier (the correlated event is what the
    tier arbitration exists for) — the choice is global, so the two
    tiers' columns always describe the same event population. Without
    a storm they cover all restores. Tiers with no jobs are omitted.
    """
    storm_fired = report.storm is not None
    summaries = []
    for tier in (TIER_PROD, TIER_EXPERIMENTAL):
        jobs = report.jobs_in_tier(tier)
        if not jobs:
            continue
        all_samples = [s for j in jobs for s in j.restore_samples]
        storm_samples = [s for s in all_samples if s.cause == "storm"]
        samples = storm_samples if storm_fired else all_samples
        p50, p95, latest, degradation = _latency_stats(samples)
        trained = sum(j.batches_trained for j in jobs)
        useful = sum(j.useful_batches for j in jobs)
        span = max(j.duration_s for j in jobs)
        summaries.append(
            TierSummary(
                tier=tier,
                num_jobs=len(jobs),
                restores=sum(j.restores for j in jobs),
                storm_restores=len(storm_samples),
                preempted_writes=sum(j.preempted_writes for j in jobs),
                admission_deferred=sum(
                    j.admission_deferred for j in jobs
                ),
                restore_deferred=sum(
                    j.restore_deferred for j in jobs
                ),
                restore_latency_p50_s=p50,
                restore_latency_p95_s=p95,
                restore_latency_max_s=latest,
                restore_degradation=degradation,
                goodput=(useful / trained) if trained else 1.0,
                useful_batches_per_s=(useful / span) if span > 0 else 0.0,
            )
        )
    return tuple(summaries)


def format_storm_report(report: FleetRunReport) -> str:
    """The fleet-storm results table: restore latency/goodput by tier."""
    lines = []
    if report.storm is not None:
        kind, domain_id, fired_at, affected = report.storm
        lines.append(
            f"storm: {kind} domain {domain_id} failed at "
            f"{fired_at:.1f} s, taking down {len(affected)} jobs "
            f"({', '.join(affected)})"
        )
    else:
        lines.append("storm: none fired (independent failures only)")
    lines.append(
        f"read traffic on the shared link: "
        f"{report.total_get_bytes / 2**20:.2f} MiB "
        f"({report.aggregate_read_bandwidth / 2**20:.3f} MiB/s mean) — "
        "GET-class transfers, attributed separately from writes"
    )
    lines.append(
        "engine retries per op class: "
        + (
            "  ".join(
                f"{op}={retries}" for op, retries in report.retries_by_op
            )
            or "none"
        )
        + f"  |  admission deferrals: {report.admission_deferrals}"
        + f"  |  restore pacing deferrals: {report.restore_deferrals}"
        + f"  |  baseline refreshes: {report.baseline_refreshes}"
    )
    if report.bitrot_injected or report.restore_fallbacks:
        lines.append(
            f"bit-rot injected writes: {report.bitrot_injected}"
            f"  |  restore fallbacks: {report.restore_fallbacks}"
            f"  |  scratch restarts: {report.scratch_restarts}"
        )
    if report.cache_capacity_bytes > 0:
        lines.append(
            f"cache tier ({report.cache_policy}): "
            f"hit rate {report.cache_hit_rate:.3f}"
            f"  |  cache evictions: {report.cache_evictions}"
            f"  |  dirty flushes: {report.cache_dirty_flushes}"
            f"  |  dirty backlog: {report.cache_dirty_backlog}"
        )
    if report.replicate_k > 0:
        lines.append(
            f"peer replication (k={report.replicate_k}): "
            f"peer restores: {report.repl_peer_restores}"
            f"  |  store fallbacks: {report.repl_store_fallbacks}"
            f"  |  partial discards: {report.repl_partial_discards}"
            f"  |  rings lost: {report.repl_rings_lost}"
        )
    lines.append("")
    header = (
        "tier          jobs  restores  storm  preempt  defer  rdefer"
        "  rst_p50_s  rst_p95_s  rst_max_s  degrade  goodput  useful_b/s"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for t in summarize_tiers(report):
        lines.append(
            f"{t.tier:<13s} {t.num_jobs:>4d}  {t.restores:>8d}"
            f"  {t.storm_restores:>5d}  {t.preempted_writes:>7d}"
            f"  {t.admission_deferred:>5d}"
            f"  {t.restore_deferred:>6d}"
            f"  {t.restore_latency_p50_s:>9.3f}"
            f"  {t.restore_latency_p95_s:>9.3f}"
            f"  {t.restore_latency_max_s:>9.3f}"
            f"  {t.restore_degradation:>7.2f}"
            f"  {t.goodput:>7.3f}"
            f"  {t.useful_batches_per_s:>10.2f}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class FleetReductionResult:
    """Fleet-aggregate bandwidth/capacity reduction vs the fp32 baseline."""

    baseline: FleetRunReport
    checknrun: FleetRunReport
    bandwidth_reduction: float
    capacity_reduction: float

    def format(self) -> str:
        return "\n".join(
            [
                "fleet-aggregate reduction vs full-fp32 baseline "
                "(paper Fig 17: ~6x-17x bandwidth, ~2.5x-8x capacity):",
                f"  baseline fleet wrote "
                f"{self.baseline.total_put_bytes_logical / 2**20:.2f}"
                f" MiB, peak "
                f"{self.baseline.peak_logical_bytes / 2**20:.2f} MiB",
                f"  check-n-run fleet wrote "
                f"{self.checknrun.total_put_bytes_logical / 2**20:.2f}"
                f" MiB, peak "
                f"{self.checknrun.peak_logical_bytes / 2**20:.2f} MiB",
                f"  aggregate write-bandwidth reduction: "
                f"{self.bandwidth_reduction:.1f}x",
                f"  aggregate capacity reduction: "
                f"{self.capacity_reduction:.1f}x",
            ]
        )


def fleet_reduction_experiment(
    config: FleetConfig,
    bit_width: int = 4,
) -> FleetReductionResult:
    """Run the same fleet twice: full+fp32 vs intermittent+adaptive.

    Failure injection is disabled in both runs so the byte counts
    compare identical training work (the paper's Fig 17 baseline "uses
    neither quantization nor incremental views"). Model sizes,
    intervals and stagger offsets are held fixed across the two runs.
    """
    quiet = replace(config, inject_failures=False)
    specs = sample_fleet_specs(quiet)
    baseline_specs = [
        replace(s, policy="full", quantizer="none") for s in specs
    ]
    variant_specs = [
        replace(
            s,
            policy="intermittent",
            quantizer="adaptive",
            bit_width=bit_width,
        )
        for s in specs
    ]
    _, baseline = run_fleet(quiet, specs=baseline_specs)
    _, variant = run_fleet(quiet, specs=variant_specs)
    if variant.total_put_bytes_logical == 0 or variant.peak_logical_bytes == 0:
        raise FleetError("variant fleet wrote no checkpoint bytes")
    return FleetReductionResult(
        baseline=baseline,
        checknrun=variant,
        bandwidth_reduction=(
            (baseline.total_put_bytes_logical / baseline.duration_s)
            / (variant.total_put_bytes_logical / variant.duration_s)
        ),
        capacity_reduction=(
            baseline.peak_logical_bytes / variant.peak_logical_bytes
        ),
    )
