"""Fleet experiments: aggregate bandwidth/capacity over many jobs.

The paper's Figs 15-17 are fleet aggregates; these drivers reproduce
them by running whole fleets against one shared store:

* :func:`run_fleet` — one heterogeneous fleet, returning per-job and
  aggregate traffic/capacity numbers plus fairness and interleaving
  metrics for the shared link;
* :func:`fleet_reduction_experiment` — the Fig 17 comparison at fleet
  scale: the same fleet run once as the fp32/full baseline and once
  with Check-N-Run's incremental + quantized policies, yielding the
  aggregate write-bandwidth and storage-capacity reduction factors.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from ..config import FleetConfig
from ..distributed.clock import SimClock
from ..errors import FleetError
from ..metrics.accounting import peak_capacity
from ..storage.bandwidth import BandwidthArbiter
from ..storage.object_store import ObjectStore
from .arbitration import busy_span, interleave_score
from .jobs import FleetJobSpec, build_fleet_job, sample_fleet_specs
from .scheduler import FleetEvent, FleetScheduler


@dataclass(frozen=True)
class FleetJobResult:
    """One job's outcome inside a fleet run."""

    job_id: str
    policy: str
    quantizer: str
    bit_width: int
    num_tables: int
    rows_per_table: int
    intervals: int
    checkpoints_written: int
    checkpoints_skipped: int
    admission_deferred: int
    restores: int
    failures: int
    torn_writes: int
    scratch_restarts: int
    quota_rejections: int
    wasted_batches: int
    bytes_logical: int
    bytes_physical: int
    model_fp32_bytes: int
    duration_s: float


@dataclass(frozen=True)
class FleetRunReport:
    """Aggregate outcome of one fleet run on a shared store."""

    jobs: tuple[FleetJobResult, ...]
    duration_s: float  # last event (training or transfer) in sim time
    total_put_bytes_logical: int
    total_put_bytes_physical: int
    aggregate_write_bandwidth: float  # physical put bytes / duration
    peak_logical_bytes: int
    peak_physical_bytes: int
    fairness_index: float
    interleave_switches: int
    failures: int
    restores: int
    torn_writes: int
    #: Fig 15 at fleet scale: (window_start, window_end, bytes/sec)
    bandwidth_series: tuple[tuple[float, float, float], ...]

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)


def _bandwidth_series(
    store: ObjectStore, windows: int
) -> tuple[tuple[float, float, float], ...]:
    puts = store.log.transfers("put")
    start, end = busy_span(puts)
    if end <= start:
        return ()
    width = (end - start) / windows
    series = []
    for i in range(windows):
        lo = start + i * width
        hi = lo + width
        series.append(
            (lo, hi, store.log.average_bandwidth(lo, hi, "put"))
        )
    return tuple(series)


def build_fleet(
    config: FleetConfig,
    specs: list[FleetJobSpec] | None = None,
    on_event: Callable[[FleetEvent], None] | None = None,
) -> tuple[FleetScheduler, ObjectStore]:
    """Wire a shared store + arbiter and a full fleet of jobs."""
    store = ObjectStore(
        config.storage, SimClock(), arbiter=BandwidthArbiter()
    )
    if specs is None:
        specs = sample_fleet_specs(config)
    jobs = [build_fleet_job(spec, config, store) for spec in specs]
    scheduler = FleetScheduler(
        config, store, jobs=jobs, on_event=on_event
    )
    return scheduler, store


def summarize_fleet(
    scheduler: FleetScheduler, store: ObjectStore, windows: int = 12
) -> FleetRunReport:
    """Collect a finished fleet run's aggregate report."""
    job_results = []
    for job in scheduler.jobs:
        stats = job.controller.stats
        job_results.append(
            FleetJobResult(
                job_id=job.job_id,
                policy=job.spec.policy,
                quantizer=job.spec.quantizer,
                bit_width=job.spec.bit_width,
                num_tables=job.spec.num_tables,
                rows_per_table=job.spec.rows_per_table,
                intervals=job.controller.interval_index,
                checkpoints_written=stats.checkpoints_written,
                checkpoints_skipped=stats.checkpoints_skipped,
                admission_deferred=job.admission_deferred,
                restores=stats.restores,
                failures=job.failures_injected,
                torn_writes=job.torn_writes,
                scratch_restarts=job.scratch_restarts,
                quota_rejections=job.quota_rejections,
                wasted_batches=job.wasted_batches,
                bytes_logical=stats.bytes_written_logical,
                bytes_physical=stats.bytes_written_physical,
                model_fp32_bytes=job.model_fp32_bytes(),
                duration_s=job.clock.now,
            )
        )
    puts = store.log.transfers("put")
    _, last_transfer_end = busy_span(store.log.transfers())
    duration = max(
        [last_transfer_end] + [job.clock.now for job in scheduler.jobs]
    )
    if duration <= 0:
        raise FleetError("fleet run produced no simulated time")
    total_physical = store.log.total_bytes("put")
    arbiter = store.arbiter
    assert arbiter is not None
    return FleetRunReport(
        jobs=tuple(job_results),
        duration_s=duration,
        total_put_bytes_logical=sum(
            r.bytes_logical for r in job_results
        ),
        total_put_bytes_physical=total_physical,
        aggregate_write_bandwidth=total_physical / duration,
        peak_logical_bytes=peak_capacity(store.capacity_series()),
        peak_physical_bytes=store.stats().peak_physical_bytes,
        fairness_index=arbiter.fairness_index("put"),
        interleave_switches=interleave_score(puts),
        failures=sum(r.failures for r in job_results),
        restores=sum(r.restores for r in job_results),
        torn_writes=sum(r.torn_writes for r in job_results),
        bandwidth_series=_bandwidth_series(store, windows),
    )


def run_fleet(
    config: FleetConfig,
    specs: list[FleetJobSpec] | None = None,
    on_event: Callable[[FleetEvent], None] | None = None,
) -> tuple[FleetScheduler, FleetRunReport]:
    """Run one fleet to completion and summarise it."""
    scheduler, store = build_fleet(config, specs, on_event)
    scheduler.run()
    return scheduler, summarize_fleet(scheduler, store)


# ----------------------------------------------------------------------
# Fig 17 at fleet scale
# ----------------------------------------------------------------------


def format_fleet_report(report: FleetRunReport) -> str:
    """Human-readable fleet summary (CLI + benchmark artifact)."""
    lines = [
        f"fleet: {report.num_jobs} jobs sharing one store, "
        f"{report.duration_s:.1f} simulated seconds",
        "",
        "job      policy        quantizer  bits  rows/tbl  ckpts  skip"
        "  fail  rest  torn    KiB",
    ]
    lines.append("-" * len(lines[-1]))
    for j in report.jobs:
        lines.append(
            f"{j.job_id:<8s} {j.policy:<13s} {j.quantizer:<10s}"
            f" {j.bit_width:>4d}  {j.rows_per_table:>8d}"
            f"  {j.checkpoints_written:>5d} {j.checkpoints_skipped:>5d}"
            f" {j.failures:>5d} {j.restores:>5d} {j.torn_writes:>5d}"
            f" {j.bytes_logical / 1024:>6.0f}"
        )
    lines += [
        "",
        f"aggregate write bandwidth: "
        f"{report.aggregate_write_bandwidth / 2**20:.3f} MiB/s "
        f"(physical, over {report.duration_s:.1f} s)",
        f"total logical bytes written: "
        f"{report.total_put_bytes_logical / 2**20:.2f} MiB",
        f"peak live capacity: {report.peak_logical_bytes / 2**20:.2f}"
        f" MiB logical / {report.peak_physical_bytes / 2**20:.2f}"
        " MiB physical",
        f"link fairness (Jain, weighted): {report.fairness_index:.3f}",
        f"cross-job interleave switches: {report.interleave_switches}",
        f"failures: {report.failures}  restores: {report.restores}"
        f"  torn writes: {report.torn_writes}",
    ]
    if report.bandwidth_series:
        lines += ["", "window_start  window_end   agg_put_MiB/s"]
        for lo, hi, bw in report.bandwidth_series:
            lines.append(f"{lo:>12.1f} {hi:>11.1f} {bw / 2**20:>13.3f}")
    return "\n".join(lines)


@dataclass(frozen=True)
class FleetReductionResult:
    """Fleet-aggregate bandwidth/capacity reduction vs the fp32 baseline."""

    baseline: FleetRunReport
    checknrun: FleetRunReport
    bandwidth_reduction: float
    capacity_reduction: float

    def format(self) -> str:
        return "\n".join(
            [
                "fleet-aggregate reduction vs full-fp32 baseline "
                "(paper Fig 17: ~6x-17x bandwidth, ~2.5x-8x capacity):",
                f"  baseline fleet wrote "
                f"{self.baseline.total_put_bytes_logical / 2**20:.2f}"
                f" MiB, peak "
                f"{self.baseline.peak_logical_bytes / 2**20:.2f} MiB",
                f"  check-n-run fleet wrote "
                f"{self.checknrun.total_put_bytes_logical / 2**20:.2f}"
                f" MiB, peak "
                f"{self.checknrun.peak_logical_bytes / 2**20:.2f} MiB",
                f"  aggregate write-bandwidth reduction: "
                f"{self.bandwidth_reduction:.1f}x",
                f"  aggregate capacity reduction: "
                f"{self.capacity_reduction:.1f}x",
            ]
        )


def fleet_reduction_experiment(
    config: FleetConfig,
    bit_width: int = 4,
) -> FleetReductionResult:
    """Run the same fleet twice: full+fp32 vs intermittent+adaptive.

    Failure injection is disabled in both runs so the byte counts
    compare identical training work (the paper's Fig 17 baseline "uses
    neither quantization nor incremental views"). Model sizes,
    intervals and stagger offsets are held fixed across the two runs.
    """
    quiet = replace(config, inject_failures=False)
    specs = sample_fleet_specs(quiet)
    baseline_specs = [
        replace(s, policy="full", quantizer="none") for s in specs
    ]
    variant_specs = [
        replace(
            s,
            policy="intermittent",
            quantizer="adaptive",
            bit_width=bit_width,
        )
        for s in specs
    ]
    _, baseline = run_fleet(quiet, specs=baseline_specs)
    _, variant = run_fleet(quiet, specs=variant_specs)
    if variant.total_put_bytes_logical == 0 or variant.peak_logical_bytes == 0:
        raise FleetError("variant fleet wrote no checkpoint bytes")
    return FleetReductionResult(
        baseline=baseline,
        checknrun=variant,
        bandwidth_reduction=(
            (baseline.total_put_bytes_logical / baseline.duration_s)
            / (variant.total_put_bytes_logical / variant.duration_s)
        ),
        capacity_reduction=(
            baseline.peak_logical_bytes / variant.peak_logical_bytes
        ),
    )
