"""Fleet-level link-sharing metrics.

The arbiter itself lives in :mod:`repro.storage.bandwidth` (it is a
storage-layer concern); this module holds the *measurements* the fleet
experiments and tests make over a shared store's transfer log.
"""

from __future__ import annotations

from ..storage.bandwidth import Transfer


def interleave_score(transfers: list[Transfer]) -> int:
    """How often the link switched between streams mid-traffic.

    Counts adjacent transfer pairs served to *different* streams. A
    fleet whose jobs are serialised checkpoint-by-checkpoint scores low
    (one switch per checkpoint); chunk-level fair sharing scores high.
    Untagged transfers are ignored.
    """
    tagged = [t for t in transfers if t.stream]
    return sum(
        1
        for a, b in zip(tagged, tagged[1:])
        if a.stream != b.stream
    )


def busy_span(transfers: list[Transfer]) -> tuple[float, float]:
    """(first start, last end) over a set of transfers."""
    if not transfers:
        return (0.0, 0.0)
    return (
        min(t.start_s for t in transfers),
        max(t.end_s for t in transfers),
    )
