"""Fleet-level link-sharing metrics.

The arbiter itself lives in :mod:`repro.storage.bandwidth` (it is a
storage-layer concern); this module holds the *measurements* the fleet
experiments and tests make over a shared store's transfer log.
"""

from __future__ import annotations

from ..storage.bandwidth import Transfer


def interleave_score(transfers: list[Transfer]) -> int:
    """How often the link switched between streams mid-traffic.

    Counts adjacent transfer pairs served to *different* streams. A
    fleet whose jobs are serialised checkpoint-by-checkpoint scores low
    (one switch per checkpoint); chunk-level fair sharing scores high.
    Untagged transfers are ignored.
    """
    tagged = [t for t in transfers if t.stream]
    return sum(
        1
        for a, b in zip(tagged, tagged[1:])
        if a.stream != b.stream
    )


def part_split_score(transfers: list[Transfer]) -> int:
    """How often a multipart chunk's parts were split by another stream.

    Counts positions where a transfer is a multipart *part*
    (``key#partN``), the next transfer belongs to a different stream,
    and a later transfer is another part of the same object — i.e. the
    link served somebody else *in the middle of* a chunk's upload.
    Whole-chunk submission (parts always back-to-back) scores 0 by
    construction; the part-granular transfer engine scores high under
    contention. Untagged transfers are ignored.
    """
    tagged = [t for t in transfers if t.stream]
    bases = [
        t.key.split("#part", 1)[0] if "#part" in t.key else None
        for t in tagged
    ]
    last_part_index: dict[str, int] = {}
    for i, base in enumerate(bases):
        if base is not None:
            last_part_index[base] = i
    splits = 0
    for i in range(len(tagged) - 1):
        base = bases[i]
        if base is None:
            continue
        if tagged[i + 1].stream == tagged[i].stream:
            continue
        if last_part_index[base] > i:
            splits += 1
    return splits


def busy_span(transfers: list[Transfer]) -> tuple[float, float]:
    """(first start, last end) over a set of transfers."""
    if not transfers:
        return (0.0, 0.0)
    return (
        min(t.start_s for t in transfers),
        max(t.end_s for t in transfers),
    )
