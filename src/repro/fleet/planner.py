"""Fig-16-style capacity planner: sweep provisioning knobs per fleet.

The paper sizes the checkpoint store from fleet telemetry: Fig 16
plots the storage a fleet needs as a function of how many checkpoints
each job retains. This module generalises that curve into a small
capacity planner. :func:`run_plan` sweeps the three provisioning knobs
an operator actually controls —

* ``per_job_quota_bytes`` — the per-job live-byte cap on the store,
* ``keep_last`` — retention depth (checkpoints kept per job),
* ``admission_mode`` — write-admission control on the shared link,

— re-running the *same seeded fleet* at every grid point, so the only
thing that varies between rows is the knob under study. Each point
reports what provisioning decisions hinge on: fleet peak storage
(logical and physical), peak write/read link bandwidth, and — when a
correlated storm is armed — the fleet's time-to-recover, plus the
quota rejections and admission deferrals the setting caused.

Runs use the event-heap dispatcher by default (a full sweep is dozens
of fleet runs; see :mod:`repro.fleet.eventqueue`), but accept
``dispatch="lockstep"`` since the two engines are bit-identical.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..config import FleetConfig
from ..errors import ReproError
from .experiment import FleetRunReport, run_fleet

#: Admission modes :func:`run_plan` accepts in its sweep axis.
PLAN_ADMISSION_MODES = ("none", "static", "dynamic")


@dataclass(frozen=True)
class PlanPoint:
    """One grid point of the provisioning sweep: knobs + outcomes."""

    #: Per-job live physical-byte quota (None = unlimited).
    quota_bytes: int | None
    #: Retention depth: checkpoints kept per job.
    keep_last: int
    #: Admission-control mode ("none", "static" or "dynamic").
    admission: str

    #: Fleet-wide peak of live physical bytes on the shared store —
    #: the capacity the store must actually provision.
    peak_physical_bytes: int
    #: The same peak before replication/quantization accounting.
    peak_logical_bytes: int
    #: Max windowed PUT-class bandwidth over the run (bytes/sec).
    peak_put_bandwidth: float
    #: Max windowed GET-class bandwidth over the run (bytes/sec).
    peak_get_bandwidth: float
    #: Worst trigger-to-finish storm-restore latency across the fleet
    #: (0.0 when no storm was armed or none of its restores landed).
    storm_recover_s: float
    #: PUTs the per-job quota rejected, summed over the fleet.
    quota_rejections: int
    #: Checkpoint triggers the admission controller deferred.
    admission_deferrals: int
    restores: int
    scratch_restarts: int
    #: Simulated end-to-end fleet duration.
    duration_s: float


@dataclass(frozen=True)
class ProvisioningCurve:
    """A full sweep: the fixed fleet shape plus one row per point."""

    num_jobs: int
    intervals_per_job: int
    seed: int
    storm_domain: str | None
    dispatch: str
    points: tuple[PlanPoint, ...]

    def format(self) -> str:
        """Fig-16-style table, one row per grid point."""
        header = (
            f"== Provisioning curve: {self.num_jobs} jobs x "
            f"{self.intervals_per_job} intervals (seed {self.seed}, "
            f"storm {self.storm_domain or 'none'}, "
            f"dispatch {self.dispatch}) =="
        )
        cols = (
            f"{'quota':>10}  {'keep':>4}  {'admission':>9}  "
            f"{'peak store':>12}  {'peak put bw':>13}  "
            f"{'peak get bw':>13}  {'storm rec':>9}  "
            f"{'rejects':>7}  {'defers':>6}"
        )
        lines = [header, cols]
        for p in self.points:
            storm = (
                f"{p.storm_recover_s:8.2f}s"
                if p.storm_recover_s > 0.0
                else f"{'-':>9}"
            )
            lines.append(
                f"{_fmt_quota(p.quota_bytes):>10}  "
                f"{p.keep_last:>4}  {p.admission:>9}  "
                f"{_fmt_bytes(p.peak_physical_bytes):>12}  "
                f"{_fmt_bytes(p.peak_put_bandwidth):>11}/s  "
                f"{_fmt_bytes(p.peak_get_bandwidth):>11}/s  "
                f"{storm}  {p.quota_rejections:>7}  "
                f"{p.admission_deferrals:>6}"
            )
        return "\n".join(lines)


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def _fmt_quota(quota: int | None) -> str:
    return "none" if quota is None else _fmt_bytes(quota)


def peak_bandwidth(
    series: Iterable[tuple[float, float, float]],
) -> float:
    """Max windowed bytes/sec over a report's bandwidth series."""
    return max((rate for _, _, rate in series), default=0.0)


def storm_time_to_recover(report: FleetRunReport) -> float:
    """Worst storm-restore latency across the fleet, 0.0 if no storm.

    Every storm victim restores through the shared link at once; the
    fleet has recovered when the *slowest* of those restores lands, so
    time-to-recover is the max trigger-to-finish latency over restore
    samples tagged ``cause == "storm"``.
    """
    if report.storm is None:
        return 0.0
    return max(
        (
            sample.latency_s
            for job in report.jobs
            for sample in job.restore_samples
            if sample.cause == "storm"
        ),
        default=0.0,
    )


def plan_point(
    config: FleetConfig, dispatch: str = "heap"
) -> PlanPoint:
    """Run one grid point's fleet and distil the provisioning row."""
    _, report = run_fleet(config, dispatch=dispatch)
    return PlanPoint(
        quota_bytes=config.per_job_quota_bytes,
        keep_last=config.keep_last,
        admission=config.resolved_admission_mode,
        peak_physical_bytes=report.peak_physical_bytes,
        peak_logical_bytes=report.peak_logical_bytes,
        peak_put_bandwidth=peak_bandwidth(report.bandwidth_series),
        peak_get_bandwidth=peak_bandwidth(
            report.read_bandwidth_series
        ),
        storm_recover_s=storm_time_to_recover(report),
        quota_rejections=sum(
            job.quota_rejections for job in report.jobs
        ),
        admission_deferrals=report.admission_deferrals,
        restores=report.restores,
        scratch_restarts=report.scratch_restarts,
        duration_s=report.duration_s,
    )


def run_plan(
    base: FleetConfig,
    quotas: Sequence[int | None] = (None,),
    keep_lasts: Sequence[int] = (2,),
    admissions: Sequence[str] = ("none",),
    dispatch: str = "heap",
    progress: Callable[[PlanPoint], None] | None = None,
) -> ProvisioningCurve:
    """Sweep quota x retention x admission over one seeded fleet.

    ``base`` fixes everything the sweep does not vary (jobs, seed,
    storm arming, backend...). Points run in deterministic grid order
    (quota outermost, admission innermost); ``progress`` is invoked
    with each finished :class:`PlanPoint` so the CLI can stream rows.
    """
    for admission in admissions:
        if admission not in PLAN_ADMISSION_MODES:
            raise ReproError(
                f"unknown admission mode {admission!r}; expected one "
                f"of {PLAN_ADMISSION_MODES}"
            )
        if (
            admission == "static"
            and base.max_concurrent_writes is None
        ):
            raise ReproError(
                "admission mode 'static' needs "
                "max_concurrent_writes set on the base config"
            )
    for keep_last in keep_lasts:
        if keep_last < 1:
            raise ReproError(
                f"keep_last must be >= 1, got {keep_last}"
            )
    points: list[PlanPoint] = []
    for quota in quotas:
        for keep_last in keep_lasts:
            for admission in admissions:
                config = dataclasses.replace(
                    base,
                    per_job_quota_bytes=quota,
                    keep_last=keep_last,
                    admission_mode=admission,
                )
                point = plan_point(config, dispatch=dispatch)
                points.append(point)
                if progress is not None:
                    progress(point)
    return ProvisioningCurve(
        num_jobs=base.num_jobs,
        intervals_per_job=base.intervals_per_job,
        seed=base.seed,
        storm_domain=base.storm_domain,
        dispatch=dispatch,
        points=tuple(points),
    )
