"""The fleet checkpoint scheduler: N jobs, one store, one link.

Runs many independent training jobs — each a complete Check-N-Run stack
with its own simulated clock — against a single shared object store:
the scheduler always processes the globally earliest pending event, so
transfers from different jobs reach the shared link in simulated-time
order even though each job's Python code runs sequentially.

Dispatch is indexed by default: an event heap
(:class:`~repro.fleet.eventqueue.FleetEventQueue`) keyed per lane
(staged write parts, write bookkeeping, training) pops the earliest
event in O(log n) and re-keys only the jobs an event touched. The
original O(jobs)-per-event candidate rescan survives as
``dispatch="lockstep"`` — the differential baseline the bit-identity
tests and the b04 scale benchmark compare against; both modes produce
bit-identical runs.

Checkpoint writes are *staged* (see
:meth:`repro.core.controller.CheckNRun.begin_checkpoint`): a job's write
is a generator that announces each PUT request before submitting it —
against a multipart backend, each individual *part*. The scheduler
interleaves announcements from concurrent writers, and when several
jobs are backlogged behind the link it asks the store's
:class:`~repro.storage.bandwidth.BandwidthArbiter` which stream's part
goes next (start-time fair queueing). That part-level interleaving is
what turns a serial link into a fair-shared one: two jobs uploading
multipart chunks alternate part by part instead of chunk by chunk.

Checkpoint *triggers* pass through the transfer engine's
:class:`~repro.storage.engine.AdmissionController` before any snapshot
is taken. The legacy ``FleetConfig.max_concurrent_writes`` cap maps to
its static mode; in dynamic mode the controller watches the engine's
backlog signal (link busy time plus queued part bytes) and defers an
experimental job's trigger when the projected queue delay exceeds the
job's own checkpoint interval — prod triggers are always admitted.

Jobs carry paper-style *priority tiers* (prod vs experimental, section
2.2). The arbiter serves backlogged prod chunks with strict priority,
and when a prod transfer still queues longer than
``FleetConfig.preempt_wait_s`` the scheduler *preempts* experimental
staged writes: each one is aborted through the controller's
``abort_pending`` API, its torn chunks scrubbed, and the write re-staged
(``begin_checkpoint(restage=True)``) once no prod write is in flight.

Failures are injected per job from the same Weibull model behind the
Fig 3 CDF. A crash mid-write abandons the staged generator, leaving a
*torn* checkpoint (chunks, no manifest) that the restore path must skip;
recovery restores the job's newest valid checkpoint through the shared
link, contending with every other job's in-flight traffic. On top of
the independent failures, ``FleetConfig.storm_domain`` arms one
*correlated* failure (a rack or power domain from
:mod:`repro.failures.domains`): when fleet progress crosses
``storm_at_fraction`` every job in the struck domain crashes at once,
and the resulting restore storm is drained in arbiter order — prod
restores first, experimental queueing behind them.

(The coarse job-queue model in :mod:`repro.failures.scheduler` simulates
fleet *occupancy* at whole-job granularity; this scheduler simulates
fleet *storage traffic* at chunk granularity.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..config import FleetConfig
from ..core.controller import CheckpointEvent
from ..core.manifest import checkpoint_prefix
from ..data.state import ReaderState
from ..errors import (
    CapacityExceededError,
    CheckpointNotFoundError,
    FleetError,
    RetriesExhaustedError,
)
from ..failures.domains import StormPlan, assign_domains, plan_storm
from ..failures.models import WeibullFailures
from ..failures.traces import FailureTrace
from ..replication import PeerReplicator, restore_from_peer
from ..storage.bandwidth import TIER_EXPERIMENTAL, TIER_PROD, TIER_RANK
from ..storage.engine import AdmissionController
from ..storage.object_store import ObjectStore
from .eventqueue import FleetEventQueue, tie_threshold
from .jobs import (
    FleetJob,
    RestoreSample,
    build_fleet_job,
    sample_fleet_specs,
)

#: Floor on the derived convergence bound: tiny fleets keep a generous
#: event budget so legitimate crash/preemption replay never trips the
#: non-convergence error. The per-run ceiling itself is derived from
#: fleet shape — see :meth:`FleetScheduler._derive_max_events`.
MIN_EVENT_BUDGET = 200_000

#: Dispatch modes: ``"heap"`` pops the globally earliest event from the
#: indexed :class:`FleetEventQueue` in O(log n); ``"lockstep"`` is the
#: original O(jobs)-per-event candidate rescan, retained as the
#: differential baseline (bit-identity tests, the b04 benchmark).
DISPATCH_MODES = ("heap", "lockstep")


@dataclass
class FleetEvent:
    """One observable fleet occurrence (for reports and tests)."""

    kind: str  # "written", "write_step", "skipped", "deferred",
    # "crash", "quota", "write_failed", "preempted", "restaged",
    # "replicated", or "storm"
    job_id: str
    time_s: float
    payload: dict = field(default_factory=dict)


class FleetScheduler:
    """Co-simulates a fleet of checkpointing jobs on one shared store."""

    def __init__(
        self,
        config: FleetConfig,
        store: ObjectStore,
        jobs: list[FleetJob] | None = None,
        on_event: Callable[[FleetEvent], None] | None = None,
        dispatch: str = "heap",
    ) -> None:
        if store.arbiter is None:
            raise FleetError(
                "the shared store needs a BandwidthArbiter attached"
            )
        if dispatch not in DISPATCH_MODES:
            raise FleetError(
                f"unknown dispatch mode {dispatch!r}; "
                f"valid: {DISPATCH_MODES}"
            )
        self.config = config
        self.store = store
        self.on_event = on_event
        self.dispatch = dispatch
        self.admission = AdmissionController(
            store.engine,
            mode=config.resolved_admission_mode,
            max_concurrent=config.max_concurrent_writes,
            backlog_factor=config.admission_backlog_factor,
            read_mode=config.restore_admission,
            read_backlog_factor=config.restore_backlog_factor,
        )
        if jobs is None:
            jobs = [
                build_fleet_job(spec, config, store)
                for spec in sample_fleet_specs(config)
            ]
        if not jobs:
            raise FleetError("fleet needs at least one job")
        self.jobs = jobs
        self.events: list[FleetEvent] = []
        self._forced_crashes: set[str] = set()
        scale = config.failures.mean_time_to_failure_s / (
            WeibullFailures(config.failures.weibull_shape, 1.0).mean_s()
        )
        self._failure_model = WeibullFailures(
            config.failures.weibull_shape, scale
        )
        self._failure_rngs = {
            job.job_id: np.random.default_rng(job.spec.failure_seed)
            for job in self.jobs
        }
        if config.inject_failures:
            # Initial per-job failure times come from a generated
            # FailureTrace — the same per-job TTF observations behind
            # the Fig 3 CDF (short setup failures filtered). After a
            # crash, a job resamples from the underlying model.
            trace = FailureTrace.generate(
                self._failure_model,
                num_jobs=max(2 * config.num_jobs, 8),
                seed=config.seed ^ config.failures.seed,
                min_failure_s=config.failures.min_failure_s,
            )
            shuffle = np.random.default_rng(config.seed ^ 0x7ACE)
            times = shuffle.permutation(trace.times_s)
            for i, job in enumerate(self.jobs):
                job.next_failure_s = job.clock.now + float(
                    times[i % times.size]
                )
        self.storm_plan: StormPlan | None = None
        self.storm_fired_at_s: float | None = None
        self._storm_trigger_intervals = 0
        self._progress_high = 0
        #: Jobs currently being crashed by the storm drain — excluded
        #: from restore-side preemption (their writes die torn anyway).
        self._storm_draining: set[str] = set()
        if config.storm_domain is not None:
            domains = assign_domains(
                [job.job_id for job in self.jobs],
                config.storm_domain,
                rack_size=config.rack_size,
                tiers={job.job_id: job.tier for job in self.jobs},
            )
            self.storm_plan = plan_storm(
                domains,
                config.storm_at_fraction,
                seed=config.seed ^ 0x5709,
            )
            # Measure progress against the *actual* fleet (an injected
            # jobs list may differ from config.num_jobs/intervals); the
            # plan's own at_progress is the single trigger source.
            total_target = sum(
                job.target_intervals for job in self.jobs
            )
            self._storm_trigger_intervals = max(
                1, int(self.storm_plan.at_progress * total_target)
            )
        #: Fleet progress changed since the armed storm last measured
        #: it (heap mode recomputes the O(jobs) progress sum only when
        #: this is set; interval indices change only at trigger /
        #: recovery boundaries).
        self._progress_dirty = True
        self.max_events = self._derive_max_events()
        # Indexed dispatch state. The per-tier staged-write counters
        # and the re-stage waiting set are maintained in *both* modes
        # (they are the O(1) form of the same job-state predicates the
        # lockstep scan evaluates); the event-queue lanes are only
        # maintained under heap dispatch.
        self._queue = FleetEventQueue()
        self._jobs_by_id = {job.job_id: job for job in self.jobs}
        if len(self._jobs_by_id) != len(self.jobs):
            raise FleetError("duplicate job ids in fleet")
        #: Peer-memory replication tier (None = off). Every side
        #: effect below is gated on this being non-None, so
        #: ``replicate_k=0`` runs stay bit-identical to the seed.
        self.replicator: PeerReplicator | None = None
        if config.replicate_k > 0:
            self.replicator = PeerReplicator(
                config, self.jobs, store.arbiter
            )
        self._staged_by_tier: dict[str, int] = {}
        self._staged_total = 0
        self._staged_tier_of: dict[str, str | None] = {}
        #: Training-done jobs owing a preempted write's re-stage —
        #: their train-lane slot exists only while no prod write is
        #: active, so prod-activity flips re-key exactly this set.
        self._restage_waiting: set[str] = set()
        for job in self.jobs:
            self._sync_job(job)

    def _derive_max_events(self) -> int:
        """Convergence bound from fleet shape instead of a fixed cap.

        Per interval a job spends one trigger, its training batches,
        one event per announced PUT part (chunks bounded by the fp32
        embedding bytes over the backend part size, plus per-object
        announcements), and a finish — padded for skips/deferrals.
        Crashes replay work (a restore rewinds to the last valid
        checkpoint, a scratch restart to zero), so the per-job budget
        scales with the failure allowance plus the storm, and a final
        headroom factor absorbs preemption/re-stage churn. The bound
        stays proportional to real fleet work at every scale — a 10k
        job fleet gets a 10k-sized budget, and a stuck loop still
        raises :class:`FleetError` instead of spinning forever.
        """
        part_size = self.config.storage.backend.part_size_bytes
        total = 0
        for job in self.jobs:
            spec = job.spec
            # Announced PUT steps per checkpoint: one per object
            # (chunks + dense + manifest + sidecars) plus one per
            # multipart part of the fp32-bounded payload.
            objects = 2 * spec.num_tables + 4
            parts = objects
            if part_size is not None and part_size > 0:
                parts += (
                    2 * job.model_fp32_bytes() + part_size - 1
                ) // part_size
            per_interval = spec.interval_batches + parts + 6
            total += job.target_intervals * per_interval
        replay = 3 + self.config.max_failures_per_job
        return max(MIN_EVENT_BUDGET, 4 * replay * total)

    # ------------------------------------------------------------------
    # Indexed dispatch state (counters + event-queue lanes)
    # ------------------------------------------------------------------

    def _sync_job(self, job: FleetJob) -> None:
        """Re-derive a job's counters and lane keys from its state.

        Called whenever an event touched the job (its clock, staged
        write, re-stage flag or training progress may have changed).
        Every other job's cached keys stay valid — per-job clocks only
        advance while the scheduler is processing that job's own event,
        and announced write steps carry static ready times.
        """
        job_id = job.job_id
        prev_tier = self._staged_tier_of.get(job_id)
        cur_tier = job.tier if job.pending is not None else None
        if prev_tier != cur_tier:
            prod_before = self._staged_by_tier.get(TIER_PROD, 0)
            if prev_tier is not None:
                self._staged_by_tier[prev_tier] -= 1
                self._staged_total -= 1
            if cur_tier is not None:
                self._staged_by_tier[cur_tier] = (
                    self._staged_by_tier.get(cur_tier, 0) + 1
                )
                self._staged_total += 1
            self._staged_tier_of[job_id] = cur_tier
            prod_after = self._staged_by_tier.get(TIER_PROD, 0)
            if (prod_before > 0) != (prod_after > 0):
                self._on_prod_activity_flip()
        if self.dispatch != "heap":
            return
        queue = self._queue
        pending = job.pending
        if pending is not None and pending.next_step is not None:
            queue.write.set(job_id, pending.next_step.ready_s)
            queue.book.remove(job_id)
        elif pending is not None:
            queue.write.remove(job_id)
            queue.book.set(job_id, job.clock.now)
        else:
            queue.clear_write_lanes(job_id)
        if not job.training_done():
            queue.train.set(job_id, job.clock.now)
            self._restage_waiting.discard(job_id)
        elif job.requeue_write and pending is None:
            # The lockstep scan's re-stage slot: a training-done job
            # owing a preempted write competes for a train-lane event
            # only while no prod write is active.
            self._restage_waiting.add(job_id)
            if self._tier_write_active(TIER_PROD):
                queue.train.remove(job_id)
            else:
                queue.train.set(job_id, job.clock.now)
        else:
            queue.train.remove(job_id)
            self._restage_waiting.discard(job_id)

    def _on_prod_activity_flip(self) -> None:
        """Prod staged-write activity crossed zero: re-key the jobs
        whose train-lane eligibility is conditioned on it."""
        if self.dispatch != "heap":
            return
        for job_id in list(self._restage_waiting):
            self._sync_job(self._jobs_by_id[job_id])

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------

    def _emit(self, event: FleetEvent) -> None:
        self.events.append(event)
        if self.on_event is not None:
            self.on_event(event)

    def _sample_ttf(self, job: FleetJob) -> float:
        return float(
            self._failure_model.sample(self._failure_rngs[job.job_id])
        )

    def inject_crash(self, job_id: str) -> None:
        """Force a crash at the job's next scheduled event (tests)."""
        self._forced_crashes.add(job_id)

    def events_of_kind_for_job(
        self, kind: str, job_id: str
    ) -> list[FleetEvent]:
        return [
            e
            for e in self.events
            if e.kind == kind and e.job_id == job_id
        ]

    def active_writes(self) -> int:
        """Jobs with a staged write still submitting PUTs.

        O(1): the per-tier counters are kept in sync by
        :meth:`_sync_job` at every staged-write set/clear site.
        """
        return self._staged_total

    def _tier_write_active(self, tier: str) -> bool:
        return self._staged_by_tier.get(tier, 0) > 0

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Process events until every job trained its target intervals
        and drained its last write."""
        heap = self.dispatch == "heap"
        for _ in range(self.max_events):
            self._maybe_fire_storm()
            event = (
                self._next_event_heap() if heap else self._next_event()
            )
            if event is None:
                if self._storm_armed():
                    # Backstop: the fleet is about to drain with the
                    # armed storm still waiting on a straggler's first
                    # checkpoint — fire it now rather than never.
                    self._fire_storm()
                    continue
                return
            time_s, kind, job = event
            if job.job_id in self._forced_crashes:
                self._forced_crashes.discard(job.job_id)
                self._crash(job)
                self._sync_job(job)
                continue
            if kind == "write":
                self._step_write(job)
            else:
                self._step_train(job)
            self._sync_job(job)
        raise FleetError(
            f"fleet did not converge within {self.max_events} events "
            f"(derived bound for {len(self.jobs)} jobs)"
        )

    def _next_event(self) -> tuple[float, str, FleetJob] | None:
        """The globally earliest pending event.

        A staged chunk cannot start before ``max(ready, link free)``;
        using that as the event time lets every chunk that would queue
        behind the link compete, and the arbiter's fair-queueing tag
        picks the winner. Writes beat training at equal times so a
        ready chunk claims its link slot before more training runs.
        """
        link_free = self.store.timeline.free_at
        prod_active = self._tier_write_active(TIER_PROD)
        write_candidates: list[tuple[float, FleetJob]] = []
        train_candidates: list[tuple[float, FleetJob]] = []
        for job in self.jobs:
            if job.pending is not None and job.pending.next_step is not None:
                ready = job.pending.next_step.ready_s
                write_candidates.append((max(ready, link_free), job))
            elif job.pending is not None:
                # Generator exhausted but bookkeeping outstanding.
                write_candidates.append((job.clock.now, job))
            if not job.training_done():
                train_candidates.append((job.clock.now, job))
            elif (
                job.requeue_write
                and job.pending is None
                and not prod_active
            ):
                # A training-done job whose final write was preempted
                # still owes its re-stage; once prod traffic drains it
                # gets one more (train-slot) event to submit it.
                train_candidates.append((job.clock.now, job))

        best_write = min(write_candidates, key=lambda e: e[0], default=None)
        best_train = min(train_candidates, key=lambda e: e[0], default=None)
        if best_write is None and best_train is None:
            return None
        if best_write is not None and (
            best_train is None or best_write[0] <= best_train[0]
        ):
            tied = [
                job
                for t, job in write_candidates
                if t <= tie_threshold(best_write[0])
            ]
            if len(tied) > 1:
                chosen_id = self.store.arbiter.pick(
                    [job.job_id for job in tied]
                )
                job = next(j for j in tied if j.job_id == chosen_id)
            else:
                job = tied[0]
            return (best_write[0], "write", job)
        assert best_train is not None
        # Deterministic tie-break on equal clocks: lowest job id.
        t_min = best_train[0]
        job = min(
            (
                j
                for t, j in train_candidates
                if t <= tie_threshold(t_min)
            ),
            key=lambda j: j.job_id,
        )
        return (t_min, "train", job)

    def _next_event_heap(self) -> tuple[float, str, FleetJob] | None:
        """Heap dispatch: identical semantics, O(log n) per event.

        Lane keys are maintained by :meth:`_sync_job`; the write lane's
        link floor is applied at pop time (see
        :mod:`repro.fleet.eventqueue` for why that preserves the
        floored minimum). Ordering matches :meth:`_next_event` exactly:
        writes beat training at equal times, tied writes go to the
        arbiter, tied trains to the lowest job id.
        """
        queue = self._queue
        best_write = queue.best_write(self.store.timeline.free_at)
        best_train = queue.train.best()
        if best_write is None and best_train is None:
            return None
        if best_write is not None and (
            best_train is None or best_write <= best_train
        ):
            tied = queue.tied_writes(
                best_write, self.store.timeline.free_at
            )
            if len(tied) > 1:
                chosen = self.store.arbiter.pick(tied)
            else:
                chosen = tied[0]
            return (best_write, "write", self._jobs_by_id[chosen])
        assert best_train is not None
        tied = queue.train.tied(best_train)
        return (best_train, "train", self._jobs_by_id[min(tied)])

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def _step_write(self, job: FleetJob) -> None:
        pending = job.pending
        assert pending is not None
        # Tier preemption on the write path: a prod chunk that would
        # still queue behind the link longer than the configured wait
        # clears experimental staged writes out of its way.
        if (
            job.tier == TIER_PROD
            and self.config.preempt_staged_writes
            and pending.next_step is not None
            and self._tier_write_active(TIER_EXPERIMENTAL)
        ):
            wait = (
                self.store.timeline.free_at
                - pending.next_step.ready_s
            )
            if wait > self.config.preempt_wait_s:
                self._preempt_experimental_writes(job)
        try:
            step = pending.advance()
        except CapacityExceededError as exc:
            job.quota_rejections += 1
            job.controller.abort_pending(pending)
            job.pending = None
            self._scrub_torn(job, pending.checkpoint_id)
            self._emit(
                FleetEvent(
                    "quota",
                    job.job_id,
                    job.clock.now,
                    {"checkpoint_id": pending.checkpoint_id,
                     "error": str(exc)},
                )
            )
            return
        except RetriesExhaustedError as exc:
            # A request kept failing transiently past the engine's
            # retry budget. The job loses this checkpoint — abort,
            # scrub the torn chunks, keep training — exactly how every
            # other simulated storage failure is absorbed; one
            # exhausted request must not take down the whole fleet run.
            job.failed_writes += 1
            job.controller.abort_pending(pending)
            job.pending = None
            self._scrub_torn(job, pending.checkpoint_id)
            self._emit(
                FleetEvent(
                    "write_failed",
                    job.job_id,
                    job.clock.now,
                    {"checkpoint_id": pending.checkpoint_id,
                     "error": str(exc)},
                )
            )
            return
        if step is not None:
            # One PUT submitted; the next one is announced. The hook
            # lets tests crash a job at an exact point of its write
            # (e.g. after the last chunk, before the manifest).
            self._emit(
                FleetEvent(
                    "write_step",
                    job.job_id,
                    job.clock.now,
                    {
                        "checkpoint_id": pending.checkpoint_id,
                        "next_kind": step.kind,
                        "next_key": step.key,
                    },
                )
            )
            return
        event = job.controller.finish_checkpoint(pending)
        job.pending = None
        assert event.manifest is not None
        self._emit(
            FleetEvent(
                "written",
                job.job_id,
                job.clock.now,
                {
                    "checkpoint_id": event.manifest.checkpoint_id,
                    "kind": event.manifest.kind,
                    "valid_at_s": event.manifest.valid_at_s,
                    "started_at_s": event.report.started_at_s
                    if event.report
                    else None,
                    "logical_bytes": event.report.logical_bytes
                    if event.report
                    else 0,
                },
            )
        )

    def _scrub_torn(self, job: FleetJob, checkpoint_id: str) -> None:
        """Delete a torn checkpoint's orphaned chunks (frees quota).

        One batch prefix delete — a single LIST + N DELETE under the
        store's cost model — through the job's scoped view.
        """
        job.store.delete_prefix(
            checkpoint_prefix(job.job_id, checkpoint_id)
        )

    # ------------------------------------------------------------------
    # Tier preemption (abort-and-requeue)
    # ------------------------------------------------------------------

    def _preempt_experimental_writes(self, by_job: FleetJob) -> int:
        """Abort every experimental staged write in favour of prod traffic.

        Each victim's write is abandoned through the controller's
        ``abort_pending`` API, its already-stored chunks scrubbed (no
        partial objects survive in the namespace), and the job marked
        for *requeue*: it re-stages the write — a fresh snapshot under
        the same interval accounting — once no prod write is in flight.
        Returns the number of writes preempted.
        """
        preempted = 0
        for other in self.jobs:
            if other.tier != TIER_EXPERIMENTAL or other.pending is None:
                continue
            if other.pending.next_step is None:
                # Every PUT (chunks and manifest) already occupies the
                # link; only bookkeeping remains. Aborting now would
                # destroy a fully-transferred checkpoint and reclaim
                # zero link time.
                continue
            if other.job_id in self._storm_draining:
                # This job is about to crash in the same storm; its
                # write dies (torn) with it — preempting it first would
                # only distort the preemption/torn accounting.
                continue
            pending = other.pending
            other.controller.abort_pending(pending)
            other.pending = None
            self._scrub_torn(other, pending.checkpoint_id)
            other.preempted_writes += 1
            other.requeue_write = True
            self.store.arbiter.record_preemption(other.job_id)
            self._sync_job(other)
            preempted += 1
            self._emit(
                FleetEvent(
                    "preempted",
                    other.job_id,
                    other.clock.now,
                    {
                        "by": by_job.job_id,
                        "checkpoint_id": pending.checkpoint_id,
                    },
                )
            )
        return preempted

    def _try_restage(self, job: FleetJob) -> bool:
        """Re-stage a preempted write once prod traffic has drained."""
        if (
            not job.requeue_write
            or job.pending is not None
            or self._tier_write_active(TIER_PROD)
        ):
            return False
        job.requeue_write = False
        began = job.controller.begin_checkpoint(
            restage=True, force_full=self.replicator is not None
        )
        if isinstance(began, CheckpointEvent):
            # Previous finished write still in flight: the preempted
            # checkpoint is simply lost (paper-rule skip).
            self._emit(
                FleetEvent("skipped", job.job_id, job.clock.now, {})
            )
            return True
        job.pending = began
        self._emit(
            FleetEvent(
                "restaged",
                job.job_id,
                job.clock.now,
                {"checkpoint_id": began.checkpoint_id},
            )
        )
        return True

    # ------------------------------------------------------------------
    # Correlated failures (restore storms)
    # ------------------------------------------------------------------

    def _storm_armed(self) -> bool:
        return (
            self.storm_plan is not None
            and self.storm_fired_at_s is None
        )

    def _maybe_fire_storm(self) -> None:
        """Fire the armed correlated failure once progress crosses it.

        The storm *arms* when fleet progress passes
        ``storm_at_fraction`` but holds fire until every job in the
        struck domain owns a restorable checkpoint — the event exists to
        measure restore-storm contention, and a straggler that would
        merely reinitialise from scratch adds no read traffic. If that
        never happens (a straggler still mid-first-write, endless quota
        rejections) the main loop force-fires the storm just before the
        fleet would otherwise drain, so an armed storm cannot silently
        dissolve.
        """
        if not self._storm_armed():
            return
        if self._progress_high < self._storm_trigger_intervals:
            if (
                self.dispatch == "heap"
                and not self._progress_dirty
            ):
                # Interval indices only move at trigger/recovery
                # boundaries, which set the dirty flag in the same
                # loop iteration — so skipping the O(jobs) sum while
                # clean detects the threshold crossing at exactly the
                # iteration the lockstep rescan would.
                return
            self._progress_dirty = False
            progress = sum(
                min(job.controller.interval_index, job.target_intervals)
                for job in self.jobs
            )
            self._progress_high = max(self._progress_high, progress)
            if self._progress_high < self._storm_trigger_intervals:
                return
        assert self.storm_plan is not None
        affected_ids = set(self.storm_plan.affected_job_ids)
        restorable = all(
            job.controller.valid_manifests()
            for job in self.jobs
            if job.job_id in affected_ids
        )
        if restorable:
            self._fire_storm()

    def _fire_storm(self) -> None:
        """Crash every job in the struck domain; drain the restore storm.

        All affected jobs die at (essentially) the same simulated
        moment; their restores then contend for the shared link. Every
        victim's restore is *staged* (one announced GET part at a time,
        read-side admission pacing experimental starts), and the drain
        interleaves parts across the recovering jobs in arbiter order —
        strict tier priority first, fair-queueing tags within a tier —
        so prod recoveries are never starved behind experimental read
        traffic and the link switches streams at part granularity
        instead of serving whole restores head-of-line.
        """
        plan = self.storm_plan
        assert plan is not None
        affected = {
            job.job_id: job
            for job in self.jobs
            if job.job_id in set(plan.affected_job_ids)
        }
        fired_at = max(
            (job.clock.now for job in affected.values()), default=0.0
        )
        self.storm_fired_at_s = fired_at
        self._emit(
            FleetEvent(
                "storm",
                plan.domain.domain_id,
                fired_at,
                {
                    "kind": plan.domain.kind,
                    "affected": sorted(affected),
                },
            )
        )
        self._storm_draining = set(affected)
        # Crash events buffer until the drain completes so they emit in
        # tier-rank order (prod recoveries first), matching the order
        # the link actually serves the storm in.
        finished: list[tuple[int, FleetEvent]] = []
        try:
            # Bookkeeping pass for every victim first — the whole
            # domain dies at the same moment, so torn writes abort
            # before any recovery read is staged. Arbiter pick order
            # (prod tiers first) keeps the pass deterministic.
            crashed: list[tuple[FleetJob, dict]] = []
            pool = dict(affected)
            while pool:
                chosen = self.store.arbiter.pick(sorted(pool))
                job = pool.pop(chosen)
                self._storm_draining.discard(job.job_id)
                crashed.append((job, self._crash_bookkeeping(job, "storm")))
            # Stage and drain one tier at a time, prod first: strict
            # priority means an experimental part could never submit
            # while prod parts are pending anyway, and deferring even
            # the experimental *manifest discovery* reads keeps prod
            # recoveries queueing behind prod traffic only. By the time
            # an experimental restore is admission-checked, the whole
            # prod drain sits in the backlog signal it is paced on.
            for rank in sorted(set(TIER_RANK.values())):
                active: list[tuple[FleetJob, object, dict]] = []
                for job, ctx in crashed:
                    if TIER_RANK[job.tier] != rank:
                        continue
                    # Peer recoveries bypass the storage link — a live
                    # replica sidesteps the storm drain entirely.
                    event = self._try_peer_recovery(job, ctx, "storm")
                    if event is not None:
                        finished.append((rank, event))
                        continue
                    pending = self._begin_restore_paced(job)
                    if pending is None:
                        event = self._finish_recovery(
                            job, ctx, None, "storm"
                        )
                        finished.append((rank, event))
                    else:
                        active.append((job, pending, ctx))
                # Part-granular drain within the tier: the earliest
                # ready part wins the link; ties go to the arbiter's
                # SFQ tags, so recovering jobs alternate part by part
                # instead of reading whole chains head-of-line.
                while active:
                    link_free = self.store.timeline.free_at
                    candidates = [
                        (max(entry[1].next_step.ready_s, link_free), entry)
                        for entry in active
                        if entry[1].next_step is not None
                    ]
                    best_t = min(t for t, _ in candidates)
                    tied = [
                        entry
                        for t, entry in candidates
                        if t <= tie_threshold(best_t)
                    ]
                    if len(tied) > 1:
                        chosen = self.store.arbiter.pick(
                            [entry[0].job_id for entry in tied]
                        )
                        entry = next(
                            e for e in tied if e[0].job_id == chosen
                        )
                    else:
                        entry = tied[0]
                    job, pending, ctx = entry
                    try:
                        pending.advance()
                    except CheckpointNotFoundError:
                        # Every resume-plan candidate failed
                        # verification mid-read: fall back to a
                        # from-scratch restart, like a job with
                        # nothing restorable at all.
                        active.remove(entry)
                        event = self._finish_recovery(
                            job, ctx, None, "storm"
                        )
                        finished.append((rank, event))
                        continue
                    if pending.done:
                        active.remove(entry)
                        event = self._finish_recovery(
                            job, ctx, pending, "storm"
                        )
                        finished.append((rank, event))
        finally:
            self._storm_draining = set()
            # Every victim's clock, staged write and training state
            # changed across the drain: re-key them all.
            for job in affected.values():
                self._sync_job(job)
        finished.sort(key=lambda pair: pair[0])  # stable: prod first
        for _, event in finished:
            self._emit(event)

    # ------------------------------------------------------------------
    # Train path
    # ------------------------------------------------------------------

    def _step_train(self, job: FleetJob) -> None:
        if job.batches_left == 0 and not job.training_done():
            # The boundary check runs before any re-stage attempt: a
            # fresh interval's checkpoint supersedes a preempted stale
            # snapshot (never the other way around).
            self._trigger_checkpoint(job)
            return
        if self._try_restage(job):
            return
        if job.training_done():
            # Scheduled only to re-stage a preempted final write; never
            # train past the target.
            return
        job.controller.coordinator.grant_interval(1)
        result = job.trainer.train_one_batch()
        job.total_batches_trained += 1
        job.batches_left -= 1
        if self.replicator is not None:
            # Per-iteration checkpoint: mirror this step's delta to the
            # job's peer rings before the failure check — a send that
            # straddles the scheduled failure is discarded (partial
            # ring writes never survive) and forces the crash below.
            self.replicator.on_step(job, result)
        if (
            self.config.inject_failures
            and job.next_failure_s is not None
            and job.clock.now >= job.next_failure_s
            and job.failures_injected < self.config.max_failures_per_job
        ):
            self._crash(job)

    def _trigger_checkpoint(self, job: FleetJob) -> None:
        # Both begin_checkpoint and record_skip advance the interval
        # index — the armed storm's progress measure must re-sum.
        self._progress_dirty = True
        job.batches_left = job.spec.interval_batches
        # Successive triggers measure the job's checkpoint interval —
        # the dynamic admission controller's deferral threshold.
        interval_s = (
            job.clock.now - job.last_trigger_s
            if job.last_trigger_s is not None
            else None
        )
        job.last_trigger_s = job.clock.now
        if interval_s is not None:
            # Shared threshold unit for write- and read-side admission.
            job.measured_interval_s = interval_s
        # A new interval boundary supersedes any preempted write still
        # waiting to restage — its snapshot would be stale anyway.
        job.requeue_write = False
        if job.pending is not None:
            job.controller.record_skip("skipped_overlap")
            self._emit(
                FleetEvent("skipped", job.job_id, job.clock.now, {})
            )
            return
        if (
            self.replicator is not None
            and not self.replicator.is_flush_interval(job)
        ):
            # Peer replication suppresses non-boundary store writes:
            # every batch of this interval already landed on K peer
            # rings, so the store only sees baseline flushes every
            # ``baseline_flush_intervals`` boundaries.
            job.controller.record_skip("replicated")
            self._emit(
                FleetEvent("replicated", job.job_id, job.clock.now, {})
            )
            return
        decision = self.admission.decide(
            stream=job.job_id,
            tier=job.tier,
            now=job.clock.now,
            interval_s=interval_s,
            active_writes=self.active_writes(),
        )
        if not decision.admitted:
            job.admission_deferred += 1
            job.controller.record_skip("admission_deferred")
            self._emit(
                FleetEvent(
                    "deferred",
                    job.job_id,
                    job.clock.now,
                    {
                        "reason": decision.reason,
                        "projected_delay_s": decision.projected_delay_s,
                        "threshold_s": decision.threshold_s,
                    },
                )
            )
            return
        if self.replicator is not None:
            # Baseline flush: fold every surviving ring's log into its
            # anchor (the anchors re-base on the flushed full) and
            # re-establish rings lost to peer-host deaths.
            self.replicator.rebase_rings(job)
        began = job.controller.begin_checkpoint(
            force_full=self.replicator is not None
        )
        if isinstance(began, CheckpointEvent):
            # The previous write's manifest has not landed yet
            # (valid_at_s in the job's future): paper-rule skip.
            self._emit(
                FleetEvent("skipped", job.job_id, job.clock.now, {})
            )
            return
        job.pending = began

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------

    def _crash_bookkeeping(self, job: FleetJob, cause: str) -> dict:
        """Everything a crash does *before* any restore read is staged.

        Aborts the torn write, discards an unlanded manifest, snapshots
        the valid-checkpoint set, and fires restore-side preemption.
        Returns the context the recovery finisher needs.
        """
        if cause == "storm":
            # Correlated crashes ride on top of the independent failure
            # process — they must not consume the job's Weibull
            # injection budget (max_failures_per_job).
            job.storm_crashes += 1
        else:
            job.failures_injected += 1
        if self.replicator is not None:
            # Replica rings living in this host's memory die with it.
            # The storm drain runs bookkeeping for *every* victim
            # before any recovery, so replica liveness at recovery
            # time reflects the whole correlated blast radius.
            self.replicator.on_job_death(job.job_id)
        job.requeue_write = False
        torn_id: str | None = None
        torn_chunks = 0
        if job.pending is not None:
            torn_id = job.pending.checkpoint_id
            torn_chunks = len(
                job.store.list_keys(
                    checkpoint_prefix(job.job_id, torn_id)
                )
            )
            job.controller.abort_pending(job.pending)
            job.pending = None
            job.torn_writes += 1
        # Counters must see the cleared write before the preemption
        # check below (and before the next storm victim's bookkeeping).
        self._sync_job(job)
        # A write whose chunks were all submitted but whose manifest
        # transfer had not landed dies with the process too: discard
        # it so it never becomes valid after the fact.
        unlanded = job.controller.discard_unlanded_write()
        if unlanded is not None:
            job.torn_writes += 1

        # Metadata snapshot for test-side verification: which of the
        # job's checkpoints were valid at the moment of the crash.
        valid_before = sorted(
            (
                (m.checkpoint_id, m.interval_index, m.valid_at_s)
                for m in job.controller.manifests.values()
                if m.valid_at_s <= job.clock.now
            ),
            key=lambda row: (row[1], row[2]),
        )

        # Restore-side preemption: a prod job recovering behind a
        # backlogged link clears experimental staged writes first, so
        # its checkpoint reads are not interleaved with their chunks.
        # A prod job with nothing restorable is about to reinitialise
        # from scratch — no read traffic, so nothing to preempt for.
        if (
            job.tier == TIER_PROD
            and self.config.preempt_staged_writes
            and self._tier_write_active(TIER_EXPERIMENTAL)
            and job.controller.valid_manifests()
            and (
                self.store.timeline.free_at - job.clock.now
                > self.config.preempt_wait_s
            )
        ):
            self._preempt_experimental_writes(job)

        return {
            "crash_time_s": job.clock.now,
            "torn_id": torn_id,
            "torn_chunks": torn_chunks,
            "valid_before": valid_before,
            "batches_before": job.model.batches_trained,
            "gets_before": len(
                self.store.log.transfers("get", stream=job.job_id)
            ),
        }

    def _begin_restore_paced(self, job: FleetJob):
        """Stage the job's restore through read-side admission.

        Prod restores always start at once. Under dynamic restore
        admission an experimental restore whose projected queue delay
        (write backlog plus queued restore parts) exceeds the threshold
        is *paced*: the job waits out exactly the excess — its clock
        advances, stretching the measured restore latency — and then
        stages. Returns the primed ``PendingRestore``, or None when the
        job has nothing restorable (the scratch-restart path).
        """
        if not job.controller.valid_manifests():
            return None
        decision = self.admission.decide_get(
            stream=job.job_id,
            tier=job.tier,
            now=job.clock.now,
            interval_s=job.measured_interval_s,
        )
        if not decision.admitted:
            assert decision.threshold_s is not None
            wait = max(
                0.0, decision.projected_delay_s - decision.threshold_s
            )
            job.restore_deferred += 1
            self._emit(
                FleetEvent(
                    "restore_deferred",
                    job.job_id,
                    job.clock.now,
                    {
                        "projected_delay_s": decision.projected_delay_s,
                        "threshold_s": decision.threshold_s,
                        "paced_wait_s": wait,
                    },
                )
            )
            job.clock.advance(wait, "restore-admission")
        try:
            return job.controller.begin_restore(
                order=self.config.restore_order
            )
        except CheckpointNotFoundError:  # pragma: no cover - raced
            return None

    def _finish_recovery(
        self, job: FleetJob, ctx: dict, pending, cause: str
    ) -> FleetEvent:
        """Complete a crash after its restore drained (or scratch).

        Books the restore sample (latency measured from the *crash*, so
        admission pacing shows up as queueing), wasted batches, torn
        scrubbing and the next failure time. Returns the crash event —
        the caller controls emission order (the storm drain buffers
        events to emit prod recoveries first).
        """
        # finish_restore / reset_for_scratch_restart move the interval
        # index — the armed storm's progress measure must re-sum.
        self._progress_dirty = True
        if pending is not None:
            report = job.controller.finish_restore(pending)
            restored_from: str | None = report.checkpoint_id
            job.restore_fallbacks += report.fallback_depth
            after = job.model.batches_trained
            gets = self.store.log.transfers(
                "get", stream=job.job_id
            )[ctx["gets_before"]:]
            job.restore_samples.append(
                RestoreSample(
                    cause=cause,
                    latency_s=max(
                        0.0,
                        report.finished_at_s - ctx["crash_time_s"],
                    ),
                    service_s=sum(t.duration_s for t in gets),
                    source="store",
                    time_to_first_batch_s=max(
                        0.0,
                        report.first_batch_ready_s
                        - ctx["crash_time_s"],
                    ),
                )
            )
        else:
            job.model.reinitialize()
            job.reader.restore(
                ReaderState(
                    next_batch_index=0, in_flight=0, batches_delivered=0
                )
            )
            for stale_id in job.controller.reset_for_scratch_restart():
                self._scrub_torn(job, stale_id)
            job.scratch_restarts += 1
            restored_from = None
            report = None
            after = 0
        job.wasted_batches += max(0, ctx["batches_before"] - after)
        job.batches_left = job.spec.interval_batches
        if self.replicator is not None:
            # The store (or scratch) rewound the job behind its own
            # replica rings; drop them so the delta log never forks.
            # They re-establish at the job's next baseline flush.
            self.replicator.resync_after_recovery(job)
        if ctx["torn_id"] is not None:
            # The recovered controller never re-adopts a torn write;
            # scrub its orphaned chunks from the shared store.
            self._scrub_torn(job, ctx["torn_id"])
        job.next_failure_s = job.clock.now + self._sample_ttf(job)
        return FleetEvent(
            "crash",
            job.job_id,
            job.clock.now,
            {
                "cause": cause,
                "restored_from": restored_from,
                "fallback_depth": (
                    report.fallback_depth if report is not None else 0
                ),
                "torn_checkpoint": ctx["torn_id"],
                "torn_chunks": ctx["torn_chunks"],
                "valid_before": ctx["valid_before"],
            },
        )

    def _try_peer_recovery(
        self, job: FleetJob, ctx: dict, cause: str
    ) -> FleetEvent | None:
        """Recover from the nearest live replica ring, if one survives.

        The recovery-preference ladder's first two rungs: a same-rack
        ring beats a cross-rack ring, newest replica step first within
        each. The replica read rides the *peer* link only — no storage
        timeline, no restore-storm contention — and restores the
        owner's exact mid-interval position (reader, countdown,
        interval index), so at most the one batch a mid-send crash
        discarded is retrained. Returns the crash event, or None to
        send the caller down the object-store (``plan_resume``) rung.
        """
        if self.replicator is None:
            return None
        ring = self.replicator.best_replica(job.job_id)
        if ring is None:
            # Peers died in the same failure domain: storage fallback.
            job.repl_store_fallbacks += 1
            return None
        self._progress_dirty = True
        result = restore_from_peer(job, ring, self.replicator)
        job.peer_restores += 1
        job.wasted_batches += max(
            0, ctx["batches_before"] - result.step
        )
        if ctx["torn_id"] is not None:
            self._scrub_torn(job, ctx["torn_id"])
        job.next_failure_s = job.clock.now + self._sample_ttf(job)
        source = (
            "peer_same_rack" if ring.same_rack else "peer_cross_rack"
        )
        job.restore_samples.append(
            RestoreSample(
                cause=cause,
                latency_s=result.latency_s,
                service_s=result.latency_s,
                source=source,
                time_to_first_batch_s=result.latency_s,
            )
        )
        return FleetEvent(
            "crash",
            job.job_id,
            job.clock.now,
            {
                "cause": cause,
                "restored_from": f"peer:{result.host_id}",
                "fallback_depth": 0,
                "torn_checkpoint": ctx["torn_id"],
                "torn_chunks": ctx["torn_chunks"],
                "valid_before": ctx["valid_before"],
                "peer_step": result.step,
                "peer_source": source,
            },
        )

    def _crash(self, job: FleetJob, cause: str = "failure") -> None:
        """An independent crash: staged restore, drained immediately.

        Timing-identical to the old synchronous restore — no other
        job's parts race this one onto the link mid-recovery — but the
        reads flow through the same staged, admission-paced path the
        storm drain interleaves.
        """
        ctx = self._crash_bookkeeping(job, cause)
        event = self._try_peer_recovery(job, ctx, cause)
        if event is not None:
            self._emit(event)
            return
        pending = self._begin_restore_paced(job)
        if pending is not None:
            try:
                while pending.advance() is not None:
                    pass
            except CheckpointNotFoundError:
                # Every resume-plan candidate failed verification
                # mid-read: recover from scratch instead.
                pending = None
        self._emit(self._finish_recovery(job, ctx, pending, cause))
