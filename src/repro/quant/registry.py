"""Quantizer registry: build any quantizer from config strings.

The checkpoint writer, the restore path and the benches all construct
quantizers by name; keeping the name -> class mapping in one place means
a manifest written with quantizer "adaptive" can always be decoded by
looking the name up here.
"""

from __future__ import annotations

import numpy as np

from ..errors import QuantizationError
from .adaptive import AdaptiveAsymmetricQuantizer
from .base import (
    Float16Quantizer,
    IdentityQuantizer,
    QuantizedTensor,
    Quantizer,
)
from .kmeans import KMeansQuantizer
from .uniform import AsymmetricQuantizer, SymmetricQuantizer


def make_quantizer(
    name: str,
    bits: int = 8,
    num_bins: int = 25,
    ratio: float = 1.0,
    kmeans_iterations: int = 15,
    seed: int = 0,
    compact_params: bool = False,
) -> Quantizer:
    """Instantiate a quantizer by registry name.

    Args:
        name: one of ``none``, ``symmetric``, ``asymmetric``,
            ``adaptive``, ``kmeans``.
        bits: bit width (ignored by ``none``, which is fp32).
        num_bins / ratio: adaptive greedy-search parameters.
        kmeans_iterations: Lloyd iterations for ``kmeans``.
        seed: initialisation seed for ``kmeans``.
        compact_params: store per-row range metadata as fp16 (the
            paper's future-work metadata optimisation; uniform and
            adaptive methods only).
    """
    if name == "none":
        return IdentityQuantizer()
    if name == "float16":
        return Float16Quantizer()
    if name == "symmetric":
        return SymmetricQuantizer(bits, compact_params=compact_params)
    if name == "asymmetric":
        return AsymmetricQuantizer(bits, compact_params=compact_params)
    if name == "adaptive":
        return AdaptiveAsymmetricQuantizer(
            bits, num_bins, ratio, compact_params=compact_params
        )
    if name == "kmeans":
        return KMeansQuantizer(bits, kmeans_iterations, seed=seed)
    raise QuantizationError(
        f"unknown quantizer {name!r}; valid: "
        "none, float16, symmetric, asymmetric, adaptive, kmeans"
    )


def quantizer_for_decoding(
    name: str, bits: int, num_bins: int = 25, ratio: float = 1.0
) -> Quantizer:
    """Build a quantizer suitable for *de-quantizing* stored tensors.

    De-quantization never re-runs the greedy search or clustering, so
    search parameters only need to be plausible, not identical to the
    encoding-time values.
    """
    return make_quantizer(name, bits=bits, num_bins=num_bins, ratio=ratio)


def dequantize_tensor(qt: "QuantizedTensor") -> "np.ndarray":
    """De-quantize a self-describing :class:`QuantizedTensor`.

    The tensor records which quantizer produced it, so the restore path
    needs no out-of-band information beyond the payload itself.
    """
    return quantizer_for_decoding(qt.quantizer, qt.bit_width).dequantize(qt)
