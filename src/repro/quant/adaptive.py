"""Adaptive asymmetric quantization (paper section 5.2, Approach 3).

Naive asymmetric quantization wastes resolution when a row contains one
outlier element: the range [min, max] stretches and the scale grows.
Check-N-Run instead runs a *greedy search* per embedding vector over
tightened ranges:

    step_size = (Xmax - Xmin) / num_bins

Each iteration evaluates two candidates — raising ``xmin`` by one step or
lowering ``xmax`` by one step — quantizes with both (for the sole purpose
of measuring l2 error), and keeps whichever hurts less. The search walks
at most ``ratio * num_bins`` steps (``ratio`` caps the fraction of the
original range explored), and the final answer is the (xmin, xmax) pair
from the iteration with the lowest error, which may be the untightened
original range.

The implementation vectorises the search across all rows: every iteration
performs two full-matrix quantize+measure passes, so run time grows
linearly with ``num_bins * ratio`` exactly as the paper's Figs 12/13 show.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import QuantizationError
from .base import QuantizedTensor, Quantizer
from .packing import pack_rows, unpack_rows
from .uniform import (
    quantization_l2_per_row,
    uniform_dequantize_rows,
    uniform_quantize_rows,
)


@dataclass(frozen=True)
class GreedySearchResult:
    """Optimal per-row ranges found by the greedy search."""

    xmin: np.ndarray
    xmax: np.ndarray
    errors: np.ndarray  # per-row l2 error at the chosen range
    iterations: int


def greedy_range_search(
    tensor: np.ndarray,
    bits: int,
    num_bins: int,
    ratio: float,
) -> GreedySearchResult:
    """Run the paper's greedy min/max search, vectorised across rows.

    Args:
        tensor: (rows, dim) fp32 matrix.
        bits: quantization bit width.
        num_bins: how many steps the original range is divided into.
        ratio: fraction of the original range the search may traverse;
            iteration count is ``floor(num_bins * ratio)``.

    Returns the best (xmin, xmax) per row and the error achieved.
    """
    if num_bins < 1:
        raise QuantizationError(f"num_bins must be >= 1, got {num_bins}")
    if not 0.0 < ratio <= 1.0:
        raise QuantizationError(f"ratio must be in (0, 1], got {ratio}")

    x = np.ascontiguousarray(tensor, dtype=np.float32)
    row_min = np.min(x, axis=1).astype(np.float32)
    row_max = np.max(x, axis=1).astype(np.float32)
    step = (row_max - row_min) / np.float32(num_bins)

    best_min = row_min.copy()
    best_max = row_max.copy()
    best_err = quantization_l2_per_row(x, row_min, row_max, bits)

    cur_min = row_min.copy()
    cur_max = row_max.copy()
    iterations = int(num_bins * ratio)
    # Walking more than num_bins - 1 steps would collapse the range.
    iterations = min(iterations, num_bins - 1)

    for _ in range(iterations):
        cand_min = cur_min + step
        cand_max = cur_max - step
        err_lift_min = quantization_l2_per_row(x, cand_min, cur_max, bits)
        err_drop_max = quantization_l2_per_row(x, cur_min, cand_max, bits)

        take_min = err_lift_min <= err_drop_max
        cur_min = np.where(take_min, cand_min, cur_min)
        cur_max = np.where(take_min, cur_max, cand_max)
        cur_err = np.where(take_min, err_lift_min, err_drop_max)

        improved = cur_err < best_err
        best_min = np.where(improved, cur_min, best_min)
        best_max = np.where(improved, cur_max, best_max)
        best_err = np.where(improved, cur_err, best_err)

    return GreedySearchResult(
        xmin=best_min.astype(np.float32),
        xmax=best_max.astype(np.float32),
        errors=best_err,
        iterations=iterations,
    )


class AdaptiveAsymmetricQuantizer(Quantizer):
    """Asymmetric quantization with greedily tightened per-row ranges.

    Check-N-Run's default for bit widths of 4 and below (section 5.2
    summary); at those widths the tightened range recovers 10-30% of the
    l2 error that naive asymmetric leaves on the table (Figs 10/11).
    """

    name = "adaptive"

    def __init__(
        self,
        bits: int,
        num_bins: int = 25,
        ratio: float = 1.0,
        compact_params: bool = False,
    ) -> None:
        super().__init__(bits)
        if num_bins < 1:
            raise QuantizationError(f"num_bins must be >= 1, got {num_bins}")
        if not 0.0 < ratio <= 1.0:
            raise QuantizationError(f"ratio must be in (0, 1], got {ratio}")
        self.num_bins = num_bins
        self.ratio = ratio
        self.compact_params = compact_params
        self._param_dtype = np.float16 if compact_params else np.float32

    def quantize(self, tensor: np.ndarray) -> QuantizedTensor:
        x = self._check_input(tensor)
        search = greedy_range_search(x, self.bits, self.num_bins, self.ratio)
        xmin, xmax = search.xmin, search.xmax
        if self.compact_params:
            # fp16 metadata (the paper's future-work optimisation):
            # round the searched bounds outward and quantize against
            # the rounded values so the stored grid is exact.
            xmin = np.nextafter(
                xmin.astype(np.float16), np.float16(-np.inf)
            ).astype(np.float32)
            xmax = np.nextafter(
                xmax.astype(np.float16), np.float16(np.inf)
            ).astype(np.float32)
        codes = uniform_quantize_rows(x, xmin, xmax, self.bits)
        return QuantizedTensor(
            codes=pack_rows(codes, self.bits),
            bit_width=self.bits,
            shape=x.shape,
            quantizer=self.name,
            params={
                "xmin": xmin.astype(self._param_dtype),
                "xmax": xmax.astype(self._param_dtype),
            },
        )

    def dequantize(self, qt: QuantizedTensor) -> np.ndarray:
        self._check_dequant_input(qt)
        xmin = qt.params["xmin"].astype(np.float32)
        xmax = qt.params["xmax"].astype(np.float32)
        codes = unpack_rows(qt.codes, self.bits, qt.rows, qt.dim)
        return uniform_dequantize_rows(codes, xmin, xmax, self.bits)
