"""Quantizer interface and the quantized-tensor value object.

A :class:`Quantizer` converts a 2-D fp32 tensor (embedding rows x dim)
into a :class:`QuantizedTensor` — densely packed integer codes plus the
per-row parameters needed to de-quantize (scale/zero-point for uniform
methods, a codebook for k-means). De-quantization is lossy by design;
the paper's whole argument is that the loss is tolerable for checkpoints
because training itself continues in full precision.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..errors import QuantizationError
from .packing import packed_size, unpack_rows


@dataclass
class QuantizedTensor:
    """Packed quantization codes plus de-quantization parameters.

    Attributes:
        codes: dense uint8 buffer of packed ``bit_width``-bit codes.
        bit_width: bits per element code.
        shape: original (rows, dim) of the quantized tensor.
        quantizer: name of the quantizer that produced this tensor.
        params: per-row parameter arrays (e.g. ``xmin``/``xmax`` or
            ``codebook``), each with leading dimension == rows.
    """

    codes: np.ndarray
    bit_width: int
    shape: tuple[int, ...]
    quantizer: str
    params: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.shape) != 2:
            raise QuantizationError(
                f"QuantizedTensor is 2-D only, got shape {self.shape}"
            )
        rows, dim = self.shape
        expected = packed_size(rows * dim, self.bit_width)
        if self.codes.size != expected:
            raise QuantizationError(
                f"packed codes are {self.codes.size} bytes; "
                f"{rows}x{dim} at {self.bit_width} bits needs {expected}"
            )
        for name, arr in self.params.items():
            if arr.shape[0] != rows:
                raise QuantizationError(
                    f"param {name!r} has leading dim {arr.shape[0]}, "
                    f"expected rows={rows}"
                )

    @property
    def rows(self) -> int:
        return self.shape[0]

    @property
    def dim(self) -> int:
        return self.shape[1]

    def unpacked_codes(self) -> np.ndarray:
        """Codes as a (rows, dim) uint8 matrix."""
        return unpack_rows(self.codes, self.bit_width, *self.shape)

    @property
    def code_bytes(self) -> int:
        """Bytes spent on packed codes."""
        return int(self.codes.size)

    @property
    def param_bytes(self) -> int:
        """Bytes spent on de-quantization parameters (metadata)."""
        return int(sum(a.nbytes for a in self.params.values()))

    @property
    def nbytes(self) -> int:
        """Total storage footprint: codes + parameters.

        The paper notes (section 6.3.2) that savings are sub-linear in
        bit width because of exactly this metadata term.
        """
        return self.code_bytes + self.param_bytes

    @property
    def original_nbytes(self) -> int:
        """fp32 bytes the un-quantized tensor would occupy."""
        return self.rows * self.dim * 4

    @property
    def compression_ratio(self) -> float:
        """original / quantized size; > 1 means savings."""
        if self.nbytes == 0:
            return float("inf")
        return self.original_nbytes / self.nbytes


class Quantizer(ABC):
    """Lossy 2-D tensor codec with a stable name and bit width."""

    #: registry name, overridden by concrete classes
    name: str = "abstract"

    def __init__(self, bits: int) -> None:
        if not 1 <= bits <= 8:
            raise QuantizationError(
                f"bit width must be in [1, 8], got {bits}"
            )
        self.bits = bits

    @abstractmethod
    def quantize(self, tensor: np.ndarray) -> QuantizedTensor:
        """Quantize a (rows, dim) fp32 tensor."""

    @abstractmethod
    def dequantize(self, qt: QuantizedTensor) -> np.ndarray:
        """Reconstruct an fp32 (rows, dim) tensor from codes + params."""

    def roundtrip(self, tensor: np.ndarray) -> np.ndarray:
        """Quantize then de-quantize (the restore path's value error)."""
        return self.dequantize(self.quantize(tensor))

    def _check_input(self, tensor: np.ndarray) -> np.ndarray:
        if tensor.ndim != 2:
            raise QuantizationError(
                f"quantizers operate on 2-D tensors, got {tensor.ndim}-D"
            )
        if tensor.size == 0:
            raise QuantizationError("cannot quantize an empty tensor")
        if not np.all(np.isfinite(tensor)):
            raise QuantizationError(
                "tensor contains non-finite values; refusing to quantize"
            )
        return np.ascontiguousarray(tensor, dtype=np.float32)

    def _check_dequant_input(self, qt: QuantizedTensor) -> None:
        if qt.quantizer != self.name:
            raise QuantizationError(
                f"{self.name} quantizer cannot decode a tensor produced "
                f"by {qt.quantizer!r}"
            )
        if qt.bit_width != self.bits:
            raise QuantizationError(
                f"bit-width mismatch: quantizer={self.bits}, "
                f"tensor={qt.bit_width}"
            )


class Float16Quantizer(Quantizer):
    """Half-precision cast: 2x smaller, deterministic, metadata-free.

    The 16-bit rung between the paper's 4/8-bit adaptive codes and the
    fp32 baseline. De-quantization is the exact inverse cast, so the
    restore-path value is bit-for-bit ``x.astype(f16).astype(f32)`` —
    useful for fleets that want guaranteed-tiny error without per-row
    parameters. Codes hold the raw fp16 bytes (2 per element), so the
    storage accounting stays uniform across quantizers.
    """

    name = "float16"

    def __init__(self) -> None:
        super().__init__(bits=8)  # codes are byte-packed fp16 halves

    def quantize(self, tensor: np.ndarray) -> QuantizedTensor:
        x = self._check_input(tensor)
        halves = x.astype(np.float16)
        return QuantizedTensor(
            codes=halves.view(np.uint8).reshape(-1).copy(),
            bit_width=8,
            shape=(x.shape[0], x.shape[1] * 2),  # 2 code bytes per fp16
            quantizer=self.name,
        )

    def dequantize(self, qt: QuantizedTensor) -> np.ndarray:
        self._check_dequant_input(qt)
        raw = np.ascontiguousarray(qt.codes, dtype=np.uint8)
        return (
            raw.view(np.float16)
            .reshape(qt.rows, qt.dim // 2)
            .astype(np.float32)
        )


class IdentityQuantizer(Quantizer):
    """The 'none' quantizer: full-precision fp32 pass-through.

    Serves as the paper's no-quantization baseline. Codes hold the raw
    fp32 bytes re-interpreted as uint8 so the storage accounting is
    uniform across quantizers.
    """

    name = "none"

    def __init__(self) -> None:
        super().__init__(bits=8)

    def quantize(self, tensor: np.ndarray) -> QuantizedTensor:
        x = self._check_input(tensor)
        return QuantizedTensor(
            codes=x.view(np.uint8).reshape(-1).copy(),
            bit_width=8,
            shape=(x.shape[0], x.shape[1] * 4),  # 4 code bytes per fp32
            quantizer=self.name,
        )

    def dequantize(self, qt: QuantizedTensor) -> np.ndarray:
        self._check_dequant_input(qt)
        raw = np.ascontiguousarray(qt.codes, dtype=np.uint8)
        return (
            raw.view(np.float32)
            .reshape(qt.rows, qt.dim // 4)
            .astype(np.float32, copy=True)
        )
