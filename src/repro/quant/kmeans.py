"""Non-uniform quantization via per-vector k-means (section 5.2, A2).

Each embedding vector's ``n`` elements are clustered into ``2^N``
groups with Lloyd's algorithm (the paper runs 15 iterations); an element
is coded by its cluster index and de-quantized through a per-row
codebook of centroids.

The paper's verdict: marginally better mean l2 error than asymmetric
quantization but orders of magnitude slower (48+ hours for one
production checkpoint), so Check-N-Run rejects it. We implement it
faithfully — batched and vectorised, but still doing the full
assignment/update iterations — so the cost comparison (ablation bench
a01) can be measured rather than asserted.
"""

from __future__ import annotations

import numpy as np

from ..errors import QuantizationError
from .base import QuantizedTensor, Quantizer
from .packing import pack_rows, unpack_rows


def _init_centroids(
    x: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Random element sampling per row — plain Lloyd's initialisation.

    Deliberately *not* k-means++: the paper attributes k-means' slightly
    worse 4-bit result to initialisation randomness, and we preserve that
    behaviour.
    """
    rows, n = x.shape
    if k <= n:
        idx = np.argsort(rng.random((rows, n)), axis=1)[:, :k]
    else:
        idx = rng.integers(0, n, size=(rows, k))
    return np.take_along_axis(x, idx, axis=1).astype(np.float32)


def kmeans_rows(
    x: np.ndarray,
    k: int,
    iterations: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row 1-D k-means.

    Args:
        x: (rows, n) matrix; every row is clustered independently.
        k: number of clusters per row.
        iterations: Lloyd iterations (paper uses 15).
        rng: source of initialisation randomness.

    Returns:
        (codes, codebook): codes is (rows, n) uint8 cluster indices,
        codebook is (rows, k) fp32 centroids.
    """
    if k < 1:
        raise QuantizationError(f"k must be >= 1, got {k}")
    if iterations < 1:
        raise QuantizationError(f"iterations must be >= 1, got {iterations}")
    rows, n = x.shape
    centroids = _init_centroids(x, k, rng)
    row_idx = np.broadcast_to(np.arange(rows)[:, None], (rows, n))

    assign = np.zeros((rows, n), dtype=np.int64)
    for _ in range(iterations):
        # Assignment: nearest centroid per element, (rows, n, k) distances.
        dist = np.abs(x[:, :, None] - centroids[:, None, :])
        assign = np.argmin(dist, axis=2)
        # Update: mean of assigned elements; empty clusters keep position.
        sums = np.zeros((rows, k), dtype=np.float64)
        counts = np.zeros((rows, k), dtype=np.int64)
        np.add.at(sums, (row_idx, assign), x)
        np.add.at(counts, (row_idx, assign), 1)
        nonempty = counts > 0
        centroids = np.where(
            nonempty, sums / np.maximum(counts, 1), centroids
        ).astype(np.float32)

    # Final assignment against the updated centroids.
    dist = np.abs(x[:, :, None] - centroids[:, None, :])
    assign = np.argmin(dist, axis=2)
    return assign.astype(np.uint8), centroids


class KMeansQuantizer(Quantizer):
    """Per-row k-means codebook quantization.

    ``row_batch`` bounds peak memory: the (rows, n, k) distance tensor is
    materialised one batch of rows at a time.
    """

    name = "kmeans"

    def __init__(
        self,
        bits: int,
        iterations: int = 15,
        row_batch: int = 1024,
        seed: int = 0,
    ) -> None:
        super().__init__(bits)
        if iterations < 1:
            raise QuantizationError("iterations must be >= 1")
        if row_batch < 1:
            raise QuantizationError("row_batch must be >= 1")
        self.iterations = iterations
        self.row_batch = row_batch
        self.seed = seed

    def quantize(self, tensor: np.ndarray) -> QuantizedTensor:
        x = self._check_input(tensor)
        k = 1 << self.bits
        rows, n = x.shape
        codes = np.zeros((rows, n), dtype=np.uint8)
        codebook = np.zeros((rows, k), dtype=np.float32)
        rng = np.random.default_rng(self.seed)
        for start in range(0, rows, self.row_batch):
            stop = min(start + self.row_batch, rows)
            batch_codes, batch_book = kmeans_rows(
                x[start:stop], k, self.iterations, rng
            )
            codes[start:stop] = batch_codes
            codebook[start:stop] = batch_book
        return QuantizedTensor(
            codes=pack_rows(codes, self.bits),
            bit_width=self.bits,
            shape=x.shape,
            quantizer=self.name,
            params={"codebook": codebook},
        )

    def dequantize(self, qt: QuantizedTensor) -> np.ndarray:
        self._check_dequant_input(qt)
        codebook = qt.params["codebook"].astype(np.float32)
        codes = unpack_rows(qt.codes, self.bits, qt.rows, qt.dim)
        return np.take_along_axis(
            codebook, codes.astype(np.int64), axis=1
        ).astype(np.float32)
