"""Sub-byte bit-packing for quantization codes.

N-bit quantization (N in 1..8) produces integer codes in [0, 2^N - 1].
Storing each code in a full byte would forfeit most of the bandwidth
savings the paper is after, so codes are packed densely: 2-bit codes use
a quarter byte each, 3-bit codes 3/8 of a byte, and so on. Packing is
fully vectorised via numpy's bit routines.
"""

from __future__ import annotations

import numpy as np

from ..errors import PackingError

#: Widths supported by the packer (the paper evaluates 2, 3, 4 and 8).
SUPPORTED_BITS = tuple(range(1, 9))


def _validate_bits(bits: int) -> None:
    if bits not in SUPPORTED_BITS:
        raise PackingError(
            f"unsupported bit width {bits}; supported: {SUPPORTED_BITS}"
        )


def packed_size(count: int, bits: int) -> int:
    """Bytes needed to pack ``count`` codes of ``bits`` bits each."""
    _validate_bits(bits)
    if count < 0:
        raise PackingError(f"negative code count {count}")
    return (count * bits + 7) // 8


def pack_bits(codes: np.ndarray, bits: int) -> np.ndarray:
    """Pack integer codes into a dense uint8 array (MSB-first).

    ``codes`` may have any shape; packing operates on the flattened,
    C-ordered view. Codes outside [0, 2^bits) are rejected — silent
    wrap-around would corrupt checkpoints undetectably.
    """
    _validate_bits(bits)
    flat = np.ascontiguousarray(codes).reshape(-1)
    if flat.size == 0:
        return np.zeros(0, dtype=np.uint8)
    if flat.min() < 0 or flat.max() >= (1 << bits):
        raise PackingError(
            f"codes out of range for {bits}-bit packing: "
            f"[{flat.min()}, {flat.max()}]"
        )
    if bits == 8:  # fast path: codes already are full bytes
        return flat.astype(np.uint8).copy()
    as_bytes = flat.astype(np.uint8).reshape(-1, 1)
    bit_rows = np.unpackbits(as_bytes, axis=1)  # (n, 8), MSB first
    wanted = bit_rows[:, 8 - bits :]  # low `bits` bits of each code
    return np.packbits(wanted.reshape(-1))


def unpack_bits(packed: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Invert :func:`pack_bits`: recover ``count`` codes as uint8.

    ``count`` must be supplied because trailing pad bits in the final
    byte are indistinguishable from real zero codes.
    """
    _validate_bits(bits)
    if count < 0:
        raise PackingError(f"negative code count {count}")
    packed = np.ascontiguousarray(packed, dtype=np.uint8)
    needed = packed_size(count, bits)
    if packed.size < needed:
        raise PackingError(
            f"packed buffer too small: {packed.size} bytes for "
            f"{count} x {bits}-bit codes (need {needed})"
        )
    if count == 0:
        return np.zeros(0, dtype=np.uint8)
    if bits == 8:  # fast path mirrors pack_bits
        return packed[:count].copy()
    bit_stream = np.unpackbits(packed[:needed])[: count * bits]
    groups = bit_stream.reshape(count, bits)
    padded = np.zeros((count, 8), dtype=np.uint8)
    padded[:, 8 - bits :] = groups
    return np.packbits(padded, axis=1).reshape(-1)


def pack_rows(codes: np.ndarray, bits: int) -> np.ndarray:
    """Pack a 2-D code matrix row-contiguously (still one flat buffer).

    Row-contiguous packing means a chunk of rows can be sliced out of the
    packed buffer without unpacking everything — required by the chunked
    checkpoint writer — *provided* ``row_bits = cols * bits`` is a
    multiple of 8. The writer picks chunk boundaries accordingly; this
    helper exists so that alignment logic lives in exactly one place.
    """
    if codes.ndim != 2:
        raise PackingError(f"pack_rows expects 2-D codes, got {codes.ndim}-D")
    return pack_bits(codes, bits)


def unpack_rows(
    packed: np.ndarray, bits: int, rows: int, cols: int
) -> np.ndarray:
    """Invert :func:`pack_rows` into a (rows, cols) uint8 matrix."""
    if rows < 0 or cols < 0:
        raise PackingError("rows and cols must be non-negative")
    flat = unpack_bits(packed, bits, rows * cols)
    return flat.reshape(rows, cols)


def row_slice_is_aligned(cols: int, bits: int) -> bool:
    """Whether per-row packed data falls on byte boundaries.

    True when ``cols * bits`` is divisible by 8; then row ``r`` occupies
    packed bytes ``[r * cols * bits / 8, (r + 1) * cols * bits / 8)``.
    """
    _validate_bits(bits)
    if cols <= 0:
        raise PackingError("cols must be positive")
    return (cols * bits) % 8 == 0
