"""Checkpoint quantization library (paper section 5.2).

Public surface:

* :class:`~repro.quant.base.Quantizer` / :class:`~repro.quant.base.QuantizedTensor`
* Uniform methods: :class:`~repro.quant.uniform.SymmetricQuantizer`,
  :class:`~repro.quant.uniform.AsymmetricQuantizer`
* :class:`~repro.quant.adaptive.AdaptiveAsymmetricQuantizer` (greedy search)
* :class:`~repro.quant.kmeans.KMeansQuantizer` (rejected comparator)
* :func:`~repro.quant.registry.make_quantizer` (config-string factory)
* :func:`~repro.quant.error.mean_l2_error` (the paper's metric)
* Sampling profiler: :func:`~repro.quant.profiler.auto_tune`
"""

from .adaptive import AdaptiveAsymmetricQuantizer, greedy_range_search
from .base import (
    Float16Quantizer,
    IdentityQuantizer,
    QuantizedTensor,
    Quantizer,
)
from .error import improvement, max_abs_error, mean_l2_error, row_l2_errors
from .kmeans import KMeansQuantizer
from .packing import pack_bits, packed_size, unpack_bits
from .profiler import ProfileResult, auto_tune, select_num_bins, select_ratio
from .registry import make_quantizer, quantizer_for_decoding
from .uniform import AsymmetricQuantizer, SymmetricQuantizer

__all__ = [
    "AdaptiveAsymmetricQuantizer",
    "AsymmetricQuantizer",
    "Float16Quantizer",
    "IdentityQuantizer",
    "KMeansQuantizer",
    "ProfileResult",
    "QuantizedTensor",
    "Quantizer",
    "SymmetricQuantizer",
    "auto_tune",
    "greedy_range_search",
    "improvement",
    "make_quantizer",
    "max_abs_error",
    "mean_l2_error",
    "pack_bits",
    "packed_size",
    "quantizer_for_decoding",
    "row_l2_errors",
    "select_num_bins",
    "select_ratio",
    "unpack_bits",
]
