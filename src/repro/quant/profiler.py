"""Sampling-based quantization parameter selection (paper section 5.2).

The adaptive quantizer has two knobs — ``num_bins`` and ``ratio`` — whose
optimal values depend on the checkpoint's value distribution. Profiling
the *entire* checkpoint for every candidate would dwarf the quantization
itself, so Check-N-Run "uniformly samples a small fraction of the
checkpoint (0.001% by default), then quantizes the sampled checkpoint
with different parameter values", and picks the parameter where the mean
l2 error improvement tapers off.

``select_num_bins`` / ``select_ratio`` implement exactly that knee rule,
and ablation bench a02 verifies the sampled selection matches the
full-checkpoint selection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import QuantizationError
from .adaptive import greedy_range_search
from .uniform import quantization_l2_per_row

#: Paper default: sample 0.001% of the checkpoint's rows.
DEFAULT_SAMPLE_FRACTION = 1e-5

#: Improvement below this fraction of the naive error counts as "tapered".
DEFAULT_TAPER_TOLERANCE = 0.01


@dataclass(frozen=True)
class ProfileResult:
    """Outcome of a parameter sweep on a sampled checkpoint."""

    parameter: str
    candidates: tuple[float, ...]
    errors: tuple[float, ...]
    chosen: float
    sample_rows: int

    def improvement_curve(self, naive_error: float) -> tuple[float, ...]:
        """Relative improvement of each candidate over the naive error."""
        if naive_error <= 0:
            return tuple(0.0 for _ in self.errors)
        return tuple((naive_error - e) / naive_error for e in self.errors)


def sample_rows(
    tensor: np.ndarray,
    fraction: float,
    rng: np.random.Generator,
    min_rows: int = 64,
) -> np.ndarray:
    """Uniformly sample a fraction of rows (at least ``min_rows``).

    Tiny tensors are returned whole — sampling only pays off at scale.
    """
    if not 0.0 < fraction <= 1.0:
        raise QuantizationError(
            f"sample fraction must be in (0, 1], got {fraction}"
        )
    rows = tensor.shape[0]
    count = max(min_rows, int(round(rows * fraction)))
    if count >= rows:
        return tensor
    idx = rng.choice(rows, size=count, replace=False)
    return tensor[np.sort(idx)]


def _mean_adaptive_error(
    sample: np.ndarray, bits: int, num_bins: int, ratio: float
) -> float:
    result = greedy_range_search(sample, bits, num_bins, ratio)
    return float(np.mean(result.errors))


def _naive_error(sample: np.ndarray, bits: int) -> float:
    xmin = np.min(sample, axis=1).astype(np.float32)
    xmax = np.max(sample, axis=1).astype(np.float32)
    return float(np.mean(quantization_l2_per_row(sample, xmin, xmax, bits)))


def _knee(
    candidates: list[float],
    errors: list[float],
    reference_error: float,
    tolerance: float,
) -> float:
    """First candidate after which the marginal improvement tapers off.

    Walks the (increasing-cost) candidate list and returns the first
    value whose successor improves the error by less than ``tolerance``
    of the reference error. Falls back to the best candidate if the curve
    never flattens.
    """
    if len(candidates) == 1:
        return candidates[0]
    scale = reference_error if reference_error > 0 else 1.0
    for i in range(len(candidates) - 1):
        marginal = (errors[i] - errors[i + 1]) / scale
        if marginal < tolerance:
            return candidates[i]
    return candidates[int(np.argmin(errors))]


def select_num_bins(
    tensor: np.ndarray,
    bits: int,
    candidates: tuple[int, ...] = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50),
    ratio: float = 1.0,
    sample_fraction: float = DEFAULT_SAMPLE_FRACTION,
    tolerance: float = DEFAULT_TAPER_TOLERANCE,
    seed: int = 0,
) -> ProfileResult:
    """Choose ``num_bins`` by sampled profiling with the knee rule."""
    if not candidates:
        raise QuantizationError("need at least one num_bins candidate")
    rng = np.random.default_rng(seed)
    sample = sample_rows(
        np.ascontiguousarray(tensor, dtype=np.float32), sample_fraction, rng
    )
    ordered = sorted(set(int(c) for c in candidates))
    errors = [
        _mean_adaptive_error(sample, bits, bins, ratio) for bins in ordered
    ]
    chosen = _knee(
        [float(b) for b in ordered], errors, _naive_error(sample, bits),
        tolerance,
    )
    return ProfileResult(
        parameter="num_bins",
        candidates=tuple(float(b) for b in ordered),
        errors=tuple(errors),
        chosen=chosen,
        sample_rows=sample.shape[0],
    )


def select_ratio(
    tensor: np.ndarray,
    bits: int,
    num_bins: int,
    candidates: tuple[float, ...] = (
        0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
    ),
    sample_fraction: float = DEFAULT_SAMPLE_FRACTION,
    tolerance: float = DEFAULT_TAPER_TOLERANCE,
    seed: int = 0,
) -> ProfileResult:
    """Choose ``ratio`` by sampled profiling with the knee rule."""
    if not candidates:
        raise QuantizationError("need at least one ratio candidate")
    rng = np.random.default_rng(seed)
    sample = sample_rows(
        np.ascontiguousarray(tensor, dtype=np.float32), sample_fraction, rng
    )
    ordered = sorted(set(float(c) for c in candidates))
    errors = [
        _mean_adaptive_error(sample, bits, num_bins, r) for r in ordered
    ]
    chosen = _knee(ordered, errors, _naive_error(sample, bits), tolerance)
    return ProfileResult(
        parameter="ratio",
        candidates=tuple(ordered),
        errors=tuple(errors),
        chosen=chosen,
        sample_rows=sample.shape[0],
    )


def auto_tune(
    tensor: np.ndarray,
    bits: int,
    sample_fraction: float = DEFAULT_SAMPLE_FRACTION,
    seed: int = 0,
) -> tuple[int, float]:
    """Full light-weight profiling pass: returns (num_bins, ratio).

    This is the entry point the checkpoint writer uses when the
    experiment config does not pin the adaptive parameters.
    """
    bins_result = select_num_bins(
        tensor, bits, sample_fraction=sample_fraction, seed=seed
    )
    num_bins = int(bins_result.chosen)
    ratio_result = select_ratio(
        tensor, bits, num_bins, sample_fraction=sample_fraction, seed=seed
    )
    return num_bins, float(ratio_result.chosen)
