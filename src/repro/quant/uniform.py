"""Uniform quantization: symmetric and asymmetric (paper section 5.2, A1).

Both methods map each embedding-vector element ``x`` (clipped to
``[xmin, xmax]``) onto an integer grid::

    scale   = (xmax - xmin) / (2^N - 1)
    x_q     = round((x - zero_point) / scale),   zero_point = xmin
    x_hat   = scale * x_q + zero_point

Symmetric quantization sets ``xmax = max(|X_i|)`` and ``xmin = -xmax``
per row; asymmetric uses the row's actual min/max. The paper finds
asymmetric consistently better because embedding values are not
symmetrically distributed (Fig 9), at the small cost of storing both
``xmin`` and ``xmax`` per vector.
"""

from __future__ import annotations

import numpy as np

from .base import QuantizedTensor, Quantizer
from .packing import pack_rows, unpack_rows


def uniform_quantize_rows(
    tensor: np.ndarray,
    xmin: np.ndarray,
    xmax: np.ndarray,
    bits: int,
) -> np.ndarray:
    """Quantize each row of ``tensor`` against its own [xmin, xmax].

    Values outside the range are clipped (that is the adaptive method's
    entire trick: a tighter range costs clipping but buys resolution).
    Constant rows (xmax == xmin) map to code 0.

    Returns a (rows, dim) uint8 code matrix.
    """
    levels = (1 << bits) - 1
    xmin_col = xmin.reshape(-1, 1).astype(np.float32)
    xmax_col = xmax.reshape(-1, 1).astype(np.float32)
    span = xmax_col - xmin_col
    # Avoid divide-by-zero on constant rows; their codes become 0.
    safe_span = np.where(span > 0, span, 1.0)
    scale = safe_span / levels
    clipped = np.clip(tensor, xmin_col, xmax_col)
    codes = np.rint((clipped - xmin_col) / scale)
    codes = np.clip(codes, 0, levels)
    return codes.astype(np.uint8)


def uniform_dequantize_rows(
    codes: np.ndarray,
    xmin: np.ndarray,
    xmax: np.ndarray,
    bits: int,
) -> np.ndarray:
    """Invert :func:`uniform_quantize_rows` (up to grid resolution)."""
    levels = (1 << bits) - 1
    xmin_col = xmin.reshape(-1, 1).astype(np.float32)
    xmax_col = xmax.reshape(-1, 1).astype(np.float32)
    span = xmax_col - xmin_col
    safe_span = np.where(span > 0, span, 1.0)
    scale = safe_span / levels
    out = codes.astype(np.float32) * scale + xmin_col
    return out.astype(np.float32)


def quantization_l2_per_row(
    tensor: np.ndarray,
    xmin: np.ndarray,
    xmax: np.ndarray,
    bits: int,
) -> np.ndarray:
    """Per-row l2 error of a hypothetical quantization (no packing).

    The adaptive greedy search calls this twice per iteration to compare
    candidate ranges, so it avoids materialising packed codes.
    """
    codes = uniform_quantize_rows(tensor, xmin, xmax, bits)
    recon = uniform_dequantize_rows(codes, xmin, xmax, bits)
    diff = tensor.astype(np.float64) - recon.astype(np.float64)
    return np.sqrt(np.sum(diff * diff, axis=1))


class SymmetricQuantizer(Quantizer):
    """Per-row symmetric uniform quantization: range [-max|x|, +max|x|].

    Only one parameter per row (``xmax``) needs storing; ``xmin`` is
    implied. Cheapest metadata, worst error on skewed rows (Fig 9).

    ``compact_params=True`` stores the range parameter as fp16 — the
    metadata optimisation the paper defers to future work (section
    6.3.2). De-quantization must then use the *rounded* bound so the
    grid stays self-consistent.
    """

    name = "symmetric"

    def __init__(self, bits: int, compact_params: bool = False) -> None:
        super().__init__(bits)
        self.compact_params = compact_params
        self._param_dtype = np.float16 if compact_params else np.float32

    def quantize(self, tensor: np.ndarray) -> QuantizedTensor:
        x = self._check_input(tensor)
        xmax = np.max(np.abs(x), axis=1)
        if self.compact_params:
            # Round the fp16 bound *outward* so it still covers the
            # data; encode and decode then share the exact same grid.
            xmax = np.nextafter(
                xmax.astype(np.float16), np.float16(np.inf)
            ).astype(np.float32)
        xmax = xmax.astype(np.float32)
        codes = uniform_quantize_rows(x, -xmax, xmax, self.bits)
        return QuantizedTensor(
            codes=pack_rows(codes, self.bits),
            bit_width=self.bits,
            shape=x.shape,
            quantizer=self.name,
            params={"xmax": xmax.astype(self._param_dtype)},
        )

    def dequantize(self, qt: QuantizedTensor) -> np.ndarray:
        self._check_dequant_input(qt)
        xmax = qt.params["xmax"].astype(np.float32)
        codes = unpack_rows(qt.codes, self.bits, qt.rows, qt.dim)
        return uniform_dequantize_rows(codes, -xmax, xmax, self.bits)


class AsymmetricQuantizer(Quantizer):
    """Per-row asymmetric uniform quantization: range [min(x), max(x)].

    Stores ``xmin`` and ``xmax`` per row ("the small additional overhead"
    the paper accepts). This is Check-N-Run's default for 8-bit widths.

    ``compact_params=True`` stores both bounds as fp16 (half the
    metadata), the optimisation the paper notes as future work. The
    quantization grid is computed against the *rounded* bounds so
    encode and decode agree exactly.
    """

    name = "asymmetric"

    def __init__(self, bits: int, compact_params: bool = False) -> None:
        super().__init__(bits)
        self.compact_params = compact_params
        self._param_dtype = np.float16 if compact_params else np.float32

    def _bounds(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        xmin = np.min(x, axis=1)
        xmax = np.max(x, axis=1)
        if self.compact_params:
            # Round outward so the stored range still covers the data.
            xmin = np.nextafter(
                xmin.astype(np.float16), np.float16(-np.inf)
            ).astype(np.float32)
            xmax = np.nextafter(
                xmax.astype(np.float16), np.float16(np.inf)
            ).astype(np.float32)
        return xmin.astype(np.float32), xmax.astype(np.float32)

    def quantize(self, tensor: np.ndarray) -> QuantizedTensor:
        x = self._check_input(tensor)
        xmin, xmax = self._bounds(x)
        codes = uniform_quantize_rows(x, xmin, xmax, self.bits)
        return QuantizedTensor(
            codes=pack_rows(codes, self.bits),
            bit_width=self.bits,
            shape=x.shape,
            quantizer=self.name,
            params={
                "xmin": xmin.astype(self._param_dtype),
                "xmax": xmax.astype(self._param_dtype),
            },
        )

    def dequantize(self, qt: QuantizedTensor) -> np.ndarray:
        self._check_dequant_input(qt)
        xmin = qt.params["xmin"].astype(np.float32)
        xmax = qt.params["xmax"].astype(np.float32)
        codes = unpack_rows(qt.codes, self.bits, qt.rows, qt.dim)
        return uniform_dequantize_rows(codes, xmin, xmax, self.bits)
