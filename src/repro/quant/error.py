"""Quantization error metrics.

The paper compares quantization approaches by the *mean l2 error* of an
entire checkpoint (section 5.2)::

    (1/m) * sum_i || X_i - Q_i ||_2

i.e. the per-embedding-vector Euclidean distance between the original and
the de-quantized vector, averaged over all ``m`` vectors. This metric "is
a good proxy for accuracy loss" and drives both the greedy adaptive
search and the sampling-based parameter profiler.
"""

from __future__ import annotations

import numpy as np

from ..errors import QuantizationError


def _check_pair(original: np.ndarray, reconstructed: np.ndarray) -> None:
    if original.shape != reconstructed.shape:
        raise QuantizationError(
            "shape mismatch between original and reconstructed tensors: "
            f"{original.shape} vs {reconstructed.shape}"
        )
    if original.ndim != 2:
        raise QuantizationError(
            f"error metrics operate on 2-D (rows x dim) tensors, "
            f"got {original.ndim}-D"
        )


def row_l2_errors(
    original: np.ndarray, reconstructed: np.ndarray
) -> np.ndarray:
    """Per-row Euclidean distance ||X_i - Q_i||_2, shape (rows,)."""
    _check_pair(original, reconstructed)
    diff = original.astype(np.float64) - reconstructed.astype(np.float64)
    return np.sqrt(np.sum(diff * diff, axis=1))


def mean_l2_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """The paper's checkpoint-level metric: mean of per-row l2 errors."""
    return float(np.mean(row_l2_errors(original, reconstructed)))


def mean_squared_error(
    original: np.ndarray, reconstructed: np.ndarray
) -> float:
    """Element-wise MSE — secondary diagnostic, not the paper's metric."""
    _check_pair(original, reconstructed)
    diff = original.astype(np.float64) - reconstructed.astype(np.float64)
    return float(np.mean(diff * diff))


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Worst-case element error; bounds the de-quantization step size."""
    _check_pair(original, reconstructed)
    diff = original.astype(np.float64) - reconstructed.astype(np.float64)
    return float(np.max(np.abs(diff))) if diff.size else 0.0


def improvement(baseline_error: float, candidate_error: float) -> float:
    """Relative error reduction of candidate over baseline (Figs 10/11).

    Returns e.g. 0.25 when the candidate's mean l2 error is 25% lower
    than the baseline's. Zero baseline error (already exact) yields 0.
    """
    if baseline_error < 0 or candidate_error < 0:
        raise QuantizationError("errors must be non-negative")
    if baseline_error == 0.0:
        return 0.0
    return (baseline_error - candidate_error) / baseline_error
