"""Collective-communication cost models for the simulated fabric.

Synchronous DLRM training performs two collectives per iteration
(paper section 2.2):

* **AllReduce** over the data-parallel MLP gradients (backward pass);
* **AlltoAll** over the model-parallel embedding activations, once in
  the forward pass (looked-up vectors) and once in the backward pass
  (vector gradients).

We use the standard bandwidth-latency (alpha-beta) cost models: ring
AllReduce moves ``2 (w-1)/w`` of the buffer per participant; AlltoAll
moves ``(w-1)/w`` of each participant's send buffer. The absolute
constants come from :class:`~repro.config.ClusterConfig`; what matters
downstream is that the AlltoAll phase has idle cycles in which the
paper hides the tracking work (section 5.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError


@dataclass(frozen=True)
class Fabric:
    """Per-link bandwidth (bytes/s) and per-step latency (s)."""

    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise SimulationError("fabric bandwidth must be positive")
        if self.latency < 0:
            raise SimulationError("fabric latency must be >= 0")


def allreduce_time(nbytes: int, world: int, fabric: Fabric) -> float:
    """Ring AllReduce wall time for a buffer of ``nbytes`` per rank."""
    if nbytes < 0:
        raise SimulationError(f"negative buffer size {nbytes}")
    if world < 1:
        raise SimulationError(f"world size must be >= 1, got {world}")
    if world == 1:
        return 0.0
    steps = 2 * (world - 1)
    moved = 2.0 * (world - 1) / world * nbytes
    return steps * fabric.latency + moved / fabric.bandwidth


def alltoall_time(nbytes_per_rank: int, world: int, fabric: Fabric) -> float:
    """AlltoAll wall time when each rank exchanges ``nbytes_per_rank``."""
    if nbytes_per_rank < 0:
        raise SimulationError(f"negative buffer size {nbytes_per_rank}")
    if world < 1:
        raise SimulationError(f"world size must be >= 1, got {world}")
    if world == 1:
        return 0.0
    moved = (world - 1) / world * nbytes_per_rank
    return (world - 1) * fabric.latency + moved / fabric.bandwidth


@dataclass(frozen=True)
class HierarchicalFabric:
    """Two-level fabric: fast intra-node links, slower inter-node.

    The paper's clusters pair NVSwitch/NVLink inside a node with a
    scale-out fabric across nodes (section 6). Collectives then run
    hierarchically: reduce/exchange inside each node over the fast
    links, cross nodes over the slow ones, and broadcast back.
    """

    intra: Fabric
    inter: Fabric
    devices_per_node: int

    def __post_init__(self) -> None:
        if self.devices_per_node < 1:
            raise SimulationError("devices_per_node must be >= 1")


def hierarchical_allreduce_time(
    nbytes: int, num_nodes: int, fabric: HierarchicalFabric
) -> float:
    """Reduce-scatter intra-node, ring across nodes, broadcast back.

    Intra-node phases move the full buffer over NVLink-class links;
    the inter-node ring only carries one device's share per node.
    """
    if nbytes < 0:
        raise SimulationError(f"negative buffer size {nbytes}")
    if num_nodes < 1:
        raise SimulationError(f"num_nodes must be >= 1, got {num_nodes}")
    local = allreduce_time(nbytes, fabric.devices_per_node, fabric.intra)
    cross = allreduce_time(nbytes, num_nodes, fabric.inter)
    return local + cross


def hierarchical_alltoall_time(
    nbytes_per_rank: int, num_nodes: int, fabric: HierarchicalFabric
) -> float:
    """AlltoAll with node-local aggregation before the slow hop.

    Each rank's traffic splits: the fraction destined for same-node
    peers ((d-1)/world) crosses only the fast fabric; the rest crosses
    the inter-node links.
    """
    if nbytes_per_rank < 0:
        raise SimulationError(f"negative buffer size {nbytes_per_rank}")
    if num_nodes < 1:
        raise SimulationError(f"num_nodes must be >= 1, got {num_nodes}")
    world = num_nodes * fabric.devices_per_node
    if world == 1:
        return 0.0
    same_node_share = (fabric.devices_per_node - 1) / max(world - 1, 1)
    local_bytes = int(nbytes_per_rank * same_node_share)
    cross_bytes = nbytes_per_rank - local_bytes
    local = alltoall_time(
        local_bytes, fabric.devices_per_node, fabric.intra
    )
    cross = alltoall_time(cross_bytes, num_nodes, fabric.inter)
    return local + cross


@dataclass
class CommEvent:
    """One recorded collective operation."""

    kind: str
    nbytes: int
    world: int
    duration_s: float


@dataclass
class CommLog:
    """Accumulates collective operations for per-step accounting."""

    events: list[CommEvent] = field(default_factory=list)

    def record(self, kind: str, nbytes: int, world: int, duration: float):
        self.events.append(CommEvent(kind, nbytes, world, duration))

    def total_time(self, kind: str | None = None) -> float:
        return sum(
            e.duration_s
            for e in self.events
            if kind is None or e.kind == kind
        )

    def total_bytes(self, kind: str | None = None) -> int:
        return sum(
            e.nbytes for e in self.events if kind is None or e.kind == kind
        )
