"""Embedding-table sharding across the simulated cluster.

DLRM's embedding tables do not fit on one device, so they are placed
model-parallel (paper section 2.1). Two planners are provided:

* **table-wise** — each table lives wholly on one device; devices are
  filled greedily, largest table first, onto the least-loaded device.
* **row-wise** — every table is split into near-equal row ranges across
  all devices; used when single tables exceed one device's HBM.

``plan_auto`` mixes the two: tables that fit go table-wise, oversized
tables are row-split. Every shard records its (table, row range, device)
triple; the tracker, the snapshot and the checkpoint writer all operate
per shard, exactly as each GPU checkpoints "its own local part of the
model" in the paper.

Shard byte accounting includes the row-wise Adagrad accumulator (4 bytes
per row) because the optimizer state is checkpointed too (section 4.1).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..config import ModelConfig
from ..errors import ShardingError
from .topology import DeviceId, SimCluster


@dataclass(frozen=True)
class Shard:
    """A contiguous row range of one table placed on one device."""

    shard_id: int
    table_id: int
    row_start: int
    row_end: int  # exclusive
    device_id: DeviceId
    embedding_dim: int

    def __post_init__(self) -> None:
        if self.row_start < 0 or self.row_end <= self.row_start:
            raise ShardingError(
                f"invalid shard row range [{self.row_start}, {self.row_end})"
            )

    @property
    def rows(self) -> int:
        return self.row_end - self.row_start

    @property
    def weight_bytes(self) -> int:
        """fp32 weight bytes for this shard."""
        return self.rows * self.embedding_dim * 4

    @property
    def state_bytes(self) -> int:
        """Weight + row-wise Adagrad accumulator bytes."""
        return self.weight_bytes + self.rows * 4


class ShardingPlan:
    """An immutable placement of every embedding row onto devices."""

    def __init__(self, shards: list[Shard], model_config: ModelConfig):
        self.shards = tuple(shards)
        self.model_config = model_config
        self._validate_coverage()

    def _validate_coverage(self) -> None:
        """Every row of every table must be covered exactly once."""
        for table_id, rows in enumerate(self.model_config.rows_per_table):
            ranges = sorted(
                (s.row_start, s.row_end)
                for s in self.shards
                if s.table_id == table_id
            )
            if not ranges:
                raise ShardingError(f"table {table_id} has no shards")
            if ranges[0][0] != 0 or ranges[-1][1] != rows:
                raise ShardingError(
                    f"table {table_id} shards cover "
                    f"[{ranges[0][0]}, {ranges[-1][1]}), expected [0, {rows})"
                )
            for (_, prev_end), (start, _) in zip(ranges, ranges[1:]):
                if start != prev_end:
                    raise ShardingError(
                        f"table {table_id} shards gap/overlap at row {start}"
                    )

    def shards_for_table(self, table_id: int) -> list[Shard]:
        return [s for s in self.shards if s.table_id == table_id]

    def shards_on_device(self, device_id: DeviceId) -> list[Shard]:
        return [s for s in self.shards if s.device_id == device_id]

    def shards_on_node(self, node: int) -> list[Shard]:
        return [s for s in self.shards if s.device_id.node == node]

    def node_state_bytes(self, node: int) -> int:
        """Checkpointable embedding bytes resident on one node's GPUs."""
        return sum(s.state_bytes for s in self.shards_on_node(node))

    @property
    def total_state_bytes(self) -> int:
        return sum(s.state_bytes for s in self.shards)

    def apply_to(self, cluster: SimCluster) -> None:
        """Reserve HBM for every shard; fails if the plan does not fit."""
        for shard in self.shards:
            cluster.device(shard.device_id).allocate(
                shard.state_bytes,
                what=f"shard {shard.shard_id} (table {shard.table_id})",
            )


def _interleaved_devices(cluster: SimCluster):
    """Devices ordered slot-major: one per node before any second.

    Equal-load ties then spread tables across *nodes*, which matters
    because the snapshot stall is the max over per-node copy times —
    state concentrated on one node would serialise the copy.
    """
    return sorted(
        cluster.all_devices(),
        key=lambda d: (d.device_id.slot, d.device_id.node),
    )


def plan_table_wise(
    model_config: ModelConfig, cluster: SimCluster
) -> ShardingPlan:
    """Whole tables on single devices, greedy largest-first balancing."""
    dim = model_config.embedding_dim
    # (current load, tie-breaker, device) min-heap.
    heap = [
        (0, i, device)
        for i, device in enumerate(_interleaved_devices(cluster))
    ]
    heapq.heapify(heap)
    order = sorted(
        range(model_config.num_tables),
        key=lambda t: model_config.rows_per_table[t],
        reverse=True,
    )
    shards: list[Shard] = []
    for shard_id, table_id in enumerate(order):
        rows = model_config.rows_per_table[table_id]
        load, tie, device = heapq.heappop(heap)
        shard = Shard(
            shard_id=shard_id,
            table_id=table_id,
            row_start=0,
            row_end=rows,
            device_id=device.device_id,
            embedding_dim=dim,
        )
        if shard.state_bytes > device.hbm_bytes:
            raise ShardingError(
                f"table {table_id} ({shard.state_bytes} bytes) exceeds a "
                f"single device's HBM ({device.hbm_bytes}); use row-wise "
                "sharding"
            )
        shards.append(shard)
        heapq.heappush(heap, (load + shard.state_bytes, tie, device))
    return ShardingPlan(shards, model_config)


def plan_row_wise(
    model_config: ModelConfig, cluster: SimCluster
) -> ShardingPlan:
    """Split every table into near-equal row ranges across all devices."""
    dim = model_config.embedding_dim
    devices = cluster.all_devices()
    world = len(devices)
    shards: list[Shard] = []
    shard_id = 0
    for table_id, rows in enumerate(model_config.rows_per_table):
        # Spread remainder rows over the first (rows % world) devices.
        base, extra = divmod(rows, world)
        start = 0
        for rank, device in enumerate(devices):
            count = base + (1 if rank < extra else 0)
            if count == 0:
                continue
            shards.append(
                Shard(
                    shard_id=shard_id,
                    table_id=table_id,
                    row_start=start,
                    row_end=start + count,
                    device_id=device.device_id,
                    embedding_dim=dim,
                )
            )
            shard_id += 1
            start += count
    return ShardingPlan(shards, model_config)


def plan_auto(
    model_config: ModelConfig, cluster: SimCluster
) -> ShardingPlan:
    """Table-wise where tables fit on one device, row-wise otherwise."""
    hbm = cluster.config.hbm_bytes_per_device
    dim = model_config.embedding_dim
    per_row_bytes = dim * 4 + 4
    oversized = [
        t
        for t, rows in enumerate(model_config.rows_per_table)
        if rows * per_row_bytes > hbm
    ]
    if not oversized:
        return plan_table_wise(model_config, cluster)
    devices = cluster.all_devices()
    world = len(devices)
    shards: list[Shard] = []
    shard_id = 0
    # Oversized tables: row-wise across all devices.
    for table_id in oversized:
        rows = model_config.rows_per_table[table_id]
        base, extra = divmod(rows, world)
        start = 0
        for rank, device in enumerate(devices):
            count = base + (1 if rank < extra else 0)
            if count == 0:
                continue
            shards.append(
                Shard(
                    shard_id, table_id, start, start + count,
                    device.device_id, dim,
                )
            )
            shard_id += 1
            start += count
    # Remaining tables: greedy table-wise onto least-loaded devices,
    # accounting for the row-wise load already placed.
    load = {d.device_id: 0 for d in devices}
    for s in shards:
        load[s.device_id] += s.state_bytes
    heap = [
        (load[d.device_id], i, d)
        for i, d in enumerate(_interleaved_devices(cluster))
    ]
    heapq.heapify(heap)
    rest = sorted(
        (t for t in range(model_config.num_tables) if t not in oversized),
        key=lambda t: model_config.rows_per_table[t],
        reverse=True,
    )
    for table_id in rest:
        rows = model_config.rows_per_table[table_id]
        current, tie, device = heapq.heappop(heap)
        shard = Shard(shard_id, table_id, 0, rows, device.device_id, dim)
        shards.append(shard)
        shard_id += 1
        heapq.heappush(heap, (current + shard.state_bytes, tie, device))
    return ShardingPlan(shards, model_config)
