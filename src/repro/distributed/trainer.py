"""The synchronous hybrid-parallel trainer simulation.

One :class:`SimTrainer` step performs the *real* numpy forward/backward
update (so model quality, touched rows, and checkpoint contents are all
genuine) and advances simulated time by the cost model of one fully
synchronous iteration on the configured cluster:

    step = compute + AllReduce(dense grads) + 2 x AlltoAll(embeddings)
           [+ exposed tracking time]

Tracking cost is modelled per touched row and hidden inside the AlltoAll
phase up to a hide efficiency, mirroring section 5.1.1 ("we utilize idle
GPU cycles ... the tracking overhead is reduced to ~1% of the iteration
training time").

The numbers the paper reports in section 6.1 (< 7 s snapshot stall,
< 0.4% throughput loss at 30-minute intervals, < 1% tracking overhead)
fall out of these models at default calibration; the stall bench
(tab-stall) measures rather than asserts them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..data.batch import Batch
from ..data.reader import ReaderMaster
from ..data.state import TrainerProgress
from ..errors import TrainingError
from ..model.dlrm import DLRM, StepResult
from .clock import SimClock
from .comm import (
    CommLog,
    Fabric,
    HierarchicalFabric,
    allreduce_time,
    alltoall_time,
    hierarchical_allreduce_time,
    hierarchical_alltoall_time,
)
from .sharding import Shard, ShardingPlan
from .topology import SimCluster

#: Per-touched-row tracking cost (seconds). Calibrated so that at the
#: default batch/table shape the *exposed* tracking time is ~1% of an
#: iteration after hiding inside AlltoAll.
DEFAULT_TRACKING_COST_PER_ROW_S = 2.0e-7

#: Fraction of the AlltoAll window usable for hiding tracking work.
DEFAULT_TRACKING_HIDE_EFFICIENCY = 0.9

StepHook = Callable[[StepResult, Batch], None]


@dataclass
class IntervalReport:
    """Aggregate of one checkpoint interval's training."""

    batches: int
    samples: int
    mean_loss: float
    train_time_s: float
    tracking_exposed_s: float


@dataclass
class StepTiming:
    """Cost-model breakdown of one synchronous iteration."""

    compute_s: float
    allreduce_s: float
    alltoall_s: float
    tracking_exposed_s: float

    @property
    def total_s(self) -> float:
        return (
            self.compute_s
            + self.allreduce_s
            + self.alltoall_s
            + self.tracking_exposed_s
        )


class SimTrainer:
    """Drives the DLRM on the simulated cluster, batch by batch."""

    def __init__(
        self,
        model: DLRM,
        reader: ReaderMaster,
        cluster: SimCluster,
        plan: ShardingPlan,
        clock: SimClock,
        tracking_enabled: bool = True,
        tracking_cost_per_row_s: float = DEFAULT_TRACKING_COST_PER_ROW_S,
        tracking_hide_efficiency: float = DEFAULT_TRACKING_HIDE_EFFICIENCY,
    ) -> None:
        if not 0.0 <= tracking_hide_efficiency <= 1.0:
            raise TrainingError("hide efficiency must be in [0, 1]")
        self.model = model
        self.reader = reader
        self.cluster = cluster
        self.plan = plan
        self.clock = clock
        self.comm_log = CommLog()
        self.tracking_enabled = tracking_enabled
        self.tracking_cost_per_row_s = tracking_cost_per_row_s
        self.tracking_hide_efficiency = tracking_hide_efficiency
        self._step_hooks: list[StepHook] = []
        self._fabric = Fabric(
            cluster.config.fabric_bandwidth, cluster.config.fabric_latency_s
        )
        self._hier_fabric: HierarchicalFabric | None = None
        if cluster.config.hierarchical_comm:
            self._hier_fabric = HierarchicalFabric(
                intra=Fabric(
                    cluster.config.intra_node_bandwidth,
                    cluster.config.intra_node_latency_s,
                ),
                inter=self._fabric,
                devices_per_node=cluster.config.devices_per_node,
            )
        plan.apply_to(cluster)
        self._dense_bytes = sum(
            a.nbytes for a in model.dense_parameters().values()
        )
        # The MLPs are replicated on every device (data parallelism).
        for device in cluster.all_devices():
            device.allocate(self._dense_bytes, what="dense replica")
        self.total_tracking_exposed_s = 0.0

    # ------------------------------------------------------------------
    # Hooks (the Check-N-Run tracker attaches here)
    # ------------------------------------------------------------------

    def register_step_hook(self, hook: StepHook) -> None:
        """Call ``hook(step_result, batch)`` after every training step."""
        self._step_hooks.append(hook)

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------

    def _alltoall_bytes_per_rank(self, batch: Batch) -> int:
        """Embedding activation bytes each rank exchanges per direction."""
        dim = self.model.config.embedding_dim
        total = batch.num_samples * batch.num_tables * dim * 4
        return max(1, total // self.cluster.world_size)

    def step_timing(self, batch: Batch, touched_rows: int) -> StepTiming:
        """Simulated duration of one synchronous iteration."""
        world = self.cluster.world_size
        num_nodes = self.cluster.config.num_nodes
        compute = self.cluster.config.step_compute_time_s
        a2a_bytes = self._alltoall_bytes_per_rank(batch)
        if self._hier_fabric is not None:
            ar = hierarchical_allreduce_time(
                self._dense_bytes, num_nodes, self._hier_fabric
            )
            a2a = 2.0 * hierarchical_alltoall_time(
                a2a_bytes, num_nodes, self._hier_fabric
            )
        else:
            ar = allreduce_time(self._dense_bytes, world, self._fabric)
            a2a = 2.0 * alltoall_time(a2a_bytes, world, self._fabric)
        self.comm_log.record("allreduce", self._dense_bytes, world, ar)
        self.comm_log.record("alltoall", 2 * a2a_bytes, world, a2a)

        exposed = 0.0
        if self.tracking_enabled:
            tracking = touched_rows * self.tracking_cost_per_row_s
            hidden_budget = a2a * self.tracking_hide_efficiency
            exposed = max(0.0, tracking - hidden_budget)
        return StepTiming(compute, ar, a2a, exposed)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def train_one_batch(self) -> StepResult:
        """Fetch the next batch from the reader and run one step."""
        batch = self.reader.next_batch()
        result = self.model.train_step(batch)
        touched = sum(r.size for r in result.touched_rows.values())
        timing = self.step_timing(batch, touched)
        self.clock.advance(timing.compute_s, "compute")
        self.clock.advance(timing.allreduce_s, "allreduce")
        self.clock.advance(timing.alltoall_s, "alltoall")
        if timing.tracking_exposed_s > 0:
            self.clock.advance(timing.tracking_exposed_s, "tracking")
            self.total_tracking_exposed_s += timing.tracking_exposed_s
        for hook in self._step_hooks:
            hook(result, batch)
        return result

    def train_interval(self, num_batches: int) -> IntervalReport:
        """Train one checkpoint interval's worth of batches."""
        if num_batches < 1:
            raise TrainingError("interval must contain at least one batch")
        start_time = self.clock.now
        start_tracking = self.total_tracking_exposed_s
        losses = np.empty(num_batches, dtype=np.float64)
        samples = 0
        for i in range(num_batches):
            result = self.train_one_batch()
            losses[i] = result.loss
            samples += self.reader._dataset.samples_per_batch
        return IntervalReport(
            batches=num_batches,
            samples=samples,
            mean_loss=float(losses.mean()),
            train_time_s=self.clock.now - start_time,
            tracking_exposed_s=(
                self.total_tracking_exposed_s - start_tracking
            ),
        )

    # ------------------------------------------------------------------
    # State access for snapshot / checkpoint
    # ------------------------------------------------------------------

    def shard_weight(self, shard: Shard) -> np.ndarray:
        """Live view of a shard's embedding rows (no copy)."""
        return self.model.table_weight(shard.table_id)[
            shard.row_start : shard.row_end
        ]

    def shard_accumulator(self, shard: Shard) -> np.ndarray:
        """Live view of a shard's optimizer accumulator rows."""
        return self.model.table_accumulator(shard.table_id)[
            shard.row_start : shard.row_end
        ]

    def node_snapshot_bytes(self, node_id: int) -> int:
        """Bytes node ``node_id`` copies to host DRAM for a snapshot.

        Embedding shards resident on the node, plus — on node 0 only —
        one replica of the dense state (reading the replicated MLPs from
        a single GPU suffices, section 4.1).
        """
        nbytes = self.plan.node_state_bytes(node_id)
        if node_id == 0:
            nbytes += self._dense_bytes
        return nbytes

    def progress(self) -> TrainerProgress:
        return TrainerProgress(
            batches_trained=self.model.batches_trained,
            samples_trained=self.model.samples_trained,
            sim_time_s=self.clock.now,
        )

    def throughput_qps(self) -> float:
        """Samples per simulated second so far."""
        if self.clock.now == 0:
            return 0.0
        return self.model.samples_trained / self.clock.now
