"""Simulated cluster topology: devices, nodes, memory accounting.

The paper's training cluster is 16 nodes x 8 GPUs with embedding tables
model-parallel across device memories (section 2.2). The simulation
keeps per-device byte accounting honest — a sharding plan that would not
fit in HBM fails here the way it would fail on the real machine — and
per-node copy bandwidth drives the snapshot stall model (section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ClusterConfig
from ..errors import ShardingError


@dataclass(frozen=True, order=True)
class DeviceId:
    """Stable identifier for one simulated accelerator."""

    node: int
    slot: int

    def __str__(self) -> str:
        return f"node{self.node}/gpu{self.slot}"


class SimDevice:
    """One accelerator with a fixed HBM budget."""

    def __init__(self, device_id: DeviceId, hbm_bytes: int) -> None:
        self.device_id = device_id
        self.hbm_bytes = hbm_bytes
        self.allocated_bytes = 0

    def allocate(self, nbytes: int, what: str = "tensor") -> None:
        """Reserve HBM; raises :class:`ShardingError` when over budget."""
        if nbytes < 0:
            raise ShardingError(f"negative allocation {nbytes}")
        if self.allocated_bytes + nbytes > self.hbm_bytes:
            raise ShardingError(
                f"{self.device_id}: {what} needs {nbytes} bytes but only "
                f"{self.hbm_bytes - self.allocated_bytes} of "
                f"{self.hbm_bytes} HBM remain"
            )
        self.allocated_bytes += nbytes

    def free(self, nbytes: int) -> None:
        if nbytes < 0 or nbytes > self.allocated_bytes:
            raise ShardingError(
                f"{self.device_id}: cannot free {nbytes} of "
                f"{self.allocated_bytes} allocated bytes"
            )
        self.allocated_bytes -= nbytes

    @property
    def free_bytes(self) -> int:
        return self.hbm_bytes - self.allocated_bytes


class SimNode:
    """A host: several devices plus CPU DRAM and a GPU->host copy path."""

    def __init__(self, node_id: int, config: ClusterConfig) -> None:
        self.node_id = node_id
        self.devices = [
            SimDevice(DeviceId(node_id, slot), config.hbm_bytes_per_device)
            for slot in range(config.devices_per_node)
        ]
        self.host_dram_bytes = config.host_dram_bytes
        self.host_allocated = 0
        self.gpu_to_host_bandwidth = config.gpu_to_host_bandwidth

    def allocate_host(self, nbytes: int, what: str = "snapshot") -> None:
        """Reserve host DRAM (snapshots live here, section 4.2)."""
        if nbytes < 0:
            raise ShardingError(f"negative host allocation {nbytes}")
        if self.host_allocated + nbytes > self.host_dram_bytes:
            raise ShardingError(
                f"node{self.node_id}: {what} needs {nbytes} host bytes, "
                f"only {self.host_dram_bytes - self.host_allocated} free"
            )
        self.host_allocated += nbytes

    def free_host(self, nbytes: int) -> None:
        if nbytes < 0 or nbytes > self.host_allocated:
            raise ShardingError(
                f"node{self.node_id}: cannot free {nbytes} host bytes"
            )
        self.host_allocated -= nbytes

    def copy_time_s(self, nbytes: int) -> float:
        """Seconds to copy ``nbytes`` from this node's GPUs to host DRAM."""
        return nbytes / self.gpu_to_host_bandwidth

    @property
    def device_allocated_bytes(self) -> int:
        return sum(d.allocated_bytes for d in self.devices)


class SimCluster:
    """The training cluster: nodes x devices built from a config."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.nodes = [SimNode(i, config) for i in range(config.num_nodes)]

    def device(self, device_id: DeviceId) -> SimDevice:
        try:
            return self.nodes[device_id.node].devices[device_id.slot]
        except IndexError:
            raise ShardingError(
                f"no such device {device_id} in a "
                f"{self.config.num_nodes}x{self.config.devices_per_node} "
                "cluster"
            ) from None

    def all_devices(self) -> list[SimDevice]:
        return [d for node in self.nodes for d in node.devices]

    @property
    def world_size(self) -> int:
        return self.config.world_size

    @property
    def total_hbm_bytes(self) -> int:
        return sum(d.hbm_bytes for d in self.all_devices())

    @property
    def total_allocated_bytes(self) -> int:
        return sum(d.allocated_bytes for d in self.all_devices())
