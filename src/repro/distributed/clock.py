"""Simulated time for the training/checkpointing pipeline.

The paper's measurements (snapshot stall, write latency, interval lengths)
are all wall-clock quantities on Meta's clusters. We reproduce the *timing
structure* with a shared :class:`SimClock`: the trainer advances it with
compute/communication/stall durations, while background activities (the
checkpoint writer, the object store) occupy parallel *timelines* whose
completion times gate events such as checkpoint validity.

Nothing here sleeps; simulated seconds are plain floats.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError


@dataclass
class TimeSpan:
    """A named, closed interval of simulated time."""

    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class SimClock:
    """A monotonically advancing simulated clock with span accounting.

    Components share one instance. ``advance`` moves time forward (the
    trainer's compute, stalls); ``record`` tags the elapsed span with a
    label so accountants can later attribute simulated time (e.g. what
    fraction of training time went to snapshot stalls, paper section 6.1).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._spans: list[TimeSpan] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, duration: float, label: str = "unlabelled") -> float:
        """Advance the clock by ``duration`` seconds and return the new time.

        Raises :class:`SimulationError` on negative durations: simulated
        time never flows backwards.
        """
        if duration < 0:
            raise SimulationError(
                f"cannot advance clock by negative duration {duration!r}"
            )
        start = self._now
        self._now += duration
        self._spans.append(TimeSpan(label, start, self._now))
        return self._now

    def advance_to(self, timestamp: float, label: str = "wait") -> float:
        """Advance to an absolute timestamp (no-op if already past it)."""
        if timestamp > self._now:
            self.advance(timestamp - self._now, label)
        return self._now

    def spans(self, label: str | None = None) -> list[TimeSpan]:
        """All recorded spans, optionally filtered by label."""
        if label is None:
            return list(self._spans)
        return [s for s in self._spans if s.label == label]

    def total(self, label: str) -> float:
        """Total simulated seconds attributed to ``label``."""
        return sum(s.duration for s in self._spans if s.label == label)

    def fraction(self, label: str) -> float:
        """Fraction of all elapsed time attributed to ``label``."""
        if self._now == 0.0:
            return 0.0
        return self.total(label) / self._now


class Timeline:
    """A background activity lane tied to a :class:`SimClock`.

    Models a resource that processes work serially in the background (the
    checkpoint writer's CPU processes, the storage link): work submitted at
    time ``t`` starts at ``max(t, free_at)`` and finishes ``duration``
    later. The trainer's clock is *not* advanced — that is the decoupling
    the paper builds (section 4.2).
    """

    def __init__(self, clock: SimClock, name: str) -> None:
        self._clock = clock
        self.name = name
        self._free_at = clock.now
        self._log: list[TimeSpan] = []

    @property
    def free_at(self) -> float:
        """Earliest simulated time at which new work could start."""
        return self._free_at

    def busy_at(self, timestamp: float) -> bool:
        """Whether the lane is still occupied at ``timestamp``."""
        return self._free_at > timestamp

    def submit(
        self,
        duration: float,
        label: str = "work",
        earliest: float | None = None,
    ) -> TimeSpan:
        """Occupy the lane for ``duration`` seconds; returns the span.

        The span starts when the lane frees up (or now, if idle).
        ``earliest`` defers the start further — used by the pipelined
        checkpoint writer, where a chunk's store cannot begin before its
        quantization finished on the CPU lane.
        """
        if duration < 0:
            raise SimulationError(
                f"cannot submit negative-duration work {duration!r}"
            )
        start = max(self._clock.now, self._free_at, earliest or 0.0)
        span = TimeSpan(label, start, start + duration)
        self._free_at = span.end
        self._log.append(span)
        return span

    def release(self) -> None:
        """Free the lane immediately (cancelling queued occupancy).

        Used when an in-flight checkpoint write is cancelled: the link
        time already spent is sunk, but no further occupancy blocks the
        next checkpoint.
        """
        self._free_at = min(self._free_at, self._clock.now)

    def log(self) -> list[TimeSpan]:
        """All spans processed by this lane, in submission order."""
        return list(self._log)

    def utilization(self) -> float:
        """Busy fraction between the first span start and the lane's end."""
        if not self._log:
            return 0.0
        horizon = self._free_at - self._log[0].start
        if horizon <= 0:
            return 0.0
        busy = sum(s.duration for s in self._log)
        return busy / horizon


@dataclass
class Stopwatch:
    """Accumulates *real* wall-clock durations (for latency benches).

    Used where the paper reports measured latencies (Figs 12/13): the
    quantizers run for real in numpy, and the bench reports both measured
    seconds and model-projected seconds at paper scale.
    """

    elapsed: float = 0.0
    _starts: list[float] = field(default_factory=list)

    def __enter__(self) -> "Stopwatch":
        import time

        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc: object) -> None:
        import time

        self.elapsed += time.perf_counter() - self._starts.pop()
