"""Simulated training cluster: clock, topology, sharding, collectives."""

from .clock import SimClock, Stopwatch, Timeline, TimeSpan
from .comm import (
    CommLog,
    Fabric,
    HierarchicalFabric,
    allreduce_time,
    alltoall_time,
    hierarchical_allreduce_time,
    hierarchical_alltoall_time,
)
from .sharding import (
    Shard,
    ShardingPlan,
    plan_auto,
    plan_row_wise,
    plan_table_wise,
)
from .topology import DeviceId, SimCluster, SimDevice, SimNode
from .trainer import IntervalReport, SimTrainer, StepTiming

__all__ = [
    "CommLog",
    "DeviceId",
    "Fabric",
    "HierarchicalFabric",
    "IntervalReport",
    "Shard",
    "ShardingPlan",
    "SimClock",
    "SimCluster",
    "SimDevice",
    "SimNode",
    "SimTrainer",
    "StepTiming",
    "Stopwatch",
    "TimeSpan",
    "Timeline",
    "allreduce_time",
    "alltoall_time",
    "hierarchical_allreduce_time",
    "hierarchical_alltoall_time",
    "plan_auto",
    "plan_row_wise",
    "plan_table_wise",
]
