"""Correlated failure domains: racks and power feeds (restore storms).

The paper's independent Weibull model (Fig 3) describes *per-job*
failures, but production fleets also die in correlated groups: a rack
loses its switch, a power feed trips, and every job placed there fails
at the same wall-clock moment. What makes correlated failures expensive
is not the crashes themselves but the **restore storm** they trigger —
all affected jobs re-read their checkpoints through the shared store at
once, and read-side link contention stretches every recovery (CPR,
Maeng et al., identifies recovery behaviour as the dominant goodput
term).

This module only *plans* the blast radius; the fleet scheduler in
:mod:`repro.fleet.scheduler` decides when the storm fires and arbitrates
the resulting restore traffic by priority tier.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError

#: Domain kind striking a single rack of machines.
DOMAIN_RACK = "rack"
#: Domain kind striking a whole power feed (here: the entire fleet).
DOMAIN_POWER = "power"


@dataclass(frozen=True)
class FailureDomain:
    """One correlated failure domain and the jobs placed inside it."""

    domain_id: str
    kind: str  # DOMAIN_RACK or DOMAIN_POWER
    job_ids: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.kind not in (DOMAIN_RACK, DOMAIN_POWER):
            raise SimulationError(f"unknown domain kind {self.kind!r}")
        if not self.job_ids:
            raise SimulationError(
                f"domain {self.domain_id!r} contains no jobs"
            )


def assign_domains(
    job_ids: list[str],
    kind: str,
    rack_size: int = 4,
    tiers: dict[str, str] | None = None,
) -> tuple[FailureDomain, ...]:
    """Place jobs into correlated failure domains, deterministically.

    ``kind=DOMAIN_POWER`` yields a single domain holding every job (a
    power-feed trip takes the whole miniature fleet down). For
    ``kind=DOMAIN_RACK``, jobs are dealt round-robin into
    ``ceil(n / rack_size)`` racks. When per-job ``tiers`` are given the
    deal order is (tier, job id), which stratifies tiers across racks —
    real placement mixes prod and experimental jobs in every rack, and
    it guarantees a struck rack exercises both ends of the priority
    arbitration.
    """
    if not job_ids:
        raise SimulationError("cannot assign domains over zero jobs")
    if rack_size < 1:
        raise SimulationError(f"rack_size must be >= 1, got {rack_size}")
    if kind == DOMAIN_POWER:
        return (
            FailureDomain("power0", DOMAIN_POWER, tuple(sorted(job_ids))),
        )
    if kind != DOMAIN_RACK:
        raise SimulationError(f"unknown domain kind {kind!r}")
    num_racks = (len(job_ids) + rack_size - 1) // rack_size
    if tiers is None:
        ordered = sorted(job_ids)
    else:
        ordered = sorted(job_ids, key=lambda j: (tiers.get(j, ""), j))
    racks: list[list[str]] = [[] for _ in range(num_racks)]
    for index, job_id in enumerate(ordered):
        racks[index % num_racks].append(job_id)
    return tuple(
        FailureDomain(f"rack{i:02d}", DOMAIN_RACK, tuple(sorted(rack)))
        for i, rack in enumerate(racks)
    )


@dataclass(frozen=True)
class StormPlan:
    """An armed correlated failure: which domain dies, and when.

    ``at_progress`` is a fleet progress fraction (completed checkpoint
    intervals over the fleet-wide target); the scheduler fires the storm
    at the first event that crosses it. Progress-based triggering keeps
    the plan deterministic across configurations whose simulated
    durations differ.
    """

    domain: FailureDomain
    at_progress: float

    def __post_init__(self) -> None:
        if not 0.0 < self.at_progress < 1.0:
            raise SimulationError(
                f"storm progress must be in (0, 1), got {self.at_progress}"
            )

    @property
    def affected_job_ids(self) -> tuple[str, ...]:
        return self.domain.job_ids


def plan_storm(
    domains: tuple[FailureDomain, ...],
    at_progress: float,
    seed: int = 0,
) -> StormPlan:
    """Choose the domain a correlated event strikes.

    A power storm has only one possible victim. For racks the struck one
    is a seeded deterministic draw — the same seed always kills the same
    rack, which keeps fleet runs reproducible end to end.
    """
    if not domains:
        raise SimulationError("no failure domains to strike")
    if len(domains) == 1:
        return StormPlan(domains[0], at_progress)
    import numpy as np

    rng = np.random.default_rng(seed)
    index = int(rng.integers(len(domains)))
    return StormPlan(domains[index], at_progress)
